//! Workspace integration tests: full paths across crates, from wireless bits
//! through the ML→QUBO reduction, the annealer simulator and the hybrid
//! solver, back to wireless bits.

use hqw::anneal::embedding::{ChainStrength, CliqueEmbedding};
use hqw::anneal::sampler::{EngineKind, SamplerConfig};
use hqw::anneal::topology::Chimera;
use hqw::core::stages::{GreedyInitializer, OracleInitializer};
use hqw::core::sweep::sweep_ra_sp;
use hqw::prelude::*;
use hqw::qubo::solution::{bits_to_spins, spins_to_bits};

fn quick_sampler(reads: usize) -> QuantumSampler {
    QuantumSampler::new(
        DWaveProfile::calibrated(),
        SamplerConfig {
            num_reads: reads,
            engine: EngineKind::Pimc { trotter_slices: 8 },
            ..Default::default()
        },
    )
}

#[test]
fn hybrid_recovers_transmissions_across_modulations() {
    // Small noiseless systems: oracle-seeded RA at high s_p must return the
    // transmitted bits for every modulation (end-to-end exactness of the
    // reduction + annealer + selection chain).
    for (m, users) in [
        (Modulation::Bpsk, 6),
        (Modulation::Qpsk, 4),
        (Modulation::Qam16, 2),
        (Modulation::Qam64, 2),
    ] {
        let mut rng = Rng64::new(31 + users as u64);
        let inst = DetectionInstance::generate(&InstanceConfig::paper(users, m), &mut rng);
        let solver = HybridSolver::new(
            quick_sampler(15),
            HybridConfig {
                protocol: Protocol::paper_ra(0.85),
                initializer: Box::new(OracleInitializer),
            },
        );
        let result = solver.solve(&inst, 5);
        assert_eq!(
            result.best_bits,
            inst.tx_natural_bits,
            "{}: hybrid failed to hold the transmitted state",
            m.name()
        );
        assert_eq!(inst.score_ber(&result.best_bits), 0.0, "{}", m.name());
    }
}

#[test]
fn greedy_seeded_hybrid_never_degrades_the_seed() {
    for seed in [1u64, 2, 3] {
        let mut rng = Rng64::new(seed);
        let inst =
            DetectionInstance::generate(&InstanceConfig::paper(4, Modulation::Qam16), &mut rng);
        let solver = HybridSolver::new(
            quick_sampler(20),
            HybridConfig {
                protocol: Protocol::paper_ra(0.69),
                initializer: Box::new(GreedyInitializer::default()),
            },
        );
        let result = solver.solve(&inst, seed);
        let init_energy = result.initial.as_ref().unwrap().energy;
        assert!(result.best_energy <= init_energy + 1e-9);
        // Consistency of the cross-crate energy bookkeeping.
        assert!((inst.reduction.qubo.energy(&result.best_bits) - result.best_energy).abs() < 1e-9);
        assert!(result.delta_e_percent(inst.ground_energy()) >= -1e-9);
    }
}

#[test]
fn ra_sp_band_exists_for_ground_seeded_ra() {
    // The paper's Figure-8 structure: ground-seeded RA fails at deep s_p and
    // succeeds at shallow s_p (the refined-local-search band).
    let mut rng = Rng64::new(2024);
    let inst = DetectionInstance::generate(&InstanceConfig::paper(6, Modulation::Qpsk), &mut rng);
    let sampler = quick_sampler(25);
    let points = sweep_ra_sp(
        &sampler,
        &inst.reduction.qubo,
        inst.ground_energy(),
        &inst.tx_natural_bits,
        9,
    );
    let deep: f64 = points
        .iter()
        .filter(|p| p.param <= 0.33)
        .map(|p| p.p_star)
        .sum();
    let shallow: f64 = points
        .iter()
        .filter(|p| p.param >= 0.85)
        .map(|p| p.p_star)
        .sum();
    assert!(
        shallow > deep,
        "shallow RA should preserve the ground seed better than deep RA ({shallow} vs {deep})"
    );
    assert!(
        points.iter().any(|p| p.p_star > 0.5),
        "ground-seeded RA should succeed somewhere on the grid"
    );
}

#[test]
fn embedded_chimera_pipeline_round_trips() {
    // MIMO instance → logical Ising → Chimera-embedded Ising → anneal →
    // unembed → wireless bits. End-to-end over the hardware-graph path.
    let mut rng = Rng64::new(77);
    let inst = DetectionInstance::generate(
        &InstanceConfig::paper(2, Modulation::Qpsk), // 4 logical vars
        &mut rng,
    );
    let (logical, _offset) = inst.reduction.qubo.to_ising();
    let graph = Chimera::new(1); // K4 fits on a single cell's shore pairing
    let embedding = CliqueEmbedding::new(graph, logical.num_vars());
    let physical = embedding.embed(&logical, ChainStrength::RelativeToMax(2.0));

    // Program the reverse-anneal initial state through the embedding too.
    let init_spins = bits_to_spins(&inst.tx_natural_bits);
    let phys_init = embedding.embed_state(&init_spins, &mut rng);

    let sampler = quick_sampler(20);
    let schedule = AnnealSchedule::reverse(0.85, 1.0).unwrap();
    let result = sampler.sample_ising(&physical, &schedule, Some(&phys_init), 13);

    // Unembed the best read and score it as wireless bits.
    let best = result.samples.best().expect("samples");
    let (logical_spins, broken) = embedding.unembed(&bits_to_spins(&best.bits));
    let bits = spins_to_bits(&logical_spins);
    assert!(broken <= 1, "chains should mostly hold at this strength");
    assert_eq!(
        bits, inst.tx_natural_bits,
        "embedded RA should hold the programmed ground state"
    );
    assert_eq!(inst.score_ber(&bits), 0.0);
}

#[test]
fn experiments_quick_scale_is_wired_end_to_end() {
    // The canned Figure-3 experiment exercises phy + qubo across sizes.
    let rows = hqw::core::experiments::run_fig3(4, 5);
    assert!(rows.len() > 20);
    assert!(rows
        .iter()
        .all(|r| (0.0..=1.0).contains(&r.simplified_ratio)));

    // Soft-information study exercises constraints + ICE + sampler.
    let rows = hqw::core::experiments::run_fig4_softinfo(hqw::core::experiments::Scale::quick(), 5);
    assert!(!rows.is_empty());
    assert!(rows.iter().all(|r| r.optimum_preserved));
}

#[test]
fn detector_initializers_integrate_with_the_hybrid() {
    let mut rng = Rng64::new(55);
    let inst = DetectionInstance::generate(&InstanceConfig::paper(3, Modulation::Qam16), &mut rng);
    // Noiseless: ZF seed is exact, so the hybrid must return 0 BER.
    let solver = HybridSolver::new(
        quick_sampler(10),
        HybridConfig {
            protocol: Protocol::paper_ra(0.8),
            initializer: Box::new(hqw::core::stages::zf_initializer(3)),
        },
    );
    let result = solver.solve(&inst, 3);
    assert_eq!(result.best_bits, inst.tx_natural_bits);
}

#[test]
fn ber_scenario_engine_is_wired_end_to_end() {
    // The full scenario path through the umbrella crate: classical, SA-QUBO
    // and hybrid arms over an SNR grid, deterministic across thread counts.
    use hqw::phy::channel::ChannelModel;
    use hqw::phy::detect::{KBest, ZeroForcing};
    use std::sync::Arc;

    let make_roster = || {
        vec![
            ScenarioDetector::fixed(false, ZeroForcing),
            ScenarioDetector::fixed(false, KBest::new(8)),
            ScenarioDetector::fixed(true, QuboDetector::new(9)),
            ScenarioDetector::fixed(
                true,
                HybridDetector::new(HybridSolver::paper_prototype(quick_sampler(8), 0.65), 9),
            ),
        ]
    };
    let config = |threads| SnrSweepConfig {
        n_users: 3,
        n_rx: 3,
        modulation: Modulation::Qpsk,
        channel: ChannelModel::UnitGainRandomPhase,
        snr_db: vec![6.0, 30.0],
        realizations: 3,
        seed: 11,
        threads,
    };

    let serial: BerReport = run_ber_sweep(&config(1), &make_roster());
    assert_eq!(serial.series.len(), 4);
    for series in &serial.series {
        // 30 dB on a 3-user QPSK system is easy for every family.
        assert_eq!(
            series.points[1].ber, 0.0,
            "{}: nonzero BER at 30 dB",
            series.detector
        );
    }
    let parallel = run_ber_sweep(&config(0), &make_roster());
    assert_eq!(serial.to_json(), parallel.to_json());

    // Arc factories reuse: a detector arm can be built per noise point too.
    let mmse = ScenarioDetector::noise_matched("MMSE", false, |nv| {
        Arc::new(hqw::phy::detect::Mmse::new(nv))
    });
    assert_eq!(mmse.name(), "MMSE");
}
