//! # hqw — Hybrid Classical-Quantum Computation for Wirelessly-Networked Systems
//!
//! Umbrella crate for the `hqw` workspace, a from-scratch Rust reproduction
//! of Kim, Venturelli & Jamieson, *"Towards Hybrid Classical-Quantum
//! Computation Structures in Wirelessly-Networked Systems"* (HotNets '20).
//!
//! The system solves **Large-MIMO detection** — the maximum-likelihood
//! decoding of spatially-multiplexed wireless transmissions — by reducing it
//! to QUBO form and refining a cheap classical guess with **reverse quantum
//! annealing** on a simulated analog annealer.
//!
//! ## Crate map
//!
//! | re-export | crate | contents |
//! |---|---|---|
//! | [`math`] | `hqw-math` | complex/linear algebra, RNG, statistics |
//! | [`qubo`] | `hqw-qubo` | QUBO/Ising models, preprocessing, classical solvers |
//! | [`phy`] | `hqw-phy` | modulation, channels, MIMO detectors, ML→QUBO reduction |
//! | [`anneal`] | `hqw-anneal` | anneal schedules, PIMC/SVMC engines, Chimera embedding |
//! | [`core`] | `hqw-core` | hybrid solver, FA/RA/FR protocols, metrics, pipelines |
//!
//! ## Quickstart
//!
//! See `examples/quickstart.rs` for the full walk-through; the minimal
//! end-to-end loop (generate an instance, reduce to QUBO, seed with Greedy
//! Search, refine with Reverse Annealing) fits in a few lines:
//!
//! ```
//! use hqw::prelude::*;
//!
//! // One channel use: 2 users × QPSK, noiseless unit-gain random-phase channel.
//! let mut rng = Rng64::new(7);
//! let instance = DetectionInstance::generate(
//!     &InstanceConfig::paper(2, Modulation::Qpsk),
//!     &mut rng,
//! );
//!
//! // GS + Reverse Annealing on the calibrated simulated annealer.
//! let sampler = QuantumSampler::new(
//!     DWaveProfile::calibrated(),
//!     SamplerConfig { num_reads: 10, ..Default::default() },
//! );
//! let solver = HybridSolver::paper_prototype(sampler, 0.8);
//! let result = solver.solve(&instance, 42);
//!
//! // The hybrid never returns worse than its classical seed, and on this
//! // easy instance it recovers the transmitted bits exactly.
//! assert!(result.best_energy <= result.initial.as_ref().unwrap().energy);
//! assert_eq!(result.best_bits, instance.tx_natural_bits);
//! ```

pub use hqw_anneal as anneal;
pub use hqw_core as core;
pub use hqw_math as math;
pub use hqw_phy as phy;
pub use hqw_qubo as qubo;

/// A prelude re-exporting the types used by nearly every application.
pub mod prelude {
    pub use hqw_anneal::sampler::{QuantumSampler, SamplerConfig};
    pub use hqw_anneal::schedule::AnnealSchedule;
    pub use hqw_anneal::DWaveProfile;
    pub use hqw_core::metrics::{delta_e_percent, success_probability, time_to_solution};
    pub use hqw_core::protocol::Protocol;
    pub use hqw_core::report::Report;
    pub use hqw_core::scenario::{
        run_ber_sweep, BerReport, HybridDetector, ScenarioDetector, SnrSweepConfig,
    };
    pub use hqw_core::solver::{HybridConfig, HybridResult, HybridSolver};
    pub use hqw_core::spec::{ExperimentSpec, SpecError};
    pub use hqw_core::stages::{ClassicalInitializer, GreedyInitializer};
    pub use hqw_math::Rng64;
    pub use hqw_phy::detect::{DetectionResult, Detector, DetectorMeta, QuboDetector};
    pub use hqw_phy::instance::{DetectionInstance, InstanceConfig};
    pub use hqw_phy::modulation::Modulation;
    pub use hqw_qubo::{Qubo, SampleSet};
}
