//! # hqw-bench — benchmark harness
//!
//! Three kinds of targets:
//!
//! * **The `hqw` runner** (`src/bin/hqw.rs`): the unified entry point —
//!   `hqw list` prints the experiment [`registry`], `hqw run <name>` runs a
//!   registered preset at `--quick`/`--full`/standard scale, and
//!   `hqw run spec.json` runs a declarative
//!   [`hqw_core::spec::ExperimentSpec`] document.
//! * **Figure-regeneration binaries** (`src/bin/`): one per figure/claim in
//!   the paper's evaluation, each a thin shim over the registry (so
//!   `fig-ber --quick` and `hqw run ber --quick` emit byte-identical
//!   output). Run e.g. `cargo run -p hqw-bench --release --bin fig8 -- --quick`.
//! * **Kernel benches** (`benches/`): std-only micro/meso benchmarks of the
//!   hot kernels (sweep kernels before/after the incremental-field rework,
//!   parallel reads, annealer engines) with a JSON trajectory emitter — see
//!   the crate README for the output format.
//!
//! Shared CLI conventions live in [`cli`]; experiment wiring lives in
//! [`runs`] (grid experiments) and [`legacy`] (canned figures); the
//! distributed shard/checkpoint/merge runners live in [`distributed`].

#![warn(missing_docs)]

pub mod cli;
pub mod distributed;
pub mod legacy;
pub mod registry;
pub mod runs;
