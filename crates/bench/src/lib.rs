//! # hqw-bench — benchmark harness
//!
//! Two kinds of targets:
//!
//! * **Figure-regeneration binaries** (`src/bin/`): one per figure/claim in
//!   the paper's evaluation; each prints the series the paper plots and
//!   writes CSV under `results/`. Run e.g.
//!   `cargo run -p hqw-bench --release --bin fig8 -- --quick`.
//! * **Kernel benches** (`benches/`): std-only micro/meso benchmarks of the
//!   hot kernels (sweep kernels before/after the incremental-field rework,
//!   parallel reads, annealer engines) with a JSON trajectory emitter — see
//!   the crate README for the output format.
//!
//! Shared CLI conventions live in [`cli`].

#![warn(missing_docs)]

pub mod cli;
