//! # hqw-bench — benchmark harness
//!
//! Two kinds of targets:
//!
//! * **Figure-regeneration binaries** (`src/bin/`): one per figure/claim in
//!   the paper's evaluation; each prints the series the paper plots and
//!   writes CSV under `results/`. Run e.g.
//!   `cargo run -p hqw-bench --release --bin fig8 -- --quick`.
//! * **Criterion benches** (`benches/`): micro/meso benchmarks of the hot
//!   kernels (QUBO energy, solvers, annealing sweeps, the ML→QUBO
//!   transform, embedding, detectors).
//!
//! Shared CLI conventions live in [`cli`].

#![warn(missing_docs)]

pub mod cli;
