//! Minimal shared CLI for the figure binaries.
//!
//! Flags (all optional):
//! * `--quick`       — test-scale run (seconds).
//! * `--full`        — publication-scale run (long).
//! * `--seed <n>`    — RNG seed (default 2026).
//! * `--out <dir>`   — CSV output directory (default `results/`).
//! * `--threads <n>` — worker threads for parallel sweeps (0 = all cores;
//!   results are bit-identical for any value).
//! * `--json <path>` — JSON report path, for binaries that emit one
//!   (default: the binary's `BENCH_*.json` at the workspace root).
//! * `--telemetry <path>` — capture a Chrome trace-event file at `path`
//!   (off by default; only the stream/fabric engines support it).
//!
//! Malformed arguments are reported on stderr with the usage line and exit
//! the process with status 2 (never a panic/abort — CI and scripts get a
//! clean diagnostic and a nonzero status).

use hqw_core::experiments::Scale;
use hqw_core::report::Report;
use std::path::PathBuf;

/// One-line usage summary, printed alongside parse errors.
pub const USAGE: &str = "usage: [--quick|--full] [--seed N] [--out DIR] [--threads N] \
     [--json PATH] [--telemetry PATH]";

/// Parsed command-line options.
#[derive(Debug, Clone)]
pub struct Options {
    /// Experiment scale.
    pub scale: Scale,
    /// Human-readable scale name.
    pub scale_name: &'static str,
    /// RNG seed.
    pub seed: u64,
    /// CSV output directory.
    pub out_dir: PathBuf,
    /// Worker threads for parallel sweeps (0 = all available cores).
    pub threads: usize,
    /// Override path for JSON reports (`None` = binary default).
    pub json_out: Option<PathBuf>,
    /// `--telemetry PATH` — capture spans/histograms/counter series and
    /// write a Chrome trace-event file at `PATH` (`None` = telemetry off,
    /// the default; observation never perturbs results either way).
    pub telemetry: Option<PathBuf>,
}

impl Options {
    /// Parses `std::env::args()`. On malformed arguments, prints the error
    /// and [`USAGE`] to stderr and exits the process with status 2.
    pub fn from_args() -> Self {
        Self::from_args_tracked().0
    }

    /// [`Options::from_args`] plus the [`GivenFlags`] record of which flags
    /// appeared explicitly — the legacy binaries feed this into the
    /// registry's single flag-resolution point.
    pub fn from_args_tracked() -> (Self, GivenFlags) {
        match Self::parse_tracked(std::env::args().skip(1)) {
            Ok(parsed) => parsed,
            Err(message) => {
                eprintln!("error: {message}");
                eprintln!("{USAGE}");
                std::process::exit(2);
            }
        }
    }

    /// Parses an explicit argument list (testable core of
    /// [`Options::from_args`]).
    ///
    /// # Errors
    /// Returns a human-readable message for an unknown flag, a flag missing
    /// its value, or a value that fails to parse.
    pub fn parse(args: impl IntoIterator<Item = String>) -> Result<Self, String> {
        Self::parse_tracked(args).map(|(options, _)| options)
    }

    /// [`Options::parse`] plus the [`GivenFlags`] record of which flags
    /// appeared explicitly — the one pass that both parses values and
    /// tracks presence, so the two can never disagree.
    ///
    /// # Errors
    /// Same as [`Options::parse`].
    pub fn parse_tracked(
        args: impl IntoIterator<Item = String>,
    ) -> Result<(Self, GivenFlags), String> {
        let mut scale = Scale::standard();
        let mut scale_name = "standard";
        let mut seed = 2026u64;
        let mut out_dir = PathBuf::from("results");
        let mut threads = 0usize;
        let mut json_out = None;
        let mut telemetry = None;
        let mut given = GivenFlags::default();
        let mut args = args.into_iter();
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--quick" => {
                    scale = Scale::quick();
                    scale_name = "quick";
                    given.scale = true;
                }
                "--full" => {
                    scale = Scale::full();
                    scale_name = "full";
                    given.scale = true;
                }
                "--seed" => {
                    let v = args.next().ok_or("--seed needs a value")?;
                    seed = v
                        .parse()
                        .map_err(|_| format!("--seed needs an unsigned integer, got '{v}'"))?;
                    given.seed = true;
                }
                "--out" => {
                    out_dir = PathBuf::from(args.next().ok_or("--out needs a path")?);
                }
                "--threads" => {
                    let v = args.next().ok_or("--threads needs a value")?;
                    threads = v
                        .parse()
                        .map_err(|_| format!("--threads needs an unsigned integer, got '{v}'"))?;
                    given.threads = true;
                }
                "--json" => {
                    json_out = Some(PathBuf::from(args.next().ok_or("--json needs a path")?));
                }
                "--telemetry" => {
                    telemetry = Some(PathBuf::from(
                        args.next().ok_or("--telemetry needs a path")?,
                    ));
                }
                other => return Err(format!("unknown flag '{other}'")),
            }
        }
        Ok((
            Options {
                scale,
                scale_name,
                seed,
                out_dir,
                threads,
                json_out,
                telemetry,
            },
            given,
        ))
    }

    /// Path for a named CSV in the output directory.
    pub fn csv_path(&self, name: &str) -> PathBuf {
        self.out_dir.join(name)
    }

    /// Path for the binary's JSON report: the `--json` override when given,
    /// `default_name` (at the working directory) otherwise. Shared by every
    /// report-emitting fig binary so the default-path convention lives in
    /// one place.
    pub fn json_path(&self, default_name: &str) -> PathBuf {
        self.json_out
            .clone()
            .unwrap_or_else(|| PathBuf::from(default_name))
    }

    /// Prints the standard experiment header.
    pub fn banner(&self, figure: &str, what: &str) {
        println!("=== {figure}: {what}");
        println!(
            "    scale={} seed={} (see EXPERIMENTS.md for paper-vs-measured notes)",
            self.scale_name, self.seed
        );
        println!();
    }

    /// The one emission path every report-producing experiment uses: print
    /// the table, write the CSV under `--out`, write the JSON report at the
    /// `--json` override or `json_default` — previously copy-pasted across
    /// the fig binaries.
    ///
    /// # Panics
    /// Panics when the CSV or JSON file cannot be written.
    pub fn emit_report(&self, report: &dyn Report, csv_name: &str, json_default: &str) {
        println!("{}", report.render_table());
        let csv_path = self.csv_path(csv_name);
        report.write_csv(&csv_path).expect("write CSV");
        println!("CSV written to {}", csv_path.display());
        let json_path = self.json_path(json_default);
        report.write_json(&json_path).expect("write JSON report");
        println!("JSON report written to {}", json_path.display());
    }
}

/// Usage summary of the `hqw` runner binary.
///
/// For spec-file runs, `--seed`/`--threads` override the file's values and
/// `--quick`/`--full` are rejected (a spec file carries its own shape; the
/// scale presets only parameterize registry names).
pub const HQW_USAGE: &str = "usage: hqw list [--json]\n       \
     hqw run <name|spec.json> [--quick|--full] [--seed N] [--out DIR] [--threads N] [--json PATH]\n                \
     [--telemetry PATH] [--shard K/N] [--checkpoint PATH]\n       \
     hqw run --resume <checkpoint> [--out DIR] [--json PATH]\n       \
     hqw merge <shard.json>... [-o PATH]\n       \
     hqw replay <trace.json>";

/// Which standard flags appeared *explicitly* on a `hqw run` command line —
/// the spec-file resolution path uses this to override exactly what the
/// user asked for (and to reject what cannot apply) instead of silently
/// ignoring flags.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GivenFlags {
    /// `--threads` appeared (overrides a spec file's `threads` field).
    pub threads: bool,
    /// `--seed` appeared (overrides a spec file's `seed` field).
    pub seed: bool,
    /// `--quick` or `--full` appeared (rejected for spec-file runs).
    pub scale: bool,
}

/// Everything a `hqw run` command line can say: the target, the standard
/// flags, and the distributed-plane selectors (`--shard`, `--checkpoint`,
/// `--resume`). Parsed and cross-validated in one place so the runner only
/// sees consistent combinations.
#[derive(Debug, Clone)]
pub struct RunArgs {
    /// Registry name, or a path ending in `.json` to a spec file. `None`
    /// only for `--resume` runs (the checkpoint carries the spec).
    pub target: Option<String>,
    /// The standard experiment flags.
    pub options: Options,
    /// Which flags the user gave explicitly.
    pub given: GivenFlags,
    /// `--shard K/N` — run only shard `K` of an `N`-way grid partition and
    /// emit a `ShardReport` instead of the full report.
    pub shard: Option<(usize, usize)>,
    /// `--checkpoint PATH` — journal completed points to a fresh JSONL
    /// checkpoint while running.
    pub checkpoint: Option<PathBuf>,
    /// `--resume PATH` — continue a killed checkpointed run.
    pub resume: Option<PathBuf>,
}

/// A parsed `hqw` runner command line.
#[derive(Debug, Clone)]
pub enum HqwCommand {
    /// `hqw list [--json]` — print the experiment registry.
    List {
        /// Emit the machine-readable JSON manifest instead of a table.
        json: bool,
    },
    /// `hqw run <name|spec.json> [flags]` — run one experiment (or one
    /// shard of it, or resume a checkpointed run).
    Run(RunArgs),
    /// `hqw merge <shard.json>... [-o PATH]` — reassemble shard reports
    /// into the ordinary single-run report (byte-identical to running
    /// unsharded). Exit 2 on mixed fingerprints, overlapping point sets,
    /// or missing points.
    Merge {
        /// Shard report files, in any order.
        shards: Vec<String>,
        /// `-o`/`--out` output path (`None` = the family's `BENCH_*.json`
        /// default).
        out: Option<PathBuf>,
    },
    /// `hqw replay <trace.json>` — re-feed a recorded realtime routing
    /// trace through the virtual-time sim and diff the decisions. Exit 0
    /// on zero divergence, 1 on any divergence, 2 on a malformed document.
    Replay {
        /// Path to the `fabric_rt_trace.json` document to replay.
        trace: String,
    },
}

/// Parses a `--shard K/N` value.
fn parse_shard(value: &str) -> Result<(usize, usize), String> {
    let err = || format!("--shard needs K/N with 1 <= K <= N, got '{value}'");
    let (index, count) = value.split_once('/').ok_or_else(err)?;
    let index: usize = index.parse().map_err(|_| err())?;
    let count: usize = count.parse().map_err(|_| err())?;
    if index < 1 || index > count {
        return Err(err());
    }
    Ok((index, count))
}

impl HqwCommand {
    /// Parses an explicit argument list (testable core of the `hqw` main).
    ///
    /// # Errors
    /// Returns a human-readable message for a missing/unknown subcommand or
    /// malformed flags; the binary prints it with [`HQW_USAGE`] and exits
    /// with status 2 — never a panic.
    pub fn parse(args: impl IntoIterator<Item = String>) -> Result<HqwCommand, String> {
        let mut args = args.into_iter();
        match args.next().as_deref() {
            None => Err("missing command (expected 'list' or 'run')".to_string()),
            Some("list") => {
                let mut json = false;
                for arg in args {
                    match arg.as_str() {
                        "--json" => json = true,
                        other => return Err(format!("unknown list flag '{other}'")),
                    }
                }
                Ok(HqwCommand::List { json })
            }
            Some("run") => {
                let mut target = None;
                let mut shard = None;
                let mut checkpoint = None;
                let mut resume = None;
                let mut std_args = Vec::new();
                let mut first = true;
                while let Some(arg) = args.next() {
                    match arg.as_str() {
                        "--shard" => {
                            let v = args.next().ok_or("--shard needs K/N (e.g. --shard 2/4)")?;
                            shard = Some(parse_shard(&v)?);
                        }
                        "--checkpoint" => {
                            checkpoint = Some(PathBuf::from(
                                args.next().ok_or("--checkpoint needs a path")?,
                            ));
                        }
                        "--resume" => {
                            resume = Some(PathBuf::from(
                                args.next().ok_or("--resume needs a checkpoint path")?,
                            ));
                        }
                        // Value-taking standard flags travel with their
                        // value, so the value is never mistaken for a
                        // positional (missing values are reported by the
                        // shared Options parser).
                        "--seed" | "--out" | "--threads" | "--json" | "--telemetry" => {
                            std_args.push(arg.clone());
                            if let Some(value) = args.next() {
                                std_args.push(value);
                            }
                        }
                        _ if !arg.starts_with('-') => {
                            if !first {
                                return Err(format!(
                                    "unexpected argument '{arg}' \
                                     (the experiment target must come first)"
                                ));
                            }
                            target = Some(arg);
                        }
                        _ => std_args.push(arg),
                    }
                    first = false;
                }
                let (options, given) = Options::parse_tracked(std_args)?;
                if resume.is_some() {
                    if let Some(target) = &target {
                        return Err(format!(
                            "--resume takes no experiment target (the checkpoint \
                             carries the spec), got '{target}'"
                        ));
                    }
                    if shard.is_some() {
                        return Err("--shard cannot be combined with --resume".to_string());
                    }
                    if checkpoint.is_some() {
                        return Err("--checkpoint cannot be combined with --resume \
                             (the resumed journal already names itself)"
                            .to_string());
                    }
                    if given.scale || given.seed || given.threads {
                        return Err("--quick/--full/--seed/--threads cannot apply to --resume: \
                             the checkpoint pins its spec"
                            .to_string());
                    }
                    if options.telemetry.is_some() {
                        return Err("--telemetry cannot be combined with --resume \
                             (a resumed run replays journaled points, so there is no \
                             live execution to trace)"
                            .to_string());
                    }
                } else if target.is_none() {
                    return Err(
                        "run needs an experiment name, spec file, or --resume <checkpoint>"
                            .to_string(),
                    );
                }
                if shard.is_some() && checkpoint.is_some() {
                    return Err("--shard cannot be combined with --checkpoint \
                         (shards are merged, not resumed)"
                        .to_string());
                }
                if shard.is_some() && options.telemetry.is_some() {
                    return Err("--telemetry cannot be combined with --shard \
                         (traces are per-process; merge reassembles reports, not spans)"
                        .to_string());
                }
                Ok(HqwCommand::Run(RunArgs {
                    target,
                    options,
                    given,
                    shard,
                    checkpoint,
                    resume,
                }))
            }
            Some("merge") => {
                let mut shards = Vec::new();
                let mut out = None;
                while let Some(arg) = args.next() {
                    match arg.as_str() {
                        "-o" | "--out" => {
                            out = Some(PathBuf::from(args.next().ok_or("--out needs a path")?));
                        }
                        other if other.starts_with('-') => {
                            return Err(format!("unknown merge flag '{other}'"));
                        }
                        _ => shards.push(arg),
                    }
                }
                if shards.is_empty() {
                    return Err("merge needs at least one shard file".to_string());
                }
                Ok(HqwCommand::Merge { shards, out })
            }
            Some("replay") => {
                let trace = args.next().ok_or("replay needs a trace file")?;
                if trace.starts_with('-') {
                    return Err(format!("replay needs a trace file, got flag '{trace}'"));
                }
                if let Some(extra) = args.next() {
                    return Err(format!(
                        "replay takes exactly one trace file, got '{extra}'"
                    ));
                }
                Ok(HqwCommand::Replay { trace })
            }
            Some(other) => Err(format!("unknown command '{other}'")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> impl Iterator<Item = String> + use<> {
        list.iter()
            .map(|s| s.to_string())
            .collect::<Vec<_>>()
            .into_iter()
    }

    fn parse_ok(list: &[&str]) -> Options {
        Options::parse(args(list)).expect("arguments should parse")
    }

    fn parse_err(list: &[&str]) -> String {
        Options::parse(args(list)).expect_err("arguments should be rejected")
    }

    #[test]
    fn defaults_are_standard_scale() {
        let o = parse_ok(&[]);
        assert_eq!(o.scale_name, "standard");
        assert_eq!(o.seed, 2026);
        assert_eq!(o.out_dir, PathBuf::from("results"));
    }

    #[test]
    fn quick_and_full_switch_scales() {
        assert_eq!(parse_ok(&["--quick"]).scale_name, "quick");
        assert_eq!(parse_ok(&["--full"]).scale_name, "full");
        // Later flags win.
        let o = parse_ok(&["--quick", "--full"]);
        assert_eq!(o.scale_name, "full");
    }

    #[test]
    fn seed_and_out_parse_values() {
        let o = parse_ok(&["--seed", "7", "--out", "/tmp/x"]);
        assert_eq!(o.seed, 7);
        assert_eq!(o.out_dir, PathBuf::from("/tmp/x"));
        assert_eq!(o.csv_path("a.csv"), PathBuf::from("/tmp/x/a.csv"));
    }

    #[test]
    fn threads_and_json_parse_values() {
        let o = parse_ok(&[]);
        assert_eq!(o.threads, 0);
        assert!(o.json_out.is_none());
        let o = parse_ok(&["--threads", "3", "--json", "/tmp/ber.json"]);
        assert_eq!(o.threads, 3);
        assert_eq!(o.json_out, Some(PathBuf::from("/tmp/ber.json")));
    }

    #[test]
    fn telemetry_parses_a_path_and_defaults_off() {
        let o = parse_ok(&[]);
        assert!(o.telemetry.is_none());
        let o = parse_ok(&["--telemetry", "/tmp/trace.json"]);
        assert_eq!(o.telemetry, Some(PathBuf::from("/tmp/trace.json")));
        assert_eq!(parse_err(&["--telemetry"]), "--telemetry needs a path");
    }

    #[test]
    fn json_path_prefers_the_override() {
        let o = parse_ok(&[]);
        assert_eq!(o.json_path("BENCH_x.json"), PathBuf::from("BENCH_x.json"));
        let o = parse_ok(&["--json", "/tmp/report.json"]);
        assert_eq!(
            o.json_path("BENCH_x.json"),
            PathBuf::from("/tmp/report.json")
        );
    }

    #[test]
    fn malformed_values_are_reported_not_panicked() {
        assert!(parse_err(&["--threads", "many"]).contains("--threads"));
        assert!(parse_err(&["--threads", "many"]).contains("'many'"));
        assert!(parse_err(&["--seed", "xyz"]).contains("--seed"));
        assert!(parse_err(&["--seed", "-3"]).contains("'-3'"));
    }

    #[test]
    fn missing_values_are_reported() {
        assert_eq!(parse_err(&["--seed"]), "--seed needs a value");
        assert_eq!(parse_err(&["--out"]), "--out needs a path");
        assert_eq!(parse_err(&["--threads"]), "--threads needs a value");
        assert_eq!(parse_err(&["--json"]), "--json needs a path");
    }

    #[test]
    fn unknown_flags_are_reported() {
        assert_eq!(parse_err(&["--nope"]), "unknown flag '--nope'");
        // A valid prefix doesn't rescue a later bad flag.
        assert_eq!(parse_err(&["--quick", "--oops"]), "unknown flag '--oops'");
    }

    fn hqw_ok(list: &[&str]) -> HqwCommand {
        HqwCommand::parse(args(list)).expect("command should parse")
    }

    fn hqw_err(list: &[&str]) -> String {
        HqwCommand::parse(args(list)).expect_err("command should be rejected")
    }

    #[test]
    fn hqw_list_parses_with_and_without_json() {
        assert!(matches!(
            hqw_ok(&["list"]),
            HqwCommand::List { json: false }
        ));
        assert!(matches!(
            hqw_ok(&["list", "--json"]),
            HqwCommand::List { json: true }
        ));
        assert_eq!(hqw_err(&["list", "--oops"]), "unknown list flag '--oops'");
    }

    fn run_args(list: &[&str]) -> RunArgs {
        match hqw_ok(list) {
            HqwCommand::Run(run) => run,
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn hqw_run_parses_target_and_tracks_explicit_flags() {
        let run = run_args(&["run", "ber", "--quick", "--threads", "2"]);
        assert_eq!(run.target.as_deref(), Some("ber"));
        assert_eq!(run.options.scale_name, "quick");
        assert_eq!(run.options.threads, 2);
        assert_eq!(
            run.given,
            GivenFlags {
                threads: true,
                seed: false,
                scale: true,
            }
        );
        assert_eq!((run.shard, run.checkpoint, run.resume), (None, None, None));

        let run = run_args(&["run", "specs/my.json", "--seed", "3"]);
        assert_eq!(run.target.as_deref(), Some("specs/my.json"));
        assert_eq!(
            run.given,
            GivenFlags {
                threads: false,
                seed: true,
                scale: false,
            }
        );
    }

    #[test]
    fn hqw_run_parses_shard_selectors() {
        let run = run_args(&["run", "ber", "--quick", "--shard", "2/3"]);
        assert_eq!(run.shard, Some((2, 3)));

        for bad in ["5/3", "0/3", "3", "a/b", "2/0", "/", "-1/3"] {
            let err = hqw_err(&["run", "ber", "--shard", bad]);
            assert!(err.contains("--shard needs K/N"), "{bad}: {err}");
            assert!(err.contains(bad), "{bad}: {err}");
        }
        assert_eq!(
            hqw_err(&["run", "ber", "--shard"]),
            "--shard needs K/N (e.g. --shard 2/4)"
        );
        assert!(
            hqw_err(&["run", "ber", "--shard", "1/2", "--checkpoint", "ck.jsonl"])
                .contains("--shard cannot be combined with --checkpoint")
        );
    }

    #[test]
    fn hqw_run_parses_checkpoint_and_resume() {
        let run = run_args(&["run", "ber", "--quick", "--checkpoint", "ck.jsonl"]);
        assert_eq!(run.checkpoint, Some(PathBuf::from("ck.jsonl")));
        assert!(run.resume.is_none());

        let run = run_args(&["run", "--resume", "ck.jsonl", "--json", "out.json"]);
        assert!(run.target.is_none());
        assert_eq!(run.resume, Some(PathBuf::from("ck.jsonl")));

        assert_eq!(
            hqw_err(&["run", "ber", "--checkpoint"]),
            "--checkpoint needs a path"
        );
        assert_eq!(
            hqw_err(&["run", "--resume"]),
            "--resume needs a checkpoint path"
        );
        assert!(hqw_err(&["run", "ber", "--resume", "ck.jsonl"])
            .contains("--resume takes no experiment target"));
        assert!(hqw_err(&["run", "--resume", "ck.jsonl", "--shard", "1/2"])
            .contains("--shard cannot be combined with --resume"));
        assert!(
            hqw_err(&["run", "--resume", "ck.jsonl", "--checkpoint", "x.jsonl"])
                .contains("--checkpoint cannot be combined with --resume")
        );
        for pinned in [["--seed", "3"], ["--threads", "2"], ["--quick", "--quick"]] {
            let err = hqw_err(&["run", "--resume", "ck.jsonl", pinned[0], pinned[1]]);
            assert!(err.contains("the checkpoint pins its spec"), "{err}");
        }
    }

    #[test]
    fn hqw_run_routes_telemetry_and_rejects_impossible_combos() {
        let run = run_args(&["run", "fabric-rt", "--quick", "--telemetry", "trace.json"]);
        assert_eq!(run.options.telemetry, Some(PathBuf::from("trace.json")));

        assert!(hqw_err(&[
            "run",
            "fabric-rt",
            "--telemetry",
            "t.json",
            "--shard",
            "1/2"
        ])
        .contains("--telemetry cannot be combined with --shard"));
        assert!(
            hqw_err(&["run", "--resume", "ck.jsonl", "--telemetry", "t.json"])
                .contains("--telemetry cannot be combined with --resume")
        );
        assert_eq!(
            hqw_err(&["run", "fabric-rt", "--telemetry"]),
            "--telemetry needs a path"
        );
    }

    #[test]
    fn hqw_merge_parses_shards_and_output() {
        match hqw_ok(&["merge", "a.json", "b.json", "-o", "out.json"]) {
            HqwCommand::Merge { shards, out } => {
                assert_eq!(shards, vec!["a.json", "b.json"]);
                assert_eq!(out, Some(PathBuf::from("out.json")));
            }
            other => panic!("unexpected {other:?}"),
        }
        match hqw_ok(&["merge", "a.json"]) {
            HqwCommand::Merge { shards, out } => {
                assert_eq!(shards, vec!["a.json"]);
                assert!(out.is_none());
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(hqw_err(&["merge"]), "merge needs at least one shard file");
        assert_eq!(hqw_err(&["merge", "-o"]), "--out needs a path");
        assert_eq!(
            hqw_err(&["merge", "a.json", "--frob"]),
            "unknown merge flag '--frob'"
        );
    }

    #[test]
    fn hqw_replay_parses_one_trace_file() {
        match hqw_ok(&["replay", "results/fabric_rt_trace.json"]) {
            HqwCommand::Replay { trace } => {
                assert_eq!(trace, "results/fabric_rt_trace.json");
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(hqw_err(&["replay"]), "replay needs a trace file");
        assert!(hqw_err(&["replay", "--quick"]).contains("got flag '--quick'"));
        assert!(hqw_err(&["replay", "a.json", "b.json"]).contains("exactly one trace file"));
    }

    #[test]
    fn hqw_malformed_commands_are_reported_not_panicked() {
        assert_eq!(hqw_err(&[]), "missing command (expected 'list' or 'run')");
        assert_eq!(hqw_err(&["frob"]), "unknown command 'frob'");
        assert_eq!(
            hqw_err(&["run"]),
            "run needs an experiment name, spec file, or --resume <checkpoint>"
        );
        assert_eq!(
            hqw_err(&["run", "--quick"]),
            "run needs an experiment name, spec file, or --resume <checkpoint>"
        );
        assert!(hqw_err(&["run", "ber", "extra"]).contains("unexpected argument 'extra'"));
        // Flag errors surface through the shared Options parser.
        assert_eq!(
            hqw_err(&["run", "ber", "--threads", "many"]),
            "--threads needs an unsigned integer, got 'many'"
        );
    }

    #[test]
    fn parse_tracked_presence_matches_values() {
        let (o, given) = Options::parse_tracked(args(&[])).unwrap();
        assert_eq!(given, GivenFlags::default());
        assert_eq!(o.threads, 0);
        let (o, given) =
            Options::parse_tracked(args(&["--threads", "2", "--seed", "9", "--full"])).unwrap();
        assert_eq!(o.threads, 2);
        assert_eq!(o.seed, 9);
        assert_eq!(
            given,
            GivenFlags {
                threads: true,
                seed: true,
                scale: true,
            }
        );
    }
}
