//! Minimal shared CLI for the figure binaries.
//!
//! Flags (all optional):
//! * `--quick`       — test-scale run (seconds).
//! * `--full`        — publication-scale run (long).
//! * `--seed <n>`    — RNG seed (default 2026).
//! * `--out <dir>`   — CSV output directory (default `results/`).
//! * `--threads <n>` — worker threads for parallel sweeps (0 = all cores;
//!   results are bit-identical for any value).
//! * `--json <path>` — JSON report path, for binaries that emit one
//!   (default: the binary's `BENCH_*.json` at the workspace root).
//!
//! Malformed arguments are reported on stderr with the usage line and exit
//! the process with status 2 (never a panic/abort — CI and scripts get a
//! clean diagnostic and a nonzero status).

use hqw_core::experiments::Scale;
use std::path::PathBuf;

/// One-line usage summary, printed alongside parse errors.
pub const USAGE: &str =
    "usage: [--quick|--full] [--seed N] [--out DIR] [--threads N] [--json PATH]";

/// Parsed command-line options.
#[derive(Debug, Clone)]
pub struct Options {
    /// Experiment scale.
    pub scale: Scale,
    /// Human-readable scale name.
    pub scale_name: &'static str,
    /// RNG seed.
    pub seed: u64,
    /// CSV output directory.
    pub out_dir: PathBuf,
    /// Worker threads for parallel sweeps (0 = all available cores).
    pub threads: usize,
    /// Override path for JSON reports (`None` = binary default).
    pub json_out: Option<PathBuf>,
}

impl Options {
    /// Parses `std::env::args()`. On malformed arguments, prints the error
    /// and [`USAGE`] to stderr and exits the process with status 2.
    pub fn from_args() -> Self {
        match Self::parse(std::env::args().skip(1)) {
            Ok(options) => options,
            Err(message) => {
                eprintln!("error: {message}");
                eprintln!("{USAGE}");
                std::process::exit(2);
            }
        }
    }

    /// Parses an explicit argument list (testable core of
    /// [`Options::from_args`]).
    ///
    /// # Errors
    /// Returns a human-readable message for an unknown flag, a flag missing
    /// its value, or a value that fails to parse.
    pub fn parse(args: impl IntoIterator<Item = String>) -> Result<Self, String> {
        let mut scale = Scale::standard();
        let mut scale_name = "standard";
        let mut seed = 2026u64;
        let mut out_dir = PathBuf::from("results");
        let mut threads = 0usize;
        let mut json_out = None;
        let mut args = args.into_iter();
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--quick" => {
                    scale = Scale::quick();
                    scale_name = "quick";
                }
                "--full" => {
                    scale = Scale::full();
                    scale_name = "full";
                }
                "--seed" => {
                    let v = args.next().ok_or("--seed needs a value")?;
                    seed = v
                        .parse()
                        .map_err(|_| format!("--seed needs an unsigned integer, got '{v}'"))?;
                }
                "--out" => {
                    out_dir = PathBuf::from(args.next().ok_or("--out needs a path")?);
                }
                "--threads" => {
                    let v = args.next().ok_or("--threads needs a value")?;
                    threads = v
                        .parse()
                        .map_err(|_| format!("--threads needs an unsigned integer, got '{v}'"))?;
                }
                "--json" => {
                    json_out = Some(PathBuf::from(args.next().ok_or("--json needs a path")?));
                }
                other => return Err(format!("unknown flag '{other}'")),
            }
        }
        Ok(Options {
            scale,
            scale_name,
            seed,
            out_dir,
            threads,
            json_out,
        })
    }

    /// Path for a named CSV in the output directory.
    pub fn csv_path(&self, name: &str) -> PathBuf {
        self.out_dir.join(name)
    }

    /// Path for the binary's JSON report: the `--json` override when given,
    /// `default_name` (at the working directory) otherwise. Shared by every
    /// report-emitting fig binary so the default-path convention lives in
    /// one place.
    pub fn json_path(&self, default_name: &str) -> PathBuf {
        self.json_out
            .clone()
            .unwrap_or_else(|| PathBuf::from(default_name))
    }

    /// Prints the standard experiment header.
    pub fn banner(&self, figure: &str, what: &str) {
        println!("=== {figure}: {what}");
        println!(
            "    scale={} seed={} (see EXPERIMENTS.md for paper-vs-measured notes)",
            self.scale_name, self.seed
        );
        println!();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> impl Iterator<Item = String> + use<> {
        list.iter()
            .map(|s| s.to_string())
            .collect::<Vec<_>>()
            .into_iter()
    }

    fn parse_ok(list: &[&str]) -> Options {
        Options::parse(args(list)).expect("arguments should parse")
    }

    fn parse_err(list: &[&str]) -> String {
        Options::parse(args(list)).expect_err("arguments should be rejected")
    }

    #[test]
    fn defaults_are_standard_scale() {
        let o = parse_ok(&[]);
        assert_eq!(o.scale_name, "standard");
        assert_eq!(o.seed, 2026);
        assert_eq!(o.out_dir, PathBuf::from("results"));
    }

    #[test]
    fn quick_and_full_switch_scales() {
        assert_eq!(parse_ok(&["--quick"]).scale_name, "quick");
        assert_eq!(parse_ok(&["--full"]).scale_name, "full");
        // Later flags win.
        let o = parse_ok(&["--quick", "--full"]);
        assert_eq!(o.scale_name, "full");
    }

    #[test]
    fn seed_and_out_parse_values() {
        let o = parse_ok(&["--seed", "7", "--out", "/tmp/x"]);
        assert_eq!(o.seed, 7);
        assert_eq!(o.out_dir, PathBuf::from("/tmp/x"));
        assert_eq!(o.csv_path("a.csv"), PathBuf::from("/tmp/x/a.csv"));
    }

    #[test]
    fn threads_and_json_parse_values() {
        let o = parse_ok(&[]);
        assert_eq!(o.threads, 0);
        assert!(o.json_out.is_none());
        let o = parse_ok(&["--threads", "3", "--json", "/tmp/ber.json"]);
        assert_eq!(o.threads, 3);
        assert_eq!(o.json_out, Some(PathBuf::from("/tmp/ber.json")));
    }

    #[test]
    fn json_path_prefers_the_override() {
        let o = parse_ok(&[]);
        assert_eq!(o.json_path("BENCH_x.json"), PathBuf::from("BENCH_x.json"));
        let o = parse_ok(&["--json", "/tmp/report.json"]);
        assert_eq!(
            o.json_path("BENCH_x.json"),
            PathBuf::from("/tmp/report.json")
        );
    }

    #[test]
    fn malformed_values_are_reported_not_panicked() {
        assert!(parse_err(&["--threads", "many"]).contains("--threads"));
        assert!(parse_err(&["--threads", "many"]).contains("'many'"));
        assert!(parse_err(&["--seed", "xyz"]).contains("--seed"));
        assert!(parse_err(&["--seed", "-3"]).contains("'-3'"));
    }

    #[test]
    fn missing_values_are_reported() {
        assert_eq!(parse_err(&["--seed"]), "--seed needs a value");
        assert_eq!(parse_err(&["--out"]), "--out needs a path");
        assert_eq!(parse_err(&["--threads"]), "--threads needs a value");
        assert_eq!(parse_err(&["--json"]), "--json needs a path");
    }

    #[test]
    fn unknown_flags_are_reported() {
        assert_eq!(parse_err(&["--nope"]), "unknown flag '--nope'");
        // A valid prefix doesn't rescue a later bad flag.
        assert_eq!(parse_err(&["--quick", "--oops"]), "unknown flag '--oops'");
    }
}
