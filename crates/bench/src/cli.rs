//! Minimal shared CLI for the figure binaries.
//!
//! Flags (all optional):
//! * `--quick`       — test-scale run (seconds).
//! * `--full`        — publication-scale run (long).
//! * `--seed <n>`    — RNG seed (default 2026).
//! * `--out <dir>`   — CSV output directory (default `results/`).
//! * `--threads <n>` — worker threads for parallel sweeps (0 = all cores;
//!   results are bit-identical for any value).
//! * `--json <path>` — JSON report path, for binaries that emit one
//!   (default: the binary's `BENCH_*.json` at the workspace root).

use hqw_core::experiments::Scale;
use std::path::PathBuf;

/// Parsed command-line options.
#[derive(Debug, Clone)]
pub struct Options {
    /// Experiment scale.
    pub scale: Scale,
    /// Human-readable scale name.
    pub scale_name: &'static str,
    /// RNG seed.
    pub seed: u64,
    /// CSV output directory.
    pub out_dir: PathBuf,
    /// Worker threads for parallel sweeps (0 = all available cores).
    pub threads: usize,
    /// Override path for JSON reports (`None` = binary default).
    pub json_out: Option<PathBuf>,
}

impl Options {
    /// Parses `std::env::args()`.
    ///
    /// # Panics
    /// Panics with a usage message on malformed arguments.
    pub fn from_args() -> Self {
        Self::parse(std::env::args().skip(1))
    }

    /// Parses an explicit argument list (testable core of
    /// [`Options::from_args`]).
    ///
    /// # Panics
    /// Panics with a usage message on malformed arguments.
    pub fn parse(args: impl IntoIterator<Item = String>) -> Self {
        let mut scale = Scale::standard();
        let mut scale_name = "standard";
        let mut seed = 2026u64;
        let mut out_dir = PathBuf::from("results");
        let mut threads = 0usize;
        let mut json_out = None;
        let mut args = args.into_iter();
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--quick" => {
                    scale = Scale::quick();
                    scale_name = "quick";
                }
                "--full" => {
                    scale = Scale::full();
                    scale_name = "full";
                }
                "--seed" => {
                    let v = args.next().expect("--seed needs a value");
                    seed = v.parse().expect("--seed needs an integer");
                }
                "--out" => {
                    out_dir = PathBuf::from(args.next().expect("--out needs a path"));
                }
                "--threads" => {
                    let v = args.next().expect("--threads needs a value");
                    threads = v.parse().expect("--threads needs an integer");
                }
                "--json" => {
                    json_out = Some(PathBuf::from(args.next().expect("--json needs a path")));
                }
                other => {
                    panic!(
                        "unknown flag '{other}' \
                         (expected --quick|--full|--seed N|--out DIR|--threads N|--json PATH)"
                    )
                }
            }
        }
        Options {
            scale,
            scale_name,
            seed,
            out_dir,
            threads,
            json_out,
        }
    }

    /// Path for a named CSV in the output directory.
    pub fn csv_path(&self, name: &str) -> PathBuf {
        self.out_dir.join(name)
    }

    /// Prints the standard experiment header.
    pub fn banner(&self, figure: &str, what: &str) {
        println!("=== {figure}: {what}");
        println!(
            "    scale={} seed={} (see EXPERIMENTS.md for paper-vs-measured notes)",
            self.scale_name, self.seed
        );
        println!();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> impl Iterator<Item = String> + use<> {
        list.iter()
            .map(|s| s.to_string())
            .collect::<Vec<_>>()
            .into_iter()
    }

    #[test]
    fn defaults_are_standard_scale() {
        let o = Options::parse(args(&[]));
        assert_eq!(o.scale_name, "standard");
        assert_eq!(o.seed, 2026);
        assert_eq!(o.out_dir, PathBuf::from("results"));
    }

    #[test]
    fn quick_and_full_switch_scales() {
        assert_eq!(Options::parse(args(&["--quick"])).scale_name, "quick");
        assert_eq!(Options::parse(args(&["--full"])).scale_name, "full");
        // Later flags win.
        let o = Options::parse(args(&["--quick", "--full"]));
        assert_eq!(o.scale_name, "full");
    }

    #[test]
    fn seed_and_out_parse_values() {
        let o = Options::parse(args(&["--seed", "7", "--out", "/tmp/x"]));
        assert_eq!(o.seed, 7);
        assert_eq!(o.out_dir, PathBuf::from("/tmp/x"));
        assert_eq!(o.csv_path("a.csv"), PathBuf::from("/tmp/x/a.csv"));
    }

    #[test]
    fn threads_and_json_parse_values() {
        let o = Options::parse(args(&[]));
        assert_eq!(o.threads, 0);
        assert!(o.json_out.is_none());
        let o = Options::parse(args(&["--threads", "3", "--json", "/tmp/ber.json"]));
        assert_eq!(o.threads, 3);
        assert_eq!(o.json_out, Some(PathBuf::from("/tmp/ber.json")));
    }

    #[test]
    #[should_panic(expected = "--threads needs an integer")]
    fn bad_threads_panics() {
        Options::parse(args(&["--threads", "many"]));
    }

    #[test]
    #[should_panic(expected = "unknown flag")]
    fn unknown_flag_panics() {
        Options::parse(args(&["--nope"]));
    }

    #[test]
    #[should_panic(expected = "--seed needs an integer")]
    fn bad_seed_panics() {
        Options::parse(args(&["--seed", "xyz"]));
    }
}
