//! Runners for the three headline grid experiments (`ber`, `stream`,
//! `fabric`): the preset configurations each scale maps to, the shared
//! detector roster / backend mixes, and the execution + emission wiring.
//!
//! This module is the single home of what used to be hand-wired per binary:
//! `fig-ber`, `fig-stream` and `fig-fabric` are thin shims over
//! [`crate::registry`], which routes here, and the `hqw` runner drives the
//! same functions — so `hqw run ber --quick` and `fig-ber --quick` emit
//! byte-identical output by construction (CI pins it with `cmp`).

use crate::cli::Options;
use hqw_anneal::sampler::{EngineKind, QuantumSampler, SamplerConfig};
use hqw_anneal::DWaveProfile;
use hqw_core::fabric::{
    run_fabric_grid_observed, AnnealerConfig, ArrivalProcess, BackendMix, BackendSpec,
    FabricGridConfig, FabricMode, MockQpuConfig, NetworkModel, PtConfig, RealtimeConfig,
    SaPoolConfig, TabuConfig,
};
use hqw_core::fabric_rt::{run_fabric_rt_grid_observed, trace_doc};
use hqw_core::protocol::Protocol;
use hqw_core::scenario::{run_ber_sweep, HybridDetector, ScenarioDetector, SnrSweepConfig};
use hqw_core::sched::{ClassMix, SchedOptions, SchedPolicy};
use hqw_core::sched_grid::{run_sched_grid, SchedGridConfig};
use hqw_core::solver::{HybridConfig, HybridSolver};
use hqw_core::stages::GreedyInitializer;
use hqw_core::stream::run_stream_grid_observed;
use hqw_core::stream::{CostModel, DispatchPolicy, StreamGridConfig};
use hqw_core::telemetry::Collector;
use hqw_phy::channel::{snr_db_to_noise_variance, ChannelModel, TrackConfig};
use hqw_phy::detect::{Fcsd, KBest, Mmse, QuboDetector, SphereDecoder, ZeroForcing};
use hqw_phy::modulation::Modulation;
use hqw_qubo::pt::PtParams;
use hqw_qubo::sa::{SaParams, SweepKernel};
use hqw_qubo::tabu::TabuParams;
use std::sync::Arc;

/// Operating SNR of the streaming/fabric uplinks (dB).
const SNR_DB: f64 = 14.0;

// ---------------------------------------------------------------------------
// Presets: scale name → grid configuration
// ---------------------------------------------------------------------------

/// The `ber` preset at a given scale (`"quick"`, `"full"`, or standard).
pub fn ber_config(scale_name: &str, seed: u64, threads: usize) -> SnrSweepConfig {
    let (modulation, n_users, snr_db, realizations) = match scale_name {
        "quick" => (Modulation::Qpsk, 3, vec![0.0, 8.0, 16.0, 24.0], 4),
        "full" => (
            Modulation::Qam16,
            4,
            (0..=10).map(|i| 3.0 * i as f64).collect(),
            50,
        ),
        _ => (
            Modulation::Qpsk,
            4,
            (0..=6).map(|i| 4.0 * i as f64).collect(),
            20,
        ),
    };
    SnrSweepConfig {
        n_users,
        n_rx: n_users,
        modulation,
        channel: ChannelModel::UnitGainRandomPhase,
        snr_db,
        realizations,
        seed,
        threads,
    }
}

/// The `stream` preset at a given scale.
pub fn stream_config(scale_name: &str, seed: u64, threads: usize) -> StreamGridConfig {
    let (frames, rhos, arrival_periods_us) = match scale_name {
        "quick" => (64, vec![0.0, 0.5, 0.95], vec![400.0, 160.0, 90.0]),
        "full" => (
            1024,
            vec![0.0, 0.5, 0.9, 0.99],
            vec![400.0, 250.0, 160.0, 120.0, 90.0, 60.0],
        ),
        _ => (
            256,
            vec![0.0, 0.5, 0.9, 0.99],
            vec![400.0, 200.0, 120.0, 80.0],
        ),
    };
    let n_users = 3;
    StreamGridConfig {
        track: TrackConfig {
            n_users,
            n_rx: n_users,
            modulation: Modulation::Qpsk,
            rho: 0.0, // per-cell override
            noise_variance: snr_db_to_noise_variance(SNR_DB, n_users),
        },
        frames,
        arrival_periods_us,
        rhos,
        policies: DispatchPolicy::ALL.to_vec(),
        deadline_us: 300.0,
        cost: CostModel::default(),
        sa: SaParams {
            sweeps: 96,
            num_reads: 1,
            threads: 1,
            ..SaParams::default()
        },
        seed,
        threads,
    }
}

/// The pool compositions swept as the `fabric` backend-mix axis. The two
/// mock-QPU mixes differ only in `max_batch`, which is what the
/// batched-vs-unbatched latency invariant in `ci/check_bench.py` compares.
pub fn fabric_mixes() -> Vec<BackendMix> {
    let sa_pool = BackendSpec::SaPool(SaPoolConfig {
        workers: 2,
        max_batch: 4,
        sa: SaParams {
            sweeps: 48,
            num_reads: 2,
            threads: 1,
            ..SaParams::default()
        },
    });
    let annealer = AnnealerConfig {
        num_reads: 2,
        anneal_us: 2.0,
        sweeps_per_us: 8,
        capacity: 1,
        max_batch: 4,
        kernel: SweepKernel::Exact,
    };
    let qpu = |max_batch: usize| {
        BackendSpec::MockQpu(MockQpuConfig {
            num_reads: 4,
            anneal_us: 2.0,
            sweeps_per_us: 8,
            trotter_slices: 8,
            max_batch,
            network: NetworkModel {
                rtt_base_us: 30.0,
                jitter_us: 10.0,
            },
            programming_us: 120.0,
            embed_derive_us_per_qubit: 2.0,
            chain_strength: 2.0,
        })
    };
    vec![
        BackendMix {
            name: "sa-pool".into(),
            backends: vec![sa_pool],
        },
        BackendMix {
            name: "hetero".into(),
            backends: vec![
                sa_pool,
                BackendSpec::Pimc(annealer),
                BackendSpec::Svmc(annealer),
                qpu(4),
            ],
        },
        BackendMix {
            name: "qpu-batched".into(),
            backends: vec![qpu(8)],
        },
        BackendMix {
            name: "qpu-unbatched".into(),
            backends: vec![qpu(1)],
        },
    ]
}

/// The `fabric` preset at a given scale.
pub fn fabric_config(scale_name: &str, seed: u64, threads: usize) -> FabricGridConfig {
    let (frames_per_cell, cell_counts, arrival_periods_us) = match scale_name {
        "quick" => (24, vec![2, 4], vec![400.0, 200.0, 120.0]),
        "full" => (
            256,
            vec![1, 2, 4, 8],
            vec![600.0, 400.0, 250.0, 160.0, 100.0],
        ),
        _ => (64, vec![1, 2, 4], vec![400.0, 200.0, 120.0]),
    };
    let n_users = 2;
    FabricGridConfig {
        track: TrackConfig {
            n_users,
            n_rx: n_users,
            modulation: Modulation::Qpsk,
            rho: 0.9,
            noise_variance: snr_db_to_noise_variance(SNR_DB, n_users),
        },
        frames_per_cell,
        cell_counts,
        arrival_periods_us,
        mixes: fabric_mixes(),
        arrival: ArrivalProcess::Periodic,
        mode: FabricMode::Virtual,
        sched: SchedOptions::default(),
        deadline_us: 700.0,
        cost: CostModel::default(),
        seed,
        threads,
    }
}

/// The `fabric-rt` preset at a given scale: the wall-clock realtime twin of
/// the `fabric` sweep, trimmed to one representative mix per scale (each
/// point occupies real worker threads for its full makespan) and driven by
/// a bursty arrival process so queue contention is actually exercised.
pub fn fabric_rt_config(scale_name: &str, seed: u64) -> FabricGridConfig {
    let (frames_per_cell, cell_counts, arrival_periods_us) = match scale_name {
        "quick" => (24, vec![2, 4], vec![400.0, 160.0]),
        "full" => (128, vec![2, 4, 8, 16], vec![400.0, 250.0, 160.0, 100.0]),
        _ => (48, vec![2, 4, 8], vec![400.0, 200.0, 120.0]),
    };
    let n_users = 2;
    FabricGridConfig {
        track: TrackConfig {
            n_users,
            n_rx: n_users,
            modulation: Modulation::Qpsk,
            rho: 0.9,
            noise_variance: snr_db_to_noise_variance(SNR_DB, n_users),
        },
        frames_per_cell,
        cell_counts,
        arrival_periods_us,
        mixes: vec![fabric_mixes().remove(1)], // hetero: all four backend kinds
        arrival: ArrivalProcess::Bursty { burst: 4 },
        mode: FabricMode::Realtime(RealtimeConfig {
            producers: 2,
            queue_shards: 2,
        }),
        sched: SchedOptions::default(),
        deadline_us: 700.0,
        cost: CostModel::default(),
        seed,
        threads: 0, // ignored in realtime mode: worker counts come from the spec
    }
}

/// The pool composition of the `sched` experiment: the three jitter-free
/// classical solver pools (SA, parallel tempering, tabu). Jitter-free
/// matters: with the true cost model every admission quote is exact, so
/// the calibrated workload pins the adaptive arm byte-identical to static
/// and the comparison isolates miscalibration.
pub fn sched_mix() -> BackendMix {
    BackendMix {
        name: "classical-pool".into(),
        backends: vec![
            BackendSpec::SaPool(SaPoolConfig {
                workers: 2,
                max_batch: 4,
                sa: SaParams {
                    sweeps: 48,
                    num_reads: 2,
                    threads: 1,
                    ..SaParams::default()
                },
            }),
            BackendSpec::Pt(PtConfig {
                workers: 1,
                max_batch: 2,
                pt: PtParams {
                    replicas: 4,
                    sweeps: 24,
                    ..PtParams::default()
                },
            }),
            BackendSpec::Tabu(TabuConfig {
                workers: 1,
                max_batch: 2,
                tabu: TabuParams {
                    max_iters: 150,
                    stall_limit: 60,
                    ..TabuParams::default()
                },
            }),
        ],
    }
}

/// The `sched` preset at a given scale: the static-vs-adaptive scheduling
/// comparison. The mispredicted workload's planner model underestimates
/// sweep cost 10x (`us_per_sweep` 0.15 vs the true 1.5), which is the
/// miscalibration the adaptive arm must learn away.
pub fn sched_config(scale_name: &str, seed: u64, threads: usize) -> SchedGridConfig {
    let (frames_per_cell, cell_counts, arrival_periods_us) = match scale_name {
        "quick" => (24, vec![2], vec![240.0, 60.0]),
        "full" => (128, vec![2, 4, 8], vec![300.0, 160.0, 100.0, 70.0]),
        _ => (48, vec![2, 4], vec![300.0, 140.0, 80.0]),
    };
    let n_users = 2;
    SchedGridConfig {
        track: TrackConfig {
            n_users,
            n_rx: n_users,
            modulation: Modulation::Qpsk,
            rho: 0.9,
            noise_variance: snr_db_to_noise_variance(SNR_DB, n_users),
        },
        frames_per_cell,
        cell_counts,
        arrival_periods_us,
        mix: sched_mix(),
        policy: SchedPolicy::Ewma { shift: 1 },
        classes: ClassMix {
            urllc: 1,
            embb: 2,
            bulk: 1,
        },
        assumed_cost: CostModel {
            us_per_sweep: 0.15,
            ..CostModel::default()
        },
        deadline_us: 700.0,
        cost: CostModel::default(),
        seed,
        threads,
    }
}

/// The full `ber` detector roster: ≥ 3 families, two of them
/// QUBO/anneal-backed.
pub fn roster(seed: u64) -> Vec<ScenarioDetector> {
    let sa_params = SaParams {
        sweeps: 96,
        num_reads: 24,
        threads: 1, // the grid is the parallel level; keep reads serial
        ..Default::default()
    };
    let sampler = QuantumSampler::new(
        DWaveProfile::calibrated(),
        SamplerConfig {
            num_reads: 16,
            engine: EngineKind::Pimc { trotter_slices: 8 },
            threads: 1,
            ..Default::default()
        },
    );
    let hybrid = HybridSolver::new(
        sampler,
        HybridConfig {
            protocol: Protocol::paper_ra(0.65),
            initializer: Box::new(GreedyInitializer::default()),
        },
    );
    vec![
        ScenarioDetector::fixed(false, ZeroForcing),
        ScenarioDetector::noise_matched("MMSE", false, |nv| Arc::new(Mmse::new(nv))),
        ScenarioDetector::fixed(false, SphereDecoder::with_budget(100_000)),
        ScenarioDetector::fixed(false, KBest::new(8)),
        ScenarioDetector::fixed(false, Fcsd::new(1)),
        ScenarioDetector::fixed(true, QuboDetector::with_params(sa_params, seed)),
        ScenarioDetector::fixed(true, HybridDetector::new(hybrid, seed)),
    ]
}

// ---------------------------------------------------------------------------
// Execution + emission
// ---------------------------------------------------------------------------

/// Runs `body` with a telemetry [`Collector`] when `--telemetry` was given
/// (`None` otherwise), then writes the Chrome trace-event file at the
/// flag's path. Observation never feeds back into the run: the engines
/// compute identical results either way, telemetry only *reads* clocks.
fn with_telemetry<R>(opts: &Options, body: impl FnOnce(Option<&Collector>) -> R) -> R {
    match &opts.telemetry {
        None => body(None),
        Some(path) => {
            let collector = Collector::new();
            let result = body(Some(&collector));
            collector
                .write_chrome_trace(path)
                .expect("write telemetry trace");
            println!(
                "telemetry trace written to {} (open in a Chrome trace viewer)",
                path.display()
            );
            result
        }
    }
}

/// Runs a BER sweep over the standard roster and emits table + CSV + JSON.
pub fn run_ber(config: &SnrSweepConfig, opts: &Options) {
    opts.banner(
        "BER sweep",
        "end-to-end BER/SER-vs-SNR across every detector family",
    );
    println!(
        "{} users, {}, {} SNR points x {} realizations, threads={} (0 = all cores)",
        config.n_users,
        config.modulation.name(),
        config.snr_db.len(),
        config.realizations,
        config.threads
    );
    println!();
    let detectors = roster(config.seed);
    let report = run_ber_sweep(config, &detectors);
    opts.emit_report(&report, "fig_ber.csv", "BENCH_ber.json");
}

/// Runs a streaming grid sweep and emits table + CSV + JSON.
pub fn run_stream(config: &StreamGridConfig, opts: &Options) {
    opts.banner(
        "Stream sweep",
        "deadline-aware streaming detection over a time-correlated channel",
    );
    println!(
        "{} users QPSK at {SNR_DB} dB, {} frames/cell, deadline {} us, \
         {} policies x {} rho x {} loads, threads={} (0 = all cores)",
        config.track.n_users,
        config.frames,
        config.deadline_us,
        config.policies.len(),
        config.rhos.len(),
        config.arrival_periods_us.len(),
        config.threads
    );
    println!();
    let classical = Mmse::new(config.track.noise_variance);
    let report = with_telemetry(opts, |t| run_stream_grid_observed(config, &classical, t));
    opts.emit_report(&report, "fig_stream.csv", "BENCH_stream.json");
}

/// Runs a fabric grid sweep and emits table + CSV + JSON.
pub fn run_fabric(config: &FabricGridConfig, opts: &Options) {
    opts.banner(
        "Fabric sweep",
        "multi-cell streaming detection over a shared multi-backend solver pool",
    );
    println!(
        "{} users QPSK at {SNR_DB} dB per cell, {} frames/cell, deadline {} us, \
         {} mixes x {} cell-counts x {} loads, threads={} (0 = all cores)",
        config.track.n_users,
        config.frames_per_cell,
        config.deadline_us,
        config.mixes.len(),
        config.cell_counts.len(),
        config.arrival_periods_us.len(),
        config.threads
    );
    println!();
    let report = with_telemetry(opts, |t| run_fabric_grid_observed(config, t));
    opts.emit_report(&report, "fig_fabric.csv", "BENCH_fabric.json");
}

/// Runs the static-vs-adaptive scheduling comparison and emits table +
/// CSV + JSON.
pub fn run_sched(config: &SchedGridConfig, opts: &Options) {
    opts.banner(
        "Scheduling comparison",
        "static-vs-adaptive scheduling under calibrated and mispredicted cost models",
    );
    println!(
        "{} users QPSK at {SNR_DB} dB per cell, {} frames/cell, deadline {} us, \
         policy {}, classes urllc:embb:bulk = {}:{}:{}, \
         2 workloads x {} cell-counts x {} loads x 2 arms, threads={} (0 = all cores)",
        config.track.n_users,
        config.frames_per_cell,
        config.deadline_us,
        config.policy.name(),
        config.classes.urllc,
        config.classes.embb,
        config.classes.bulk,
        config.cell_counts.len(),
        config.arrival_periods_us.len(),
        config.threads
    );
    println!();
    let report = run_sched_grid(config);
    opts.emit_report(&report, "fig_sched.csv", "BENCH_sched.json");
}

/// Runs the wall-clock realtime fabric service and emits table + CSV +
/// JSON, plus the replay-trace document (`fabric_rt_trace.json` under
/// `--out`) that the `hqw replay` subcommand and the `realtime-replay` CI
/// job feed back through the virtual-time sim.
pub fn run_fabric_rt(config: &FabricGridConfig, opts: &Options) {
    opts.banner(
        "Realtime fabric",
        "wall-clock fabric service: concurrent producers, sharded queues, worker pools",
    );
    let FabricMode::Realtime(rt) = config.mode else {
        unreachable!("registry routes only realtime specs here");
    };
    println!(
        "{} users QPSK at {SNR_DB} dB per cell, {} frames/cell, deadline {} us, \
         {} arrivals, {} producers x {} queue shards, {} mixes x {} cell-counts x {} loads",
        config.track.n_users,
        config.frames_per_cell,
        config.deadline_us,
        config.arrival.name(),
        rt.producers,
        rt.queue_shards,
        config.mixes.len(),
        config.cell_counts.len(),
        config.arrival_periods_us.len(),
    );
    println!();
    let report = with_telemetry(opts, |t| run_fabric_rt_grid_observed(config, t));
    if let Some(summary) = &report.telemetry {
        println!("Per-stage latency breakdown (telemetry, all grid points):");
        println!("{}", summary.table().render());
    }
    opts.emit_report(&report, "fig_fabric_rt.csv", "BENCH_fabric_rt.json");
    let trace_path = opts.csv_path("fabric_rt_trace.json");
    std::fs::write(&trace_path, trace_doc(config, &report)).expect("write replay trace");
    println!("replay trace written to {}", trace_path.display());
    let divergences: usize = report.points.iter().map(|p| p.replay_divergences).sum();
    assert_eq!(
        divergences, 0,
        "realtime routing diverged from the virtual-time sim"
    );
}
