//! The canned figure/ablation experiment runners — one function per legacy
//! binary, moved here verbatim so every `src/bin/` target is a thin shim
//! over [`crate::registry`] and `hqw run <name>` drives the same code.
//!
//! These are the fixed-shape experiments ([`hqw_core::spec::CannedKind`]):
//! their whole configuration is a [`hqw_core::experiments::Scale`] plus a
//! seed, so they appear in spec JSON as `{"scale": {...}, "seed": N}`
//! rather than a full grid description.

use crate::cli::Options;
use hqw_anneal::embedding::{ChainStrength, CliqueEmbedding};
use hqw_anneal::engine::FreezeOut;
use hqw_anneal::sampler::{EngineKind, QuantumSampler, SamplerConfig};
use hqw_anneal::topology::Chimera;
use hqw_anneal::{AnnealParams, DWaveProfile};
use hqw_core::event_sim::{simulate_pipeline, uniform_stage};
use hqw_core::experiments as exp;
use hqw_core::iterative::{iterated_reverse_annealing, sample_persistence_solve};
use hqw_core::metrics::{delta_e_percent, success_probability, time_to_solution};
use hqw_core::pipeline::{run_pipelined, run_sequential};
use hqw_core::protocol::Protocol;
use hqw_core::report::{fnum, Table};
use hqw_core::solver::{HybridConfig, HybridSolver};
use hqw_core::stages::GreedyInitializer;
use hqw_math::Rng64;
use hqw_phy::instance::{DetectionInstance, InstanceConfig};
use hqw_phy::modulation::Modulation;
use hqw_qubo::greedy::{GreedyConfig, GreedyOrder, GreedyVariant};
use hqw_qubo::greedy_search;
use hqw_qubo::solution::{bits_to_spins, spins_to_bits};

/// Figure 3: the QUBO-simplification (Lewis–Glover preprocessing) sweep.
pub fn run_fig3(opts: &Options) {
    opts.banner(
        "Figure 3",
        "QUBO-simplification preprocessing across problem sizes and modulations",
    );
    let instances = opts.scale.instances.max(10) * 5; // cheap: use many instances
    let rows = exp::run_fig3(instances, opts.seed);

    let mut table = Table::new(&["modulation", "n_vars", "simplified_ratio", "avg_fixed_vars"]);
    for r in &rows {
        table.push_row(vec![
            r.modulation.name().to_string(),
            r.n_vars.to_string(),
            fnum(r.simplified_ratio, 3),
            fnum(r.avg_fixed, 2),
        ]);
    }
    println!("{}", table.render());
    println!("({} instances per point)", instances);

    let largest_simplified = rows
        .iter()
        .filter(|r| r.simplified_ratio > 0.0)
        .map(|r| r.n_vars)
        .max();
    match largest_simplified {
        Some(n) => println!(
            "Largest problem size with any simplification: {n} variables \
             (paper: no effect beyond 32–40)."
        ),
        None => println!("No instance simplified at any size."),
    }

    let path = opts.csv_path("fig3.csv");
    table.write_csv(&path).expect("write CSV");
    println!("CSV written to {}", path.display());
}

/// §3.1 / Figure 4: soft-information constraint injection under ICE noise.
pub fn run_fig4_softinfo(opts: &Options) {
    opts.banner(
        "Figure 4 / §3.1",
        "correct pair-constraints vs strength, noiseless and under ICE noise",
    );
    let rows = exp::run_fig4_softinfo(opts.scale, opts.seed);

    let mut table = Table::new(&["strength", "ice", "p_star(truth)", "optimum_preserved"]);
    for r in &rows {
        table.push_row(vec![
            fnum(r.strength, 2),
            r.ice.to_string(),
            fnum(r.p_star, 4),
            r.optimum_preserved.to_string(),
        ]);
    }
    println!("{}", table.render());

    // Fragility summary: the best noiseless strength vs its ICE performance.
    let best_clean = rows
        .iter()
        .filter(|r| !r.ice)
        .max_by(|a, b| a.p_star.partial_cmp(&b.p_star).unwrap());
    if let Some(clean) = best_clean {
        let same_under_ice = rows
            .iter()
            .find(|r| r.ice && (r.strength - clean.strength).abs() < 1e-9);
        if let Some(noisy) = same_under_ice {
            println!(
                "Best noiseless strength {}: p★ {} clean vs {} under ICE — {}",
                fnum(clean.strength, 2),
                fnum(clean.p_star, 3),
                fnum(noisy.p_star, 3),
                if noisy.p_star < clean.p_star {
                    "analog noise erodes the tuned setting (paper's finding)"
                } else {
                    "robust here"
                }
            );
        }
    }

    let path = opts.csv_path("fig4_softinfo.csv");
    table.write_csv(&path).expect("write CSV");
    println!("CSV written to {}", path.display());
}

/// Figure 5: the three anneal-schedule shapes (FA, RA, FR).
pub fn run_fig5_schedules(opts: &Options) {
    opts.banner(
        "Figure 5",
        "FA / RA / FR anneal schedule shapes (s_p = 0.41, c_p = 0.65)",
    );

    let protocols = [
        Protocol::paper_fa(0.41),
        Protocol::paper_ra(0.41),
        Protocol::paper_fr(0.65, 0.41),
    ];

    let mut table = Table::new(&["protocol", "waypoints [t µs, s]", "duration µs"]);
    for p in &protocols {
        let schedule = p.schedule().expect("valid paper parameters");
        let pts = schedule
            .points()
            .iter()
            .map(|(t, s)| format!("[{},{}]", fnum(*t, 2), fnum(*s, 2)))
            .collect::<Vec<_>>()
            .join(" → ");
        table.push_row(vec![
            p.name().to_string(),
            pts,
            fnum(schedule.duration_us(), 2),
        ]);
    }
    println!("{}", table.render());

    // ASCII rendering: 10 rows of s from 1.0 down to 0.0.
    for p in &protocols {
        let schedule = p.schedule().expect("valid");
        let duration = schedule.duration_us();
        println!("{} (s vs t):", p.name());
        for level in (0..=10).rev() {
            let s_level = level as f64 / 10.0;
            let mut line = String::new();
            for col in 0..60 {
                let t = duration * col as f64 / 59.0;
                let s = schedule.s_at(t);
                line.push(if (s - s_level).abs() < 0.05 { '*' } else { ' ' });
            }
            println!("  {:>4} |{line}", fnum(s_level, 1));
        }
        println!("        0 µs{:>52}", format!("{} µs", fnum(duration, 2)));
        println!();
    }

    let path = opts.csv_path("fig5_schedules.csv");
    table.write_csv(&path).expect("write CSV");
    println!("CSV written to {}", path.display());
}

/// Figure 6: ΔE% sample distributions for FA, RA-random and RA-GS.
pub fn run_fig6(opts: &Options) {
    opts.banner(
        "Figure 6",
        "ΔE% distribution of anneal samples, 36-variable problems, per modulation",
    );
    let rows = exp::run_fig6(opts.scale, opts.seed);

    let mut table = Table::new(&[
        "modulation",
        "arm",
        "s_p",
        "P10",
        "P25",
        "P50",
        "P75",
        "P90",
        "mean_dE%",
        "ground_frac",
    ]);
    let pick = |r: &exp::Fig6Row, p: f64| -> f64 {
        r.percentiles
            .iter()
            .find(|(pp, _)| (*pp - p).abs() < 1e-9)
            .map(|(_, v)| *v)
            .unwrap_or(f64::NAN)
    };
    for r in &rows {
        table.push_row(vec![
            r.modulation.name().to_string(),
            r.arm.to_string(),
            fnum(r.s_p, 2),
            fnum(pick(r, 10.0), 2),
            fnum(pick(r, 25.0), 2),
            fnum(pick(r, 50.0), 2),
            fnum(pick(r, 75.0), 2),
            fnum(pick(r, 90.0), 2),
            fnum(r.mean_delta_e, 2),
            fnum(r.ground_fraction, 4),
        ]);
    }
    println!("{}", table.render());

    // The paper's qualitative ordering, checked per modulation.
    for m in Modulation::ALL {
        let get = |arm: &str| {
            rows.iter()
                .find(|r| r.modulation == m && r.arm == arm)
                .map(|r| r.mean_delta_e)
        };
        if let (Some(fa), Some(ra_rand), Some(ra_gs)) = (get("FA"), get("RA-random"), get("RA-GS"))
        {
            let ordering_holds = ra_gs <= fa && fa <= ra_rand + 1e-9;
            println!(
                "{}: mean ΔE%  RA-GS {} ≤ FA {} ≤ RA-random {}  → paper ordering {}",
                m.name(),
                fnum(ra_gs, 2),
                fnum(fa, 2),
                fnum(ra_rand, 2),
                if ordering_holds { "HOLDS" } else { "differs" }
            );
        }
    }

    let path = opts.csv_path("fig6.csv");
    table.write_csv(&path).expect("write CSV");
    println!("CSV written to {}", path.display());
}

/// Figure 7: RA success probability and expected cost vs ΔE_IS%.
pub fn run_fig7(opts: &Options) {
    opts.banner(
        "Figure 7",
        "RA success probability & E[cost] vs initial-state quality ΔE_IS% (8-user 16-QAM)",
    );
    let (s_p, rows) = exp::run_fig7(opts.scale, opts.seed);
    println!("RA switch/pause location s_p = {}", fnum(s_p, 2));
    println!();

    let mut table = Table::new(&["dEis_bin_center_%", "n_states", "p_star", "E[cost]_dE%"]);
    for r in &rows {
        table.push_row(vec![
            fnum(r.bin_center, 1),
            r.n_states.to_string(),
            fnum(r.p_star, 4),
            fnum(r.mean_cost_delta_e, 2),
        ]);
    }
    println!("{}", table.render());

    // Trend check: success probability should broadly decrease with ΔE_IS%.
    if rows.len() >= 3 {
        let first = rows.first().unwrap();
        let last = rows.last().unwrap();
        println!(
            "Trend: p★ {} at ΔE_IS={}% vs {} at ΔE_IS={}% → {}",
            fnum(first.p_star, 3),
            fnum(first.bin_center, 1),
            fnum(last.p_star, 3),
            fnum(last.bin_center, 1),
            if first.p_star >= last.p_star {
                "decreasing (matches paper)"
            } else {
                "NOT decreasing"
            }
        );
    }

    let path = opts.csv_path("fig7.csv");
    table.write_csv(&path).expect("write CSV");
    println!("CSV written to {}", path.display());
}

/// Figure 8: p★ and TTS(99%) vs `s_p` for FA / RA / FR (oracle `c_p`).
pub fn run_fig8(opts: &Options) {
    opts.banner(
        "Figure 8",
        "p★ and TTS(99%) vs s_p for FA / RA(initial states) / FR(oracle c_p)",
    );
    let series = exp::run_fig8(opts.scale, opts.seed);

    let mut table = Table::new(&["series", "s_p", "p_star", "duration_us", "TTS99_us"]);
    for s in &series {
        for p in &s.points {
            table.push_row(vec![
                s.label.clone(),
                fnum(p.param, 2),
                fnum(p.p_star, 4),
                fnum(p.duration_us, 2),
                fnum(p.tts_us, 1),
            ]);
        }
    }
    println!("{}", table.render());

    // Headline shape summary per series.
    println!("Per-series best points:");
    for s in &series {
        let best = s
            .points
            .iter()
            .max_by(|a, b| a.p_star.partial_cmp(&b.p_star).unwrap());
        let band: Vec<f64> = s
            .points
            .iter()
            .filter(|p| p.p_star > 0.0)
            .map(|p| p.param)
            .collect();
        match best {
            Some(b) if b.p_star > 0.0 => println!(
                "  {:<16} best p★={} at s_p={}, TTS={} µs, success band s_p ∈ [{}, {}] ({} pts)",
                s.label,
                fnum(b.p_star, 3),
                fnum(b.param, 2),
                fnum(b.tts_us, 1),
                fnum(band.iter().cloned().fold(f64::INFINITY, f64::min), 2),
                fnum(band.iter().cloned().fold(f64::NEG_INFINITY, f64::max), 2),
                band.len(),
            ),
            _ => println!("  {:<16} never found the ground state", s.label),
        }
    }

    let path = opts.csv_path("fig8.csv");
    table.write_csv(&path).expect("write CSV");
    println!("CSV written to {}", path.display());
}

/// The headline claim: best-parameter RA+GS vs best-parameter FA.
pub fn run_headline(opts: &Options) {
    opts.banner(
        "Headline",
        "best-parameter RA+GS vs best-parameter FA over 8-user 16-QAM instances",
    );
    let rows = exp::run_headline(opts.scale, opts.seed);

    let mut table = Table::new(&[
        "instance",
        "GS_dEis%",
        "FA_best_p*",
        "FA_TTS_us",
        "RA_best_p*",
        "RA_TTS_us",
        "p*_ratio",
    ]);
    let mut ratios = Vec::new();
    let mut ra_only = 0usize;
    let mut fa_only = 0usize;
    let mut neither = 0usize;
    for r in &rows {
        let (fa_p, fa_tts) = r
            .fa_best
            .map(|p| (p.p_star, p.tts_us))
            .unwrap_or((0.0, f64::INFINITY));
        let (ra_p, ra_tts) = r
            .ra_best
            .map(|p| (p.p_star, p.tts_us))
            .unwrap_or((0.0, f64::INFINITY));
        let ratio = r.p_ratio();
        if let Some(x) = ratio {
            ratios.push(x);
        } else if ra_p > 0.0 {
            ra_only += 1;
        } else if fa_p > 0.0 {
            fa_only += 1;
        } else {
            neither += 1;
        }
        table.push_row(vec![
            r.instance.to_string(),
            fnum(r.gs_delta_e_is, 2),
            fnum(fa_p, 4),
            fnum(fa_tts, 1),
            fnum(ra_p, 4),
            fnum(ra_tts, 1),
            ratio.map(|x| fnum(x, 1)).unwrap_or_else(|| {
                if ra_p > 0.0 {
                    "RA-only".into()
                } else if fa_p > 0.0 {
                    "FA-only".into()
                } else {
                    "-".into()
                }
            }),
        ]);
    }
    println!("{}", table.render());

    if !ratios.is_empty() {
        ratios.sort_by(|a, b| a.partial_cmp(b).unwrap());
        println!(
            "p★ ratio RA/FA over {} comparable instances: min {} / median {} / max {}",
            ratios.len(),
            fnum(ratios[0], 1),
            fnum(ratios[ratios.len() / 2], 1),
            fnum(*ratios.last().unwrap(), 1),
        );
    }
    println!(
        "RA succeeded where FA failed on {ra_only} instance(s); FA-only: {fa_only}; neither: {neither}."
    );
    println!("(Paper: ~2–10× better success probability than published FA results.)");

    let path = opts.csv_path("headline.csv");
    table.write_csv(&path).expect("write CSV");
    println!("CSV written to {}", path.display());
}

/// Ablation: Chimera minor-embedding overhead vs direct sampling.
pub fn run_ablation_embedding(opts: &Options) {
    opts.banner(
        "Ablation",
        "Chimera clique-embedding overhead vs direct sampling (3-user 16-QAM, C_3)",
    );

    let mut rng = Rng64::new(opts.seed);
    let inst = DetectionInstance::generate(&InstanceConfig::paper(3, Modulation::Qam16), &mut rng);
    let eg = inst.ground_energy();
    let (logical, _off) = inst.reduction.qubo.to_ising();
    let n = logical.num_vars(); // 12

    let graph = Chimera::new(3); // K12 fits on C3
    let embedding = CliqueEmbedding::new(graph, n);
    println!(
        "Logical vars: {n}; physical qubits used: {} (chains of {}); hardware size: {}",
        embedding.qubits_used(),
        embedding.chain(0).len(),
        graph.num_qubits()
    );

    let schedule = Protocol::paper_fa(0.45).schedule().unwrap();
    let sampler = QuantumSampler::new(
        DWaveProfile::calibrated(),
        SamplerConfig {
            num_reads: opts.scale.reads,
            engine: EngineKind::Pimc { trotter_slices: 8 },
            auto_scale: true,
            ..Default::default()
        },
    );

    // Direct (logical) sampling.
    let direct = sampler.sample_ising(&logical, &schedule, None, opts.seed);
    let direct_p = direct
        .samples
        .iter()
        .filter(|s| inst.reduction.qubo.energy(&s.bits) <= eg + 1e-6)
        .map(|s| s.occurrences)
        .sum::<u64>() as f64
        / direct.samples.total_reads() as f64;

    let mut table = Table::new(&["path", "chain_strength", "p_star", "chain_break_frac"]);
    table.push_row(vec![
        "direct (logical)".into(),
        "-".into(),
        fnum(direct_p, 4),
        "0.000".into(),
    ]);

    // Embedded sampling at several chain strengths.
    for &factor in &[0.5, 1.0, 2.0, 4.0] {
        let physical = embedding.embed(&logical, ChainStrength::RelativeToMax(factor));
        let run = sampler.sample_ising(&physical, &schedule, None, opts.seed ^ 9);
        let mut hits = 0u64;
        let mut total = 0u64;
        let mut breaks = 0u64;
        let mut chains_seen = 0u64;
        for s in run.samples.iter() {
            let spins = bits_to_spins(&s.bits);
            let (logical_spins, broken) = embedding.unembed(&spins);
            let bits = spins_to_bits(&logical_spins);
            let e = inst.reduction.qubo.energy(&bits);
            total += s.occurrences;
            breaks += broken as u64 * s.occurrences;
            chains_seen += n as u64 * s.occurrences;
            if e <= eg + 1e-6 {
                hits += s.occurrences;
            }
        }
        table.push_row(vec![
            "embedded (Chimera C3)".into(),
            format!("{}×max", fnum(factor, 1)),
            fnum(hits as f64 / total as f64, 4),
            fnum(breaks as f64 / chains_seen as f64, 4),
        ]);
    }
    println!("{}", table.render());
    println!(
        "Expected: weak chains break and destroy solutions; strong chains crowd out the problem \
         energy scale; embedded p★ < direct p★ at every setting (the compilation overhead the \
         paper inherits from QuAMax)."
    );

    let path = opts.csv_path("ablation_embedding.csv");
    table.write_csv(&path).expect("write CSV");
    println!("CSV written to {}", path.display());
}

/// Ablation: simulation-engine and move-set choices behind DESIGN.md.
pub fn run_ablation_engine(opts: &Options) {
    opts.banner(
        "Ablation",
        "engine / Trotter slices / cluster moves / freeze-out, 8-user 16-QAM",
    );

    let mut rng = Rng64::new(opts.seed);
    let inst = DetectionInstance::generate(&InstanceConfig::paper(8, Modulation::Qam16), &mut rng);
    let eg = inst.ground_energy();
    let qubo = &inst.reduction.qubo;
    let (gs_bits, _) = greedy_search(qubo, Default::default());

    let arms: Vec<(&str, EngineKind, Option<FreezeOut>)> = vec![
        (
            "PIMC P=16 (default)",
            EngineKind::Pimc { trotter_slices: 16 },
            Some(FreezeOut::default()),
        ),
        (
            "PIMC P=8",
            EngineKind::Pimc { trotter_slices: 8 },
            Some(FreezeOut::default()),
        ),
        (
            "PIMC P=32",
            EngineKind::Pimc { trotter_slices: 32 },
            Some(FreezeOut::default()),
        ),
        (
            "PIMC no freeze-out",
            EngineKind::Pimc { trotter_slices: 16 },
            None,
        ),
        ("SVMC", EngineKind::Svmc, Some(FreezeOut::default())),
    ];

    let mut table = Table::new(&[
        "configuration",
        "FA p*",
        "FA mean dE%",
        "RA-GS p*",
        "RA-GS mean dE%",
    ]);
    for (label, engine, freeze) in arms {
        let sampler = QuantumSampler::new(
            DWaveProfile::calibrated(),
            SamplerConfig {
                num_reads: opts.scale.reads,
                engine,
                params: AnnealParams {
                    freeze_out: freeze,
                    ..Default::default()
                },
                ..Default::default()
            },
        );
        let fa = sampler.sample_qubo(
            qubo,
            &Protocol::paper_fa(0.45).schedule().unwrap(),
            None,
            opts.seed,
        );
        let ra = sampler.sample_qubo(
            qubo,
            &Protocol::paper_ra(0.69).schedule().unwrap(),
            Some(&gs_bits),
            opts.seed,
        );
        table.push_row(vec![
            label.to_string(),
            fnum(success_probability(&fa.samples, eg), 4),
            fnum(delta_e_percent(fa.samples.mean_energy(), eg), 2),
            fnum(success_probability(&ra.samples, eg), 4),
            fnum(delta_e_percent(ra.samples.mean_energy(), eg), 2),
        ]);
    }
    println!("{}", table.render());
    println!(
        "Expected: without freeze-out the simulator turns SA-like (FA improves, RA memory washes \
         out); slice count shifts quantum-fluctuation strength mildly; SVMC is the semi-classical \
         reference."
    );

    let path = opts.csv_path("ablation_engine.csv");
    table.write_csv(&path).expect("write CSV");
    println!("CSV written to {}", path.display());
}

/// Ablation: Greedy Search variants (§4.1 prose ambiguity).
pub fn run_ablation_greedy(opts: &Options) {
    opts.banner(
        "Ablation",
        "Greedy Search order/variant on 8-user 16-QAM seed quality",
    );
    let instances = opts.scale.instances.max(20) * 3;
    let mut rng = Rng64::new(opts.seed);
    let config = InstanceConfig::paper(8, Modulation::Qam16);

    let arms = [
        (
            "descending/dynamic (default)",
            GreedyOrder::Descending,
            GreedyVariant::Dynamic,
        ),
        (
            "descending/static",
            GreedyOrder::Descending,
            GreedyVariant::StaticOrder,
        ),
        (
            "ascending/dynamic",
            GreedyOrder::Ascending,
            GreedyVariant::Dynamic,
        ),
        (
            "ascending/static (paper prose)",
            GreedyOrder::Ascending,
            GreedyVariant::StaticOrder,
        ),
    ];

    let mut sums = vec![(0.0f64, 0usize); arms.len()]; // (ΔE_IS sum, exact hits)
    for _ in 0..instances {
        let inst = DetectionInstance::generate(&config, &mut rng);
        let eg = inst.ground_energy();
        for (k, (_, order, variant)) in arms.iter().enumerate() {
            let (_, e) = greedy_search(
                &inst.reduction.qubo,
                GreedyConfig {
                    order: *order,
                    variant: *variant,
                },
            );
            let de = delta_e_percent(e, eg);
            sums[k].0 += de;
            if de <= 1e-9 {
                sums[k].1 += 1;
            }
        }
    }

    let mut table = Table::new(&["variant", "mean_dEis%", "exact_rate"]);
    for (k, (label, _, _)) in arms.iter().enumerate() {
        table.push_row(vec![
            label.to_string(),
            fnum(sums[k].0 / instances as f64, 2),
            fnum(sums[k].1 as f64 / instances as f64, 3),
        ]);
    }
    println!("{}", table.render());
    println!("({} instances; lower ΔE_IS% = better RA seeds)", instances);

    let path = opts.csv_path("ablation_greedy.csv");
    table.write_csv(&path).expect("write CSV");
    println!("CSV written to {}", path.display());
}

/// Ablation: the anneal pause (`t_p`) — the paper's footnote 3.
pub fn run_ablation_pause(opts: &Options) {
    opts.banner(
        "Ablation",
        "pause duration t_p for FA (s_p=0.45) and RA-GS (s_p=0.69), 8-user 16-QAM",
    );

    let mut rng = Rng64::new(opts.seed);
    let inst = DetectionInstance::generate(&InstanceConfig::paper(8, Modulation::Qam16), &mut rng);
    let eg = inst.ground_energy();
    let qubo = &inst.reduction.qubo;
    let (gs_bits, _) = greedy_search(qubo, Default::default());
    let sampler = exp::paper_sampler(opts.scale.reads);

    // Arms chosen where the pause has leverage: FA pausing near the device's
    // A=B crossing, RA from the exact ground state at the *edge* of its
    // success band (s_p = 0.61), where retention is most pause-sensitive,
    // and RA from the GS seed for reference.
    let mut table = Table::new(&["protocol", "t_p_us", "duration_us", "p_star", "TTS99_us"]);
    for &t_p in &[0.0, 0.5, 1.0, 2.0, 4.0] {
        for (label, protocol, init) in [
            (
                "FA",
                Protocol::Forward {
                    t_a: 1.45,
                    pause: if t_p > 0.0 { Some((0.45, t_p)) } else { None },
                },
                None,
            ),
            (
                "RA-ground@0.61",
                Protocol::Reverse { s_p: 0.61, t_p },
                Some(inst.tx_natural_bits.as_slice()),
            ),
            (
                "RA-GS@0.69",
                Protocol::Reverse { s_p: 0.69, t_p },
                Some(gs_bits.as_slice()),
            ),
        ] {
            let schedule = protocol.schedule().expect("valid");
            let run = sampler.sample_qubo(qubo, &schedule, init, opts.seed ^ t_p.to_bits());
            let p = success_probability(&run.samples, eg);
            table.push_row(vec![
                label.to_string(),
                fnum(t_p, 1),
                fnum(schedule.duration_us(), 2),
                fnum(p, 4),
                fnum(time_to_solution(schedule.duration_us(), p, 99.0), 1),
            ]);
        }
    }
    println!("{}", table.render());
    println!(
        "Two regimes: when the seed needs repair (imperfect seeds, or FA mid-anneal), pause time \
         buys thermalization and p★ grows; when the seed is already the ground state, the pause \
         only melts it — p★ falls monotonically with t_p and TTS is best with no pause at all. \
         The paper's fixed t_p = 1 µs is a compromise across seed qualities."
    );

    let path = opts.csv_path("ablation_pause.csv");
    table.write_csv(&path).expect("write CSV");
    println!("CSV written to {}", path.display());
}

/// §5 extension: application-specific classical initializers for RA.
pub fn run_ext_initializers(opts: &Options) {
    opts.banner(
        "§5 extension",
        "classical initializers feeding RA on noisy 5-user 16-QAM (exhaustive ground truth)",
    );
    let rows = exp::run_ext_initializers(opts.scale, opts.seed);

    let mut table = Table::new(&[
        "initializer",
        "mean_dEis%",
        "classical_us",
        "hybrid_p*",
        "mean_TTS_us",
    ]);
    for r in &rows {
        table.push_row(vec![
            r.name.to_string(),
            fnum(r.mean_delta_e_is, 2),
            fnum(r.mean_latency_us, 2),
            fnum(r.p_star, 4),
            fnum(r.mean_tts_us, 1),
        ]);
    }
    println!("{}", table.render());

    let get = |name: &str| rows.iter().find(|r| r.name == name);
    if let (Some(gs), Some(zf)) = (get("GS"), get("ZF")) {
        println!(
            "ZF vs GS seed quality: {} vs {} ΔE_IS% (paper predicts ZF better, at higher latency: {} vs {} µs)",
            fnum(zf.mean_delta_e_is, 2),
            fnum(gs.mean_delta_e_is, 2),
            fnum(zf.mean_latency_us, 2),
            fnum(gs.mean_latency_us, 2),
        );
    }

    let path = opts.csv_path("ext_initializers.csv");
    table.write_csv(&path).expect("write CSV");
    println!("CSV written to {}", path.display());
}

/// §2 extension: richer hybrid computation structures.
pub fn run_ext_iterative(opts: &Options) {
    opts.banner(
        "§2 extension",
        "one-shot GS→RA vs iterated RA vs sample-persistence prefixing (8-user 16-QAM)",
    );

    let rounds = 4;
    let s_p = 0.69;
    let instances = opts.scale.instances.max(4);
    // Matched budget: the one-shot arm gets rounds× the reads of each
    // iterated round.
    let one_shot_sampler = exp::paper_sampler(opts.scale.reads * rounds);
    let round_sampler = exp::paper_sampler(opts.scale.reads);

    let mut sums = [0.0f64; 4]; // seed, one-shot, iterated, persistence (ΔE%)
    let mut exact = [0usize; 4];
    let mut rng = Rng64::new(opts.seed);
    for k in 0..instances {
        let inst =
            DetectionInstance::generate(&InstanceConfig::paper(8, Modulation::Qam16), &mut rng);
        let eg = inst.ground_energy();
        let qubo = &inst.reduction.qubo;
        let (gs_bits, gs_e) = greedy_search(qubo, Default::default());

        let one_shot = one_shot_sampler.sample_qubo(
            qubo,
            &Protocol::paper_ra(s_p).schedule().unwrap(),
            Some(&gs_bits),
            opts.seed + k as u64,
        );
        let one_shot_e = one_shot.samples.best_energy().min(gs_e);

        let iterated = iterated_reverse_annealing(
            &round_sampler,
            qubo,
            s_p,
            &gs_bits,
            rounds,
            opts.seed + 100 + k as u64,
        );
        let persistence = sample_persistence_solve(
            &round_sampler,
            qubo,
            s_p,
            &gs_bits,
            0.2,
            rounds,
            opts.seed + 200 + k as u64,
        );

        for (slot, e) in [
            (0, gs_e),
            (1, one_shot_e),
            (2, iterated.best_energy),
            (3, persistence.best_energy),
        ] {
            let de = delta_e_percent(e, eg);
            sums[slot] += de;
            if de <= 1e-9 {
                exact[slot] += 1;
            }
        }
    }

    let mut table = Table::new(&["structure", "mean_dE%", "exact_rate"]);
    for (k, label) in [
        "GS seed (no quantum)",
        "one-shot GS→RA (paper prototype)",
        "iterated RA (best-state feedback)",
        "sample-persistence prefixing",
    ]
    .iter()
    .enumerate()
    {
        table.push_row(vec![
            label.to_string(),
            fnum(sums[k] / instances as f64, 3),
            fnum(exact[k] as f64 / instances as f64, 2),
        ]);
    }
    println!("{}", table.render());
    println!(
        "All quantum arms share the same total anneal budget ({} reads). The iterated arms can \
         only help over one-shot when intermediate states open new basins — the §2 argument for \
         closed-loop hybrid designs.",
        opts.scale.reads * rounds
    );

    let path = opts.csv_path("ext_iterative.csv");
    table.write_csv(&path).expect("write CSV");
    println!("CSV written to {}", path.display());
}

/// Figure 2 / Challenge 3: the pipelined computation structure.
pub fn run_pipeline_study(opts: &Options) {
    opts.banner(
        "Figure 2",
        "pipelined classical-quantum processing of successive channel uses",
    );

    // --- Study 1: discrete-event latency/throughput analysis -------------
    let n_uses = 64;
    let n_vars = 32.0; // 8-user 16-QAM
    let classical_us = n_vars * n_vars / 1000.0; // GS latency model
    let ra = Protocol::paper_ra(0.69);
    let per_read_us = ra.duration_us() + 123.0 + 21.0; // anneal + readout + delay
    let deadline_us = 3000.0; // LTE-class turnaround budget

    let mut table = Table::new(&[
        "reads/use",
        "quantum_us",
        "arrival_us",
        "p50_latency_us",
        "p99_latency_us",
        "throughput/ms",
        "deadline_viol",
        "max_queue",
    ]);
    for &reads in &[1usize, 4, 16, 64] {
        let quantum_us = reads as f64 * per_read_us;
        // Arrivals at 110% of the bottleneck service rate: sustainable load.
        let arrival_us = quantum_us.max(classical_us) * 1.1;
        let stages = [
            uniform_stage("classical", classical_us, n_uses),
            uniform_stage("quantum", quantum_us, n_uses),
        ];
        let report = simulate_pipeline(arrival_us, &stages, deadline_us);
        let mut lat = report.latency_us.clone();
        lat.sort_by(|a, b| a.partial_cmp(b).unwrap());
        table.push_row(vec![
            reads.to_string(),
            fnum(quantum_us, 1),
            fnum(arrival_us, 1),
            fnum(lat[lat.len() / 2], 1),
            fnum(lat[lat.len() * 99 / 100], 1),
            fnum(report.throughput_per_ms, 3),
            report.deadline_violations.to_string(),
            report.max_queue_depth.iter().max().unwrap().to_string(),
        ]);
    }
    println!("{}", table.render());
    println!(
        "(classical stage {} µs/use; RA read {} µs incl. readout; deadline {} µs)",
        fnum(classical_us, 2),
        fnum(per_read_us, 1),
        fnum(deadline_us, 0)
    );
    println!();

    // --- Study 2: real threaded pipeline ---------------------------------
    let batch = {
        let mut rng = Rng64::new(opts.seed);
        DetectionInstance::generate_batch(
            &InstanceConfig::paper(4, Modulation::Qam16),
            opts.scale.instances.max(6),
            &mut rng,
        )
    };
    let solver = HybridSolver::new(
        exp::paper_sampler(opts.scale.reads),
        HybridConfig {
            protocol: ra,
            initializer: Box::new(GreedyInitializer::default()),
        },
    );

    let t0 = std::time::Instant::now();
    let seq = run_sequential(&solver, &batch, opts.seed);
    let sequential_wall = t0.elapsed();
    let t1 = std::time::Instant::now();
    let pip = run_pipelined(&solver, &batch, opts.seed, 4);
    let pipelined_wall = t1.elapsed();

    let identical = seq
        .iter()
        .zip(&pip)
        .all(|(a, b)| a.best_bits == b.best_bits && a.best_energy == b.best_energy);
    println!(
        "Threaded pipeline over {} channel uses: sequential {:?}, pipelined {:?} — outputs {}",
        batch.len(),
        sequential_wall,
        pipelined_wall,
        if identical {
            "bit-identical"
        } else {
            "DIFFER (bug!)"
        }
    );

    let path = opts.csv_path("pipeline_study.csv");
    table.write_csv(&path).expect("write CSV");
    println!("CSV written to {}", path.display());
}
