//! The experiment registry: every runnable experiment by name, with spec
//! presets at `--quick` / `--full` / standard scale.
//!
//! One table replaces seventeen hand-wired binaries. The `hqw` runner
//! resolves `hqw run <name>` through [`spec`], `hqw list` renders
//! [`all`] (and [`manifest_json`] for CI iteration), and each legacy
//! `src/bin/` target is a one-line shim over [`run_registered`] — so every
//! path into an experiment goes through the same
//! [`ExperimentSpec`]-driven wiring and emits byte-identical output.

use crate::cli::{GivenFlags, Options};
use crate::{legacy, runs};
use hqw_core::spec::{CannedKind, CannedSpec, ExperimentSpec, SPEC_VERSION};

/// One registry row: a runnable experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RegistryEntry {
    /// Registry key (`hqw run <name>`; also the spec `experiment` tag).
    pub name: &'static str,
    /// One-line description shown by `hqw list`.
    pub description: &'static str,
}

/// Every registered experiment, in listing order: the three grid
/// experiments first, then the canned figures in [`CannedKind::ALL`] order.
pub const ALL: [RegistryEntry; 19] = [
    RegistryEntry {
        name: "ber",
        description: "end-to-end BER/SER-vs-SNR across every detector family",
    },
    RegistryEntry {
        name: "stream",
        description: "deadline-aware streaming detection over a time-correlated channel",
    },
    RegistryEntry {
        name: "fabric",
        description: "multi-cell streaming detection over a shared multi-backend solver pool",
    },
    RegistryEntry {
        name: "fabric-rt",
        description: "wall-clock realtime fabric service with sim-replayable routing",
    },
    RegistryEntry {
        name: "sched",
        description: "static-vs-adaptive scheduling under calibrated and mispredicted cost models",
    },
    RegistryEntry {
        name: "fig3",
        description: "QUBO-simplification preprocessing across problem sizes and modulations",
    },
    RegistryEntry {
        name: "fig4-softinfo",
        description: "correct pair-constraints vs strength, noiseless and under ICE noise",
    },
    RegistryEntry {
        name: "fig5-schedules",
        description: "FA / RA / FR anneal schedule shapes",
    },
    RegistryEntry {
        name: "fig6",
        description: "dE% distribution of anneal samples, 36-variable problems, per modulation",
    },
    RegistryEntry {
        name: "fig7",
        description: "RA success probability & E[cost] vs initial-state quality dE_IS%",
    },
    RegistryEntry {
        name: "fig8",
        description: "p* and TTS(99%) vs s_p for FA / RA(initial states) / FR(oracle c_p)",
    },
    RegistryEntry {
        name: "headline",
        description: "best-parameter RA+GS vs best-parameter FA over 8-user 16-QAM instances",
    },
    RegistryEntry {
        name: "ablation-embedding",
        description: "Chimera clique-embedding overhead vs direct sampling",
    },
    RegistryEntry {
        name: "ablation-engine",
        description: "engine / Trotter slices / freeze-out ablation, 8-user 16-QAM",
    },
    RegistryEntry {
        name: "ablation-greedy",
        description: "Greedy Search order/variant seed quality",
    },
    RegistryEntry {
        name: "ablation-pause",
        description: "anneal pause duration for FA and RA-GS",
    },
    RegistryEntry {
        name: "ext-initializers",
        description: "classical initializers feeding RA on noisy 5-user 16-QAM",
    },
    RegistryEntry {
        name: "ext-iterative",
        description: "one-shot GS->RA vs iterated RA vs sample-persistence prefixing",
    },
    RegistryEntry {
        name: "pipeline-study",
        description: "pipelined classical-quantum processing of successive channel uses",
    },
];

/// Every registered experiment.
pub fn all() -> &'static [RegistryEntry] {
    &ALL
}

/// Looks a registry row up by name.
pub fn find(name: &str) -> Option<&'static RegistryEntry> {
    ALL.iter().find(|e| e.name == name)
}

/// Builds the spec preset for a registered experiment at the CLI-selected
/// scale/seed (`None` for unknown names).
///
/// For the grid experiments this is the full declarative configuration the
/// legacy `fig-*` binary would have hand-wired; for canned figures it is
/// the scale + seed pair. Presets are built with `threads: 0` (all cores):
/// the `--threads` flag is applied by [`resolve_target`], the one place
/// that decides the effective thread count for every path into a run.
pub fn spec(name: &str, opts: &Options) -> Option<ExperimentSpec> {
    Some(match name {
        "ber" => ExperimentSpec::Ber(runs::ber_config(opts.scale_name, opts.seed, 0)),
        "stream" => ExperimentSpec::Stream(runs::stream_config(opts.scale_name, opts.seed, 0)),
        "fabric" => ExperimentSpec::Fabric(runs::fabric_config(opts.scale_name, opts.seed, 0)),
        "fabric-rt" => ExperimentSpec::Fabric(runs::fabric_rt_config(opts.scale_name, opts.seed)),
        "sched" => ExperimentSpec::Sched(runs::sched_config(opts.scale_name, opts.seed, 0)),
        other => {
            find(other)?;
            ExperimentSpec::Canned(CannedSpec {
                experiment: CannedKind::from_name(other)?,
                scale: opts.scale,
                seed: opts.seed,
            })
        }
    })
}

/// Executes a spec: runs the experiment and emits its table/CSV/JSON
/// through the shared [`Options`] conventions.
///
/// The spec's own seed (and, for canned experiments, its scale) is copied
/// into the [`Options`] first, so the stdout banner — the reproducibility
/// record — always reports what actually ran, even when a spec file's
/// values differ from the CLI flags.
pub fn run_spec(spec: &ExperimentSpec, opts: &Options) {
    let mut opts = opts.clone();
    opts.seed = spec.seed();
    match spec {
        ExperimentSpec::Ber(config) => runs::run_ber(config, &opts),
        ExperimentSpec::Stream(config) => runs::run_stream(config, &opts),
        ExperimentSpec::Fabric(config) => {
            if spec.is_realtime() {
                runs::run_fabric_rt(config, &opts);
            } else {
                runs::run_fabric(config, &opts);
            }
        }
        ExperimentSpec::Sched(config) => runs::run_sched(config, &opts),
        ExperimentSpec::Canned(canned) => run_canned(canned, &opts),
    }
}

/// Dispatches a canned spec to its legacy runner. The spec's scale
/// overrides whatever the CLI flags said (they are equal when the spec
/// came from [`spec`]; when a spec file is driving the run and its scale
/// matches no preset, the banner reports `scale=spec`).
fn run_canned(canned: &CannedSpec, opts: &Options) {
    let scale_name = if canned.scale == opts.scale {
        opts.scale_name
    } else {
        "spec"
    };
    let opts = Options {
        scale: canned.scale,
        scale_name,
        seed: canned.seed,
        ..opts.clone()
    };
    match canned.experiment {
        CannedKind::Fig3 => legacy::run_fig3(&opts),
        CannedKind::Fig4SoftInfo => legacy::run_fig4_softinfo(&opts),
        CannedKind::Fig5Schedules => legacy::run_fig5_schedules(&opts),
        CannedKind::Fig6 => legacy::run_fig6(&opts),
        CannedKind::Fig7 => legacy::run_fig7(&opts),
        CannedKind::Fig8 => legacy::run_fig8(&opts),
        CannedKind::Headline => legacy::run_headline(&opts),
        CannedKind::AblationEmbedding => legacy::run_ablation_embedding(&opts),
        CannedKind::AblationEngine => legacy::run_ablation_engine(&opts),
        CannedKind::AblationGreedy => legacy::run_ablation_greedy(&opts),
        CannedKind::AblationPause => legacy::run_ablation_pause(&opts),
        CannedKind::ExtInitializers => legacy::run_ext_initializers(&opts),
        CannedKind::ExtIterative => legacy::run_ext_iterative(&opts),
        CannedKind::PipelineStudy => legacy::run_pipeline_study(&opts),
    }
}

/// The `main` body every legacy binary shims to: parse the standard flags,
/// resolve the registered preset through the same [`resolve_target`] path
/// `hqw run` uses (so `--threads` precedence is decided in exactly one
/// place), run it. Resolution errors print to stderr and exit 2.
pub fn run_registered(name: &str) {
    let (opts, given) = Options::from_args_tracked();
    let spec = match resolve_target(name, &opts, given) {
        Ok(spec) => spec,
        Err(message) => {
            eprintln!("error: {message}");
            eprintln!("{}", crate::cli::USAGE);
            std::process::exit(2);
        }
    };
    run_spec(&spec, &opts);
}

/// Resolves a `hqw run <target>` argument into a spec. A `*.json` path is
/// parsed as a spec file: an explicitly-given `--seed` overrides the
/// file's value, and `--quick`/`--full` are rejected (a spec file carries
/// its own shape — scale presets only parameterize registry names, and
/// silently ignoring the flag would misreport what ran). Anything else is
/// a registry lookup.
///
/// This is the **single resolution point** for the effective thread count
/// (the precedence-matrix test below pins it): an explicitly-given
/// `--threads` overrides whatever the spec says (presets default to 0 =
/// all cores; spec files carry their own value), and is rejected on
/// realtime specs, whichever path the spec arrived by.
///
/// # Errors
/// Returns the user-facing message for an unknown name, an unreadable
/// file, a malformed/invalid spec document, or a scale flag on a
/// spec-file run — never panics.
pub fn resolve_target(
    target: &str,
    opts: &Options,
    given: GivenFlags,
) -> Result<ExperimentSpec, String> {
    let mut resolved = if target.ends_with(".json") {
        if given.scale {
            return Err(format!(
                "--quick/--full cannot apply to the spec file '{target}': \
                 scale presets parameterize registry names; set the shape in the spec instead"
            ));
        }
        let text = std::fs::read_to_string(target)
            .map_err(|e| format!("cannot read spec file '{target}': {e}"))?;
        let mut parsed = ExperimentSpec::parse(&text)
            .map_err(|e| format!("invalid spec file '{target}': {e}"))?;
        if given.seed {
            parsed.set_seed(opts.seed);
        }
        parsed
    } else {
        spec(target, opts).ok_or_else(|| {
            format!("unknown experiment '{target}' (run `hqw list` for the registry)")
        })?
    };
    if given.threads {
        // A realtime spec's thread topology is its `realtime` settings
        // (producers/queue shards); the grid-level `--threads` knob has
        // nothing to attach to, and silently ignoring it would misreport
        // what ran.
        if resolved.is_realtime() {
            return Err(format!(
                "--threads cannot apply to the realtime experiment '{target}': \
                 worker topology comes from the spec's \"realtime\" settings \
                 (producers/queue_shards)"
            ));
        }
        resolved.set_threads(opts.threads);
    }
    if opts.telemetry.is_some() && !resolved.supports_telemetry() {
        // BER sweeps and canned figures have no frame lifecycle to trace;
        // silently writing an empty trace would misreport what ran.
        return Err(format!(
            "--telemetry cannot apply to '{target}': only the stream/fabric \
             engines emit frame-lifecycle spans"
        ));
    }
    Ok(resolved)
}

/// The machine-readable registry manifest `hqw list --json` prints: the
/// spec version plus every experiment's name and description. CI iterates
/// it to run each registered experiment at quick scale, and
/// `ci/check_bench.py` validates it against the expected registry shape.
pub fn manifest_json() -> String {
    use hqw_core::spec::json::Json;
    Json::Obj(vec![
        ("spec_version".to_string(), Json::UInt(SPEC_VERSION)),
        (
            "experiments".to_string(),
            Json::Arr(
                ALL.iter()
                    .map(|e| {
                        Json::Obj(vec![
                            ("name".to_string(), Json::Str(e.name.to_string())),
                            (
                                "description".to_string(),
                                Json::Str(e.description.to_string()),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
    .to_string_pretty()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts(args: &[&str]) -> Options {
        Options::parse(args.iter().map(|s| s.to_string())).expect("valid flags")
    }

    #[test]
    fn registry_names_are_unique_and_resolve_to_specs() {
        let mut seen = std::collections::HashSet::new();
        for entry in all() {
            assert!(seen.insert(entry.name), "duplicate name {}", entry.name);
            assert!(!entry.description.is_empty());
            let spec = spec(entry.name, &opts(&["--quick"]))
                .unwrap_or_else(|| panic!("{} has no preset", entry.name));
            assert_eq!(spec.family(), entry.name);
            spec.validate().expect("registry presets must validate");
        }
    }

    #[test]
    fn canned_entries_match_canned_kinds_exactly() {
        let canned: Vec<&str> = all()
            .iter()
            .map(|e| e.name)
            .filter(|n| !matches!(*n, "ber" | "stream" | "fabric" | "fabric-rt" | "sched"))
            .collect();
        let kinds: Vec<&str> = CannedKind::ALL.iter().map(|k| k.name()).collect();
        assert_eq!(canned, kinds);
    }

    #[test]
    fn presets_scale_with_the_flags() {
        let quick = spec("ber", &opts(&["--quick"])).unwrap();
        let full = spec("ber", &opts(&["--full"])).unwrap();
        assert_ne!(quick, full);
        let seeded = spec("ber", &opts(&["--quick", "--seed", "9"])).unwrap();
        assert_eq!(seeded.seed(), 9);
        // Presets are thread-neutral: --threads is resolve_target's job.
        assert_eq!(seeded.threads(), 0);
    }

    /// No flags given explicitly.
    const NO_FLAGS: GivenFlags = GivenFlags {
        threads: false,
        seed: false,
        scale: false,
    };

    #[test]
    fn threads_precedence_is_decided_in_one_place() {
        // The full flag-vs-spec-vs-default matrix, for both paths a spec
        // can arrive by (registry name, spec file). Expected = flag when
        // explicitly given, else the spec's own value (presets carry the
        // 0 = all-cores default).
        let dir =
            std::env::temp_dir().join(format!("hqw_threads_matrix_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        // (given --threads?, flag value, spec-file threads, expected name-path, expected file-path)
        let cases = [
            (false, 0, 3, 0, 3), // nothing given: preset default / file value
            (true, 2, 3, 2, 2),  // flag beats both
            (true, 0, 3, 0, 0),  // explicit 0 still wins (all cores)
            (false, 7, 3, 0, 3), // value present but not *given*: ignored
        ];
        for (i, (given_threads, flag, file_threads, want_name, want_file)) in
            cases.into_iter().enumerate()
        {
            let mut cli = opts(&["--quick"]);
            cli.threads = flag;
            let given = GivenFlags {
                threads: given_threads,
                ..NO_FLAGS
            };

            let by_name = resolve_target("ber", &cli, given).unwrap();
            assert_eq!(by_name.threads(), want_name, "case {i} (name path)");

            let mut spec_in = spec("ber", &opts(&["--quick"])).unwrap();
            spec_in.set_threads(file_threads);
            let path = dir.join(format!("case{i}.json"));
            std::fs::write(&path, spec_in.to_json()).unwrap();
            let by_file = resolve_target(path.to_str().unwrap(), &cli, given).unwrap();
            assert_eq!(by_file.threads(), want_file, "case {i} (file path)");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn threads_flag_on_a_realtime_spec_is_rejected() {
        // By registry name…
        let cli = opts(&["--quick", "--threads", "4"]);
        let given = GivenFlags {
            threads: true,
            ..NO_FLAGS
        };
        let err = resolve_target("fabric-rt", &cli, given).unwrap_err();
        assert!(err.contains("--threads cannot apply"), "{err}");
        assert!(err.contains("realtime"), "{err}");

        // …and by spec file: the file's threads field is left untouched,
        // the flag is rejected rather than silently dropped.
        let dir = std::env::temp_dir().join(format!("hqw_rt_threads_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("rt.json");
        let spec_in = spec("fabric-rt", &opts(&["--quick"])).unwrap();
        assert!(spec_in.is_realtime());
        std::fs::write(&path, spec_in.to_json()).unwrap();
        let path_str = path.to_str().unwrap();
        let err = resolve_target(path_str, &cli, given).unwrap_err();
        assert!(err.contains("--threads cannot apply"), "{err}");
        // Without the flag the same file resolves fine.
        let resolved = resolve_target(path_str, &opts(&[]), NO_FLAGS).unwrap();
        assert_eq!(resolved, spec_in);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn telemetry_flag_on_an_unsupported_spec_is_rejected() {
        let mut cli = opts(&["--quick"]);
        cli.telemetry = Some(std::path::PathBuf::from("trace.json"));
        for unsupported in ["ber", "sched", "fig3", "headline"] {
            let err = resolve_target(unsupported, &cli, NO_FLAGS).unwrap_err();
            assert!(err.contains("--telemetry cannot apply"), "{err}");
        }
        for supported in ["stream", "fabric", "fabric-rt"] {
            resolve_target(supported, &cli, NO_FLAGS)
                .unwrap_or_else(|e| panic!("{supported} should accept --telemetry: {e}"));
        }
    }

    #[test]
    fn unknown_names_resolve_to_errors_not_panics() {
        assert!(spec("nope", &opts(&[])).is_none());
        let err = resolve_target("nope", &opts(&[]), NO_FLAGS).unwrap_err();
        assert!(err.contains("unknown experiment 'nope'"));
        let err = resolve_target("/no/such/file.json", &opts(&[]), NO_FLAGS).unwrap_err();
        assert!(err.contains("cannot read spec file"));
    }

    #[test]
    fn spec_files_resolve_and_honor_explicit_overrides() {
        // Process-unique dir: concurrent `cargo test` invocations must not
        // race on the spec fixture.
        let dir = std::env::temp_dir().join(format!("hqw_registry_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ber.json");
        let spec_in = spec("ber", &opts(&["--quick", "--seed", "5"])).unwrap();
        std::fs::write(&path, spec_in.to_json()).unwrap();
        let path_str = path.to_str().unwrap();
        let cli = opts(&["--threads", "7", "--seed", "11"]);

        // Flags present on the command line but not *explicitly* marked
        // given leave the file's values untouched…
        let resolved = resolve_target(path_str, &cli, NO_FLAGS).unwrap();
        assert_eq!(resolved, spec_in);
        // …explicitly-given --threads/--seed override the file.
        let given = GivenFlags {
            threads: true,
            seed: true,
            scale: false,
        };
        let resolved = resolve_target(path_str, &cli, given).unwrap();
        match resolved {
            ExperimentSpec::Ber(c) => {
                assert_eq!(c.threads, 7);
                assert_eq!(c.seed, 11);
            }
            _ => unreachable!(),
        }

        // --quick/--full cannot apply to a spec file: rejected, not
        // silently ignored.
        let given = GivenFlags {
            scale: true,
            ..NO_FLAGS
        };
        let err = resolve_target(path_str, &cli, given).unwrap_err();
        assert!(err.contains("--quick/--full cannot apply"), "{err}");

        // Malformed documents come back as messages, not panics.
        std::fs::write(&path, "{broken").unwrap();
        let err = resolve_target(path_str, &opts(&[]), NO_FLAGS).unwrap_err();
        assert!(err.contains("invalid spec file"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn manifest_lists_every_experiment() {
        use hqw_core::spec::json::Json;
        let manifest = Json::parse(&manifest_json()).expect("manifest is valid JSON");
        assert_eq!(
            manifest.get("spec_version").and_then(Json::as_u64),
            Some(SPEC_VERSION)
        );
        let experiments = manifest.get("experiments").unwrap().as_arr().unwrap();
        assert_eq!(experiments.len(), all().len());
        let names: Vec<&str> = experiments
            .iter()
            .map(|e| e.get("name").unwrap().as_str().unwrap())
            .collect();
        for headline in ["ber", "stream", "fabric"] {
            assert!(names.contains(&headline), "{headline} missing");
        }
    }
}
