//! Ablation: Greedy Search variants (§4.1 prose ambiguity).
//!
//! The paper sorts bits "in ascending order" of |Ising field| but its cited
//! greedy-descent reference fixes the strongest field first; DESIGN.md
//! documents the discrepancy and this ablation measures all four variants.

use hqw_bench::cli::Options;
use hqw_core::metrics::delta_e_percent;
use hqw_core::report::{fnum, Table};
use hqw_math::Rng64;
use hqw_phy::instance::{DetectionInstance, InstanceConfig};
use hqw_phy::modulation::Modulation;
use hqw_qubo::greedy::{greedy_search, GreedyConfig, GreedyOrder, GreedyVariant};

fn main() {
    let opts = Options::from_args();
    opts.banner(
        "Ablation",
        "Greedy Search order/variant on 8-user 16-QAM seed quality",
    );
    let instances = opts.scale.instances.max(20) * 3;
    let mut rng = Rng64::new(opts.seed);
    let config = InstanceConfig::paper(8, Modulation::Qam16);

    let arms = [
        (
            "descending/dynamic (default)",
            GreedyOrder::Descending,
            GreedyVariant::Dynamic,
        ),
        (
            "descending/static",
            GreedyOrder::Descending,
            GreedyVariant::StaticOrder,
        ),
        (
            "ascending/dynamic",
            GreedyOrder::Ascending,
            GreedyVariant::Dynamic,
        ),
        (
            "ascending/static (paper prose)",
            GreedyOrder::Ascending,
            GreedyVariant::StaticOrder,
        ),
    ];

    let mut sums = vec![(0.0f64, 0usize); arms.len()]; // (ΔE_IS sum, exact hits)
    for _ in 0..instances {
        let inst = DetectionInstance::generate(&config, &mut rng);
        let eg = inst.ground_energy();
        for (k, (_, order, variant)) in arms.iter().enumerate() {
            let (_, e) = greedy_search(
                &inst.reduction.qubo,
                GreedyConfig {
                    order: *order,
                    variant: *variant,
                },
            );
            let de = delta_e_percent(e, eg);
            sums[k].0 += de;
            if de <= 1e-9 {
                sums[k].1 += 1;
            }
        }
    }

    let mut table = Table::new(&["variant", "mean_dEis%", "exact_rate"]);
    for (k, (label, _, _)) in arms.iter().enumerate() {
        table.push_row(vec![
            label.to_string(),
            fnum(sums[k].0 / instances as f64, 2),
            fnum(sums[k].1 as f64 / instances as f64, 3),
        ]);
    }
    println!("{}", table.render());
    println!("({} instances; lower ΔE_IS% = better RA seeds)", instances);

    let path = opts.csv_path("ablation_greedy.csv");
    table.write_csv(&path).expect("write CSV");
    println!("CSV written to {}", path.display());
}
