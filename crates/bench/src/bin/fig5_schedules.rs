//! Figure 5: the three anneal-schedule shapes (FA, RA, FR).
//!
//! Prints the `[time µs, s]` waypoints of each protocol at the paper's
//! settings, plus a coarse ASCII rendering of `s(t)`.

use hqw_bench::cli::Options;
use hqw_core::protocol::Protocol;
use hqw_core::report::{fnum, Table};

fn main() {
    let opts = Options::from_args();
    opts.banner(
        "Figure 5",
        "FA / RA / FR anneal schedule shapes (s_p = 0.41, c_p = 0.65)",
    );

    let protocols = [
        Protocol::paper_fa(0.41),
        Protocol::paper_ra(0.41),
        Protocol::paper_fr(0.65, 0.41),
    ];

    let mut table = Table::new(&["protocol", "waypoints [t µs, s]", "duration µs"]);
    for p in &protocols {
        let schedule = p.schedule().expect("valid paper parameters");
        let pts = schedule
            .points()
            .iter()
            .map(|(t, s)| format!("[{},{}]", fnum(*t, 2), fnum(*s, 2)))
            .collect::<Vec<_>>()
            .join(" → ");
        table.push_row(vec![
            p.name().to_string(),
            pts,
            fnum(schedule.duration_us(), 2),
        ]);
    }
    println!("{}", table.render());

    // ASCII rendering: 10 rows of s from 1.0 down to 0.0.
    for p in &protocols {
        let schedule = p.schedule().expect("valid");
        let duration = schedule.duration_us();
        println!("{} (s vs t):", p.name());
        for level in (0..=10).rev() {
            let s_level = level as f64 / 10.0;
            let mut line = String::new();
            for col in 0..60 {
                let t = duration * col as f64 / 59.0;
                let s = schedule.s_at(t);
                line.push(if (s - s_level).abs() < 0.05 { '*' } else { ' ' });
            }
            println!("  {:>4} |{line}", fnum(s_level, 1));
        }
        println!("        0 µs{:>52}", format!("{} µs", fnum(duration, 2)));
        println!();
    }

    let path = opts.csv_path("fig5_schedules.csv");
    table.write_csv(&path).expect("write CSV");
    println!("CSV written to {}", path.display());
}
