//! Registry shim: `fig5-schedules — FA / RA / FR anneal-schedule shapes (Figure 5)`
//!
//! The experiment wiring lives in the `hqw-bench` registry; this binary
//! exists for backwards compatibility with existing CI paths and scripts.
//! `hqw run fig5-schedules` is the unified entry point and emits identical output.

fn main() {
    hqw_bench::registry::run_registered("fig5-schedules");
}
