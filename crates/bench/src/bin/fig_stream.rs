//! Streaming frame-engine sweep — link-layer deadlines meets warm starts.
//!
//! Runs the `hqw-core` stream engine over a (load × ρ × policy) grid: frames
//! arrive on a virtual clock from a Gauss–Markov time-correlated channel,
//! each dispatch policy routes them between a noise-matched MMSE detector
//! and the warm-started SA path, and per-frame service times derive
//! deterministically from algorithmic work counters (never wall clocks).
//! Output — including `BENCH_stream.json` — is byte-identical for any
//! `--threads` value, which CI pins by diffing a 1-thread run against an
//! N-thread run.
//!
//! ```text
//! cargo run -p hqw-bench --release --bin fig-stream -- --quick
//! ```
//!
//! Output: a table on stdout, `results/fig_stream.csv`, and a JSON report
//! (default `BENCH_stream.json`, override with `--json <path>`; schema in
//! the crate README).

use hqw_bench::cli::Options;
use hqw_core::report::{fnum, Table};
use hqw_core::stream::{run_stream_grid, CostModel, DispatchPolicy, StreamGridConfig};
use hqw_phy::channel::{snr_db_to_noise_variance, TrackConfig};
use hqw_phy::detect::Mmse;
use hqw_phy::modulation::Modulation;
use hqw_qubo::sa::SaParams;

/// Operating SNR of the streaming uplink (dB).
const SNR_DB: f64 = 14.0;

/// Grid shape per scale: (frames, ρ values, arrival periods µs descending).
fn grid_shape(scale_name: &str) -> (usize, Vec<f64>, Vec<f64>) {
    match scale_name {
        "quick" => (64, vec![0.0, 0.5, 0.95], vec![400.0, 160.0, 90.0]),
        "full" => (
            1024,
            vec![0.0, 0.5, 0.9, 0.99],
            vec![400.0, 250.0, 160.0, 120.0, 90.0, 60.0],
        ),
        _ => (
            256,
            vec![0.0, 0.5, 0.9, 0.99],
            vec![400.0, 200.0, 120.0, 80.0],
        ),
    }
}

fn main() {
    let opts = Options::from_args();
    opts.banner(
        "Stream sweep",
        "deadline-aware streaming detection over a time-correlated channel",
    );

    let (frames, rhos, arrival_periods_us) = grid_shape(opts.scale_name);
    let n_users = 3;
    let noise_variance = snr_db_to_noise_variance(SNR_DB, n_users);
    let config = StreamGridConfig {
        track: TrackConfig {
            n_users,
            n_rx: n_users,
            modulation: Modulation::Qpsk,
            rho: 0.0, // per-cell override
            noise_variance,
        },
        frames,
        arrival_periods_us,
        rhos,
        policies: DispatchPolicy::ALL.to_vec(),
        deadline_us: 300.0,
        cost: CostModel::default(),
        sa: SaParams {
            sweeps: 96,
            num_reads: 1,
            threads: 1,
            ..SaParams::default()
        },
        seed: opts.seed,
        threads: opts.threads,
    };
    println!(
        "{} users QPSK at {SNR_DB} dB, {} frames/cell, deadline {} us, \
         {} policies x {} rho x {} loads, threads={} (0 = all cores)",
        config.track.n_users,
        config.frames,
        config.deadline_us,
        config.policies.len(),
        config.rhos.len(),
        config.arrival_periods_us.len(),
        config.threads
    );
    println!();

    let classical = Mmse::new(noise_variance);
    let report = run_stream_grid(&config, &classical);

    let mut table = Table::new(&[
        "policy",
        "rho",
        "period_us",
        "ber",
        "miss_rate",
        "p50_us",
        "p99_us",
        "fr_per_ms",
        "hybrid",
        "cold_sweeps",
        "warm_sweeps",
    ]);
    for c in &report.cells {
        table.push_row(vec![
            c.policy.name().to_string(),
            fnum(c.rho, 2),
            fnum(c.arrival_period_us, 0),
            fnum(c.ber, 5),
            fnum(c.deadline_miss_rate, 4),
            fnum(c.p50_latency_us, 1),
            fnum(c.p99_latency_us, 1),
            fnum(c.throughput_per_ms, 3),
            format!("{}/{}", c.hybrid_frames, c.frames),
            fnum(c.cold_sweeps_to_solution, 2),
            fnum(c.warm_sweeps_to_solution, 2),
        ]);
    }
    println!("{}", table.render());

    let csv_path = opts.csv_path("fig_stream.csv");
    table.write_csv(&csv_path).expect("write CSV");
    println!("CSV written to {}", csv_path.display());

    let json_path = opts.json_path("BENCH_stream.json");
    report.write_json(&json_path).expect("write JSON report");
    println!("JSON report written to {}", json_path.display());
}
