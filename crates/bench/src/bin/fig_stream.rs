//! Registry shim: `stream — deadline-aware streaming detection over a time-correlated channel`
//!
//! The experiment wiring lives in the `hqw-bench` registry; this binary
//! exists for backwards compatibility with existing CI paths and scripts.
//! `hqw run stream` is the unified entry point and emits identical output.

fn main() {
    hqw_bench::registry::run_registered("stream");
}
