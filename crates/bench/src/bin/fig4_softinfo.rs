//! Registry shim: `fig4-softinfo — soft-information constraints under ICE noise (Figure 4 / §3.1)`
//!
//! The experiment wiring lives in the `hqw-bench` registry; this binary
//! exists for backwards compatibility with existing CI paths and scripts.
//! `hqw run fig4-softinfo` is the unified entry point and emits identical output.

fn main() {
    hqw_bench::registry::run_registered("fig4-softinfo");
}
