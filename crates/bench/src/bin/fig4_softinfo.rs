//! §3.1 / Figure 4: soft-information constraint injection under analog
//! (ICE) noise.
//!
//! Paper finding: the scheme "seemingly looks useful, but it is difficult to
//! find proper constraint factors on noisy, analog quantum machines" —
//! i.e. there is no strength setting that is both effective and robust.

use hqw_bench::cli::Options;
use hqw_core::experiments::run_fig4_softinfo;
use hqw_core::report::{fnum, Table};

fn main() {
    let opts = Options::from_args();
    opts.banner(
        "Figure 4 / §3.1",
        "correct pair-constraints vs strength, noiseless and under ICE noise",
    );
    let rows = run_fig4_softinfo(opts.scale, opts.seed);

    let mut table = Table::new(&["strength", "ice", "p_star(truth)", "optimum_preserved"]);
    for r in &rows {
        table.push_row(vec![
            fnum(r.strength, 2),
            r.ice.to_string(),
            fnum(r.p_star, 4),
            r.optimum_preserved.to_string(),
        ]);
    }
    println!("{}", table.render());

    // Fragility summary: the best noiseless strength vs its ICE performance.
    let best_clean = rows
        .iter()
        .filter(|r| !r.ice)
        .max_by(|a, b| a.p_star.partial_cmp(&b.p_star).unwrap());
    if let Some(clean) = best_clean {
        let same_under_ice = rows
            .iter()
            .find(|r| r.ice && (r.strength - clean.strength).abs() < 1e-9);
        if let Some(noisy) = same_under_ice {
            println!(
                "Best noiseless strength {}: p★ {} clean vs {} under ICE — {}",
                fnum(clean.strength, 2),
                fnum(clean.p_star, 3),
                fnum(noisy.p_star, 3),
                if noisy.p_star < clean.p_star {
                    "analog noise erodes the tuned setting (paper's finding)"
                } else {
                    "robust here"
                }
            );
        }
    }

    let path = opts.csv_path("fig4_softinfo.csv");
    table.write_csv(&path).expect("write CSV");
    println!("CSV written to {}", path.display());
}
