//! Ablation: Chimera minor-embedding overhead vs direct (logical) sampling.
//!
//! The paper's hardware pipeline must compile dense MIMO QUBOs onto the
//! 2000Q's sparse Chimera graph with qubit chains; the figure harnesses here
//! default to logical sampling for tractability. This ablation quantifies
//! what embedding costs: chain breaks, success probability, and the qubit
//! blow-up, on a small problem where both paths are feasible.

use hqw_anneal::embedding::{ChainStrength, CliqueEmbedding};
use hqw_anneal::sampler::{EngineKind, QuantumSampler, SamplerConfig};
use hqw_anneal::topology::Chimera;
use hqw_anneal::DWaveProfile;
use hqw_bench::cli::Options;
use hqw_core::protocol::Protocol;
use hqw_core::report::{fnum, Table};
use hqw_math::Rng64;
use hqw_phy::instance::{DetectionInstance, InstanceConfig};
use hqw_phy::modulation::Modulation;
use hqw_qubo::solution::{bits_to_spins, spins_to_bits};

fn main() {
    let opts = Options::from_args();
    opts.banner(
        "Ablation",
        "Chimera clique-embedding overhead vs direct sampling (3-user 16-QAM, C_3)",
    );

    let mut rng = Rng64::new(opts.seed);
    let inst = DetectionInstance::generate(&InstanceConfig::paper(3, Modulation::Qam16), &mut rng);
    let eg = inst.ground_energy();
    let (logical, _off) = inst.reduction.qubo.to_ising();
    let n = logical.num_vars(); // 12

    let graph = Chimera::new(3); // K12 fits on C3
    let embedding = CliqueEmbedding::new(graph, n);
    println!(
        "Logical vars: {n}; physical qubits used: {} (chains of {}); hardware size: {}",
        embedding.qubits_used(),
        embedding.chain(0).len(),
        graph.num_qubits()
    );

    let schedule = Protocol::paper_fa(0.45).schedule().unwrap();
    let sampler = QuantumSampler::new(
        DWaveProfile::calibrated(),
        SamplerConfig {
            num_reads: opts.scale.reads,
            engine: EngineKind::Pimc { trotter_slices: 8 },
            auto_scale: true,
            ..Default::default()
        },
    );

    // Direct (logical) sampling.
    let direct = sampler.sample_ising(&logical, &schedule, None, opts.seed);
    let direct_p = direct
        .samples
        .iter()
        .filter(|s| inst.reduction.qubo.energy(&s.bits) <= eg + 1e-6)
        .map(|s| s.occurrences)
        .sum::<u64>() as f64
        / direct.samples.total_reads() as f64;

    let mut table = Table::new(&["path", "chain_strength", "p_star", "chain_break_frac"]);
    table.push_row(vec![
        "direct (logical)".into(),
        "-".into(),
        fnum(direct_p, 4),
        "0.000".into(),
    ]);

    // Embedded sampling at several chain strengths.
    for &factor in &[0.5, 1.0, 2.0, 4.0] {
        let physical = embedding.embed(&logical, ChainStrength::RelativeToMax(factor));
        let run = sampler.sample_ising(&physical, &schedule, None, opts.seed ^ 9);
        let mut hits = 0u64;
        let mut total = 0u64;
        let mut breaks = 0u64;
        let mut chains_seen = 0u64;
        for s in run.samples.iter() {
            let spins = bits_to_spins(&s.bits);
            let (logical_spins, broken) = embedding.unembed(&spins);
            let bits = spins_to_bits(&logical_spins);
            let e = inst.reduction.qubo.energy(&bits);
            total += s.occurrences;
            breaks += broken as u64 * s.occurrences;
            chains_seen += n as u64 * s.occurrences;
            if e <= eg + 1e-6 {
                hits += s.occurrences;
            }
        }
        table.push_row(vec![
            "embedded (Chimera C3)".into(),
            format!("{}×max", fnum(factor, 1)),
            fnum(hits as f64 / total as f64, 4),
            fnum(breaks as f64 / chains_seen as f64, 4),
        ]);
    }
    println!("{}", table.render());
    println!(
        "Expected: weak chains break and destroy solutions; strong chains crowd out the problem \
         energy scale; embedded p★ < direct p★ at every setting (the compilation overhead the \
         paper inherits from QuAMax)."
    );

    let path = opts.csv_path("ablation_embedding.csv");
    table.write_csv(&path).expect("write CSV");
    println!("CSV written to {}", path.display());
}
