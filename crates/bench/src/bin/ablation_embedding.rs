//! Registry shim: `ablation-embedding — Chimera minor-embedding overhead`
//!
//! The experiment wiring lives in the `hqw-bench` registry; this binary
//! exists for backwards compatibility with existing CI paths and scripts.
//! `hqw run ablation-embedding` is the unified entry point and emits identical output.

fn main() {
    hqw_bench::registry::run_registered("ablation-embedding");
}
