//! Registry shim: `pipeline-study — the Figure-2 pipelined computation structure`
//!
//! The experiment wiring lives in the `hqw-bench` registry; this binary
//! exists for backwards compatibility with existing CI paths and scripts.
//! `hqw run pipeline-study` is the unified entry point and emits identical output.

fn main() {
    hqw_bench::registry::run_registered("pipeline-study");
}
