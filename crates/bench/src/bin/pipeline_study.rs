//! Figure 2 / Challenge 3: the pipelined classical-quantum computation
//! structure over successive channel uses.
//!
//! Two studies:
//! 1. **Discrete-event analysis** (programmed microseconds): classical and
//!    quantum stage latencies from the workspace's models, swept over the
//!    per-use read budget, against a 3 ms link-layer turnaround budget.
//! 2. **Real threaded pipeline**: wall-clock speedup of overlapping the
//!    classical stage with the quantum stage on actual instances.

use hqw_bench::cli::Options;
use hqw_core::event_sim::{simulate_pipeline, uniform_stage};
use hqw_core::pipeline::{run_pipelined, run_sequential};
use hqw_core::protocol::Protocol;
use hqw_core::report::{fnum, Table};
use hqw_core::solver::{HybridConfig, HybridSolver};
use hqw_core::stages::GreedyInitializer;
use hqw_math::Rng64;
use hqw_phy::instance::{DetectionInstance, InstanceConfig};
use hqw_phy::modulation::Modulation;

fn main() {
    let opts = Options::from_args();
    opts.banner(
        "Figure 2",
        "pipelined classical-quantum processing of successive channel uses",
    );

    // --- Study 1: discrete-event latency/throughput analysis -------------
    let n_uses = 64;
    let n_vars = 32.0; // 8-user 16-QAM
    let classical_us = n_vars * n_vars / 1000.0; // GS latency model
    let ra = Protocol::paper_ra(0.69);
    let per_read_us = ra.duration_us() + 123.0 + 21.0; // anneal + readout + delay
    let deadline_us = 3000.0; // LTE-class turnaround budget

    let mut table = Table::new(&[
        "reads/use",
        "quantum_us",
        "arrival_us",
        "p50_latency_us",
        "p99_latency_us",
        "throughput/ms",
        "deadline_viol",
        "max_queue",
    ]);
    for &reads in &[1usize, 4, 16, 64] {
        let quantum_us = reads as f64 * per_read_us;
        // Arrivals at 110% of the bottleneck service rate: sustainable load.
        let arrival_us = quantum_us.max(classical_us) * 1.1;
        let stages = [
            uniform_stage("classical", classical_us, n_uses),
            uniform_stage("quantum", quantum_us, n_uses),
        ];
        let report = simulate_pipeline(arrival_us, &stages, deadline_us);
        let mut lat = report.latency_us.clone();
        lat.sort_by(|a, b| a.partial_cmp(b).unwrap());
        table.push_row(vec![
            reads.to_string(),
            fnum(quantum_us, 1),
            fnum(arrival_us, 1),
            fnum(lat[lat.len() / 2], 1),
            fnum(lat[lat.len() * 99 / 100], 1),
            fnum(report.throughput_per_ms, 3),
            report.deadline_violations.to_string(),
            report.max_queue_depth.iter().max().unwrap().to_string(),
        ]);
    }
    println!("{}", table.render());
    println!(
        "(classical stage {} µs/use; RA read {} µs incl. readout; deadline {} µs)",
        fnum(classical_us, 2),
        fnum(per_read_us, 1),
        fnum(deadline_us, 0)
    );
    println!();

    // --- Study 2: real threaded pipeline ---------------------------------
    let batch = {
        let mut rng = Rng64::new(opts.seed);
        DetectionInstance::generate_batch(
            &InstanceConfig::paper(4, Modulation::Qam16),
            opts.scale.instances.max(6),
            &mut rng,
        )
    };
    let solver = HybridSolver::new(
        hqw_core::experiments::paper_sampler(opts.scale.reads),
        HybridConfig {
            protocol: ra,
            initializer: Box::new(GreedyInitializer::default()),
        },
    );

    let t0 = std::time::Instant::now();
    let seq = run_sequential(&solver, &batch, opts.seed);
    let sequential_wall = t0.elapsed();
    let t1 = std::time::Instant::now();
    let pip = run_pipelined(&solver, &batch, opts.seed, 4);
    let pipelined_wall = t1.elapsed();

    let identical = seq
        .iter()
        .zip(&pip)
        .all(|(a, b)| a.best_bits == b.best_bits && a.best_energy == b.best_energy);
    println!(
        "Threaded pipeline over {} channel uses: sequential {:?}, pipelined {:?} — outputs {}",
        batch.len(),
        sequential_wall,
        pipelined_wall,
        if identical {
            "bit-identical"
        } else {
            "DIFFER (bug!)"
        }
    );

    let path = opts.csv_path("pipeline_study.csv");
    table.write_csv(&path).expect("write CSV");
    println!("CSV written to {}", path.display());
}
