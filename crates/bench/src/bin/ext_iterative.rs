//! §2 extension: richer hybrid computation structures.
//!
//! Compares, at a matched anneal-time budget, the paper's one-shot GS→RA
//! prototype against (a) iterated reverse annealing (each round seeded by
//! the best state so far) and (b) sample-persistence variable prefixing
//! (Karimi & Rosenberg \[28\]) — the §2 patterns the paper surveys but does
//! not prototype.

use hqw_bench::cli::Options;
use hqw_core::experiments::paper_sampler;
use hqw_core::iterative::{iterated_reverse_annealing, sample_persistence_solve};
use hqw_core::metrics::delta_e_percent;
use hqw_core::protocol::Protocol;
use hqw_core::report::{fnum, Table};
use hqw_math::Rng64;
use hqw_phy::instance::{DetectionInstance, InstanceConfig};
use hqw_phy::modulation::Modulation;
use hqw_qubo::greedy_search;

fn main() {
    let opts = Options::from_args();
    opts.banner(
        "§2 extension",
        "one-shot GS→RA vs iterated RA vs sample-persistence prefixing (8-user 16-QAM)",
    );

    let rounds = 4;
    let s_p = 0.69;
    let instances = opts.scale.instances.max(4);
    // Matched budget: the one-shot arm gets rounds× the reads of each
    // iterated round.
    let one_shot_sampler = paper_sampler(opts.scale.reads * rounds);
    let round_sampler = paper_sampler(opts.scale.reads);

    let mut sums = [0.0f64; 4]; // seed, one-shot, iterated, persistence (ΔE%)
    let mut exact = [0usize; 4];
    let mut rng = Rng64::new(opts.seed);
    for k in 0..instances {
        let inst =
            DetectionInstance::generate(&InstanceConfig::paper(8, Modulation::Qam16), &mut rng);
        let eg = inst.ground_energy();
        let qubo = &inst.reduction.qubo;
        let (gs_bits, gs_e) = greedy_search(qubo, Default::default());

        let one_shot = one_shot_sampler.sample_qubo(
            qubo,
            &Protocol::paper_ra(s_p).schedule().unwrap(),
            Some(&gs_bits),
            opts.seed + k as u64,
        );
        let one_shot_e = one_shot.samples.best_energy().min(gs_e);

        let iterated = iterated_reverse_annealing(
            &round_sampler,
            qubo,
            s_p,
            &gs_bits,
            rounds,
            opts.seed + 100 + k as u64,
        );
        let persistence = sample_persistence_solve(
            &round_sampler,
            qubo,
            s_p,
            &gs_bits,
            0.2,
            rounds,
            opts.seed + 200 + k as u64,
        );

        for (slot, e) in [
            (0, gs_e),
            (1, one_shot_e),
            (2, iterated.best_energy),
            (3, persistence.best_energy),
        ] {
            let de = delta_e_percent(e, eg);
            sums[slot] += de;
            if de <= 1e-9 {
                exact[slot] += 1;
            }
        }
    }

    let mut table = Table::new(&["structure", "mean_dE%", "exact_rate"]);
    for (k, label) in [
        "GS seed (no quantum)",
        "one-shot GS→RA (paper prototype)",
        "iterated RA (best-state feedback)",
        "sample-persistence prefixing",
    ]
    .iter()
    .enumerate()
    {
        table.push_row(vec![
            label.to_string(),
            fnum(sums[k] / instances as f64, 3),
            fnum(exact[k] as f64 / instances as f64, 2),
        ]);
    }
    println!("{}", table.render());
    println!(
        "All quantum arms share the same total anneal budget ({} reads). The iterated arms can \
         only help over one-shot when intermediate states open new basins — the §2 argument for \
         closed-loop hybrid designs.",
        opts.scale.reads * rounds
    );

    let path = opts.csv_path("ext_iterative.csv");
    table.write_csv(&path).expect("write CSV");
    println!("CSV written to {}", path.display());
}
