//! Registry shim: `ext-iterative — iterated RA and sample persistence (§2)`
//!
//! The experiment wiring lives in the `hqw-bench` registry; this binary
//! exists for backwards compatibility with existing CI paths and scripts.
//! `hqw run ext-iterative` is the unified entry point and emits identical output.

fn main() {
    hqw_bench::registry::run_registered("ext-iterative");
}
