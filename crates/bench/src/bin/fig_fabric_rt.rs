//! `fig-fabric-rt` — the wall-clock realtime fabric service: concurrent
//! frame producers, sharded MPMC delivery queues, per-backend worker
//! pools, and routing decisions that replay bit-exactly through the
//! virtual-time fabric sim. Thin shim over `hqw run fabric-rt`.

fn main() {
    hqw_bench::registry::run_registered("fabric-rt");
}
