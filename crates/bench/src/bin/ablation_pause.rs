//! Registry shim: `ablation-pause — anneal-pause duration`
//!
//! The experiment wiring lives in the `hqw-bench` registry; this binary
//! exists for backwards compatibility with existing CI paths and scripts.
//! `hqw run ablation-pause` is the unified entry point and emits identical output.

fn main() {
    hqw_bench::registry::run_registered("ablation-pause");
}
