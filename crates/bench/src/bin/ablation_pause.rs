//! Ablation: the anneal pause (`t_p`) — the paper's footnote 3.
//!
//! "It has been shown that the annealing pause brings out improvements for
//! FA \[26, 29, 36\] and for RA \[52\]." This ablation sweeps the pause duration
//! for both protocols at their preferred `s_p` and reports `p★` and TTS —
//! TTS exposes the trade-off, since pausing lengthens every read.

use hqw_bench::cli::Options;
use hqw_core::metrics::{success_probability, time_to_solution};
use hqw_core::protocol::Protocol;
use hqw_core::report::{fnum, Table};
use hqw_math::Rng64;
use hqw_phy::instance::{DetectionInstance, InstanceConfig};
use hqw_phy::modulation::Modulation;
use hqw_qubo::greedy_search;

fn main() {
    let opts = Options::from_args();
    opts.banner(
        "Ablation",
        "pause duration t_p for FA (s_p=0.45) and RA-GS (s_p=0.69), 8-user 16-QAM",
    );

    let mut rng = Rng64::new(opts.seed);
    let inst = DetectionInstance::generate(&InstanceConfig::paper(8, Modulation::Qam16), &mut rng);
    let eg = inst.ground_energy();
    let qubo = &inst.reduction.qubo;
    let (gs_bits, _) = greedy_search(qubo, Default::default());
    let sampler = hqw_core::experiments::paper_sampler(opts.scale.reads);

    // Arms chosen where the pause has leverage: FA pausing near the device's
    // A=B crossing, RA from the exact ground state at the *edge* of its
    // success band (s_p = 0.61), where retention is most pause-sensitive,
    // and RA from the GS seed for reference.
    let mut table = Table::new(&["protocol", "t_p_us", "duration_us", "p_star", "TTS99_us"]);
    for &t_p in &[0.0, 0.5, 1.0, 2.0, 4.0] {
        for (label, protocol, init) in [
            (
                "FA",
                Protocol::Forward {
                    t_a: 1.45,
                    pause: if t_p > 0.0 { Some((0.45, t_p)) } else { None },
                },
                None,
            ),
            (
                "RA-ground@0.61",
                Protocol::Reverse { s_p: 0.61, t_p },
                Some(inst.tx_natural_bits.as_slice()),
            ),
            (
                "RA-GS@0.69",
                Protocol::Reverse { s_p: 0.69, t_p },
                Some(gs_bits.as_slice()),
            ),
        ] {
            let schedule = protocol.schedule().expect("valid");
            let run = sampler.sample_qubo(qubo, &schedule, init, opts.seed ^ t_p.to_bits());
            let p = success_probability(&run.samples, eg);
            table.push_row(vec![
                label.to_string(),
                fnum(t_p, 1),
                fnum(schedule.duration_us(), 2),
                fnum(p, 4),
                fnum(time_to_solution(schedule.duration_us(), p, 99.0), 1),
            ]);
        }
    }
    println!("{}", table.render());
    println!(
        "Two regimes: when the seed needs repair (imperfect seeds, or FA mid-anneal), pause time \
         buys thermalization and p★ grows; when the seed is already the ground state, the pause \
         only melts it — p★ falls monotonically with t_p and TTS is best with no pause at all. \
         The paper's fixed t_p = 1 µs is a compromise across seed qualities."
    );

    let path = opts.csv_path("ablation_pause.csv");
    table.write_csv(&path).expect("write CSV");
    println!("CSV written to {}", path.display());
}
