//! Figure 8: success probability and TTS(99%) as a function of the switch &
//! pause location `s_p`, for FA, RA (several initial-state qualities) and FR
//! (oracle `c_p`), on an 8-user 16-QAM instance.
//!
//! Paper result: FA succeeds only at isolated pause locations; RA succeeds
//! over a contiguous `s_p` band; FR (even with oracle `c_p`) underperforms
//! both; ground-state-initialized RA is the upper envelope.

use hqw_bench::cli::Options;
use hqw_core::experiments::run_fig8;
use hqw_core::report::{fnum, Table};

fn main() {
    let opts = Options::from_args();
    opts.banner(
        "Figure 8",
        "p★ and TTS(99%) vs s_p for FA / RA(initial states) / FR(oracle c_p)",
    );
    let series = run_fig8(opts.scale, opts.seed);

    let mut table = Table::new(&["series", "s_p", "p_star", "duration_us", "TTS99_us"]);
    for s in &series {
        for p in &s.points {
            table.push_row(vec![
                s.label.clone(),
                fnum(p.param, 2),
                fnum(p.p_star, 4),
                fnum(p.duration_us, 2),
                fnum(p.tts_us, 1),
            ]);
        }
    }
    println!("{}", table.render());

    // Headline shape summary per series.
    println!("Per-series best points:");
    for s in &series {
        let best = s
            .points
            .iter()
            .max_by(|a, b| a.p_star.partial_cmp(&b.p_star).unwrap());
        let band: Vec<f64> = s
            .points
            .iter()
            .filter(|p| p.p_star > 0.0)
            .map(|p| p.param)
            .collect();
        match best {
            Some(b) if b.p_star > 0.0 => println!(
                "  {:<16} best p★={} at s_p={}, TTS={} µs, success band s_p ∈ [{}, {}] ({} pts)",
                s.label,
                fnum(b.p_star, 3),
                fnum(b.param, 2),
                fnum(b.tts_us, 1),
                fnum(band.iter().cloned().fold(f64::INFINITY, f64::min), 2),
                fnum(band.iter().cloned().fold(f64::NEG_INFINITY, f64::max), 2),
                band.len(),
            ),
            _ => println!("  {:<16} never found the ground state", s.label),
        }
    }

    let path = opts.csv_path("fig8.csv");
    table.write_csv(&path).expect("write CSV");
    println!("CSV written to {}", path.display());
}
