//! Registry shim: `fig8 — p★ and TTS vs s_p for FA / RA / FR (Figure 8)`
//!
//! The experiment wiring lives in the `hqw-bench` registry; this binary
//! exists for backwards compatibility with existing CI paths and scripts.
//! `hqw run fig8` is the unified entry point and emits identical output.

fn main() {
    hqw_bench::registry::run_registered("fig8");
}
