//! `hqw` — the unified experiment runner.
//!
//! ```text
//! hqw list [--json]
//! hqw run <name|spec.json> [--quick|--full] [--seed N] [--out DIR]
//!                          [--threads N] [--json PATH] [--telemetry PATH]
//!                          [--shard K/N] [--checkpoint PATH]
//! hqw run --resume <checkpoint> [--out DIR] [--json PATH]
//! hqw merge <shard.json>... [-o PATH]
//! ```
//!
//! `hqw list` prints the experiment registry (add `--json` for the
//! machine-readable manifest CI iterates). `hqw run <name>` runs a
//! registered preset; `hqw run spec.json` parses a declarative
//! `ExperimentSpec` document (schema in `crates/bench/README.md`) and runs
//! it. For spec-file runs, explicit `--seed`/`--threads` override the
//! file's values and `--quick`/`--full` are rejected (the file carries its
//! own shape).
//!
//! The distributed plane: `--shard K/N` runs one strided slice of the
//! point grid and emits a `ShardReport`; `hqw merge` reassembles a full
//! set of shards into the ordinary report, byte-identical to running
//! unsharded. `--checkpoint` journals completed points to a JSONL file as
//! the run progresses, and `--resume` continues a killed run from that
//! journal to the identical final report (schemas in
//! `crates/bench/README.md`).
//!
//! `--telemetry PATH` (stream/fabric/fabric-rt only) captures the
//! zero-perturbation observability plane — frame-lifecycle spans,
//! log-bucketed latency histograms, queue/backend time series — and writes
//! a Chrome trace-event file at `PATH`. Telemetry never feeds back into
//! routing: enabling it changes no experiment result.
//!
//! `hqw replay trace.json` re-feeds a recorded realtime routing trace
//! through the virtual-time sim and exits 1 on any decision divergence —
//! the `realtime-replay` CI contract. Malformed commands, unknown
//! experiment names and invalid spec/trace/shard/checkpoint files are
//! reported on stderr with the usage line and exit status 2 — never a
//! panic.

use hqw_bench::cli::{HqwCommand, HQW_USAGE};
use hqw_bench::{distributed, registry};
use hqw_core::fabric_rt::replay_trace_doc;

fn main() {
    let command = match HqwCommand::parse(std::env::args().skip(1)) {
        Ok(command) => command,
        Err(message) => fail(&message),
    };
    match command {
        HqwCommand::List { json } => {
            if json {
                print!("{}", registry::manifest_json());
            } else {
                let width = registry::all()
                    .iter()
                    .map(|e| e.name.len())
                    .max()
                    .unwrap_or(0);
                println!("registered experiments ({}):", registry::all().len());
                for entry in registry::all() {
                    println!("  {:width$}  {}", entry.name, entry.description);
                }
                println!();
                println!("run one with: hqw run <name> [--quick|--full]");
            }
        }
        HqwCommand::Run(mut run) => {
            if let Some(path) = run.resume {
                if let Err(message) = distributed::run_resume(&path, &run.options) {
                    fail(&message);
                }
                return;
            }
            let target = run
                .target
                .expect("parser guarantees a target when not resuming");
            let spec = match registry::resolve_target(&target, &run.options, run.given) {
                Ok(spec) => spec,
                Err(message) => fail(&message),
            };
            if target.ends_with(".json") {
                // The banner reports what actually ran: a spec file's shape
                // is its own, not a named scale preset.
                run.options.scale_name = "spec";
            }
            let result = if let Some((index, count)) = run.shard {
                distributed::run_shard(&spec, &run.options, index, count)
            } else if let Some(path) = run.checkpoint {
                distributed::run_checkpointed(&spec, &run.options, &path)
            } else {
                registry::run_spec(&spec, &run.options);
                Ok(())
            };
            if let Err(message) = result {
                fail(&message);
            }
        }
        HqwCommand::Merge { shards, out } => {
            if let Err(message) = distributed::run_merge(&shards, out.as_deref()) {
                fail(&message);
            }
        }
        HqwCommand::Replay { trace } => {
            let text = match std::fs::read_to_string(&trace) {
                Ok(text) => text,
                Err(e) => fail(&format!("cannot read trace file '{trace}': {e}")),
            };
            let report = match replay_trace_doc(&text) {
                Ok(report) => report,
                Err(e) => fail(&format!("invalid trace file '{trace}': {e}")),
            };
            println!(
                "replaying {} point(s) through the virtual-time sim:",
                report.points.len()
            );
            for point in &report.points {
                let verdict = if point.divergences.is_empty() {
                    "ok".to_string()
                } else {
                    format!(
                        "DIVERGED at job(s) {:?}{}",
                        &point.divergences[..point.divergences.len().min(8)],
                        if point.divergences.len() > 8 {
                            ", …"
                        } else {
                            ""
                        }
                    )
                };
                println!(
                    "  {} cells={} period={}us jobs={}: {}",
                    point.mix, point.n_cells, point.arrival_period_us, point.jobs, verdict
                );
            }
            let total = report.total_divergences();
            if total > 0 {
                eprintln!("error: {total} routing decision(s) diverged from the sim");
                std::process::exit(1);
            }
            println!("zero divergence: realtime routing matches the virtual-time sim");
        }
    }
}

/// Prints the error and usage, then exits with status 2.
fn fail(message: &str) -> ! {
    eprintln!("error: {message}");
    eprintln!("{HQW_USAGE}");
    std::process::exit(2);
}
