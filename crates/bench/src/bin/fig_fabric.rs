//! Registry shim: `fabric — multi-cell streaming detection over a shared solver pool`
//!
//! The experiment wiring lives in the `hqw-bench` registry; this binary
//! exists for backwards compatibility with existing CI paths and scripts.
//! `hqw run fabric` is the unified entry point and emits identical output.

fn main() {
    hqw_bench::registry::run_registered("fabric");
}
