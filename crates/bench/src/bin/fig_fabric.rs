//! Quantum compute-fabric sweep — many cells sharing a solver pool.
//!
//! Runs the `hqw-core` fabric engine over a (backend-mix × cells × load)
//! grid: every radio cell streams detection frames from its own
//! time-correlated channel into a shared `FabricScheduler`, which batches
//! same-shape QUBOs and routes them across a heterogeneous backend pool
//! (SA worker pool, PIMC, SVMC, and a mock QPU behind a network with cached
//! minor embeddings), falling back to local classical MMSE when no backend
//! can meet the deadline. Output — including `BENCH_fabric.json` — is
//! byte-identical for any `--threads` value, which CI pins by diffing a
//! 1-thread run against an N-thread run.
//!
//! ```text
//! cargo run -p hqw-bench --release --bin fig-fabric -- --quick
//! ```
//!
//! Output: a table on stdout, `results/fig_fabric.csv`, and a JSON report
//! (default `BENCH_fabric.json`, override with `--json <path>`; schema in
//! the crate README).

use hqw_bench::cli::Options;
use hqw_core::fabric::{
    run_fabric_grid, AnnealerConfig, BackendMix, BackendSpec, FabricGridConfig, MockQpuConfig,
    NetworkModel, SaPoolConfig,
};
use hqw_core::report::{fnum, Table};
use hqw_core::stream::CostModel;
use hqw_phy::channel::{snr_db_to_noise_variance, TrackConfig};
use hqw_phy::modulation::Modulation;
use hqw_qubo::sa::SaParams;

/// Operating SNR of every cell's uplink (dB).
const SNR_DB: f64 = 14.0;

/// Grid shape per scale: (frames/cell, cell counts, arrival periods µs
/// descending).
fn grid_shape(scale_name: &str) -> (usize, Vec<usize>, Vec<f64>) {
    match scale_name {
        "quick" => (24, vec![2, 4], vec![400.0, 200.0, 120.0]),
        "full" => (
            256,
            vec![1, 2, 4, 8],
            vec![600.0, 400.0, 250.0, 160.0, 100.0],
        ),
        _ => (64, vec![1, 2, 4], vec![400.0, 200.0, 120.0]),
    }
}

/// The pool compositions swept as the backend-mix axis. The two mock-QPU
/// mixes differ only in `max_batch`, which is what the batched-vs-unbatched
/// latency invariant in `ci/check_bench.py` compares.
fn mixes() -> Vec<BackendMix> {
    let sa_pool = BackendSpec::SaPool(SaPoolConfig {
        workers: 2,
        max_batch: 4,
        sa: SaParams {
            sweeps: 48,
            num_reads: 2,
            threads: 1,
            ..SaParams::default()
        },
    });
    let annealer = AnnealerConfig {
        num_reads: 2,
        anneal_us: 2.0,
        sweeps_per_us: 8,
        capacity: 1,
        max_batch: 4,
    };
    let qpu = |max_batch: usize| {
        BackendSpec::MockQpu(MockQpuConfig {
            num_reads: 4,
            anneal_us: 2.0,
            sweeps_per_us: 8,
            trotter_slices: 8,
            max_batch,
            network: NetworkModel {
                rtt_base_us: 30.0,
                jitter_us: 10.0,
            },
            programming_us: 120.0,
            embed_derive_us_per_qubit: 2.0,
            chain_strength: 2.0,
        })
    };
    vec![
        BackendMix {
            name: "sa-pool".into(),
            backends: vec![sa_pool],
        },
        BackendMix {
            name: "hetero".into(),
            backends: vec![
                sa_pool,
                BackendSpec::Pimc(annealer),
                BackendSpec::Svmc(annealer),
                qpu(4),
            ],
        },
        BackendMix {
            name: "qpu-batched".into(),
            backends: vec![qpu(8)],
        },
        BackendMix {
            name: "qpu-unbatched".into(),
            backends: vec![qpu(1)],
        },
    ]
}

fn main() {
    let opts = Options::from_args();
    opts.banner(
        "Fabric sweep",
        "multi-cell streaming detection over a shared multi-backend solver pool",
    );

    let (frames_per_cell, cell_counts, arrival_periods_us) = grid_shape(opts.scale_name);
    let n_users = 2;
    let noise_variance = snr_db_to_noise_variance(SNR_DB, n_users);
    let config = FabricGridConfig {
        track: TrackConfig {
            n_users,
            n_rx: n_users,
            modulation: Modulation::Qpsk,
            rho: 0.9,
            noise_variance,
        },
        frames_per_cell,
        cell_counts,
        arrival_periods_us,
        mixes: mixes(),
        deadline_us: 700.0,
        cost: CostModel::default(),
        seed: opts.seed,
        threads: opts.threads,
    };
    println!(
        "{} users QPSK at {SNR_DB} dB per cell, {} frames/cell, deadline {} us, \
         {} mixes x {} cell-counts x {} loads, threads={} (0 = all cores)",
        config.track.n_users,
        config.frames_per_cell,
        config.deadline_us,
        config.mixes.len(),
        config.cell_counts.len(),
        config.arrival_periods_us.len(),
        config.threads
    );
    println!();

    let report = run_fabric_grid(&config);

    let mut table = Table::new(&[
        "mix",
        "cells",
        "period_us",
        "ber",
        "miss_rate",
        "fallback",
        "p50_us",
        "p99_us",
        "served_us",
        "util_max",
        "mean_batch",
    ]);
    for p in &report.points {
        let util_max = p.backends.iter().map(|b| b.utilization).fold(0.0, f64::max);
        let mean_batch = p.backends.iter().map(|b| b.mean_batch).fold(0.0, f64::max);
        table.push_row(vec![
            p.mix.clone(),
            p.n_cells.to_string(),
            fnum(p.arrival_period_us, 0),
            fnum(p.ber, 5),
            fnum(p.deadline_miss_rate, 4),
            fnum(p.fallback_rate, 4),
            fnum(p.p50_latency_us, 1),
            fnum(p.p99_latency_us, 1),
            fnum(p.mean_served_latency_us, 1),
            fnum(util_max, 3),
            fnum(mean_batch, 2),
        ]);
    }
    println!("{}", table.render());

    let csv_path = opts.csv_path("fig_fabric.csv");
    table.write_csv(&csv_path).expect("write CSV");
    println!("CSV written to {}", csv_path.display());

    let json_path = opts.json_path("BENCH_fabric.json");
    report.write_json(&json_path).expect("write JSON report");
    println!("JSON report written to {}", json_path.display());
}
