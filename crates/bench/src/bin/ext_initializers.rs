//! §5 extension: application-specific classical initializers for RA.
//!
//! Paper outlook: "Linear solvers (e.g., zero-forcing) can likely achieve
//! better initialization quality ΔE_IS% than GS … Tree-based solvers (e.g.,
//! FCSD and K-best SD) have tunable complexity."

use hqw_bench::cli::Options;
use hqw_core::experiments::run_ext_initializers;
use hqw_core::report::{fnum, Table};

fn main() {
    let opts = Options::from_args();
    opts.banner(
        "§5 extension",
        "classical initializers feeding RA on noisy 5-user 16-QAM (exhaustive ground truth)",
    );
    let rows = run_ext_initializers(opts.scale, opts.seed);

    let mut table = Table::new(&[
        "initializer",
        "mean_dEis%",
        "classical_us",
        "hybrid_p*",
        "mean_TTS_us",
    ]);
    for r in &rows {
        table.push_row(vec![
            r.name.to_string(),
            fnum(r.mean_delta_e_is, 2),
            fnum(r.mean_latency_us, 2),
            fnum(r.p_star, 4),
            fnum(r.mean_tts_us, 1),
        ]);
    }
    println!("{}", table.render());

    let get = |name: &str| rows.iter().find(|r| r.name == name);
    if let (Some(gs), Some(zf)) = (get("GS"), get("ZF")) {
        println!(
            "ZF vs GS seed quality: {} vs {} ΔE_IS% (paper predicts ZF better, at higher latency: {} vs {} µs)",
            fnum(zf.mean_delta_e_is, 2),
            fnum(gs.mean_delta_e_is, 2),
            fnum(zf.mean_latency_us, 2),
            fnum(gs.mean_latency_us, 2),
        );
    }

    let path = opts.csv_path("ext_initializers.csv");
    table.write_csv(&path).expect("write CSV");
    println!("CSV written to {}", path.display());
}
