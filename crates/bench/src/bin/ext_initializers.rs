//! Registry shim: `ext-initializers — application-specific initializers (§5)`
//!
//! The experiment wiring lives in the `hqw-bench` registry; this binary
//! exists for backwards compatibility with existing CI paths and scripts.
//! `hqw run ext-initializers` is the unified entry point and emits identical output.

fn main() {
    hqw_bench::registry::run_registered("ext-initializers");
}
