//! Ablation: simulation-engine and move-set choices behind DESIGN.md.
//!
//! Compares, on the same 8-user 16-QAM workload and the paper's protocols:
//! * PIMC vs SVMC engines;
//! * PIMC Trotter-slice counts;
//! * cluster moves on/off (the imaginary-time tunneling channel);
//! * freeze-out gate on/off (the late-anneal kinetics lock).

use hqw_anneal::engine::FreezeOut;
use hqw_anneal::sampler::{EngineKind, QuantumSampler, SamplerConfig};
use hqw_anneal::{AnnealParams, DWaveProfile};
use hqw_bench::cli::Options;
use hqw_core::metrics::{delta_e_percent, success_probability};
use hqw_core::protocol::Protocol;
use hqw_core::report::{fnum, Table};
use hqw_math::Rng64;
use hqw_phy::instance::{DetectionInstance, InstanceConfig};
use hqw_phy::modulation::Modulation;
use hqw_qubo::greedy_search;

fn main() {
    let opts = Options::from_args();
    opts.banner(
        "Ablation",
        "engine / Trotter slices / cluster moves / freeze-out, 8-user 16-QAM",
    );

    let mut rng = Rng64::new(opts.seed);
    let inst = DetectionInstance::generate(&InstanceConfig::paper(8, Modulation::Qam16), &mut rng);
    let eg = inst.ground_energy();
    let qubo = &inst.reduction.qubo;
    let (gs_bits, _) = greedy_search(qubo, Default::default());

    let arms: Vec<(&str, EngineKind, Option<FreezeOut>)> = vec![
        (
            "PIMC P=16 (default)",
            EngineKind::Pimc { trotter_slices: 16 },
            Some(FreezeOut::default()),
        ),
        (
            "PIMC P=8",
            EngineKind::Pimc { trotter_slices: 8 },
            Some(FreezeOut::default()),
        ),
        (
            "PIMC P=32",
            EngineKind::Pimc { trotter_slices: 32 },
            Some(FreezeOut::default()),
        ),
        (
            "PIMC no freeze-out",
            EngineKind::Pimc { trotter_slices: 16 },
            None,
        ),
        ("SVMC", EngineKind::Svmc, Some(FreezeOut::default())),
    ];

    let mut table = Table::new(&[
        "configuration",
        "FA p*",
        "FA mean dE%",
        "RA-GS p*",
        "RA-GS mean dE%",
    ]);
    for (label, engine, freeze) in arms {
        let sampler = QuantumSampler::new(
            DWaveProfile::calibrated(),
            SamplerConfig {
                num_reads: opts.scale.reads,
                engine,
                params: AnnealParams {
                    freeze_out: freeze,
                    ..Default::default()
                },
                ..Default::default()
            },
        );
        let fa = sampler.sample_qubo(
            qubo,
            &Protocol::paper_fa(0.45).schedule().unwrap(),
            None,
            opts.seed,
        );
        let ra = sampler.sample_qubo(
            qubo,
            &Protocol::paper_ra(0.69).schedule().unwrap(),
            Some(&gs_bits),
            opts.seed,
        );
        table.push_row(vec![
            label.to_string(),
            fnum(success_probability(&fa.samples, eg), 4),
            fnum(delta_e_percent(fa.samples.mean_energy(), eg), 2),
            fnum(success_probability(&ra.samples, eg), 4),
            fnum(delta_e_percent(ra.samples.mean_energy(), eg), 2),
        ]);
    }
    println!("{}", table.render());
    println!(
        "Expected: without freeze-out the simulator turns SA-like (FA improves, RA memory washes \
         out); slice count shifts quantum-fluctuation strength mildly; SVMC is the semi-classical \
         reference."
    );

    let path = opts.csv_path("ablation_engine.csv");
    table.write_csv(&path).expect("write CSV");
    println!("CSV written to {}", path.display());
}
