//! Registry shim: `ablation-engine — simulation-engine and move-set choices`
//!
//! The experiment wiring lives in the `hqw-bench` registry; this binary
//! exists for backwards compatibility with existing CI paths and scripts.
//! `hqw run ablation-engine` is the unified entry point and emits identical output.

fn main() {
    hqw_bench::registry::run_registered("ablation-engine");
}
