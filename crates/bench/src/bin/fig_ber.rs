//! BER-vs-SNR scenario sweep — the paper-style end-to-end comparison.
//!
//! Runs the `hqw-core` scenario engine over a roster spanning every detector
//! family in the workspace: linear (ZF, noise-matched MMSE), tree-search
//! (budgeted sphere decoder, K-best, FCSD), the SA-backed QUBO path, and the
//! full annealer-backed hybrid solver. Every arm sees the same channel
//! realizations at every SNR point (paired comparison), and the whole grid
//! fans out deterministically: output — including `BENCH_ber.json` — is
//! byte-identical for any `--threads` value, which CI pins by diffing a
//! 1-thread run against an N-thread run.
//!
//! ```text
//! cargo run -p hqw-bench --release --bin fig-ber -- --quick
//! ```
//!
//! Output: a table on stdout, `results/fig_ber.csv`, and a JSON report
//! (default `BENCH_ber.json`, override with `--json <path>`; schema in the
//! crate README).

use hqw_anneal::sampler::{EngineKind, QuantumSampler, SamplerConfig};
use hqw_anneal::DWaveProfile;
use hqw_bench::cli::Options;
use hqw_core::protocol::Protocol;
use hqw_core::report::{fnum, Table};
use hqw_core::scenario::{run_ber_sweep, HybridDetector, ScenarioDetector, SnrSweepConfig};
use hqw_core::solver::{HybridConfig, HybridSolver};
use hqw_core::stages::GreedyInitializer;
use hqw_phy::channel::ChannelModel;
use hqw_phy::detect::{Fcsd, KBest, Mmse, QuboDetector, SphereDecoder, ZeroForcing};
use hqw_phy::modulation::Modulation;
use hqw_qubo::sa::SaParams;
use std::sync::Arc;

/// Scenario shape per scale: (modulation, users, SNR grid, realizations).
fn scenario_shape(scale_name: &str) -> (Modulation, usize, Vec<f64>, usize) {
    match scale_name {
        "quick" => (Modulation::Qpsk, 3, vec![0.0, 8.0, 16.0, 24.0], 4),
        "full" => (
            Modulation::Qam16,
            4,
            (0..=10).map(|i| 3.0 * i as f64).collect(),
            50,
        ),
        _ => (
            Modulation::Qpsk,
            4,
            (0..=6).map(|i| 4.0 * i as f64).collect(),
            20,
        ),
    }
}

/// The full detector roster: ≥ 3 families, two of them QUBO/anneal-backed.
fn roster(seed: u64) -> Vec<ScenarioDetector> {
    let sa_params = SaParams {
        sweeps: 96,
        num_reads: 24,
        threads: 1, // the grid is the parallel level; keep reads serial
        ..Default::default()
    };
    let sampler = QuantumSampler::new(
        DWaveProfile::calibrated(),
        SamplerConfig {
            num_reads: 16,
            engine: EngineKind::Pimc { trotter_slices: 8 },
            threads: 1,
            ..Default::default()
        },
    );
    let hybrid = HybridSolver::new(
        sampler,
        HybridConfig {
            protocol: Protocol::paper_ra(0.65),
            initializer: Box::new(GreedyInitializer::default()),
        },
    );
    vec![
        ScenarioDetector::fixed(false, ZeroForcing),
        ScenarioDetector::noise_matched("MMSE", false, |nv| Arc::new(Mmse::new(nv))),
        ScenarioDetector::fixed(false, SphereDecoder::with_budget(100_000)),
        ScenarioDetector::fixed(false, KBest::new(8)),
        ScenarioDetector::fixed(false, Fcsd::new(1)),
        ScenarioDetector::fixed(true, QuboDetector::with_params(sa_params, seed)),
        ScenarioDetector::fixed(true, HybridDetector::new(hybrid, seed)),
    ]
}

fn main() {
    let opts = Options::from_args();
    opts.banner(
        "BER sweep",
        "end-to-end BER/SER-vs-SNR across every detector family",
    );

    let (modulation, n_users, snr_db, realizations) = scenario_shape(opts.scale_name);
    let config = SnrSweepConfig {
        n_users,
        n_rx: n_users,
        modulation,
        channel: ChannelModel::UnitGainRandomPhase,
        snr_db,
        realizations,
        seed: opts.seed,
        threads: opts.threads,
    };
    println!(
        "{} users, {}, {} SNR points x {} realizations, threads={} (0 = all cores)",
        config.n_users,
        config.modulation.name(),
        config.snr_db.len(),
        config.realizations,
        config.threads
    );
    println!();

    let detectors = roster(opts.seed);
    let report = run_ber_sweep(&config, &detectors);

    let mut table = Table::new(&[
        "detector",
        "snr_db",
        "ber",
        "ser",
        "bler",
        "goodput_bpcu",
        "avg_nodes",
        "avg_sweeps",
    ]);
    for series in &report.series {
        for p in &series.points {
            table.push_row(vec![
                series.detector.clone(),
                fnum(p.snr_db, 1),
                fnum(p.ber, 5),
                fnum(p.ser, 5),
                fnum(p.bler, 5),
                fnum(p.goodput_bpcu, 3),
                fnum(p.avg_nodes_visited, 1),
                fnum(p.avg_sweeps, 1),
            ]);
        }
    }
    println!("{}", table.render());

    let csv_path = opts.csv_path("fig_ber.csv");
    table.write_csv(&csv_path).expect("write CSV");
    println!("CSV written to {}", csv_path.display());

    let json_path = opts.json_path("BENCH_ber.json");
    report.write_json(&json_path).expect("write JSON report");
    println!("JSON report written to {}", json_path.display());
}
