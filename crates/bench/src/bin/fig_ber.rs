//! Registry shim: `ber — BER-vs-SNR scenario sweep across every detector family`
//!
//! The experiment wiring lives in the `hqw-bench` registry; this binary
//! exists for backwards compatibility with existing CI paths and scripts.
//! `hqw run ber` is the unified entry point and emits identical output.

fn main() {
    hqw_bench::registry::run_registered("ber");
}
