//! Figure 6: ΔE% sample distributions for FA, RA-random-init and RA-GS-init
//! on 36-variable instances of all four modulations.
//!
//! Paper result: RA from a random state is *worse* than FA (distribution
//! skewed to poor solutions); RA from the Greedy Search state is the best of
//! the three — the basis for the hybrid prototype.

use hqw_bench::cli::Options;
use hqw_core::experiments::run_fig6;
use hqw_core::report::{fnum, Table};

fn main() {
    let opts = Options::from_args();
    opts.banner(
        "Figure 6",
        "ΔE% distribution of anneal samples, 36-variable problems, per modulation",
    );
    let rows = run_fig6(opts.scale, opts.seed);

    let mut table = Table::new(&[
        "modulation",
        "arm",
        "s_p",
        "P10",
        "P25",
        "P50",
        "P75",
        "P90",
        "mean_dE%",
        "ground_frac",
    ]);
    let pick = |r: &hqw_core::experiments::Fig6Row, p: f64| -> f64 {
        r.percentiles
            .iter()
            .find(|(pp, _)| (*pp - p).abs() < 1e-9)
            .map(|(_, v)| *v)
            .unwrap_or(f64::NAN)
    };
    for r in &rows {
        table.push_row(vec![
            r.modulation.name().to_string(),
            r.arm.to_string(),
            fnum(r.s_p, 2),
            fnum(pick(r, 10.0), 2),
            fnum(pick(r, 25.0), 2),
            fnum(pick(r, 50.0), 2),
            fnum(pick(r, 75.0), 2),
            fnum(pick(r, 90.0), 2),
            fnum(r.mean_delta_e, 2),
            fnum(r.ground_fraction, 4),
        ]);
    }
    println!("{}", table.render());

    // The paper's qualitative ordering, checked per modulation.
    for m in hqw_phy::modulation::Modulation::ALL {
        let get = |arm: &str| {
            rows.iter()
                .find(|r| r.modulation == m && r.arm == arm)
                .map(|r| r.mean_delta_e)
        };
        if let (Some(fa), Some(ra_rand), Some(ra_gs)) = (get("FA"), get("RA-random"), get("RA-GS"))
        {
            let ordering_holds = ra_gs <= fa && fa <= ra_rand + 1e-9;
            println!(
                "{}: mean ΔE%  RA-GS {} ≤ FA {} ≤ RA-random {}  → paper ordering {}",
                m.name(),
                fnum(ra_gs, 2),
                fnum(fa, 2),
                fnum(ra_rand, 2),
                if ordering_holds { "HOLDS" } else { "differs" }
            );
        }
    }

    let path = opts.csv_path("fig6.csv");
    table.write_csv(&path).expect("write CSV");
    println!("CSV written to {}", path.display());
}
