//! Registry shim: `fig6 — ΔE% distributions for FA / RA-random / RA-GS (Figure 6)`
//!
//! The experiment wiring lives in the `hqw-bench` registry; this binary
//! exists for backwards compatibility with existing CI paths and scripts.
//! `hqw run fig6` is the unified entry point and emits identical output.

fn main() {
    hqw_bench::registry::run_registered("fig6");
}
