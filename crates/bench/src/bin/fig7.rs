//! Registry shim: `fig7 — RA performance vs initial-state quality (Figure 7)`
//!
//! The experiment wiring lives in the `hqw-bench` registry; this binary
//! exists for backwards compatibility with existing CI paths and scripts.
//! `hqw run fig7` is the unified entry point and emits identical output.

fn main() {
    hqw_bench::registry::run_registered("fig7");
}
