//! Figure 7: RA success probability and expected cost vs the quality of the
//! initial state (ΔE_IS%, binned in 2% steps), 8-user 16-QAM.
//!
//! Paper result: "the probability of success and the expectation value for
//! the cost function is generally better if the ΔE_IS% is low".

use hqw_bench::cli::Options;
use hqw_core::experiments::run_fig7;
use hqw_core::report::{fnum, Table};

fn main() {
    let opts = Options::from_args();
    opts.banner(
        "Figure 7",
        "RA success probability & E[cost] vs initial-state quality ΔE_IS% (8-user 16-QAM)",
    );
    let (s_p, rows) = run_fig7(opts.scale, opts.seed);
    println!("RA switch/pause location s_p = {}", fnum(s_p, 2));
    println!();

    let mut table = Table::new(&["dEis_bin_center_%", "n_states", "p_star", "E[cost]_dE%"]);
    for r in &rows {
        table.push_row(vec![
            fnum(r.bin_center, 1),
            r.n_states.to_string(),
            fnum(r.p_star, 4),
            fnum(r.mean_cost_delta_e, 2),
        ]);
    }
    println!("{}", table.render());

    // Trend check: success probability should broadly decrease with ΔE_IS%.
    if rows.len() >= 3 {
        let first = rows.first().unwrap();
        let last = rows.last().unwrap();
        println!(
            "Trend: p★ {} at ΔE_IS={}% vs {} at ΔE_IS={}% → {}",
            fnum(first.p_star, 3),
            fnum(first.bin_center, 1),
            fnum(last.p_star, 3),
            fnum(last.bin_center, 1),
            if first.p_star >= last.p_star {
                "decreasing (matches paper)"
            } else {
                "NOT decreasing"
            }
        );
    }

    let path = opts.csv_path("fig7.csv");
    table.write_csv(&path).expect("write CSV");
    println!("CSV written to {}", path.display());
}
