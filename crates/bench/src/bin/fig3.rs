//! Figure 3: the QUBO-simplification (Lewis–Glover preprocessing) sweep.
//!
//! Paper result: ratio of simplified instances and mean fixed-variable count
//! fall to zero by 32–40 variables for every modulation.

use hqw_bench::cli::Options;
use hqw_core::experiments::run_fig3;
use hqw_core::report::{fnum, Table};

fn main() {
    let opts = Options::from_args();
    opts.banner(
        "Figure 3",
        "QUBO-simplification preprocessing across problem sizes and modulations",
    );
    let instances = opts.scale.instances.max(10) * 5; // cheap: use many instances
    let rows = run_fig3(instances, opts.seed);

    let mut table = Table::new(&["modulation", "n_vars", "simplified_ratio", "avg_fixed_vars"]);
    for r in &rows {
        table.push_row(vec![
            r.modulation.name().to_string(),
            r.n_vars.to_string(),
            fnum(r.simplified_ratio, 3),
            fnum(r.avg_fixed, 2),
        ]);
    }
    println!("{}", table.render());
    println!("({} instances per point)", instances);

    let largest_simplified = rows
        .iter()
        .filter(|r| r.simplified_ratio > 0.0)
        .map(|r| r.n_vars)
        .max();
    match largest_simplified {
        Some(n) => println!(
            "Largest problem size with any simplification: {n} variables \
             (paper: no effect beyond 32–40)."
        ),
        None => println!("No instance simplified at any size."),
    }

    let path = opts.csv_path("fig3.csv");
    table.write_csv(&path).expect("write CSV");
    println!("CSV written to {}", path.display());
}
