//! Registry shim: `fig3 — QUBO-simplification preprocessing sweep (Figure 3)`
//!
//! The experiment wiring lives in the `hqw-bench` registry; this binary
//! exists for backwards compatibility with existing CI paths and scripts.
//! `hqw run fig3` is the unified entry point and emits identical output.

fn main() {
    hqw_bench::registry::run_registered("fig3");
}
