//! The headline claim (abstract / §1 / §4.3): the GS+RA hybrid achieves
//! roughly **2–10× better** success probability / processing time than
//! forward annealing on 8-user 16-QAM decoding.

use hqw_bench::cli::Options;
use hqw_core::experiments::run_headline;
use hqw_core::report::{fnum, Table};

fn main() {
    let opts = Options::from_args();
    opts.banner(
        "Headline",
        "best-parameter RA+GS vs best-parameter FA over 8-user 16-QAM instances",
    );
    let rows = run_headline(opts.scale, opts.seed);

    let mut table = Table::new(&[
        "instance",
        "GS_dEis%",
        "FA_best_p*",
        "FA_TTS_us",
        "RA_best_p*",
        "RA_TTS_us",
        "p*_ratio",
    ]);
    let mut ratios = Vec::new();
    let mut ra_only = 0usize;
    let mut fa_only = 0usize;
    let mut neither = 0usize;
    for r in &rows {
        let (fa_p, fa_tts) = r
            .fa_best
            .map(|p| (p.p_star, p.tts_us))
            .unwrap_or((0.0, f64::INFINITY));
        let (ra_p, ra_tts) = r
            .ra_best
            .map(|p| (p.p_star, p.tts_us))
            .unwrap_or((0.0, f64::INFINITY));
        let ratio = r.p_ratio();
        if let Some(x) = ratio {
            ratios.push(x);
        } else if ra_p > 0.0 {
            ra_only += 1;
        } else if fa_p > 0.0 {
            fa_only += 1;
        } else {
            neither += 1;
        }
        table.push_row(vec![
            r.instance.to_string(),
            fnum(r.gs_delta_e_is, 2),
            fnum(fa_p, 4),
            fnum(fa_tts, 1),
            fnum(ra_p, 4),
            fnum(ra_tts, 1),
            ratio.map(|x| fnum(x, 1)).unwrap_or_else(|| {
                if ra_p > 0.0 {
                    "RA-only".into()
                } else if fa_p > 0.0 {
                    "FA-only".into()
                } else {
                    "-".into()
                }
            }),
        ]);
    }
    println!("{}", table.render());

    if !ratios.is_empty() {
        ratios.sort_by(|a, b| a.partial_cmp(b).unwrap());
        println!(
            "p★ ratio RA/FA over {} comparable instances: min {} / median {} / max {}",
            ratios.len(),
            fnum(ratios[0], 1),
            fnum(ratios[ratios.len() / 2], 1),
            fnum(*ratios.last().unwrap(), 1),
        );
    }
    println!(
        "RA succeeded where FA failed on {ra_only} instance(s); FA-only: {fa_only}; neither: {neither}."
    );
    println!("(Paper: ~2–10× better success probability than published FA results.)");

    let path = opts.csv_path("headline.csv");
    table.write_csv(&path).expect("write CSV");
    println!("CSV written to {}", path.display());
}
