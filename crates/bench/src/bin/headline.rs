//! Registry shim: `headline — RA+GS vs FA success probability (abstract / §4.3)`
//!
//! The experiment wiring lives in the `hqw-bench` registry; this binary
//! exists for backwards compatibility with existing CI paths and scripts.
//! `hqw run headline` is the unified entry point and emits identical output.

fn main() {
    hqw_bench::registry::run_registered("headline");
}
