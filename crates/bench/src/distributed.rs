//! Runners for the distributed experiment plane: `hqw run --shard K/N`,
//! `hqw run --checkpoint`/`--resume`, and `hqw merge`.
//!
//! Every function here drives the same engines as [`crate::runs`] through
//! the per-point subset runners (`run_ber_points` / `run_stream_points` /
//! `run_fabric_points`), so a shard or a resumed run computes the exact
//! bytes the single-process run would have: `hqw merge` over any shard
//! partition — and a kill-and-resume cycle — reproduces the committed
//! `BENCH_*.json` byte-for-byte (the `shard-merge` CI job pins both).
//! Errors come back as user-facing strings; the `hqw` binary prints them
//! with the usage line and exits 2.

use crate::cli::Options;
use crate::runs;
use hqw_core::report::{write_creating_parents, PointRecord};
use hqw_core::shard::{
    grid_len, merge_shards, shard_ids, spec_fingerprint, Checkpoint, GridReport, ShardReport,
};
use hqw_core::spec::ExperimentSpec;
use hqw_core::{run_ber_points, run_fabric_points, run_stream_points};
use hqw_phy::detect::Mmse;
use std::fs::File;
use std::io::Write;
use std::path::Path;

/// The standard emission names (CSV under `--out`, JSON default) of a grid
/// family — the same pair [`crate::runs`] uses, so distributed output
/// lands where single-process output does.
fn emit_names(family: &str) -> (&'static str, &'static str) {
    match family {
        "ber" => ("fig_ber.csv", "BENCH_ber.json"),
        "stream" => ("fig_stream.csv", "BENCH_stream.json"),
        "fabric" => ("fig_fabric.csv", "BENCH_fabric.json"),
        "sched" => ("fig_sched.csv", "BENCH_sched.json"),
        other => unreachable!("no emission names for unshardable family '{other}'"),
    }
}

/// Computes the point records for an id-subset of a spec's grid, with the
/// exact per-point seeds of the full run (ids must be strictly increasing
/// and in range — [`shard_ids`] and [`Checkpoint::remaining_ids`] both
/// produce such subsets).
///
/// # Errors
/// Returns a message for specs without a shardable grid (canned figures,
/// realtime fabric, empty grids).
pub fn run_spec_points(spec: &ExperimentSpec, ids: &[usize]) -> Result<Vec<PointRecord>, String> {
    grid_len(spec).map_err(|e| e.to_string())?;
    Ok(match spec {
        ExperimentSpec::Ber(config) => {
            let detectors = runs::roster(config.seed);
            run_ber_points(config, &detectors, ids)
                .iter()
                .map(|column| column.to_record())
                .collect()
        }
        ExperimentSpec::Stream(config) => {
            let classical = Mmse::new(config.track.noise_variance);
            run_stream_points(config, &classical, ids)
                .iter()
                .zip(ids)
                .map(|(cell, &id)| PointRecord {
                    id,
                    payload: cell.to_json_object(),
                })
                .collect()
        }
        ExperimentSpec::Fabric(config) => run_fabric_points(config, ids)
            .iter()
            .zip(ids)
            .map(|(point, &id)| PointRecord {
                id,
                payload: point.to_json_object(),
            })
            .collect(),
        ExperimentSpec::Sched(config) => hqw_core::run_sched_points(config, ids)
            .iter()
            .zip(ids)
            .map(|(point, &id)| PointRecord {
                id,
                payload: point.to_json_object(),
            })
            .collect(),
        ExperimentSpec::Canned(_) => unreachable!("grid_len rejects canned specs"),
    })
}

/// Runs shard `index`/`count` of a spec's grid and writes the
/// [`ShardReport`] document (default name
/// `SHARD_<family>_<index>of<count>.json`, `--json` overrides).
///
/// # Errors
/// Returns a message for unshardable specs or write failures.
pub fn run_shard(
    spec: &ExperimentSpec,
    opts: &Options,
    index: usize,
    count: usize,
) -> Result<(), String> {
    let total = grid_len(spec).map_err(|e| e.to_string())?;
    let ids = shard_ids(total, index, count);
    println!(
        "=== {} shard {index}/{count}: {} of {total} grid points",
        spec.family(),
        ids.len()
    );
    println!(
        "    fingerprint={} seed={}",
        spec_fingerprint(spec),
        spec.seed()
    );
    println!();
    let records = run_spec_points(spec, &ids)?;
    let shard = ShardReport::new(spec, index, count, records).map_err(|e| e.to_string())?;
    let default_name = format!("SHARD_{}_{index}of{count}.json", spec.family());
    let path = opts.json_path(&default_name);
    write_creating_parents(&path, &shard.to_json())
        .map_err(|e| format!("cannot write shard report '{}': {e}", path.display()))?;
    println!("shard report written to {}", path.display());
    Ok(())
}

/// Runs `ids` in thread-count-sized waves, appending each completed wave
/// to the journal before starting the next, so a kill loses at most one
/// wave of work.
fn run_and_journal(
    spec: &ExperimentSpec,
    file: &mut File,
    path: &Path,
    ids: &[usize],
) -> Result<Vec<PointRecord>, String> {
    let wave = match spec.threads() {
        0 => std::thread::available_parallelism().map_or(1, |n| n.get()),
        n => n,
    };
    let mut all = Vec::with_capacity(ids.len());
    for chunk in ids.chunks(wave) {
        let records = run_spec_points(spec, chunk)?;
        let mut buf = String::new();
        for record in &records {
            buf.push_str(&Checkpoint::point_line(record));
            buf.push('\n');
        }
        file.write_all(buf.as_bytes())
            .and_then(|()| file.flush())
            .map_err(|e| format!("cannot append to checkpoint '{}': {e}", path.display()))?;
        all.extend(records);
    }
    Ok(all)
}

/// Emits a reassembled grid report through the family's standard
/// table/CSV/JSON conventions — the same call the single-process runner
/// makes, so the output is byte-identical.
fn emit_grid(grid: &GridReport, opts: &Options) {
    let (csv_name, json_default) = emit_names(grid.as_report().name());
    opts.emit_report(grid.as_report(), csv_name, json_default);
}

/// Runs a full grid while journaling completed points to a fresh JSONL
/// checkpoint at `path`, then emits the ordinary report.
///
/// # Errors
/// Returns a message when `path` already exists (use `--resume`), for
/// unshardable specs, or on I/O failures.
pub fn run_checkpointed(spec: &ExperimentSpec, opts: &Options, path: &Path) -> Result<(), String> {
    if path.exists() {
        return Err(format!(
            "checkpoint '{}' already exists; use --resume to continue it",
            path.display()
        ));
    }
    let total = grid_len(spec).map_err(|e| e.to_string())?;
    let header = Checkpoint::header_line(spec).map_err(|e| e.to_string())?;
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)
                .map_err(|e| format!("cannot create checkpoint directory: {e}"))?;
        }
    }
    let mut file = File::create(path)
        .map_err(|e| format!("cannot create checkpoint '{}': {e}", path.display()))?;
    writeln!(file, "{header}")
        .and_then(|()| file.flush())
        .map_err(|e| format!("cannot write checkpoint '{}': {e}", path.display()))?;
    println!(
        "checkpointing {total} {} point(s) to {}",
        spec.family(),
        path.display()
    );
    let ids: Vec<usize> = (0..total).collect();
    let records = run_and_journal(spec, &mut file, path, &ids)?;
    let grid = GridReport::from_points(spec, records).map_err(|e| e.to_string())?;
    emit_grid(&grid, opts);
    Ok(())
}

/// Resumes a checkpointed run: parses the journal (repairing any torn
/// trailing line in place), runs only the missing points, and emits the
/// identical final report.
///
/// # Errors
/// Returns a message for an unreadable/corrupt journal or I/O failures.
pub fn run_resume(path: &Path, opts: &Options) -> Result<(), String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read checkpoint '{}': {e}", path.display()))?;
    let ck = Checkpoint::parse(&text)
        .map_err(|e| format!("invalid checkpoint '{}': {e}", path.display()))?;
    // Rewrite the repaired journal before appending: a torn tail from the
    // killed run must not end up mid-file.
    std::fs::write(path, ck.render())
        .map_err(|e| format!("cannot rewrite checkpoint '{}': {e}", path.display()))?;
    let remaining = ck.remaining_ids();
    println!(
        "resuming {} from {}: {}/{} point(s) done, {} to run",
        ck.spec.family(),
        path.display(),
        ck.points.len(),
        ck.total_points,
        remaining.len()
    );
    let mut points = ck.points.clone();
    if !remaining.is_empty() {
        let mut file = std::fs::OpenOptions::new()
            .append(true)
            .open(path)
            .map_err(|e| format!("cannot reopen checkpoint '{}': {e}", path.display()))?;
        points.extend(run_and_journal(&ck.spec, &mut file, path, &remaining)?);
        points.sort_by_key(|p| p.id);
    }
    let grid = GridReport::from_points(&ck.spec, points).map_err(|e| e.to_string())?;
    emit_grid(&grid, opts);
    Ok(())
}

/// Merges shard report files into the ordinary single-run report (default
/// output: the family's `BENCH_*.json`), printing the merged table.
///
/// # Errors
/// Returns a message for unreadable/invalid shard files, mixed
/// fingerprints, overlapping point sets, missing points, or write
/// failures.
pub fn run_merge(paths: &[String], out: Option<&Path>) -> Result<(), String> {
    let mut shards = Vec::with_capacity(paths.len());
    for path in paths {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read shard file '{path}': {e}"))?;
        let shard =
            ShardReport::parse(&text).map_err(|e| format!("invalid shard file '{path}': {e}"))?;
        shards.push((path.clone(), shard));
    }
    let grid = merge_shards(&shards).map_err(|e| e.to_string())?;
    let report = grid.as_report();
    let (_, json_default) = emit_names(report.name());
    let path = out.unwrap_or_else(|| Path::new(json_default));
    report
        .write_json(path)
        .map_err(|e| format!("cannot write merged report '{}': {e}", path.display()))?;
    println!("{}", report.render_table());
    println!("merged {} shard(s) into {}", shards.len(), path.display());
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use hqw_core::report::MergeableReport;

    fn quick_spec(family: &str) -> ExperimentSpec {
        let opts =
            Options::parse(["--quick".to_string(), "--seed".to_string(), "5".to_string()]).unwrap();
        crate::registry::spec(family, &opts).unwrap()
    }

    #[test]
    fn stream_points_match_the_full_grid_run() {
        let spec = quick_spec("stream");
        let ExperimentSpec::Stream(config) = &spec else {
            unreachable!()
        };
        // Shrink the grid so the test stays fast.
        let mut config = config.clone();
        config.frames = 8;
        config.rhos = vec![0.0, 0.9];
        config.arrival_periods_us = vec![400.0, 120.0];
        let spec = ExperimentSpec::Stream(config.clone());
        let total = grid_len(&spec).unwrap();

        let classical = Mmse::new(config.track.noise_variance);
        let full = hqw_core::run_stream_grid(&config, &classical);
        let mut halves: Vec<PointRecord> = Vec::new();
        for index in 1..=2 {
            halves.extend(run_spec_points(&spec, &shard_ids(total, index, 2)).unwrap());
        }
        halves.sort_by_key(|p| p.id);
        let rebuilt =
            hqw_core::StreamGridReport::from_points(&spec, halves).expect("records merge");
        assert_eq!(rebuilt.to_json(), full.to_json());
    }

    #[test]
    fn fabric_points_match_the_full_grid_run() {
        let spec = quick_spec("fabric");
        let ExperimentSpec::Fabric(config) = &spec else {
            unreachable!()
        };
        let mut config = config.clone();
        config.frames_per_cell = 6;
        config.cell_counts = vec![2];
        config.arrival_periods_us = vec![400.0, 120.0];
        config.mixes.truncate(2);
        let spec = ExperimentSpec::Fabric(config.clone());
        let total = grid_len(&spec).unwrap();

        let full = hqw_core::run_fabric_grid(&config);
        let mut parts: Vec<PointRecord> = Vec::new();
        for index in 1..=3 {
            parts.extend(run_spec_points(&spec, &shard_ids(total, index, 3)).unwrap());
        }
        parts.sort_by_key(|p| p.id);
        let rebuilt = hqw_core::FabricGridReport::from_points(&spec, parts).expect("records merge");
        assert_eq!(rebuilt.to_json(), full.to_json());
    }

    #[test]
    fn sched_points_match_the_full_grid_run() {
        // Satellite of the adaptive-scheduling plane: sharding a sched grid
        // must not lose per-class aggregation — the merged report (whose
        // summary block is recomputed from merged per-class histograms) is
        // byte-identical to the single-process run.
        let spec = quick_spec("sched");
        let ExperimentSpec::Sched(config) = &spec else {
            unreachable!()
        };
        let mut config = config.clone();
        config.frames_per_cell = 8;
        let spec = ExperimentSpec::Sched(config.clone());
        let total = grid_len(&spec).unwrap();

        let full = hqw_core::run_sched_grid(&config);
        let mut parts: Vec<PointRecord> = Vec::new();
        for index in 1..=3 {
            parts.extend(run_spec_points(&spec, &shard_ids(total, index, 3)).unwrap());
        }
        parts.sort_by_key(|p| p.id);
        let rebuilt = hqw_core::SchedGridReport::from_points(&spec, parts).expect("records merge");
        assert_eq!(rebuilt.to_json(), full.to_json());
    }

    #[test]
    fn unshardable_specs_are_reported() {
        let err = run_spec_points(&quick_spec("fabric-rt"), &[0]).unwrap_err();
        assert!(err.contains("realtime"), "{err}");
        let err = run_spec_points(&quick_spec("fig3"), &[0]).unwrap_err();
        assert!(err.contains("no point grid"), "{err}");
    }
}
