//! Golden-equivalence tests for the unified runner.
//!
//! The refactor's contract: routing an experiment through the spec layer +
//! registry must emit **byte-identical** JSON to the legacy hand-wired
//! path at the same seed/thread count. CI additionally pins the full
//! binary-level equivalence (`hqw run ber --quick` vs `fig-ber --quick`
//! via `cmp`); these tests pin the same property at library level and at
//! test-friendly scale, so a drift shows up in `cargo test` before it
//! shows up in CI.

use hqw_bench::cli::Options;
use hqw_bench::{registry, runs};
use hqw_core::report::Report;
use hqw_core::scenario::run_ber_sweep;
use hqw_core::spec::ExperimentSpec;
use hqw_core::stream::{run_stream_grid, DispatchPolicy};
use hqw_core::{run_fabric_grid, FabricGridConfig, SnrSweepConfig, StreamGridConfig};
use hqw_phy::channel::snr_db_to_noise_variance;
use hqw_phy::detect::Mmse;
use hqw_phy::modulation::Modulation;

fn opts(args: &[&str]) -> Options {
    Options::parse(args.iter().map(|s| s.to_string())).expect("valid flags")
}

/// The registry's `ber --quick` preset must match the shape the legacy
/// `fig-ber` binary hard-coded (the shape that produced the committed
/// `BENCH_ber.json`), and running it through the spec codec must change
/// nothing.
#[test]
fn ber_quick_preset_matches_the_legacy_shape_and_survives_the_codec() {
    let spec = registry::spec("ber", &opts(&["--quick", "--seed", "2026"])).unwrap();
    let ExperimentSpec::Ber(config) = &spec else {
        panic!("ber preset must be a Ber spec")
    };
    assert_eq!(config.n_users, 3);
    assert_eq!(config.modulation, Modulation::Qpsk);
    assert_eq!(config.snr_db, vec![0.0, 8.0, 16.0, 24.0]);
    assert_eq!(config.realizations, 4);
    assert_eq!(config.seed, 2026);

    let reparsed = ExperimentSpec::parse(&spec.to_json()).expect("preset serializes");
    assert_eq!(reparsed, spec);
}

/// A reduced BER sweep produces byte-identical JSON whether the config is
/// used directly or round-tripped through the spec document first — the
/// codec introduces no drift in the numbers that drive the simulation.
#[test]
fn ber_report_is_byte_identical_through_the_spec_codec() {
    let config = SnrSweepConfig::builder(3, Modulation::Qpsk)
        .snr_db(vec![4.0, 20.0])
        .realizations(2)
        .seed(2026)
        .threads(1)
        .build()
        .expect("valid config");
    let direct = run_ber_sweep(&config, &runs::roster(config.seed)).to_json();

    let spec = ExperimentSpec::Ber(config);
    let ExperimentSpec::Ber(parsed) =
        ExperimentSpec::parse(&spec.to_json()).expect("spec round-trips")
    else {
        panic!("parsed spec changed family")
    };
    let via_codec = run_ber_sweep(&parsed, &runs::roster(parsed.seed)).to_json();
    assert_eq!(direct, via_codec);
}

/// Same property for the stream engine, at reduced scale: the preset
/// shape is pinned and the codec is transparent to the simulation.
#[test]
fn stream_report_is_byte_identical_through_the_spec_codec() {
    let spec = registry::spec("stream", &opts(&["--quick"])).unwrap();
    let ExperimentSpec::Stream(preset) = &spec else {
        panic!("stream preset must be a Stream spec")
    };
    assert_eq!(preset.frames, 64);
    assert_eq!(preset.rhos, vec![0.0, 0.5, 0.95]);
    assert_eq!(preset.arrival_periods_us, vec![400.0, 160.0, 90.0]);
    assert_eq!(preset.policies, DispatchPolicy::ALL.to_vec());

    // Reduced-scale run through the codec.
    let config = StreamGridConfig {
        frames: 16,
        arrival_periods_us: vec![300.0, 90.0],
        rhos: vec![0.0, 0.95],
        ..preset.clone()
    };
    let classical = Mmse::new(config.track.noise_variance);
    let direct = run_stream_grid(&config, &classical).to_json();

    let ExperimentSpec::Stream(parsed) =
        ExperimentSpec::parse(&ExperimentSpec::Stream(config).to_json()).expect("round-trips")
    else {
        panic!("parsed spec changed family")
    };
    let via_codec = run_stream_grid(&parsed, &classical).to_json();
    assert_eq!(direct, via_codec);
}

/// Same property for the fabric engine, at reduced scale.
#[test]
fn fabric_report_is_byte_identical_through_the_spec_codec() {
    let spec = registry::spec("fabric", &opts(&["--quick"])).unwrap();
    let ExperimentSpec::Fabric(preset) = &spec else {
        panic!("fabric preset must be a Fabric spec")
    };
    assert_eq!(preset.frames_per_cell, 24);
    assert_eq!(preset.cell_counts, vec![2, 4]);
    assert_eq!(preset.mixes.len(), 4);
    assert_eq!(
        preset.track.noise_variance,
        snr_db_to_noise_variance(14.0, 2)
    );

    let config = FabricGridConfig {
        frames_per_cell: 8,
        cell_counts: vec![2],
        arrival_periods_us: vec![200.0],
        mixes: preset.mixes[..2].to_vec(),
        ..preset.clone()
    };
    let direct = run_fabric_grid(&config).to_json();

    let ExperimentSpec::Fabric(parsed) =
        ExperimentSpec::parse(&ExperimentSpec::Fabric(config).to_json()).expect("round-trips")
    else {
        panic!("parsed spec changed family")
    };
    let via_codec = run_fabric_grid(&parsed).to_json();
    assert_eq!(direct, via_codec);
}

/// The Report trait's CSV/table renderings agree with each other and with
/// the JSON on shape: every emission of one run comes from one report
/// value (the dedupe the trait exists for).
#[test]
fn report_surfaces_agree_on_shape() {
    let config = SnrSweepConfig::builder(2, Modulation::Qpsk)
        .snr_db(vec![10.0])
        .realizations(1)
        .seed(5)
        .threads(1)
        .build()
        .expect("valid config");
    let report = run_ber_sweep(&config, &runs::roster(config.seed));
    assert_eq!(Report::name(&report), "ber");
    assert_eq!(report.schema_version(), 1);

    let table = report.render_table();
    let csv = report.to_csv();
    // One CSV row per (detector, point) plus the header; the table adds a
    // separator line.
    let rows = runs::roster(config.seed).len();
    assert_eq!(csv.lines().count(), rows + 1);
    assert_eq!(table.lines().count(), rows + 2);
    assert!(csv.starts_with("detector,snr_db,"));
    assert_eq!(Report::to_json(&report), report.to_json());
}
