//! Criterion benchmarks of the workspace's hot kernels.
//!
//! These quantify the compute costs behind the paper's Challenge 3
//! (pipelining): what a classical initializer costs versus a simulated
//! anneal read, and the per-component costs of the reduction pipeline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hqw_anneal::sampler::{EngineKind, QuantumSampler, SamplerConfig};
use hqw_anneal::{AnnealSchedule, DWaveProfile};
use hqw_math::linalg::QrReal;
use hqw_math::{RMatrix, Rng64};
use hqw_phy::detect::{Detector, KBest, SphereDecoder, ZeroForcing};
use hqw_phy::instance::{DetectionInstance, InstanceConfig};
use hqw_phy::modulation::Modulation;
use hqw_phy::reduction::reduce_to_qubo;
use hqw_qubo::generator::random_qubo;
use hqw_qubo::sa::{sample_qubo, SaParams};
use hqw_qubo::tabu::{tabu_from_random, TabuParams};
use hqw_qubo::{greedy_search, Qubo};
use std::hint::black_box;

fn bench_qubo_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("qubo");
    for &n in &[16usize, 36, 64] {
        let mut rng = Rng64::new(1);
        let q = random_qubo(n, &mut rng);
        let bits: Vec<u8> = (0..n).map(|_| rng.next_bool() as u8).collect();
        group.bench_with_input(BenchmarkId::new("energy", n), &n, |b, _| {
            b.iter(|| black_box(q.energy(black_box(&bits))))
        });
        group.bench_with_input(BenchmarkId::new("flip_delta", n), &n, |b, _| {
            b.iter(|| black_box(q.flip_delta(black_box(&bits), n / 2)))
        });
        group.bench_with_input(BenchmarkId::new("greedy_search", n), &n, |b, _| {
            b.iter(|| black_box(greedy_search(&q, Default::default())))
        });
    }
    group.finish();
}

fn bench_classical_solvers(c: &mut Criterion) {
    let mut group = c.benchmark_group("classical_solvers");
    group.sample_size(20);
    let mut rng = Rng64::new(2);
    let q: Qubo = random_qubo(36, &mut rng);
    group.bench_function("sa_36var_32reads", |b| {
        let params = SaParams {
            num_reads: 32,
            sweeps: 64,
            ..Default::default()
        };
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            black_box(sample_qubo(&q, &params, &mut Rng64::new(seed)))
        })
    });
    group.bench_function("tabu_36var", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            black_box(tabu_from_random(
                &q,
                &TabuParams::default(),
                &mut Rng64::new(seed),
            ))
        })
    });
    group.finish();
}

fn bench_reduction(c: &mut Criterion) {
    let mut group = c.benchmark_group("reduction");
    for &(users, m) in &[(8usize, Modulation::Qam16), (18, Modulation::Qpsk)] {
        let mut rng = Rng64::new(3);
        let inst = DetectionInstance::generate(&InstanceConfig::paper(users, m), &mut rng);
        group.bench_with_input(
            BenchmarkId::new("ml_to_qubo", format!("{}x{}", users, m.name())),
            &users,
            |b, _| {
                b.iter(|| {
                    black_box(reduce_to_qubo(
                        black_box(&inst.system),
                        black_box(&inst.h),
                        black_box(&inst.y),
                    ))
                })
            },
        );
    }
    group.finish();
}

fn bench_detectors(c: &mut Criterion) {
    let mut group = c.benchmark_group("detectors");
    group.sample_size(20);
    let mut rng = Rng64::new(4);
    let inst = DetectionInstance::generate(&InstanceConfig::paper(8, Modulation::Qam16), &mut rng);
    group.bench_function("zf_8x8_qam16", |b| {
        b.iter(|| black_box(ZeroForcing.detect(&inst.system, &inst.h, &inst.y)))
    });
    group.bench_function("kbest8_8x8_qam16", |b| {
        let det = KBest::new(8);
        b.iter(|| black_box(det.detect(&inst.system, &inst.h, &inst.y)))
    });
    group.bench_function("sphere_8x8_qam16_noiseless", |b| {
        let det = SphereDecoder::exact();
        b.iter(|| black_box(det.detect(&inst.system, &inst.h, &inst.y)))
    });
    group.finish();
}

fn bench_linalg(c: &mut Criterion) {
    let mut group = c.benchmark_group("linalg");
    for &n in &[16usize, 64] {
        let mut rng = Rng64::new(5);
        let a = RMatrix::from_fn(n, n, |_, _| rng.next_gaussian());
        group.bench_with_input(BenchmarkId::new("qr", n), &n, |b, _| {
            b.iter(|| black_box(QrReal::new(black_box(&a))))
        });
    }
    group.finish();
}

fn bench_anneal_read(c: &mut Criterion) {
    let mut group = c.benchmark_group("anneal");
    group.sample_size(10);
    let mut rng = Rng64::new(6);
    let inst = DetectionInstance::generate(&InstanceConfig::paper(8, Modulation::Qam16), &mut rng);
    let (gs_bits, _) = greedy_search(&inst.reduction.qubo, Default::default());
    for (label, engine) in [
        ("pimc16", EngineKind::Pimc { trotter_slices: 16 }),
        ("svmc", EngineKind::Svmc),
    ] {
        let sampler = QuantumSampler::new(
            DWaveProfile::calibrated(),
            SamplerConfig {
                num_reads: 8,
                engine,
                threads: 1,
                ..Default::default()
            },
        );
        let ra = AnnealSchedule::reverse(0.69, 1.0).unwrap();
        group.bench_function(format!("ra_8reads_32var_{label}"), |b| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                black_box(sampler.sample_qubo(&inst.reduction.qubo, &ra, Some(&gs_bits), seed))
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_qubo_kernels,
    bench_classical_solvers,
    bench_reduction,
    bench_detectors,
    bench_linalg,
    bench_anneal_read
);
criterion_main!(benches);
