//! Hot-kernel benchmarks with a JSON trajectory emitter (std-only harness).
//!
//! The build environment is offline, so this harness is hand-rolled rather
//! than Criterion: each benchmark runs a warm-up, then `REPEATS` timed
//! batches, and reports the **minimum** per-iteration time (the usual
//! low-noise estimator for CPU-bound kernels).
//!
//! The headline comparison is the sweep-kernel rework: the pre-change kernel
//! recomputed the local field from the `Vec<Vec<(usize, f64)>>` adjacency
//! list on every proposal (O(degree) per proposal), while the current kernel
//! sweeps a flat CSR representation with incrementally-maintained local
//! fields (O(1) per proposal, O(degree) only on accepted flips). The
//! baseline kernel is reproduced verbatim below so the speedup stays
//! measurable as the optimized kernel evolves.
//!
//! Output: a human-readable table on stdout plus `BENCH_kernels.json` at the
//! workspace root (override with the `BENCH_OUT` environment variable), so
//! successive PRs accumulate a performance trajectory. Run with:
//!
//! ```text
//! cargo bench -p hqw-bench
//! ```

use hqw_anneal::sampler::{EngineKind, QuantumSampler, SamplerConfig};
use hqw_anneal::{AnnealSchedule, DWaveProfile};
use hqw_math::Rng64;
use hqw_qubo::csr::CsrIsing;
use hqw_qubo::generator::sparse_random_qubo;
use hqw_qubo::sa::{sa_read_csr, sample_qubo, SaParams};
use hqw_qubo::{Ising, Qubo};
use std::hint::black_box;
use std::time::Instant;

/// Timed batches per benchmark (minimum wins).
const REPEATS: usize = 5;

/// One benchmark measurement.
struct Measurement {
    name: String,
    /// Problem size (spins), when meaningful.
    n: usize,
    /// Iterations per timed batch.
    iters: usize,
    /// Best-of-`REPEATS` nanoseconds per iteration.
    ns_per_iter: f64,
}

/// Runs `f` for `iters` iterations per batch, `REPEATS` batches after one
/// warm-up batch, returning the minimum ns/iter.
fn bench<F: FnMut()>(name: &str, n: usize, iters: usize, mut f: F) -> Measurement {
    for _ in 0..iters {
        f(); // warm-up
    }
    let mut best = f64::INFINITY;
    for _ in 0..REPEATS {
        let start = Instant::now();
        for _ in 0..iters {
            f();
        }
        let ns = start.elapsed().as_nanos() as f64 / iters as f64;
        best = best.min(ns);
    }
    println!("{name:<44} {:>12.0} ns/iter  (n={n}, iters={iters})", best);
    Measurement {
        name: name.to_string(),
        n,
        iters,
        ns_per_iter: best,
    }
}

/// The **pre-change** SA sweep kernel, reproduced exactly: recomputes the
/// local field from the adjacency list on every proposal.
fn sa_read_ising_baseline(
    ising: &Ising,
    params: &SaParams,
    start: &[i8],
    rng: &mut Rng64,
) -> Vec<i8> {
    let n = ising.num_vars();
    let mut spins = start.to_vec();
    let ratio = if params.sweeps > 1 {
        (params.beta_final / params.beta_initial).powf(1.0 / (params.sweeps - 1) as f64)
    } else {
        1.0
    };
    let mut beta = params.beta_initial;
    for _ in 0..params.sweeps {
        for k in 0..n {
            let delta = ising.flip_delta(&spins, k);
            if delta <= 0.0 || rng.next_f64() < (-beta * delta).exp() {
                spins[k] = -spins[k];
            }
        }
        beta *= ratio;
    }
    spins
}

fn random_spins(n: usize, rng: &mut Rng64) -> Vec<i8> {
    (0..n)
        .map(|_| if rng.next_bool() { 1 } else { -1 })
        .collect()
}

/// Sweep-kernel before/after at several sizes; returns measurements plus
/// `(size, speedup)` pairs.
fn bench_sweep_kernels(out: &mut Vec<Measurement>) -> Vec<(usize, f64)> {
    let mut speedups = Vec::new();
    // Density 1.0 = the paper's regime: the ML→QUBO reduction produces fully
    // dense couplings, which is exactly where per-proposal O(degree)
    // recomputation hurts most. The sparse point tracks hardware-graph-like
    // (embedded/Chimera) workloads.
    for &(n, density, sweeps, iters) in
        &[(256usize, 1.0f64, 128usize, 10usize), (512, 0.10, 64, 10)]
    {
        let mut rng = Rng64::new(12);
        let q = sparse_random_qubo(n, density, &mut rng);
        let (ising, _) = q.to_ising();
        let csr = CsrIsing::from_ising(&ising);
        let start = random_spins(n, &mut rng);
        let params = SaParams {
            sweeps,
            num_reads: 1,
            ..SaParams::default()
        };

        let mut seed = 0u64;
        let base = bench(&format!("sa_sweep/baseline_adjlist/{n}"), n, iters, || {
            seed += 1;
            black_box(sa_read_ising_baseline(
                &ising,
                &params,
                black_box(&start),
                &mut Rng64::new(seed),
            ));
        });
        let mut seed2 = 0u64;
        let incr = bench(&format!("sa_sweep/incremental_csr/{n}"), n, iters, || {
            seed2 += 1;
            black_box(sa_read_csr(
                &csr,
                &params,
                black_box(&start),
                &mut Rng64::new(seed2),
            ));
        });
        let speedup = base.ns_per_iter / incr.ns_per_iter;
        println!("  -> sweep-kernel speedup at {n} spins: {speedup:.2}x");
        speedups.push((n, speedup));
        out.push(base);
        out.push(incr);
    }
    speedups
}

/// Parallel-read scaling of `sample_qubo` (bit-identical output per seed).
fn bench_parallel_reads(out: &mut Vec<Measurement>) {
    let n = 256;
    let mut rng = Rng64::new(13);
    let q: Qubo = sparse_random_qubo(n, 0.1, &mut rng);
    for &threads in &[1usize, 0] {
        let params = SaParams {
            sweeps: 32,
            num_reads: 16,
            threads,
            ..SaParams::default()
        };
        let label = if threads == 1 { "serial" } else { "all-cores" };
        let mut seed = 0u64;
        out.push(bench(
            &format!("sample_qubo/16reads_{label}/{n}"),
            n,
            5,
            || {
                seed += 1;
                black_box(sample_qubo(&q, &params, &mut Rng64::new(seed)));
            },
        ));
    }
}

/// Annealer-engine read costs on a medium instance (trajectory numbers for
/// the incremental PIMC/SVMC slice sweeps).
fn bench_engine_reads(out: &mut Vec<Measurement>) {
    let n = 64;
    let mut rng = Rng64::new(14);
    let q = sparse_random_qubo(n, 0.3, &mut rng);
    let schedule = AnnealSchedule::reverse(0.69, 1.0).unwrap();
    let init: Vec<u8> = (0..n).map(|_| rng.next_bool() as u8).collect();
    for (label, engine) in [
        ("pimc16", EngineKind::Pimc { trotter_slices: 16 }),
        ("svmc", EngineKind::Svmc),
    ] {
        let sampler = QuantumSampler::new(
            DWaveProfile::calibrated(),
            SamplerConfig {
                num_reads: 4,
                engine,
                threads: 1,
                ..Default::default()
            },
        );
        let mut seed = 0u64;
        out.push(bench(&format!("anneal_read/ra_{label}/{n}"), n, 5, || {
            seed += 1;
            black_box(sampler.sample_qubo(&q, &schedule, Some(&init), seed));
        }));
    }
}

/// Minimal JSON emitter (no external crates available offline).
fn write_json(path: &std::path::Path, results: &[Measurement], speedups: &[(usize, f64)]) {
    let mut s = String::new();
    s.push_str("{\n  \"bench\": \"kernels\",\n  \"results\": [\n");
    for (i, m) in results.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"name\": \"{}\", \"n\": {}, \"iters\": {}, \"ns_per_iter\": {:.1}}}{}\n",
            m.name,
            m.n,
            m.iters,
            m.ns_per_iter,
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    s.push_str("  ],\n  \"derived\": {\n");
    for (i, (n, sp)) in speedups.iter().enumerate() {
        s.push_str(&format!(
            "    \"sa_sweep_speedup_{n}\": {sp:.2}{}\n",
            if i + 1 < speedups.len() { "," } else { "" }
        ));
    }
    s.push_str("  }\n}\n");
    std::fs::write(path, s).expect("write bench JSON");
    println!("wrote {}", path.display());
}

fn main() {
    // `--bench` / filter arguments from `cargo bench` are accepted and
    // ignored; the suite is small enough to always run whole.
    let mut results = Vec::new();
    let speedups = bench_sweep_kernels(&mut results);
    bench_parallel_reads(&mut results);
    bench_engine_reads(&mut results);

    let default_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_kernels.json");
    let path = std::env::var("BENCH_OUT").unwrap_or_else(|_| default_path.to_string());
    write_json(std::path::Path::new(&path), &results, &speedups);

    // Wall-clock assertions are opt-in: shared CI runners are too noisy to
    // gate merges on timing ratios. Set BENCH_ASSERT_MIN_SPEEDUP (e.g. 3.0)
    // to enforce, locally or on a quiet box, that at least one ≥256-spin
    // instance meets the bar (the dense instance is the headline; the sparse
    // point has a lower algorithmic ceiling — speedup scales with degree).
    if let Ok(min) = std::env::var("BENCH_ASSERT_MIN_SPEEDUP") {
        let min: f64 = min.parse().expect("BENCH_ASSERT_MIN_SPEEDUP: not a number");
        let best = speedups.iter().map(|&(_, sp)| sp).fold(0.0, f64::max);
        assert!(
            best >= min,
            "best sweep-kernel speedup is {best:.2}x, below the required {min}x ({speedups:?})"
        );
    }
}
