//! Hot-kernel benchmarks with a JSON trajectory emitter (std-only harness).
//!
//! The build environment is offline, so this harness is hand-rolled rather
//! than Criterion: each benchmark runs a warm-up, then `REPEATS` timed
//! batches, and reports **min / median / stddev** per-iteration times (min
//! is the low-noise estimator for CPU-bound kernels and drives every derived
//! ratio; median and stddev expose how noisy the box was). Kernels being
//! compared against each other run **interleaved** — batch 1 of A, batch 1
//! of B, batch 2 of A, … — so slow drift (thermal throttling, a background
//! task) biases both sides equally instead of whichever ran last.
//!
//! The headline comparisons are the sweep-kernel reworks:
//!
//! * `baseline_adjlist` — the pre-change kernel, reproduced verbatim below:
//!   recomputes the local field from the `Vec<Vec<(usize, f64)>>` adjacency
//!   list on every proposal (O(degree) per proposal).
//! * `incremental_csr` — the `Exact` kernel: flat CSR, incrementally
//!   maintained local fields (O(1) per proposal), contiguous-run AXPY
//!   neighbor updates. Bit-identical to the historical outputs.
//! * `fast_csr` — the `Fast` kernel: bit-packed spins, f32 fields,
//!   graph-colored sweep order, draw-skipping accepts/rejects.
//!   Statistically equivalent, not bit-identical.
//!
//! The PIMC/SVMC engine reads are likewise measured in `Exact` and `Fast`
//! kernel modes. Output: a human-readable table on stdout plus
//! `BENCH_kernels.json` at the workspace root (override with the
//! `BENCH_OUT` environment variable), including a `machine` stanza so the
//! regression gate (`ci/check_bench.py`) can judge ratios in context — on a
//! single-core box the serial-vs-parallel comparison is pure noise, and the
//! gate knows it. Run with:
//!
//! ```text
//! cargo bench -p hqw-bench
//! ```

use hqw_anneal::engine::AnnealParams;
use hqw_anneal::sampler::{EngineKind, QuantumSampler, SamplerConfig};
use hqw_anneal::{AnnealSchedule, DWaveProfile};
use hqw_math::Rng64;
use hqw_qubo::csr::CsrIsing;
use hqw_qubo::generator::sparse_random_qubo;
use hqw_qubo::sa::{sa_read_csr, sa_read_fast, sample_qubo, SaParams, SweepKernel};
use hqw_qubo::{Ising, Qubo};
use std::hint::black_box;
use std::time::Instant;

/// Timed batches per benchmark (minimum wins; median/stddev reported).
const REPEATS: usize = 7;

/// One benchmark measurement.
struct Measurement {
    name: String,
    /// Problem size (spins), when meaningful.
    n: usize,
    /// Iterations per timed batch.
    iters: usize,
    /// Best-of-`REPEATS` nanoseconds per iteration (drives derived ratios).
    ns_per_iter: f64,
    /// Median of the `REPEATS` batch times (ns/iter).
    ns_median: f64,
    /// Sample standard deviation across batches (ns/iter).
    ns_stddev: f64,
}

/// Reduces `REPEATS` per-batch ns/iter samples to a [`Measurement`].
fn reduce(name: &str, n: usize, iters: usize, mut samples: Vec<f64>) -> Measurement {
    samples.sort_by(|a, b| a.total_cmp(b));
    let min = samples[0];
    let median = samples[samples.len() / 2];
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    let var = samples.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>()
        / (samples.len() - 1).max(1) as f64;
    let stddev = var.sqrt();
    println!(
        "{name:<44} {min:>12.0} ns/iter  (median {median:.0}, stddev {stddev:.0}, n={n}, iters={iters})"
    );
    Measurement {
        name: name.to_string(),
        n,
        iters,
        ns_per_iter: min,
        ns_median: median,
        ns_stddev: stddev,
    }
}

/// Times one batch of `iters` calls, returning ns/iter.
fn time_batch(iters: usize, f: &mut dyn FnMut()) -> f64 {
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    start.elapsed().as_nanos() as f64 / iters as f64
}

/// Benchmarks several kernels **interleaved**: after a warm-up batch each,
/// timed batches alternate A, B, …, A, B, … so clock drift hits every
/// contestant equally — the honest way to form same-run ratios.
fn bench_interleaved(
    names: &[&str],
    n: usize,
    iters: usize,
    fns: &mut [&mut dyn FnMut()],
) -> Vec<Measurement> {
    assert_eq!(names.len(), fns.len());
    for f in fns.iter_mut() {
        for _ in 0..iters {
            f(); // warm-up
        }
    }
    let mut samples: Vec<Vec<f64>> = vec![Vec::with_capacity(REPEATS); fns.len()];
    for _ in 0..REPEATS {
        for (i, f) in fns.iter_mut().enumerate() {
            samples[i].push(time_batch(iters, *f));
        }
    }
    names
        .iter()
        .zip(samples)
        .map(|(name, s)| reduce(name, n, iters, s))
        .collect()
}

/// The **pre-change** SA sweep kernel, reproduced exactly: recomputes the
/// local field from the adjacency list on every proposal.
fn sa_read_ising_baseline(
    ising: &Ising,
    params: &SaParams,
    start: &[i8],
    rng: &mut Rng64,
) -> Vec<i8> {
    let n = ising.num_vars();
    let mut spins = start.to_vec();
    let ratio = if params.sweeps > 1 {
        (params.beta_final / params.beta_initial).powf(1.0 / (params.sweeps - 1) as f64)
    } else {
        1.0
    };
    let mut beta = params.beta_initial;
    for _ in 0..params.sweeps {
        for k in 0..n {
            let delta = ising.flip_delta(&spins, k);
            if delta <= 0.0 || rng.next_f64() < (-beta * delta).exp() {
                spins[k] = -spins[k];
            }
        }
        beta *= ratio;
    }
    spins
}

fn random_spins(n: usize, rng: &mut Rng64) -> Vec<i8> {
    (0..n)
        .map(|_| if rng.next_bool() { 1 } else { -1 })
        .collect()
}

/// Sweep-kernel three-way (baseline / Exact / Fast) at several sizes;
/// returns measurements plus derived `(key, ratio)` pairs.
fn bench_sweep_kernels(out: &mut Vec<Measurement>, derived: &mut Vec<(String, f64)>) {
    // Density 1.0 = the paper's regime: the ML→QUBO reduction produces fully
    // dense couplings, which is exactly where per-proposal O(degree)
    // recomputation hurts most. The dense point runs a production-length
    // deep quench (β: 0.1 → 100 over 256 sweeps) so the measurement window
    // covers both regimes a real read anneals through — the hot phase,
    // where the incremental AXPY update dominates, and the frozen tail,
    // where the Fast kernel's certain-reject skips and draw-free Metropolis
    // filtering take over. The sparse point keeps a short hot schedule and
    // tracks hardware-graph-like (embedded/Chimera) workloads.
    for &(n, density, sweeps, beta_final, iters) in &[
        (256usize, 1.0f64, 256usize, 100.0f64, 10usize),
        (512, 0.10, 64, 10.0, 10),
    ] {
        let mut rng = Rng64::new(12);
        let q = sparse_random_qubo(n, density, &mut rng);
        let (ising, _) = q.to_ising();
        let csr = CsrIsing::from_ising(&ising);
        let start = random_spins(n, &mut rng);
        let params = SaParams {
            sweeps,
            beta_final,
            num_reads: 1,
            ..SaParams::default()
        };
        // Build the lazy caches outside the timed region: production reads
        // amortize coloring/f32 mirrors across a whole read batch.
        csr.coloring();
        csr.weights_f32();

        let (mut s0, mut s1, mut s2) = (0u64, 0u64, 0u64);
        let mut base = || {
            s0 += 1;
            black_box(sa_read_ising_baseline(
                &ising,
                &params,
                black_box(&start),
                &mut Rng64::new(s0),
            ));
        };
        let mut exact = || {
            s1 += 1;
            black_box(sa_read_csr(
                &csr,
                &params,
                black_box(&start),
                &mut Rng64::new(s1),
            ));
        };
        let mut fast = || {
            s2 += 1;
            black_box(sa_read_fast(
                &csr,
                &params,
                black_box(&start),
                &mut Rng64::new(s2),
            ));
        };
        let ms = bench_interleaved(
            &[
                &format!("sa_sweep/baseline_adjlist/{n}"),
                &format!("sa_sweep/incremental_csr/{n}"),
                &format!("sa_sweep/fast_csr/{n}"),
            ]
            .iter()
            .map(|s| s.as_str())
            .collect::<Vec<_>>(),
            n,
            iters,
            &mut [&mut base, &mut exact, &mut fast],
        );
        let exact_speedup = ms[0].ns_per_iter / ms[1].ns_per_iter;
        let fast_speedup = ms[0].ns_per_iter / ms[2].ns_per_iter;
        println!(
            "  -> sweep-kernel speedup at {n} spins: exact {exact_speedup:.2}x, fast {fast_speedup:.2}x"
        );
        derived.push((format!("sa_sweep_speedup_{n}"), exact_speedup));
        derived.push((format!("sa_sweep_speedup_fast_{n}"), fast_speedup));
        out.extend(ms);
    }
}

/// Parallel-read scaling of `sample_qubo` (bit-identical output per seed,
/// any thread count). Serial and all-cores run interleaved.
fn bench_parallel_reads(out: &mut Vec<Measurement>, derived: &mut Vec<(String, f64)>) {
    let n = 256;
    let mut rng = Rng64::new(13);
    let q: Qubo = sparse_random_qubo(n, 0.1, &mut rng);
    let params_for = |threads: usize| SaParams {
        sweeps: 32,
        num_reads: 16,
        threads,
        ..SaParams::default()
    };
    let serial_params = params_for(1);
    let parallel_params = params_for(0);
    let (mut s0, mut s1) = (0u64, 0u64);
    let mut serial = || {
        s0 += 1;
        black_box(sample_qubo(&q, &serial_params, &mut Rng64::new(s0)));
    };
    let mut parallel = || {
        s1 += 1;
        black_box(sample_qubo(&q, &parallel_params, &mut Rng64::new(s1)));
    };
    let ms = bench_interleaved(
        &[
            &format!("sample_qubo/16reads_serial/{n}"),
            &format!("sample_qubo/16reads_all-cores/{n}"),
        ]
        .iter()
        .map(|s| s.as_str())
        .collect::<Vec<_>>(),
        n,
        5,
        &mut [&mut serial, &mut parallel],
    );
    let speedup = ms[0].ns_per_iter / ms[1].ns_per_iter;
    println!("  -> parallel 16-read speedup: {speedup:.2}x");
    derived.push(("parallel_16reads_speedup_256".to_string(), speedup));
    out.extend(ms);
}

/// Annealer-engine read costs on a medium instance, `Exact` vs `Fast`
/// kernel modes interleaved per engine.
fn bench_engine_reads(out: &mut Vec<Measurement>, derived: &mut Vec<(String, f64)>) {
    let n = 64;
    let mut rng = Rng64::new(14);
    let q = sparse_random_qubo(n, 0.3, &mut rng);
    let schedule = AnnealSchedule::reverse(0.69, 1.0).unwrap();
    let init: Vec<u8> = (0..n).map(|_| rng.next_bool() as u8).collect();
    let sampler_with = |engine: EngineKind, kernel: SweepKernel| {
        QuantumSampler::new(
            DWaveProfile::calibrated(),
            SamplerConfig {
                num_reads: 4,
                engine,
                threads: 1,
                params: AnnealParams {
                    kernel,
                    ..Default::default()
                },
                ..Default::default()
            },
        )
    };
    for (label, engine) in [
        ("pimc16", EngineKind::Pimc { trotter_slices: 16 }),
        ("svmc", EngineKind::Svmc),
    ] {
        let exact_sampler = sampler_with(engine, SweepKernel::Exact);
        let fast_sampler = sampler_with(engine, SweepKernel::Fast);
        let (mut s0, mut s1) = (0u64, 0u64);
        let mut exact = || {
            s0 += 1;
            black_box(exact_sampler.sample_qubo(&q, &schedule, Some(&init), s0));
        };
        let mut fast = || {
            s1 += 1;
            black_box(fast_sampler.sample_qubo(&q, &schedule, Some(&init), s1));
        };
        let ms = bench_interleaved(
            &[
                &format!("anneal_read/ra_{label}/{n}"),
                &format!("anneal_read/ra_{label}_fast/{n}"),
            ]
            .iter()
            .map(|s| s.as_str())
            .collect::<Vec<_>>(),
            n,
            5,
            &mut [&mut exact, &mut fast],
        );
        let speedup = ms[0].ns_per_iter / ms[1].ns_per_iter;
        println!("  -> {label} fast-kernel speedup: {speedup:.2}x");
        derived.push((format!("{label}_fast_speedup_{n}"), speedup));
        out.extend(ms);
    }
}

/// Minimal JSON emitter (no external crates available offline).
fn write_json(path: &std::path::Path, results: &[Measurement], derived: &[(String, f64)]) {
    let cores = std::thread::available_parallelism()
        .map(|c| c.get())
        .unwrap_or(1);
    let mut s = String::new();
    s.push_str("{\n  \"bench\": \"kernels\",\n");
    s.push_str(&format!(
        "  \"machine\": {{\"available_parallelism\": {cores}, \"os\": \"{}\", \"arch\": \"{}\", \"repeats\": {REPEATS}}},\n",
        std::env::consts::OS,
        std::env::consts::ARCH,
    ));
    s.push_str("  \"results\": [\n");
    for (i, m) in results.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"name\": \"{}\", \"n\": {}, \"iters\": {}, \"ns_per_iter\": {:.1}, \"ns_median\": {:.1}, \"ns_stddev\": {:.1}}}{}\n",
            m.name,
            m.n,
            m.iters,
            m.ns_per_iter,
            m.ns_median,
            m.ns_stddev,
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    s.push_str("  ],\n  \"derived\": {\n");
    for (i, (key, val)) in derived.iter().enumerate() {
        s.push_str(&format!(
            "    \"{key}\": {val:.2}{}\n",
            if i + 1 < derived.len() { "," } else { "" }
        ));
    }
    s.push_str("  }\n}\n");
    std::fs::write(path, s).expect("write bench JSON");
    println!("wrote {}", path.display());
}

fn main() {
    // `--bench` / filter arguments from `cargo bench` are accepted and
    // ignored; the suite is small enough to always run whole.
    let mut results = Vec::new();
    let mut derived = Vec::new();
    bench_sweep_kernels(&mut results, &mut derived);
    bench_parallel_reads(&mut results, &mut derived);
    bench_engine_reads(&mut results, &mut derived);

    let default_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_kernels.json");
    let path = std::env::var("BENCH_OUT").unwrap_or_else(|_| default_path.to_string());
    write_json(std::path::Path::new(&path), &results, &derived);

    // Wall-clock assertions are opt-in: shared CI runners are too noisy to
    // gate merges on timing ratios. Set BENCH_ASSERT_MIN_SPEEDUP (e.g. 3.0)
    // to enforce, locally or on a quiet box, that at least one ≥256-spin
    // instance meets the bar (the dense instance is the headline; the sparse
    // point has a lower algorithmic ceiling — speedup scales with degree).
    if let Ok(min) = std::env::var("BENCH_ASSERT_MIN_SPEEDUP") {
        let min: f64 = min.parse().expect("BENCH_ASSERT_MIN_SPEEDUP: not a number");
        let best = derived
            .iter()
            .filter(|(k, _)| k.starts_with("sa_sweep_speedup"))
            .map(|&(_, sp)| sp)
            .fold(0.0, f64::max);
        assert!(
            best >= min,
            "best sweep-kernel speedup is {best:.2}x, below the required {min}x ({derived:?})"
        );
    }
}
