//! Dense complex matrices and vectors.
//!
//! Row-major storage of [`Complex64`]. `CMatrix` models the MIMO channel
//! matrix `H`; `CVector` models transmitted/received symbol vectors. The
//! [`CMatrix::to_real_stacked`] decomposition produces the real form used by
//! the ML→QUBO reduction and by the real-valued sphere decoders:
//!
//! ```text
//!   [ Re(H) -Im(H) ] [ Re(x) ]   [ Re(y) ]
//!   [ Im(H)  Re(H) ] [ Im(x) ] = [ Im(y) ]
//! ```

use crate::complex::Complex64;
use crate::rmat::{RMatrix, RVector};
use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense complex vector.
#[derive(Clone, PartialEq)]
pub struct CVector {
    data: Vec<Complex64>,
}

impl CVector {
    /// Creates a vector from raw data.
    pub fn from_vec(data: Vec<Complex64>) -> Self {
        CVector { data }
    }

    /// Creates a zero vector of length `n`.
    pub fn zeros(n: usize) -> Self {
        CVector {
            data: vec![Complex64::ZERO; n],
        }
    }

    /// Vector length.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the vector has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the underlying storage.
    pub fn as_slice(&self) -> &[Complex64] {
        &self.data
    }

    /// Mutable view of the underlying storage.
    pub fn as_mut_slice(&mut self) -> &mut [Complex64] {
        &mut self.data
    }

    /// Hermitian inner product `⟨self, other⟩ = Σ self_i* · other_i`.
    ///
    /// # Panics
    /// Panics when lengths differ.
    pub fn dot_h(&self, other: &CVector) -> Complex64 {
        assert_eq!(self.len(), other.len(), "dot_h: length mismatch");
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| a.conj() * *b)
            .sum()
    }

    /// Squared Euclidean norm `‖v‖²`.
    pub fn norm_sqr(&self) -> f64 {
        self.data.iter().map(|z| z.norm_sqr()).sum()
    }

    /// Euclidean norm `‖v‖`.
    pub fn norm(&self) -> f64 {
        self.norm_sqr().sqrt()
    }

    /// Element-wise difference `self - other`.
    ///
    /// # Panics
    /// Panics when lengths differ.
    pub fn sub(&self, other: &CVector) -> CVector {
        assert_eq!(self.len(), other.len(), "sub: length mismatch");
        CVector::from_vec(
            self.data
                .iter()
                .zip(&other.data)
                .map(|(a, b)| *a - *b)
                .collect(),
        )
    }

    /// Element-wise sum `self + other`.
    ///
    /// # Panics
    /// Panics when lengths differ.
    pub fn add(&self, other: &CVector) -> CVector {
        assert_eq!(self.len(), other.len(), "add: length mismatch");
        CVector::from_vec(
            self.data
                .iter()
                .zip(&other.data)
                .map(|(a, b)| *a + *b)
                .collect(),
        )
    }

    /// Stacks the vector into its real form `[Re(v); Im(v)]`.
    pub fn to_real_stacked(&self) -> RVector {
        let n = self.len();
        let mut out = RVector::zeros(2 * n);
        for i in 0..n {
            out[i] = self.data[i].re;
            out[n + i] = self.data[i].im;
        }
        out
    }

    /// Rebuilds a complex vector from its stacked real form.
    ///
    /// # Panics
    /// Panics when the length is odd.
    pub fn from_real_stacked(v: &RVector) -> CVector {
        assert!(v.len().is_multiple_of(2), "from_real_stacked: odd length");
        let n = v.len() / 2;
        CVector::from_vec((0..n).map(|i| Complex64::new(v[i], v[n + i])).collect())
    }
}

impl fmt::Debug for CVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "CVector({:?})", self.data)
    }
}

impl Index<usize> for CVector {
    type Output = Complex64;
    #[inline]
    fn index(&self, i: usize) -> &Complex64 {
        &self.data[i]
    }
}

impl IndexMut<usize> for CVector {
    #[inline]
    fn index_mut(&mut self, i: usize) -> &mut Complex64 {
        &mut self.data[i]
    }
}

/// A dense complex matrix in row-major order.
#[derive(Clone, PartialEq)]
pub struct CMatrix {
    rows: usize,
    cols: usize,
    data: Vec<Complex64>,
}

impl CMatrix {
    /// Creates a matrix from row-major data.
    ///
    /// # Panics
    /// Panics when `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<Complex64>) -> Self {
        assert_eq!(data.len(), rows * cols, "CMatrix: data length mismatch");
        CMatrix { rows, cols, data }
    }

    /// Creates a zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        CMatrix {
            rows,
            cols,
            data: vec![Complex64::ZERO; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = CMatrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = Complex64::ONE;
        }
        m
    }

    /// Builds a matrix element-wise from a function of `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> Complex64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        CMatrix { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Returns row `r` as a slice.
    pub fn row(&self, r: usize) -> &[Complex64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Hermitian (conjugate) transpose `Hᴴ`.
    pub fn hermitian(&self) -> CMatrix {
        CMatrix::from_fn(self.cols, self.rows, |r, c| self[(c, r)].conj())
    }

    /// Matrix product `self · other`.
    ///
    /// # Panics
    /// Panics on inner-dimension mismatch.
    pub fn matmul(&self, other: &CMatrix) -> CMatrix {
        assert_eq!(self.cols, other.rows, "matmul: dimension mismatch");
        let mut out = CMatrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let aik = self[(i, k)];
                for j in 0..other.cols {
                    out[(i, j)] += aik * other[(k, j)];
                }
            }
        }
        out
    }

    /// Matrix-vector product `self · v`.
    ///
    /// # Panics
    /// Panics when `v.len() != self.cols()`.
    pub fn matvec(&self, v: &CVector) -> CVector {
        assert_eq!(self.cols, v.len(), "matvec: dimension mismatch");
        let mut out = CVector::zeros(self.rows);
        for i in 0..self.rows {
            out[i] = self
                .row(i)
                .iter()
                .zip(v.as_slice())
                .map(|(a, b)| *a * *b)
                .sum();
        }
        out
    }

    /// Gram matrix `Hᴴ·H` (Hermitian positive semi-definite).
    pub fn gram(&self) -> CMatrix {
        let h = self.hermitian();
        h.matmul(self)
    }

    /// Stacks the matrix into its real form:
    ///
    /// ```text
    ///   [ Re(H) -Im(H) ]
    ///   [ Im(H)  Re(H) ]
    /// ```
    ///
    /// so that `(Hx)` stacked equals `to_real_stacked() ·` (`x` stacked).
    pub fn to_real_stacked(&self) -> RMatrix {
        let (m, n) = (self.rows, self.cols);
        RMatrix::from_fn(2 * m, 2 * n, |r, c| {
            let z = self[(r % m, c % n)];
            match (r < m, c < n) {
                (true, true) => z.re,
                (true, false) => -z.im,
                (false, true) => z.im,
                (false, false) => z.re,
            }
        })
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|z| z.norm_sqr()).sum::<f64>().sqrt()
    }

    /// Maximum absolute element difference against `other`.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn max_abs_diff(&self, other: &CMatrix) -> f64 {
        assert_eq!(self.rows, other.rows);
        assert_eq!(self.cols, other.cols);
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (*a - *b).abs())
            .fold(0.0, f64::max)
    }
}

impl fmt::Debug for CMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "CMatrix {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows {
            writeln!(f, "  {:?}", self.row(r))?;
        }
        write!(f, "]")
    }
}

impl Index<(usize, usize)> for CMatrix {
    type Output = Complex64;
    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &Complex64 {
        debug_assert!(r < self.rows && c < self.cols);
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for CMatrix {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut Complex64 {
        debug_assert!(r < self.rows && c < self.cols);
        &mut self.data[r * self.cols + c]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(re: f64, im: f64) -> Complex64 {
        Complex64::new(re, im)
    }

    #[test]
    fn hermitian_conjugates_and_transposes() {
        let a = CMatrix::from_vec(1, 2, vec![c(1., 2.), c(3., -4.)]);
        let h = a.hermitian();
        assert_eq!(h.rows(), 2);
        assert_eq!(h[(0, 0)], c(1., -2.));
        assert_eq!(h[(1, 0)], c(3., 4.));
    }

    #[test]
    fn matvec_known_value() {
        // [1, i; -i, 2] · [1; i] = [1 + i·i; -i + 2i] = [0; i]
        let a = CMatrix::from_vec(2, 2, vec![c(1., 0.), c(0., 1.), c(0., -1.), c(2., 0.)]);
        let v = CVector::from_vec(vec![c(1., 0.), c(0., 1.)]);
        let out = a.matvec(&v);
        assert!((out[0] - c(0., 0.)).abs() < 1e-12);
        assert!((out[1] - c(0., 1.)).abs() < 1e-12);
    }

    #[test]
    fn real_stacking_commutes_with_matvec() {
        let h = CMatrix::from_vec(
            2,
            2,
            vec![c(0.3, -1.2), c(2.0, 0.7), c(-0.5, 0.1), c(1.1, 1.4)],
        );
        let x = CVector::from_vec(vec![c(1.0, -1.0), c(0.5, 2.0)]);

        let direct = h.matvec(&x).to_real_stacked();
        let stacked = h.to_real_stacked().matvec(&x.to_real_stacked());
        for i in 0..direct.len() {
            assert!((direct[i] - stacked[i]).abs() < 1e-12);
        }
    }

    #[test]
    fn stacked_round_trip_preserves_vector() {
        let x = CVector::from_vec(vec![c(1.0, -1.0), c(0.5, 2.0), c(-3.0, 0.25)]);
        let back = CVector::from_real_stacked(&x.to_real_stacked());
        assert_eq!(back, x);
    }

    #[test]
    fn gram_is_hermitian() {
        let h = CMatrix::from_vec(
            2,
            2,
            vec![c(0.3, -1.2), c(2.0, 0.7), c(-0.5, 0.1), c(1.1, 1.4)],
        );
        let g = h.gram();
        assert!(g.max_abs_diff(&g.hermitian()) < 1e-12);
        // Diagonal of a Gram matrix is real and non-negative.
        for i in 0..2 {
            assert!(g[(i, i)].im.abs() < 1e-12);
            assert!(g[(i, i)].re >= 0.0);
        }
    }

    #[test]
    fn dot_h_is_conjugate_linear() {
        let a = CVector::from_vec(vec![c(1., 1.)]);
        let b = CVector::from_vec(vec![c(0., 1.)]);
        // ⟨a,b⟩ = (1-i)(i) = i - i² = 1 + i
        assert!((a.dot_h(&b) - c(1., 1.)).abs() < 1e-12);
        assert!((a.dot_h(&a) - c(2., 0.)).abs() < 1e-12);
    }

    #[test]
    fn norms() {
        let v = CVector::from_vec(vec![c(3., 0.), c(0., 4.)]);
        assert!((v.norm() - 5.0).abs() < 1e-12);
        assert!((v.norm_sqr() - 25.0).abs() < 1e-12);
    }
}
