//! Deterministic data-parallel fan-out.
//!
//! Every parallel surface in the workspace — SA reads, annealer reads,
//! batch solves, grid sweeps — follows the same contract: the work items
//! are independent, each item's randomness is derived from its *index*
//! (never from which thread runs it), and the output order is the input
//! order. Under that contract the thread count is a pure throughput knob:
//! results are bit-identical for any value. This module is the single
//! implementation of that fan-out, so the chunking/indexing logic exists
//! in exactly one place.

/// Resolves a thread-count knob: `0` means all available cores.
pub fn resolve_threads(threads: usize) -> usize {
    if threads > 0 {
        threads
    } else {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    }
}

/// Maps `f` over `items` across up to `threads` scoped worker threads
/// (`0` = all available cores), returning the results **in input order**.
///
/// `f` receives `(index, &item)`; any per-item randomness must derive from
/// the index (or data reachable from the item), never from thread identity,
/// so the output is bit-identical for every thread count.
///
/// # Panics
/// Propagates a panic from `f` (the scope joins all workers first).
pub fn parallel_map_indexed<S, T, F>(items: &[S], threads: usize, f: F) -> Vec<T>
where
    S: Sync,
    T: Send,
    F: Fn(usize, &S) -> T + Sync,
{
    let threads = resolve_threads(threads).min(items.len().max(1));
    let mut slots: Vec<Option<T>> = Vec::new();
    slots.resize_with(items.len(), || None);

    if threads <= 1 {
        for (idx, (slot, item)) in slots.iter_mut().zip(items).enumerate() {
            *slot = Some(f(idx, item));
        }
    } else {
        let chunk = items.len().div_ceil(threads);
        std::thread::scope(|scope| {
            for (chunk_idx, (slot_chunk, item_chunk)) in
                slots.chunks_mut(chunk).zip(items.chunks(chunk)).enumerate()
            {
                let f = &f;
                scope.spawn(move || {
                    let base = chunk_idx * chunk;
                    for (off, (slot, item)) in slot_chunk.iter_mut().zip(item_chunk).enumerate() {
                        *slot = Some(f(base + off, item));
                    }
                });
            }
        });
    }

    slots
        .into_iter()
        .map(|s| s.expect("parallel_map_indexed: all items completed"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order_for_any_thread_count() {
        let items: Vec<u64> = (0..23).collect();
        let serial = parallel_map_indexed(&items, 1, |i, &x| (i as u64) * 1000 + x * x);
        for threads in [2, 3, 7, 23, 100, 0] {
            let parallel = parallel_map_indexed(&items, threads, |i, &x| (i as u64) * 1000 + x * x);
            assert_eq!(serial, parallel, "threads={threads}");
        }
    }

    #[test]
    fn index_matches_position() {
        let items = vec!["a", "b", "c", "d", "e"];
        let out = parallel_map_indexed(&items, 2, |i, &s| format!("{i}:{s}"));
        assert_eq!(out, vec!["0:a", "1:b", "2:c", "3:d", "4:e"]);
    }

    #[test]
    fn empty_input_is_fine() {
        let out: Vec<u32> = parallel_map_indexed(&[] as &[u32], 4, |_, &x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn zero_threads_resolves_to_cores() {
        assert!(resolve_threads(0) >= 1);
        assert_eq!(resolve_threads(3), 3);
    }
}
