//! Double-precision complex numbers.
//!
//! A minimal, allocation-free complex type with the arithmetic the MIMO
//! processing chain needs. The representation is Cartesian (`re`, `im`);
//! polar helpers are provided for channel synthesis (unit-gain random-phase
//! channels are built from [`Complex64::from_polar`]).

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number with `f64` components.
#[derive(Clone, Copy, PartialEq, Default)]
pub struct Complex64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex64 {
    /// The additive identity `0 + 0i`.
    pub const ZERO: Complex64 = Complex64 { re: 0.0, im: 0.0 };
    /// The multiplicative identity `1 + 0i`.
    pub const ONE: Complex64 = Complex64 { re: 1.0, im: 0.0 };
    /// The imaginary unit `0 + 1i`.
    pub const I: Complex64 = Complex64 { re: 0.0, im: 1.0 };

    /// Creates a complex number from Cartesian parts.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Complex64 { re, im }
    }

    /// Creates a purely real complex number.
    #[inline]
    pub const fn real(re: f64) -> Self {
        Complex64 { re, im: 0.0 }
    }

    /// Creates a complex number from polar form `r·e^{iθ}`.
    #[inline]
    pub fn from_polar(r: f64, theta: f64) -> Self {
        Complex64::new(r * theta.cos(), r * theta.sin())
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Complex64::new(self.re, -self.im)
    }

    /// Squared magnitude `|z|²` (avoids the square root of [`Self::abs`]).
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Magnitude `|z|`.
    #[inline]
    pub fn abs(self) -> f64 {
        self.norm_sqr().sqrt()
    }

    /// Argument (phase angle) in `(-π, π]`.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Multiplicative inverse `1/z`.
    ///
    /// Returns an all-NaN value when `z == 0`, mirroring `f64` division.
    #[inline]
    pub fn inv(self) -> Self {
        let d = self.norm_sqr();
        Complex64::new(self.re / d, -self.im / d)
    }

    /// Scales by a real factor.
    #[inline]
    pub fn scale(self, k: f64) -> Self {
        Complex64::new(self.re * k, self.im * k)
    }

    /// True when either component is NaN.
    #[inline]
    pub fn is_nan(self) -> bool {
        self.re.is_nan() || self.im.is_nan()
    }

    /// True when both components are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }
}

impl fmt::Debug for Complex64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self)
    }
}

impl fmt::Display for Complex64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}i", self.re, self.im)
        } else {
            write!(f, "{}{}i", self.re, self.im)
        }
    }
}

impl From<f64> for Complex64 {
    #[inline]
    fn from(re: f64) -> Self {
        Complex64::real(re)
    }
}

impl Add for Complex64 {
    type Output = Complex64;
    #[inline]
    fn add(self, rhs: Self) -> Self {
        Complex64::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl Sub for Complex64 {
    type Output = Complex64;
    #[inline]
    fn sub(self, rhs: Self) -> Self {
        Complex64::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for Complex64 {
    type Output = Complex64;
    #[inline]
    fn mul(self, rhs: Self) -> Self {
        Complex64::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl Div for Complex64 {
    type Output = Complex64;
    // Division by multiplication with the precomputed inverse; the `*` is
    // intentional, not a typo'd `/`.
    #[allow(clippy::suspicious_arithmetic_impl)]
    #[inline]
    fn div(self, rhs: Self) -> Self {
        self * rhs.inv()
    }
}

impl Neg for Complex64 {
    type Output = Complex64;
    #[inline]
    fn neg(self) -> Self {
        Complex64::new(-self.re, -self.im)
    }
}

impl Mul<f64> for Complex64 {
    type Output = Complex64;
    #[inline]
    fn mul(self, rhs: f64) -> Self {
        self.scale(rhs)
    }
}

impl Mul<Complex64> for f64 {
    type Output = Complex64;
    #[inline]
    fn mul(self, rhs: Complex64) -> Complex64 {
        rhs.scale(self)
    }
}

impl AddAssign for Complex64 {
    #[inline]
    fn add_assign(&mut self, rhs: Self) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl SubAssign for Complex64 {
    #[inline]
    fn sub_assign(&mut self, rhs: Self) {
        self.re -= rhs.re;
        self.im -= rhs.im;
    }
}

impl MulAssign for Complex64 {
    #[inline]
    fn mul_assign(&mut self, rhs: Self) {
        *self = *self * rhs;
    }
}

impl Sum for Complex64 {
    fn sum<I: Iterator<Item = Complex64>>(iter: I) -> Self {
        iter.fold(Complex64::ZERO, |acc, z| acc + z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: Complex64, b: Complex64) -> bool {
        (a - b).abs() < 1e-12
    }

    #[test]
    fn basic_arithmetic() {
        let a = Complex64::new(1.0, 2.0);
        let b = Complex64::new(3.0, -1.0);
        assert_eq!(a + b, Complex64::new(4.0, 1.0));
        assert_eq!(a - b, Complex64::new(-2.0, 3.0));
        // (1+2i)(3-i) = 3 - i + 6i - 2i² = 5 + 5i
        assert_eq!(a * b, Complex64::new(5.0, 5.0));
    }

    #[test]
    fn division_inverts_multiplication() {
        let a = Complex64::new(1.5, -2.5);
        let b = Complex64::new(0.25, 4.0);
        assert!(close((a * b) / b, a));
    }

    #[test]
    fn conjugate_and_norm() {
        let a = Complex64::new(3.0, 4.0);
        assert_eq!(a.conj(), Complex64::new(3.0, -4.0));
        assert_eq!(a.norm_sqr(), 25.0);
        assert_eq!(a.abs(), 5.0);
        assert!(close(a * a.conj(), Complex64::real(25.0)));
    }

    #[test]
    fn polar_round_trip() {
        let z = Complex64::from_polar(2.0, std::f64::consts::FRAC_PI_3);
        assert!((z.abs() - 2.0).abs() < 1e-12);
        assert!((z.arg() - std::f64::consts::FRAC_PI_3).abs() < 1e-12);
    }

    #[test]
    fn unit_phase_has_unit_gain() {
        for k in 0..16 {
            let theta = k as f64 * 0.4;
            let z = Complex64::from_polar(1.0, theta);
            assert!((z.abs() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn inv_of_unit_is_conj() {
        let z = Complex64::from_polar(1.0, 0.7);
        assert!(close(z.inv(), z.conj()));
    }

    #[test]
    fn sum_over_iterator() {
        let total: Complex64 = (0..4).map(|k| Complex64::new(k as f64, 1.0)).sum();
        assert_eq!(total, Complex64::new(6.0, 4.0));
    }

    #[test]
    fn display_formats_sign() {
        assert_eq!(format!("{}", Complex64::new(1.0, -2.0)), "1-2i");
        assert_eq!(format!("{}", Complex64::new(1.0, 2.0)), "1+2i");
    }
}
