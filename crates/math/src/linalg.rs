//! Dense decompositions and linear solvers.
//!
//! Implements the three factorizations the workspace needs:
//!
//! * [`LuReal`] / [`LuComplex`] — LU with partial pivoting; backs generic
//!   solves and inverses (zero-forcing and MMSE detectors).
//! * [`CholeskyReal`] — for symmetric positive-definite systems (MMSE normal
//!   equations in the real domain).
//! * [`QrReal`] — Householder QR; backs the sphere-decoder family, which
//!   searches over the upper-triangular factor `R`.
//!
//! All routines are `O(n³)` dense algorithms written for clarity and
//! robustness on the problem sizes of this workspace (MIMO dimensions ≤ ~128
//! after real stacking), not for BLAS-level throughput.

use crate::cmat::{CMatrix, CVector};
use crate::complex::Complex64;
use crate::rmat::{RMatrix, RVector};

/// Error type for decomposition failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinalgError {
    /// The matrix is singular (or numerically singular) at the given pivot.
    Singular {
        /// Pivot index where elimination broke down.
        pivot: usize,
    },
    /// The matrix is not positive definite (Cholesky only).
    NotPositiveDefinite {
        /// Column index where the failure was detected.
        column: usize,
    },
    /// The input matrix is not square but the operation requires it.
    NotSquare {
        /// Observed number of rows.
        rows: usize,
        /// Observed number of columns.
        cols: usize,
    },
}

impl std::fmt::Display for LinalgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LinalgError::Singular { pivot } => {
                write!(f, "matrix is singular at pivot {pivot}")
            }
            LinalgError::NotPositiveDefinite { column } => {
                write!(f, "matrix is not positive definite at column {column}")
            }
            LinalgError::NotSquare { rows, cols } => {
                write!(f, "matrix is {rows}x{cols}, expected square")
            }
        }
    }
}

impl std::error::Error for LinalgError {}

/// Pivot threshold below which a pivot is treated as zero.
const PIVOT_EPS: f64 = 1e-12;

// ---------------------------------------------------------------------------
// Real LU
// ---------------------------------------------------------------------------

/// LU decomposition with partial pivoting of a real square matrix:
/// `P·A = L·U`.
#[derive(Debug, Clone)]
pub struct LuReal {
    lu: RMatrix,
    perm: Vec<usize>,
    sign: f64,
}

impl LuReal {
    /// Factorizes `a`.
    ///
    /// # Errors
    /// [`LinalgError::NotSquare`] for non-square input,
    /// [`LinalgError::Singular`] when a pivot underflows.
    pub fn new(a: &RMatrix) -> Result<Self, LinalgError> {
        if a.rows() != a.cols() {
            return Err(LinalgError::NotSquare {
                rows: a.rows(),
                cols: a.cols(),
            });
        }
        let n = a.rows();
        let mut lu = a.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut sign = 1.0;

        for col in 0..n {
            // Partial pivoting: pick the largest remaining |entry| in the column.
            let mut pivot_row = col;
            let mut pivot_val = lu[(col, col)].abs();
            for r in col + 1..n {
                let v = lu[(r, col)].abs();
                if v > pivot_val {
                    pivot_val = v;
                    pivot_row = r;
                }
            }
            if pivot_val < PIVOT_EPS {
                return Err(LinalgError::Singular { pivot: col });
            }
            if pivot_row != col {
                for c in 0..n {
                    let tmp = lu[(col, c)];
                    lu[(col, c)] = lu[(pivot_row, c)];
                    lu[(pivot_row, c)] = tmp;
                }
                perm.swap(col, pivot_row);
                sign = -sign;
            }
            let pivot = lu[(col, col)];
            for r in col + 1..n {
                let factor = lu[(r, col)] / pivot;
                lu[(r, col)] = factor;
                for c in col + 1..n {
                    let sub = factor * lu[(col, c)];
                    lu[(r, c)] -= sub;
                }
            }
        }
        Ok(LuReal { lu, perm, sign })
    }

    /// Solves `A·x = b`.
    ///
    /// # Panics
    /// Panics when `b.len()` differs from the matrix dimension.
    pub fn solve(&self, b: &RVector) -> RVector {
        let n = self.lu.rows();
        assert_eq!(b.len(), n, "solve: dimension mismatch");
        // Apply permutation, then forward/backward substitution.
        let mut x = RVector::zeros(n);
        for i in 0..n {
            x[i] = b[self.perm[i]];
        }
        for i in 0..n {
            for k in 0..i {
                let sub = self.lu[(i, k)] * x[k];
                x[i] -= sub;
            }
        }
        for i in (0..n).rev() {
            for k in i + 1..n {
                let sub = self.lu[(i, k)] * x[k];
                x[i] -= sub;
            }
            x[i] /= self.lu[(i, i)];
        }
        x
    }

    /// Computes `A⁻¹` column by column.
    pub fn inverse(&self) -> RMatrix {
        let n = self.lu.rows();
        let mut inv = RMatrix::zeros(n, n);
        for c in 0..n {
            let mut e = RVector::zeros(n);
            e[c] = 1.0;
            let x = self.solve(&e);
            for r in 0..n {
                inv[(r, c)] = x[r];
            }
        }
        inv
    }

    /// Determinant of the factored matrix.
    pub fn det(&self) -> f64 {
        let n = self.lu.rows();
        (0..n).fold(self.sign, |acc, i| acc * self.lu[(i, i)])
    }
}

/// Convenience: solves `A·x = b` for real `A`.
///
/// # Errors
/// Propagates factorization failures.
pub fn solve_real(a: &RMatrix, b: &RVector) -> Result<RVector, LinalgError> {
    Ok(LuReal::new(a)?.solve(b))
}

/// Convenience: inverts a real square matrix.
///
/// # Errors
/// Propagates factorization failures.
pub fn invert_real(a: &RMatrix) -> Result<RMatrix, LinalgError> {
    Ok(LuReal::new(a)?.inverse())
}

// ---------------------------------------------------------------------------
// Complex LU
// ---------------------------------------------------------------------------

/// LU decomposition with partial pivoting of a complex square matrix.
#[derive(Debug, Clone)]
pub struct LuComplex {
    lu: CMatrix,
    perm: Vec<usize>,
}

impl LuComplex {
    /// Factorizes `a`.
    ///
    /// # Errors
    /// [`LinalgError::NotSquare`] for non-square input,
    /// [`LinalgError::Singular`] when a pivot underflows.
    pub fn new(a: &CMatrix) -> Result<Self, LinalgError> {
        if a.rows() != a.cols() {
            return Err(LinalgError::NotSquare {
                rows: a.rows(),
                cols: a.cols(),
            });
        }
        let n = a.rows();
        let mut lu = a.clone();
        let mut perm: Vec<usize> = (0..n).collect();

        for col in 0..n {
            let mut pivot_row = col;
            let mut pivot_val = lu[(col, col)].abs();
            for r in col + 1..n {
                let v = lu[(r, col)].abs();
                if v > pivot_val {
                    pivot_val = v;
                    pivot_row = r;
                }
            }
            if pivot_val < PIVOT_EPS {
                return Err(LinalgError::Singular { pivot: col });
            }
            if pivot_row != col {
                for c in 0..n {
                    let tmp = lu[(col, c)];
                    lu[(col, c)] = lu[(pivot_row, c)];
                    lu[(pivot_row, c)] = tmp;
                }
                perm.swap(col, pivot_row);
            }
            let pivot = lu[(col, col)];
            for r in col + 1..n {
                let factor = lu[(r, col)] / pivot;
                lu[(r, col)] = factor;
                for c in col + 1..n {
                    let sub = factor * lu[(col, c)];
                    lu[(r, c)] -= sub;
                }
            }
        }
        Ok(LuComplex { lu, perm })
    }

    /// Solves `A·x = b`.
    ///
    /// # Panics
    /// Panics when `b.len()` differs from the matrix dimension.
    pub fn solve(&self, b: &CVector) -> CVector {
        let n = self.lu.rows();
        assert_eq!(b.len(), n, "solve: dimension mismatch");
        let mut x = CVector::zeros(n);
        for i in 0..n {
            x[i] = b[self.perm[i]];
        }
        for i in 0..n {
            for k in 0..i {
                let sub = self.lu[(i, k)] * x[k];
                x[i] -= sub;
            }
        }
        for i in (0..n).rev() {
            for k in i + 1..n {
                let sub = self.lu[(i, k)] * x[k];
                x[i] -= sub;
            }
            x[i] = x[i] / self.lu[(i, i)];
        }
        x
    }

    /// Computes `A⁻¹` column by column.
    pub fn inverse(&self) -> CMatrix {
        let n = self.lu.rows();
        let mut inv = CMatrix::zeros(n, n);
        for c in 0..n {
            let mut e = CVector::zeros(n);
            e[c] = Complex64::ONE;
            let x = self.solve(&e);
            for r in 0..n {
                inv[(r, c)] = x[r];
            }
        }
        inv
    }
}

/// Convenience: solves `A·x = b` for complex `A`.
///
/// # Errors
/// Propagates factorization failures.
pub fn solve_complex(a: &CMatrix, b: &CVector) -> Result<CVector, LinalgError> {
    Ok(LuComplex::new(a)?.solve(b))
}

/// Convenience: inverts a complex square matrix.
///
/// # Errors
/// Propagates factorization failures.
pub fn invert_complex(a: &CMatrix) -> Result<CMatrix, LinalgError> {
    Ok(LuComplex::new(a)?.inverse())
}

// ---------------------------------------------------------------------------
// Real Cholesky
// ---------------------------------------------------------------------------

/// Cholesky decomposition `A = L·Lᵀ` of a symmetric positive-definite matrix.
#[derive(Debug, Clone)]
pub struct CholeskyReal {
    l: RMatrix,
}

impl CholeskyReal {
    /// Factorizes `a`. Only the lower triangle of `a` is read.
    ///
    /// # Errors
    /// [`LinalgError::NotSquare`] for non-square input,
    /// [`LinalgError::NotPositiveDefinite`] when a diagonal term is ≤ 0.
    pub fn new(a: &RMatrix) -> Result<Self, LinalgError> {
        if a.rows() != a.cols() {
            return Err(LinalgError::NotSquare {
                rows: a.rows(),
                cols: a.cols(),
            });
        }
        let n = a.rows();
        let mut l = RMatrix::zeros(n, n);
        for j in 0..n {
            let mut d = a[(j, j)];
            for k in 0..j {
                d -= l[(j, k)] * l[(j, k)];
            }
            if d <= 0.0 {
                return Err(LinalgError::NotPositiveDefinite { column: j });
            }
            let djj = d.sqrt();
            l[(j, j)] = djj;
            for i in j + 1..n {
                let mut s = a[(i, j)];
                for k in 0..j {
                    s -= l[(i, k)] * l[(j, k)];
                }
                l[(i, j)] = s / djj;
            }
        }
        Ok(CholeskyReal { l })
    }

    /// The lower-triangular factor `L`.
    pub fn l(&self) -> &RMatrix {
        &self.l
    }

    /// Solves `A·x = b` via two triangular solves.
    ///
    /// # Panics
    /// Panics when `b.len()` differs from the matrix dimension.
    pub fn solve(&self, b: &RVector) -> RVector {
        let n = self.l.rows();
        assert_eq!(b.len(), n, "solve: dimension mismatch");
        // L·y = b
        let mut y = RVector::zeros(n);
        for i in 0..n {
            let mut s = b[i];
            for k in 0..i {
                s -= self.l[(i, k)] * y[k];
            }
            y[i] = s / self.l[(i, i)];
        }
        // Lᵀ·x = y
        let mut x = RVector::zeros(n);
        for i in (0..n).rev() {
            let mut s = y[i];
            for k in i + 1..n {
                s -= self.l[(k, i)] * x[k];
            }
            x[i] = s / self.l[(i, i)];
        }
        x
    }
}

// ---------------------------------------------------------------------------
// Real QR (Householder)
// ---------------------------------------------------------------------------

/// Householder QR decomposition `A = Q·R` of a real `m × n` matrix (`m ≥ n`).
///
/// `Q` is `m × n` with orthonormal columns (thin QR) and `R` is `n × n`
/// upper-triangular with non-negative diagonal. Sphere decoders consume `R`
/// and `Qᵀ·y`.
#[derive(Debug, Clone)]
pub struct QrReal {
    q: RMatrix,
    r: RMatrix,
}

impl QrReal {
    /// Factorizes `a` (requires `rows ≥ cols`).
    ///
    /// # Panics
    /// Panics when `rows < cols`.
    pub fn new(a: &RMatrix) -> Self {
        let (m, n) = (a.rows(), a.cols());
        assert!(m >= n, "QrReal: requires rows >= cols, got {m}x{n}");

        // Work on a full copy; accumulate Q as a product of reflectors applied
        // to the identity.
        let mut r = a.clone();
        let mut q_full = RMatrix::identity(m);

        for k in 0..n {
            // Householder vector for column k below the diagonal.
            let mut norm = 0.0;
            for i in k..m {
                norm += r[(i, k)] * r[(i, k)];
            }
            let norm = norm.sqrt();
            if norm < PIVOT_EPS {
                continue; // Column already zero below diagonal.
            }
            let alpha = if r[(k, k)] >= 0.0 { -norm } else { norm };
            let mut v = vec![0.0; m - k];
            v[0] = r[(k, k)] - alpha;
            for i in k + 1..m {
                v[i - k] = r[(i, k)];
            }
            let vnorm_sqr: f64 = v.iter().map(|x| x * x).sum();
            if vnorm_sqr < PIVOT_EPS * PIVOT_EPS {
                continue;
            }

            // Apply reflector H = I - 2vvᵀ/(vᵀv) to R (columns k..n).
            for c in k..n {
                let mut dot = 0.0;
                for i in k..m {
                    dot += v[i - k] * r[(i, c)];
                }
                let scale = 2.0 * dot / vnorm_sqr;
                for i in k..m {
                    r[(i, c)] -= scale * v[i - k];
                }
            }
            // Apply H to Q_full from the right: Q ← Q·H.
            for row in 0..m {
                let mut dot = 0.0;
                for i in k..m {
                    dot += q_full[(row, i)] * v[i - k];
                }
                let scale = 2.0 * dot / vnorm_sqr;
                for i in k..m {
                    q_full[(row, i)] -= scale * v[i - k];
                }
            }
        }

        // Normalize signs so that R has a non-negative diagonal; thin factors.
        let mut q = RMatrix::zeros(m, n);
        let mut r_thin = RMatrix::zeros(n, n);
        for j in 0..n {
            let sign = if r[(j, j)] < 0.0 { -1.0 } else { 1.0 };
            for c in j..n {
                r_thin[(j, c)] = sign * r[(j, c)];
            }
            for i in 0..m {
                q[(i, j)] = sign * q_full[(i, j)];
            }
        }
        QrReal { q, r: r_thin }
    }

    /// The thin orthonormal factor `Q` (`m × n`).
    pub fn q(&self) -> &RMatrix {
        &self.q
    }

    /// The upper-triangular factor `R` (`n × n`).
    pub fn r(&self) -> &RMatrix {
        &self.r
    }

    /// Computes `Qᵀ·y`, the rotated observation used by sphere decoders.
    ///
    /// # Panics
    /// Panics when `y.len() != rows`.
    pub fn qt_y(&self, y: &RVector) -> RVector {
        self.q.tr_matvec(y)
    }

    /// Solves the least-squares problem `min ‖A·x − y‖` via `R·x = Qᵀ·y`.
    ///
    /// # Panics
    /// Panics when `y.len() != rows` or when `R` has a zero diagonal entry
    /// (rank-deficient input).
    pub fn solve_least_squares(&self, y: &RVector) -> RVector {
        let n = self.r.rows();
        let rhs = self.qt_y(y);
        let mut x = RVector::zeros(n);
        for i in (0..n).rev() {
            let mut s = rhs[i];
            for k in i + 1..n {
                s -= self.r[(i, k)] * x[k];
            }
            let d = self.r[(i, i)];
            assert!(
                d.abs() > PIVOT_EPS,
                "solve_least_squares: rank-deficient R at {i}"
            );
            x[i] = s / d;
        }
        x
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng64;

    fn random_matrix(n: usize, m: usize, rng: &mut Rng64) -> RMatrix {
        RMatrix::from_fn(n, m, |_, _| rng.next_gaussian())
    }

    #[test]
    fn lu_solves_known_system() {
        // [2 1; 1 3] x = [3; 5] → x = [0.8; 1.4]
        let a = RMatrix::from_vec(2, 2, vec![2., 1., 1., 3.]);
        let b = RVector::from_vec(vec![3., 5.]);
        let x = solve_real(&a, &b).unwrap();
        assert!((x[0] - 0.8).abs() < 1e-12);
        assert!((x[1] - 1.4).abs() < 1e-12);
    }

    #[test]
    fn lu_inverse_round_trip() {
        let mut rng = Rng64::new(7);
        for n in [1usize, 2, 3, 5, 8, 13] {
            let a = random_matrix(n, n, &mut rng);
            let inv = invert_real(&a).unwrap();
            let prod = a.matmul(&inv);
            assert!(
                prod.max_abs_diff(&RMatrix::identity(n)) < 1e-8,
                "A·A⁻¹ ≠ I for n={n}"
            );
        }
    }

    #[test]
    fn lu_detects_singular() {
        let a = RMatrix::from_vec(2, 2, vec![1., 2., 2., 4.]);
        assert!(matches!(LuReal::new(&a), Err(LinalgError::Singular { .. })));
    }

    #[test]
    fn lu_rejects_non_square() {
        let a = RMatrix::zeros(2, 3);
        assert!(matches!(
            LuReal::new(&a),
            Err(LinalgError::NotSquare { rows: 2, cols: 3 })
        ));
    }

    #[test]
    fn lu_det_of_known_matrix() {
        let a = RMatrix::from_vec(2, 2, vec![3., 1., 4., 2.]);
        let lu = LuReal::new(&a).unwrap();
        assert!((lu.det() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn complex_lu_inverse_round_trip() {
        let mut rng = Rng64::new(11);
        for n in [1usize, 2, 4, 6] {
            let a = CMatrix::from_fn(n, n, |_, _| {
                Complex64::new(rng.next_gaussian(), rng.next_gaussian())
            });
            let inv = invert_complex(&a).unwrap();
            let prod = a.matmul(&inv);
            assert!(
                prod.max_abs_diff(&CMatrix::identity(n)) < 1e-8,
                "A·A⁻¹ ≠ I for n={n}"
            );
        }
    }

    #[test]
    fn cholesky_reconstructs() {
        let mut rng = Rng64::new(3);
        for n in [1usize, 2, 4, 7] {
            // Build an SPD matrix as BᵀB + I.
            let b = random_matrix(n + 2, n, &mut rng);
            let mut a = b.gram();
            for i in 0..n {
                a[(i, i)] += 1.0;
            }
            let ch = CholeskyReal::new(&a).unwrap();
            let recon = ch.l().matmul(&ch.l().transpose());
            assert!(recon.max_abs_diff(&a) < 1e-9, "LLᵀ ≠ A for n={n}");

            // And the solver matches LU.
            let rhs = RVector::from_vec((0..n).map(|i| i as f64 - 1.5).collect());
            let x1 = ch.solve(&rhs);
            let x2 = solve_real(&a, &rhs).unwrap();
            for i in 0..n {
                assert!((x1[i] - x2[i]).abs() < 1e-8);
            }
        }
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let a = RMatrix::from_vec(2, 2, vec![1., 2., 2., 1.]); // eigenvalues 3, -1
        assert!(matches!(
            CholeskyReal::new(&a),
            Err(LinalgError::NotPositiveDefinite { .. })
        ));
    }

    #[test]
    fn qr_reconstructs_and_is_orthonormal() {
        let mut rng = Rng64::new(5);
        for (m, n) in [(3usize, 3usize), (5, 3), (8, 8), (10, 4)] {
            let a = random_matrix(m, n, &mut rng);
            let qr = QrReal::new(&a);
            // QᵀQ = I
            let qtq = qr.q().gram();
            assert!(
                qtq.max_abs_diff(&RMatrix::identity(n)) < 1e-9,
                "QᵀQ ≠ I for {m}x{n}"
            );
            // QR = A
            let recon = qr.q().matmul(qr.r());
            assert!(recon.max_abs_diff(&a) < 1e-9, "QR ≠ A for {m}x{n}");
            // R upper-triangular, non-negative diagonal.
            for i in 0..n {
                assert!(qr.r()[(i, i)] >= 0.0);
                for j in 0..i {
                    assert!(qr.r()[(i, j)].abs() < 1e-10);
                }
            }
        }
    }

    #[test]
    fn qr_least_squares_matches_normal_equations() {
        let mut rng = Rng64::new(9);
        let a = random_matrix(7, 3, &mut rng);
        let y = RVector::from_vec((0..7).map(|i| (i as f64).sin()).collect());
        let x_qr = QrReal::new(&a).solve_least_squares(&y);

        // Normal equations: (AᵀA)x = Aᵀy
        let x_ne = solve_real(&a.gram(), &a.tr_matvec(&y)).unwrap();
        for i in 0..3 {
            assert!((x_qr[i] - x_ne[i]).abs() < 1e-8);
        }
    }
}
