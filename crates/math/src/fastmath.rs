//! Polynomial transcendental approximations for Monte-Carlo hot loops.
//!
//! The Fast sweep kernels spend most of an uphill proposal inside libm
//! `exp` (and SVMC inside `sin`/`cos`). A Metropolis acceptance test only
//! needs the ratio to ~10⁻⁷ — anything finer is far below Monte-Carlo
//! resolution — so the Fast kernels trade libm's 0.5-ulp guarantee for a
//! short branchless polynomial. The Exact kernels never call these: their
//! contract is bit-identical replay of the historical libm streams.

/// `eˣ` for `x ∈ [−30, 0]`, accurate to ~6·10⁻⁹ relative.
///
/// Range reduction `eˣ = 2ⁿ·e^f` with `n = round(x·log₂e)` (magic-number
/// rounding, no `round` libcall) and `|f| ≤ ln2/2`, then a degree-7 Taylor
/// for `e^f` and an exponent-bit scale by `2ⁿ`.
///
/// Callers must keep `x` in `[−30, 0]`: the Fast kernels' reject cutoff
/// guarantees it (acceptance below e⁻³⁰ is rejected without drawing).
/// Out-of-range inputs are debug-asserted, not handled.
#[inline]
pub fn exp_fast(x: f64) -> f64 {
    debug_assert!(
        (-30.5..=0.0).contains(&x),
        "exp_fast domain is [-30, 0], got {x}"
    );
    // 1.5·2⁵² — adding and subtracting rounds to nearest integer for
    // |t| < 2⁵¹ without the (potentially libcall) `round`.
    const MAGIC: f64 = 6_755_399_441_055_744.0;
    let t = x * std::f64::consts::LOG2_E;
    let n = (t + MAGIC) - MAGIC;
    let f = (t - n) * std::f64::consts::LN_2; // |f| ≤ ln2/2 ≈ 0.347
    let mut p = 1.0 / 5_040.0; // 1/7!
    p = p * f + 1.0 / 720.0;
    p = p * f + 1.0 / 120.0;
    p = p * f + 1.0 / 24.0;
    p = p * f + 1.0 / 6.0;
    p = p * f + 0.5;
    p = p * f + 1.0;
    p = p * f + 1.0;
    // n ∈ [−44, 0] ⇒ biased exponent ∈ [979, 1023]: always normal.
    let scale = f64::from_bits(((n as i64 + 1023) << 52) as u64);
    scale * p
}

/// `sin x` for `x ∈ [−π/2, π/2]` as an odd Taylor polynomial through x¹¹
/// (next omitted term `x¹³/13!` is < 6·10⁻⁸ at the interval edge).
#[inline]
pub fn sin_poly_half_pi(x: f64) -> f64 {
    debug_assert!(
        x.abs() <= std::f64::consts::FRAC_PI_2 + 1e-9,
        "sin_poly_half_pi domain is [-pi/2, pi/2], got {x}"
    );
    let x2 = x * x;
    let mut s = -1.0 / 39_916_800.0; // −1/11!
    s = s * x2 + 1.0 / 362_880.0; //  1/9!
    s = s * x2 - 1.0 / 5_040.0; // −1/7!
    s = s * x2 + 1.0 / 120.0; //  1/5!
    s = s * x2 - 1.0 / 6.0; // −1/3!
    s = s * x2 + 1.0;
    s * x
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exp_fast_matches_libm_over_domain() {
        let mut worst = 0.0f64;
        for i in 0..=30_000 {
            let x = -(i as f64) * 1e-3;
            let got = exp_fast(x);
            let want = x.exp();
            let rel = ((got - want) / want).abs();
            worst = worst.max(rel);
        }
        assert!(worst < 1e-8, "worst relative error {worst:.3e}");
    }

    #[test]
    fn exp_fast_endpoints() {
        assert_eq!(exp_fast(0.0), 1.0);
        let got = exp_fast(-30.0);
        let want = (-30.0f64).exp();
        assert!(((got - want) / want).abs() < 1e-8);
    }

    #[test]
    fn sin_poly_matches_libm_over_domain() {
        let mut worst = 0.0f64;
        for i in -1_570..=1_570 {
            let x = i as f64 * 1e-3;
            let got = sin_poly_half_pi(x);
            let want = x.sin();
            worst = worst.max((got - want).abs());
        }
        assert!(worst < 1e-7, "worst absolute error {worst:.3e}");
    }
}
