//! Descriptive statistics, percentiles, histograms and fixed-width binning.
//!
//! These utilities back the paper's analyses: the ΔE% percentile
//! distributions of Figure 6, the 2%-wide ΔE_IS% bins of Figure 7, and the
//! median-based parameter selection of §4.3.

/// Summary statistics of a sample.
#[derive(Debug, Clone, PartialEq)]
pub struct Summary {
    /// Number of samples.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (n−1 denominator; 0 for n < 2).
    pub std_dev: f64,
    /// Minimum value.
    pub min: f64,
    /// Maximum value.
    pub max: f64,
    /// Median (50th percentile).
    pub median: f64,
}

/// Computes summary statistics of a sample.
///
/// Returns `None` for an empty sample.
pub fn summarize(samples: &[f64]) -> Option<Summary> {
    if samples.is_empty() {
        return None;
    }
    let count = samples.len();
    let mean = samples.iter().sum::<f64>() / count as f64;
    let var = if count > 1 {
        samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (count - 1) as f64
    } else {
        0.0
    };
    let min = samples.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = samples.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    Some(Summary {
        count,
        mean,
        std_dev: var.sqrt(),
        min,
        max,
        median: percentile(samples, 50.0),
    })
}

/// Computes the `p`-th percentile (0–100) with linear interpolation.
///
/// Sorts a copy of the input; suitable for analysis-sized sample sets.
///
/// # Panics
/// Panics on an empty sample or `p` outside `[0, 100]`.
pub fn percentile(samples: &[f64], p: f64) -> f64 {
    assert!(!samples.is_empty(), "percentile: empty sample");
    assert!((0.0..=100.0).contains(&p), "percentile: p out of range");
    let mut sorted: Vec<f64> = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("percentile: NaN in sample"));
    percentile_sorted(&sorted, p)
}

/// Percentile of an already-sorted sample (ascending).
///
/// # Panics
/// Panics on an empty sample or `p` outside `[0, 100]`.
pub fn percentile_sorted(sorted: &[f64], p: f64) -> f64 {
    assert!(!sorted.is_empty(), "percentile: empty sample");
    assert!((0.0..=100.0).contains(&p), "percentile: p out of range");
    if sorted.len() == 1 {
        return sorted[0];
    }
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    sorted[lo] * (1.0 - frac) + sorted[hi] * frac
}

/// Median convenience wrapper.
///
/// # Panics
/// Panics on an empty sample.
pub fn median(samples: &[f64]) -> f64 {
    percentile(samples, 50.0)
}

/// Sorts a copy of `values` ascending — the shared pre-step every engine's
/// latency aggregation runs before its [`percentile_sorted`] queries, so
/// the NaN-rejecting comparator lives in one place.
///
/// # Panics
/// Panics when `values` contains a NaN.
pub fn sorted_ascending(values: &[f64]) -> Vec<f64> {
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("sorted_ascending: NaN in sample"));
    sorted
}

/// Batch percentile queries over an unsorted sample: one sort, one
/// [`percentile_sorted`] call per requested percentile.
///
/// Unlike [`percentile`], an empty sample is not an error: every query
/// yields 0.0, so an experiment point with no observations reports zeroed
/// latency fields instead of panicking or emitting NaN.
///
/// # Panics
/// Panics when `values` contains a NaN or a percentile falls outside
/// `[0, 100]`.
pub fn percentiles_of(values: &[f64], ps: &[f64]) -> Vec<f64> {
    if values.is_empty() {
        return ps
            .iter()
            .map(|p| {
                assert!((0.0..=100.0).contains(p), "percentiles_of: p out of range");
                0.0
            })
            .collect();
    }
    let sorted = sorted_ascending(values);
    ps.iter().map(|&p| percentile_sorted(&sorted, p)).collect()
}

/// `num / den`, except a zero denominator yields 0.0 instead of NaN or
/// ±∞ — the guard every per-job report ratio (`decision_ns_per_job`,
/// `ber`, `fallback_rate`, …) uses so a point with zero jobs emits a
/// well-formed report.
pub fn safe_ratio(num: f64, den: f64) -> f64 {
    if den == 0.0 {
        0.0
    } else {
        num / den
    }
}

/// A fixed-width histogram over `[lo, hi)`.
///
/// Values outside the range are counted in `underflow` / `overflow` rather
/// than silently dropped, so totals always reconcile.
#[derive(Debug, Clone)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    /// Count of samples below `lo`.
    pub underflow: u64,
    /// Count of samples at or above `hi`.
    pub overflow: u64,
}

impl Histogram {
    /// Creates a histogram with `bins` equal-width bins over `[lo, hi)`.
    ///
    /// # Panics
    /// Panics when `bins == 0` or `hi <= lo`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "Histogram: need at least one bin");
        assert!(hi > lo, "Histogram: hi must exceed lo");
        Histogram {
            lo,
            hi,
            counts: vec![0; bins],
            underflow: 0,
            overflow: 0,
        }
    }

    /// Number of bins.
    pub fn bins(&self) -> usize {
        self.counts.len()
    }

    /// Bin width.
    pub fn width(&self) -> f64 {
        (self.hi - self.lo) / self.counts.len() as f64
    }

    /// Adds one observation.
    pub fn add(&mut self, x: f64) {
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let idx = ((x - self.lo) / self.width()) as usize;
            // Guard against x == hi-epsilon rounding up to bins().
            let idx = idx.min(self.counts.len() - 1);
            self.counts[idx] += 1;
        }
    }

    /// Adds many observations.
    pub fn extend(&mut self, xs: impl IntoIterator<Item = f64>) {
        for x in xs {
            self.add(x);
        }
    }

    /// Count in bin `i`.
    pub fn count(&self, i: usize) -> u64 {
        self.counts[i]
    }

    /// Total in-range count.
    pub fn total_in_range(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Total including under/overflow.
    pub fn total(&self) -> u64 {
        self.total_in_range() + self.underflow + self.overflow
    }

    /// Lower edge of bin `i`.
    pub fn bin_lo(&self, i: usize) -> f64 {
        self.lo + i as f64 * self.width()
    }

    /// Center of bin `i`.
    pub fn bin_center(&self, i: usize) -> f64 {
        self.bin_lo(i) + 0.5 * self.width()
    }

    /// Normalized frequencies (fractions of the total including overflow).
    pub fn frequencies(&self) -> Vec<f64> {
        let total = self.total().max(1) as f64;
        self.counts.iter().map(|&c| c as f64 / total).collect()
    }
}

/// Groups `(key, value)` observations into fixed-width key bins and reduces
/// each bin's values with a caller-supplied statistic.
///
/// This is the helper behind Figure 7's "ΔE_IS% binned in steps of δ = 2%":
/// `bin_reduce(obs, 0.0, 10.0, 2.0, |v| ...)` yields one entry per bin with
/// the bin center and the reduced value (`None` for empty bins).
pub fn bin_reduce<F>(
    observations: &[(f64, f64)],
    lo: f64,
    hi: f64,
    width: f64,
    mut reduce: F,
) -> Vec<(f64, Option<f64>)>
where
    F: FnMut(&[f64]) -> f64,
{
    assert!(width > 0.0, "bin_reduce: width must be positive");
    assert!(hi > lo, "bin_reduce: hi must exceed lo");
    let nbins = ((hi - lo) / width).ceil() as usize;
    let mut buckets: Vec<Vec<f64>> = vec![Vec::new(); nbins];
    for &(k, v) in observations {
        if k < lo || k >= hi {
            continue;
        }
        let idx = (((k - lo) / width) as usize).min(nbins - 1);
        buckets[idx].push(v);
    }
    buckets
        .into_iter()
        .enumerate()
        .map(|(i, vals)| {
            let center = lo + (i as f64 + 0.5) * width;
            let reduced = if vals.is_empty() {
                None
            } else {
                Some(reduce(&vals))
            };
            (center, reduced)
        })
        .collect()
}

/// Incremental mean/variance accumulator (Welford's algorithm).
///
/// Used where sample sets are too large to keep in memory (e.g. million-read
/// anneal sweeps).
#[derive(Debug, Clone, Default)]
pub struct RunningStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl RunningStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        RunningStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn add(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Mean (0 when empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Sample variance (n−1 denominator; 0 for n < 2).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Minimum observation (`+∞` when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Maximum observation (`−∞` when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Merges another accumulator into this one (parallel reduction).
    pub fn merge(&mut self, other: &RunningStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_known_sample() {
        let s = summarize(&[1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(s.count, 4);
        assert!((s.mean - 2.5).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert!((s.median - 2.5).abs() < 1e-12);
        // Sample std dev of 1..4 is sqrt(5/3).
        assert!((s.std_dev - (5.0f64 / 3.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn summary_of_empty_is_none() {
        assert!(summarize(&[]).is_none());
    }

    #[test]
    fn percentiles_interpolate() {
        let v = [10.0, 20.0, 30.0, 40.0];
        assert_eq!(percentile(&v, 0.0), 10.0);
        assert_eq!(percentile(&v, 100.0), 40.0);
        assert!((percentile(&v, 50.0) - 25.0).abs() < 1e-12);
        assert!((percentile(&v, 25.0) - 17.5).abs() < 1e-12);
    }

    #[test]
    fn median_odd_sample() {
        assert_eq!(median(&[5.0, 1.0, 3.0]), 3.0);
    }

    #[test]
    fn percentiles_of_empty_sample_is_all_zero() {
        assert_eq!(percentiles_of(&[], &[0.0, 50.0, 99.9, 100.0]), vec![0.0; 4]);
    }

    #[test]
    fn percentiles_of_single_element_is_constant() {
        assert_eq!(
            percentiles_of(&[7.5], &[0.0, 33.0, 50.0, 100.0]),
            vec![7.5; 4]
        );
    }

    #[test]
    fn percentiles_of_exact_boundaries_match_percentile_sorted() {
        // Unsorted input; p = 0/25/50/100 land exactly on order statistics
        // of a 5-element sample (rank = p/100 * 4 is integral).
        let v = [30.0, 10.0, 50.0, 20.0, 40.0];
        assert_eq!(
            percentiles_of(&v, &[0.0, 25.0, 50.0, 75.0, 100.0]),
            vec![10.0, 20.0, 30.0, 40.0, 50.0]
        );
        // And interpolated queries agree with the sorted-path reference.
        let sorted = sorted_ascending(&v);
        assert_eq!(
            percentiles_of(&v, &[99.0])[0],
            percentile_sorted(&sorted, 99.0)
        );
    }

    #[test]
    #[should_panic(expected = "p out of range")]
    fn percentiles_of_rejects_out_of_range_even_when_empty() {
        percentiles_of(&[], &[101.0]);
    }

    #[test]
    fn sorted_ascending_leaves_input_untouched() {
        let v = [3.0, 1.0, 2.0];
        assert_eq!(sorted_ascending(&v), vec![1.0, 2.0, 3.0]);
        assert_eq!(v, [3.0, 1.0, 2.0]);
    }

    #[test]
    fn safe_ratio_guards_zero_denominators() {
        assert_eq!(safe_ratio(5.0, 2.0), 2.5);
        assert_eq!(safe_ratio(5.0, 0.0), 0.0);
        assert_eq!(safe_ratio(0.0, 0.0), 0.0);
        assert_eq!(safe_ratio(-3.0, 0.0), 0.0);
    }

    #[test]
    fn histogram_counts_and_edges() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        h.extend([0.0, 1.9, 2.0, 9.99, -1.0, 10.0, 25.0]);
        assert_eq!(h.count(0), 2); // 0.0, 1.9
        assert_eq!(h.count(1), 1); // 2.0
        assert_eq!(h.count(4), 1); // 9.99
        assert_eq!(h.underflow, 1); // -1.0
        assert_eq!(h.overflow, 2); // 10.0, 25.0
        assert_eq!(h.total(), 7);
        assert_eq!(h.bin_lo(1), 2.0);
        assert_eq!(h.bin_center(0), 1.0);
    }

    #[test]
    fn histogram_frequencies_sum_below_one_with_overflow() {
        let mut h = Histogram::new(0.0, 1.0, 2);
        h.extend([0.1, 0.6, 2.0]);
        let f = h.frequencies();
        assert!((f[0] - 1.0 / 3.0).abs() < 1e-12);
        assert!((f.iter().sum::<f64>() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn bin_reduce_matches_figure7_binning() {
        // Keys 0..10 in 2%-wide bins, reduce = mean.
        let obs: Vec<(f64, f64)> = vec![
            (0.5, 10.0),
            (1.5, 20.0),  // bin [0,2): mean 15
            (3.0, 5.0),   // bin [2,4): mean 5
            (9.9, 1.0),   // bin [8,10): mean 1
            (11.0, 99.0), // out of range, ignored
        ];
        let bins = bin_reduce(&obs, 0.0, 10.0, 2.0, |v| {
            v.iter().sum::<f64>() / v.len() as f64
        });
        assert_eq!(bins.len(), 5);
        assert_eq!(bins[0], (1.0, Some(15.0)));
        assert_eq!(bins[1], (3.0, Some(5.0)));
        assert_eq!(bins[2], (5.0, None));
        assert_eq!(bins[4], (9.0, Some(1.0)));
    }

    #[test]
    fn running_stats_matches_batch() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64 * 0.37).sin() * 3.0).collect();
        let mut rs = RunningStats::new();
        for &x in &data {
            rs.add(x);
        }
        let batch = summarize(&data).unwrap();
        assert_eq!(rs.count(), 100);
        assert!((rs.mean() - batch.mean).abs() < 1e-12);
        assert!((rs.std_dev() - batch.std_dev).abs() < 1e-12);
        assert_eq!(rs.min(), batch.min);
        assert_eq!(rs.max(), batch.max);
    }

    #[test]
    fn running_stats_merge_equals_sequential() {
        let data: Vec<f64> = (0..50).map(|i| (i as f64).cos()).collect();
        let mut whole = RunningStats::new();
        for &x in &data {
            whole.add(x);
        }
        let mut left = RunningStats::new();
        let mut right = RunningStats::new();
        for &x in &data[..20] {
            left.add(x);
        }
        for &x in &data[20..] {
            right.add(x);
        }
        left.merge(&right);
        assert_eq!(left.count(), whole.count());
        assert!((left.mean() - whole.mean()).abs() < 1e-12);
        assert!((left.variance() - whole.variance()).abs() < 1e-12);
    }

    #[test]
    fn running_stats_merge_with_empty() {
        let mut a = RunningStats::new();
        a.add(1.0);
        a.add(2.0);
        let b = RunningStats::new();
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged.count(), 2);
        let mut empty = RunningStats::new();
        empty.merge(&a);
        assert_eq!(empty.count(), 2);
        assert!((empty.mean() - 1.5).abs() < 1e-12);
    }
}
