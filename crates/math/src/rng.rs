//! Deterministic random number generation.
//!
//! The whole workspace threads explicit RNG state through every stochastic
//! API so that experiments reproduce bit-exactly from a seed, across threads
//! (each parallel anneal read derives its own child generator with
//! [`Rng64::split`]).
//!
//! The generator is xoshiro256++ (Blackman & Vigna), seeded through
//! splitmix64 as its authors recommend. It is not cryptographic; it is a
//! fast, high-quality generator for Monte-Carlo simulation.

/// A seedable xoshiro256++ pseudo-random number generator.
#[derive(Debug, Clone)]
pub struct Rng64 {
    s: [u64; 4],
    /// Cached second Gaussian from the last Box-Muller draw.
    gauss_spare: Option<f64>,
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

impl Rng64 {
    /// Creates a generator from a 64-bit seed.
    ///
    /// Any seed (including 0) produces a valid, full-period state because the
    /// raw seed is expanded through splitmix64.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Rng64 {
            s,
            gauss_spare: None,
        }
    }

    /// Derives an independent child generator.
    ///
    /// Used to give each parallel anneal read / each pipeline stage its own
    /// stream while keeping the parent deterministic: the child's seed is a
    /// fresh 64-bit draw from the parent.
    pub fn split(&mut self) -> Rng64 {
        Rng64::new(self.next_u64())
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f64` in `[lo, hi)`.
    #[inline]
    pub fn next_range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.next_f64()
    }

    /// Uniform integer in `[0, n)` using Lemire's unbiased method.
    ///
    /// # Panics
    /// Panics when `n == 0`.
    #[inline]
    pub fn next_below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "next_below: n must be positive");
        // Lemire's multiply-shift rejection method.
        let mut x = self.next_u64();
        let mut m = (x as u128) * (n as u128);
        let mut l = m as u64;
        if l < n {
            let t = n.wrapping_neg() % n;
            while l < t {
                x = self.next_u64();
                m = (x as u128) * (n as u128);
                l = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform index in `[0, n)`.
    ///
    /// # Panics
    /// Panics when `n == 0`.
    #[inline]
    pub fn next_index(&mut self, n: usize) -> usize {
        self.next_below(n as u64) as usize
    }

    /// Fair coin flip.
    #[inline]
    pub fn next_bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// Bernoulli draw with success probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn next_bernoulli(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Standard Gaussian (`μ = 0`, `σ = 1`) via Box-Muller with caching.
    pub fn next_gaussian(&mut self) -> f64 {
        if let Some(z) = self.gauss_spare.take() {
            return z;
        }
        // Draw u1 in (0, 1] to avoid ln(0).
        let u1 = 1.0 - self.next_f64();
        let u2 = self.next_f64();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        self.gauss_spare = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Gaussian with the given mean and standard deviation.
    #[inline]
    pub fn next_gaussian_with(&mut self, mean: f64, std_dev: f64) -> f64 {
        mean + std_dev * self.next_gaussian()
    }

    /// Fisher-Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.next_index(i + 1);
            slice.swap(i, j);
        }
    }

    /// Samples an index from unnormalized non-negative weights.
    ///
    /// # Panics
    /// Panics when `weights` is empty or sums to a non-positive value.
    pub fn next_weighted(&mut self, weights: &[f64]) -> usize {
        assert!(!weights.is_empty(), "next_weighted: empty weights");
        let total: f64 = weights.iter().sum();
        assert!(
            total > 0.0 && total.is_finite(),
            "next_weighted: weights must sum to a positive finite value"
        );
        let mut target = self.next_f64() * total;
        for (i, w) in weights.iter().enumerate() {
            target -= w;
            if target < 0.0 {
                return i;
            }
        }
        weights.len() - 1 // Floating-point fallback.
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_from_seed() {
        let mut a = Rng64::new(42);
        let mut b = Rng64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Rng64::new(1);
        let mut b = Rng64::new(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn zero_seed_is_valid() {
        let mut rng = Rng64::new(0);
        // A bad (all-zero) xoshiro state would return 0 forever.
        let any_nonzero = (0..8).any(|_| rng.next_u64() != 0);
        assert!(any_nonzero);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = Rng64::new(7);
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn uniform_mean_is_near_half() {
        let mut rng = Rng64::new(11);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.next_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean={mean}");
    }

    #[test]
    fn next_below_is_in_range_and_covers() {
        let mut rng = Rng64::new(13);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            let v = rng.next_below(7) as usize;
            assert!(v < 7);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gaussian_moments() {
        let mut rng = Rng64::new(17);
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.next_gaussian()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean={mean}");
        assert!((var - 1.0).abs() < 0.03, "var={var}");
    }

    #[test]
    fn split_streams_are_independent_and_deterministic() {
        let mut parent1 = Rng64::new(23);
        let mut parent2 = Rng64::new(23);
        let mut c1 = parent1.split();
        let mut c2 = parent2.split();
        for _ in 0..32 {
            assert_eq!(c1.next_u64(), c2.next_u64());
        }
        // Child and parent streams differ.
        let mut parent = Rng64::new(29);
        let mut child = parent.split();
        let equal = (0..32)
            .filter(|_| parent.next_u64() == child.next_u64())
            .count();
        assert!(equal < 2);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Rng64::new(31);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn weighted_sampling_respects_weights() {
        let mut rng = Rng64::new(37);
        let weights = [0.0, 1.0, 3.0];
        let mut counts = [0usize; 3];
        for _ in 0..40_000 {
            counts[rng.next_weighted(&weights)] += 1;
        }
        assert_eq!(counts[0], 0);
        let ratio = counts[2] as f64 / counts[1] as f64;
        assert!((ratio - 3.0).abs() < 0.3, "ratio={ratio}");
    }

    #[test]
    #[should_panic(expected = "next_below: n must be positive")]
    fn next_below_zero_panics() {
        Rng64::new(1).next_below(0);
    }
}
