//! Dense real matrices and vectors.
//!
//! Row-major dense storage. These types back the real-valued decomposition of
//! the MIMO system (the ML→QUBO reduction works on the stacked real form of
//! the complex channel) and the QUBO coefficient algebra.

use std::fmt;
use std::ops::{Add, Index, IndexMut, Mul, Sub};

/// A dense real vector.
#[derive(Clone, PartialEq)]
pub struct RVector {
    data: Vec<f64>,
}

impl RVector {
    /// Creates a vector from raw data.
    pub fn from_vec(data: Vec<f64>) -> Self {
        RVector { data }
    }

    /// Creates a zero vector of length `n`.
    pub fn zeros(n: usize) -> Self {
        RVector { data: vec![0.0; n] }
    }

    /// Vector length.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the vector has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the underlying storage.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable view of the underlying storage.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consumes the vector, returning its storage.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Dot product `self · other`.
    ///
    /// # Panics
    /// Panics when lengths differ.
    pub fn dot(&self, other: &RVector) -> f64 {
        assert_eq!(self.len(), other.len(), "dot: length mismatch");
        self.data.iter().zip(&other.data).map(|(a, b)| a * b).sum()
    }

    /// Euclidean norm `‖v‖₂`.
    pub fn norm(&self) -> f64 {
        self.dot(self).sqrt()
    }

    /// Squared Euclidean norm `‖v‖₂²`.
    pub fn norm_sqr(&self) -> f64 {
        self.dot(self)
    }

    /// Returns `self + k·other`.
    ///
    /// # Panics
    /// Panics when lengths differ.
    pub fn axpy(&self, k: f64, other: &RVector) -> RVector {
        assert_eq!(self.len(), other.len(), "axpy: length mismatch");
        RVector::from_vec(
            self.data
                .iter()
                .zip(&other.data)
                .map(|(a, b)| a + k * b)
                .collect(),
        )
    }
}

impl fmt::Debug for RVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "RVector({:?})", self.data)
    }
}

impl Index<usize> for RVector {
    type Output = f64;
    #[inline]
    fn index(&self, i: usize) -> &f64 {
        &self.data[i]
    }
}

impl IndexMut<usize> for RVector {
    #[inline]
    fn index_mut(&mut self, i: usize) -> &mut f64 {
        &mut self.data[i]
    }
}

impl Add for &RVector {
    type Output = RVector;
    fn add(self, rhs: &RVector) -> RVector {
        self.axpy(1.0, rhs)
    }
}

impl Sub for &RVector {
    type Output = RVector;
    fn sub(self, rhs: &RVector) -> RVector {
        self.axpy(-1.0, rhs)
    }
}

/// A dense real matrix in row-major order.
#[derive(Clone, PartialEq)]
pub struct RMatrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl RMatrix {
    /// Creates a matrix from row-major data.
    ///
    /// # Panics
    /// Panics when `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "RMatrix: data length mismatch");
        RMatrix { rows, cols, data }
    }

    /// Creates a zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        RMatrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = RMatrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix element-wise from a function of `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        RMatrix { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Immutable view of the row-major storage.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Returns row `r` as a slice.
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Transpose.
    pub fn transpose(&self) -> RMatrix {
        RMatrix::from_fn(self.cols, self.rows, |r, c| self[(c, r)])
    }

    /// Matrix product `self · other`.
    ///
    /// # Panics
    /// Panics on inner-dimension mismatch.
    pub fn matmul(&self, other: &RMatrix) -> RMatrix {
        assert_eq!(self.cols, other.rows, "matmul: dimension mismatch");
        let mut out = RMatrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let aik = self[(i, k)];
                if aik == 0.0 {
                    continue;
                }
                for j in 0..other.cols {
                    out[(i, j)] += aik * other[(k, j)];
                }
            }
        }
        out
    }

    /// Matrix-vector product `self · v`.
    ///
    /// # Panics
    /// Panics when `v.len() != self.cols()`.
    pub fn matvec(&self, v: &RVector) -> RVector {
        assert_eq!(self.cols, v.len(), "matvec: dimension mismatch");
        let mut out = RVector::zeros(self.rows);
        for i in 0..self.rows {
            out[i] = self
                .row(i)
                .iter()
                .zip(v.as_slice())
                .map(|(a, b)| a * b)
                .sum();
        }
        out
    }

    /// Gram matrix `selfᵀ · self` (symmetric positive semi-definite).
    pub fn gram(&self) -> RMatrix {
        let mut out = RMatrix::zeros(self.cols, self.cols);
        for i in 0..self.cols {
            for j in i..self.cols {
                let mut s = 0.0;
                for k in 0..self.rows {
                    s += self[(k, i)] * self[(k, j)];
                }
                out[(i, j)] = s;
                out[(j, i)] = s;
            }
        }
        out
    }

    /// `selfᵀ · v`, without materializing the transpose.
    ///
    /// # Panics
    /// Panics when `v.len() != self.rows()`.
    pub fn tr_matvec(&self, v: &RVector) -> RVector {
        assert_eq!(self.rows, v.len(), "tr_matvec: dimension mismatch");
        let mut out = RVector::zeros(self.cols);
        for i in 0..self.rows {
            let vi = v[i];
            for j in 0..self.cols {
                out[j] += self[(i, j)] * vi;
            }
        }
        out
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Maximum absolute element difference against `other`.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn max_abs_diff(&self, other: &RMatrix) -> f64 {
        assert_eq!(self.rows, other.rows);
        assert_eq!(self.cols, other.cols);
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }
}

impl fmt::Debug for RMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "RMatrix {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows {
            writeln!(f, "  {:?}", self.row(r))?;
        }
        write!(f, "]")
    }
}

impl Index<(usize, usize)> for RMatrix {
    type Output = f64;
    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        debug_assert!(r < self.rows && c < self.cols);
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for RMatrix {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        debug_assert!(r < self.rows && c < self.cols);
        &mut self.data[r * self.cols + c]
    }
}

impl Mul<&RMatrix> for &RMatrix {
    type Output = RMatrix;
    fn mul(self, rhs: &RMatrix) -> RMatrix {
        self.matmul(rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_is_multiplicative_identity() {
        let a = RMatrix::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        let i2 = RMatrix::identity(2);
        let i3 = RMatrix::identity(3);
        assert_eq!(i2.matmul(&a), a);
        assert_eq!(a.matmul(&i3), a);
    }

    #[test]
    fn matmul_known_product() {
        let a = RMatrix::from_vec(2, 2, vec![1., 2., 3., 4.]);
        let b = RMatrix::from_vec(2, 2, vec![5., 6., 7., 8.]);
        let c = a.matmul(&b);
        assert_eq!(c.as_slice(), &[19., 22., 43., 50.]);
    }

    #[test]
    fn transpose_involution() {
        let a = RMatrix::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn gram_matches_explicit_product() {
        let a = RMatrix::from_vec(3, 2, vec![1., 2., 3., 4., 5., 6.]);
        let g = a.gram();
        let explicit = a.transpose().matmul(&a);
        assert!(g.max_abs_diff(&explicit) < 1e-12);
    }

    #[test]
    fn tr_matvec_matches_transpose() {
        let a = RMatrix::from_vec(3, 2, vec![1., 2., 3., 4., 5., 6.]);
        let v = RVector::from_vec(vec![1., -1., 2.]);
        let direct = a.tr_matvec(&v);
        let via_transpose = a.transpose().matvec(&v);
        assert_eq!(direct.as_slice(), via_transpose.as_slice());
    }

    #[test]
    fn vector_ops() {
        let a = RVector::from_vec(vec![3., 4.]);
        assert_eq!(a.norm(), 5.0);
        let b = RVector::from_vec(vec![1., 1.]);
        assert_eq!(a.dot(&b), 7.0);
        assert_eq!((&a - &b).as_slice(), &[2., 3.]);
        assert_eq!(a.axpy(2.0, &b).as_slice(), &[5., 6.]);
    }

    #[test]
    #[should_panic(expected = "dot: length mismatch")]
    fn dot_length_mismatch_panics() {
        RVector::zeros(2).dot(&RVector::zeros(3));
    }

    #[test]
    #[should_panic(expected = "matmul: dimension mismatch")]
    fn matmul_shape_mismatch_panics() {
        let a = RMatrix::zeros(2, 3);
        let b = RMatrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }
}
