//! # hqw-math — numerics substrate for the `hqw` workspace
//!
//! The offline dependency set contains no complex-number or linear-algebra
//! crates, so everything the wireless PHY and the annealer simulator need is
//! implemented here from scratch:
//!
//! * [`Complex64`] — double-precision complex numbers.
//! * [`CMatrix`] / [`CVector`] — dense complex matrices and vectors with the
//!   operations MIMO processing needs (Hermitian transpose, products, solves).
//! * [`RMatrix`] / [`RVector`] — dense real matrices and vectors.
//! * [`linalg`] — LU, Cholesky and Householder-QR decompositions with
//!   solvers/inverses, for zero-forcing, MMSE and sphere-decoder front ends.
//! * [`rng`] — deterministic, seedable xoshiro256++ RNG with uniform,
//!   Gaussian and categorical sampling. Every stochastic API in the workspace
//!   threads one of these through explicitly, so all experiments reproduce
//!   bit-exactly from a seed.
//! * [`parallel`] — the deterministic, order-preserving thread fan-out every
//!   parallel surface (SA/anneal reads, batch solves, grid sweeps) shares.
//! * [`stats`] — descriptive statistics, percentiles, histograms and the
//!   fixed-width binning used by the paper's ΔE% analyses.
//!
//! Design goals follow the workspace guides: simplicity and robustness over
//! cleverness, no macro tricks, extensive documentation, and tests (unit +
//! property) alongside every module.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cmat;
pub mod complex;
pub mod fastmath;
pub mod linalg;
pub mod parallel;
pub mod rmat;
pub mod rng;
pub mod stats;

pub use cmat::{CMatrix, CVector};
pub use complex::Complex64;
pub use rmat::{RMatrix, RVector};
pub use rng::Rng64;

/// Tolerance used by the workspace when comparing floating-point energies.
///
/// QUBO energies in this workspace are sums of `O(N²)` products of
/// `O(1)`-magnitude terms; `1e-9` absolute tolerance distinguishes distinct
/// discrete energy levels for every problem size used in the experiments
/// while absorbing accumulated rounding error.
pub const ENERGY_EPS: f64 = 1e-9;

/// Returns true when two energies should be considered the same level.
///
/// Uses a mixed absolute/relative criterion so that it works both near zero
/// (noiseless-instance ground energies) and for large magnitudes.
#[inline]
pub fn energy_eq(a: f64, b: f64) -> bool {
    let diff = (a - b).abs();
    diff <= ENERGY_EPS || diff <= f64::max(a.abs(), b.abs()) * 1e-12
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn energy_eq_absolute_near_zero() {
        assert!(energy_eq(0.0, 1e-10));
        assert!(!energy_eq(0.0, 1e-3));
    }

    #[test]
    fn energy_eq_relative_for_large_values() {
        assert!(energy_eq(1e12, 1e12 + 0.1));
        assert!(!energy_eq(1e12, 1e12 + 1e3));
    }
}
