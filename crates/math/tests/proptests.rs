//! Property-based tests for the numerics substrate.

use hqw_math::linalg::{CholeskyReal, LuReal, QrReal};
use hqw_math::stats::{percentile, RunningStats};
use hqw_math::{CMatrix, CVector, Complex64, RMatrix, RVector, Rng64};
use proptest::prelude::*;

fn finite_f64() -> impl Strategy<Value = f64> {
    (-1e3..1e3f64).prop_filter("finite", |x| x.is_finite())
}

fn complex() -> impl Strategy<Value = Complex64> {
    (finite_f64(), finite_f64()).prop_map(|(re, im)| Complex64::new(re, im))
}

proptest! {
    #[test]
    fn complex_mul_commutes(a in complex(), b in complex()) {
        let ab = a * b;
        let ba = b * a;
        prop_assert!((ab - ba).abs() <= 1e-9 * (1.0 + ab.abs()));
    }

    #[test]
    fn complex_conj_is_involution(a in complex()) {
        prop_assert_eq!(a.conj().conj(), a);
    }

    #[test]
    fn complex_norm_multiplicative(a in complex(), b in complex()) {
        let lhs = (a * b).norm_sqr();
        let rhs = a.norm_sqr() * b.norm_sqr();
        prop_assert!((lhs - rhs).abs() <= 1e-6 * (1.0 + rhs.abs()));
    }

    #[test]
    fn complex_distributive(a in complex(), b in complex(), c in complex()) {
        let lhs = a * (b + c);
        let rhs = a * b + a * c;
        prop_assert!((lhs - rhs).abs() <= 1e-7 * (1.0 + lhs.abs()));
    }

    #[test]
    fn rng_streams_reproducible(seed in any::<u64>()) {
        let mut a = Rng64::new(seed);
        let mut b = Rng64::new(seed);
        for _ in 0..32 {
            prop_assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn rng_next_below_bounded(seed in any::<u64>(), n in 1u64..10_000) {
        let mut rng = Rng64::new(seed);
        for _ in 0..64 {
            prop_assert!(rng.next_below(n) < n);
        }
    }

    #[test]
    fn percentile_is_monotone(mut xs in prop::collection::vec(finite_f64(), 1..64),
                              p1 in 0.0..100.0f64, p2 in 0.0..100.0f64) {
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let (lo, hi) = if p1 <= p2 { (p1, p2) } else { (p2, p1) };
        prop_assert!(percentile(&xs, lo) <= percentile(&xs, hi) + 1e-9);
    }

    #[test]
    fn running_stats_merge_associative(xs in prop::collection::vec(finite_f64(), 0..48),
                                       split in 0usize..48) {
        let split = split.min(xs.len());
        let mut whole = RunningStats::new();
        for &x in &xs { whole.add(x); }
        let mut a = RunningStats::new();
        let mut b = RunningStats::new();
        for &x in &xs[..split] { a.add(x); }
        for &x in &xs[split..] { b.add(x); }
        a.merge(&b);
        prop_assert_eq!(a.count(), whole.count());
        if !xs.is_empty() {
            prop_assert!((a.mean() - whole.mean()).abs() < 1e-9);
            prop_assert!((a.variance() - whole.variance()).abs() < 1e-6);
        }
    }
}

// Random well-conditioned matrix strategies go through seeds: generating raw
// element vectors with proptest produces mostly-singular garbage, whereas a
// Gaussian matrix from a seed is almost surely invertible.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn lu_solve_then_multiply_round_trips(seed in any::<u64>(), n in 1usize..10) {
        let mut rng = Rng64::new(seed);
        let a = RMatrix::from_fn(n, n, |_, _| rng.next_gaussian());
        let b = RVector::from_vec((0..n).map(|_| rng.next_gaussian()).collect());
        if let Ok(lu) = LuReal::new(&a) {
            let x = lu.solve(&b);
            let back = a.matvec(&x);
            for i in 0..n {
                prop_assert!((back[i] - b[i]).abs() < 1e-6,
                    "residual {} at {}", (back[i] - b[i]).abs(), i);
            }
        }
    }

    #[test]
    fn qr_factors_reconstruct(seed in any::<u64>(), n in 1usize..8, extra in 0usize..5) {
        let mut rng = Rng64::new(seed);
        let m = n + extra;
        let a = RMatrix::from_fn(m, n, |_, _| rng.next_gaussian());
        let qr = QrReal::new(&a);
        let recon = qr.q().matmul(qr.r());
        prop_assert!(recon.max_abs_diff(&a) < 1e-8);
        let qtq = qr.q().gram();
        prop_assert!(qtq.max_abs_diff(&RMatrix::identity(n)) < 1e-8);
    }

    #[test]
    fn cholesky_solves_spd_systems(seed in any::<u64>(), n in 1usize..8) {
        let mut rng = Rng64::new(seed);
        let b = RMatrix::from_fn(n + 1, n, |_, _| rng.next_gaussian());
        let mut a = b.gram();
        for i in 0..n {
            a[(i, i)] += 1.0;
        }
        let rhs = RVector::from_vec((0..n).map(|_| rng.next_gaussian()).collect());
        let ch = CholeskyReal::new(&a).unwrap();
        let x = ch.solve(&rhs);
        let back = a.matvec(&x);
        for i in 0..n {
            prop_assert!((back[i] - rhs[i]).abs() < 1e-7);
        }
    }

    #[test]
    fn complex_stacking_commutes_with_matvec(seed in any::<u64>(), m in 1usize..6, n in 1usize..6) {
        let mut rng = Rng64::new(seed);
        let h = CMatrix::from_fn(m, n, |_, _| {
            Complex64::new(rng.next_gaussian(), rng.next_gaussian())
        });
        let x = CVector::from_vec(
            (0..n).map(|_| Complex64::new(rng.next_gaussian(), rng.next_gaussian())).collect(),
        );
        let direct = h.matvec(&x).to_real_stacked();
        let stacked = h.to_real_stacked().matvec(&x.to_real_stacked());
        for i in 0..direct.len() {
            prop_assert!((direct[i] - stacked[i]).abs() < 1e-9);
        }
    }
}
