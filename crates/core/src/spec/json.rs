//! Minimal, offline-safe JSON tree used by the experiment-spec layer.
//!
//! The build environment has no crates-io access, so the spec
//! parser/serializer is hand-rolled against this small document model. It
//! supports exactly the JSON subset specs need — objects, arrays, strings,
//! booleans, `null` and numbers — and keeps two number representations so
//! 64-bit seeds survive a round trip without drifting through `f64`
//! (`u64::MAX` is not representable as a double).
//!
//! Parsing errors carry a byte offset and a human-readable message; the
//! `hqw` runner surfaces them verbatim with exit status 2.

use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer literal (no `.`, exponent or sign) — kept
    /// exact so `u64` seeds round-trip.
    UInt(u64),
    /// Any other numeric literal.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order (specs are small; a vec keeps the
    /// serializer deterministic without a map dependency).
    Obj(Vec<(String, Json)>),
}

/// A JSON syntax error: byte offset plus message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the offending input.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Parses a complete JSON document (rejects trailing garbage).
    ///
    /// # Errors
    /// Returns a [`JsonError`] with the byte offset of the first violation.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after the document"));
        }
        Ok(value)
    }

    /// Object field lookup (`None` for non-objects or missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a `u64` (integer literals only).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::UInt(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as an `f64` (integer literals widen).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::UInt(v) => Some(*v as f64),
            Json::Float(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serializes with 2-space indentation and a trailing newline — the
    /// spec-file house style.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    /// Serializes on one line (used for list manifests).
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out);
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Arr(items) if !items.is_empty() => {
                // Arrays of scalars stay on one line; arrays of containers
                // get one element per line.
                let nested = items
                    .iter()
                    .any(|v| matches!(v, Json::Arr(_) | Json::Obj(_)));
                if !nested {
                    self.write_compact(out);
                    return;
                }
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    pad(out, indent + 1);
                    item.write(out, indent + 1);
                    out.push_str(if i + 1 < items.len() { ",\n" } else { "\n" });
                }
                pad(out, indent);
                out.push(']');
            }
            Json::Obj(fields) if !fields.is_empty() => {
                out.push_str("{\n");
                for (i, (key, value)) in fields.iter().enumerate() {
                    pad(out, indent + 1);
                    write_string(out, key);
                    out.push_str(": ");
                    value.write(out, indent + 1);
                    out.push_str(if i + 1 < fields.len() { ",\n" } else { "\n" });
                }
                pad(out, indent);
                out.push('}');
            }
            _ => self.write_compact(out),
        }
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::UInt(v) => {
                let _ = write!(out, "{v}");
            }
            Json::Float(v) => {
                assert!(v.is_finite(), "Json: non-finite number {v}");
                let _ = write!(out, "{v}");
            }
            Json::Str(s) => write_string(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    item.write_compact(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    write_string(out, key);
                    out.push_str(": ");
                    value.write_compact(out);
                }
                out.push('}');
            }
        }
    }
}

fn pad(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", byte as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(format!("unexpected character '{}'", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            if fields.iter().any(|(k, _): &(String, Json)| *k == key) {
                return Err(self.err(format!("duplicate key \"{key}\"")));
            }
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast-forward over the plain (non-escape, non-quote) run.
            while let Some(c) = self.peek() {
                if c == b'"' || c == b'\\' || c < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escape = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            // Surrogates are rejected rather than paired:
                            // spec strings are ASCII names in practice.
                            let c = char::from_u32(code)
                                .ok_or_else(|| self.err("\\u escape is not a scalar value"))?;
                            self.pos += 4;
                            out.push(c);
                        }
                        c => {
                            self.pos -= 1;
                            return Err(self.err(format!("unknown escape '\\{}'", c as char)));
                        }
                    }
                }
                Some(_) => return Err(self.err("control character in string")),
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        let negative = self.peek() == Some(b'-');
        if negative {
            self.pos += 1;
        }
        let mut integral = !negative;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    integral = false;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII number run");
        if integral {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Json::UInt(v));
            }
        }
        let v: f64 = text
            .parse()
            .map_err(|_| self.err(format!("malformed number '{text}'")))?;
        if !v.is_finite() {
            return Err(self.err(format!("number '{text}' overflows an f64")));
        }
        Ok(Json::Float(v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_containers() {
        let doc = r#"{"a": 1, "b": [true, null, "x", -2.5], "c": {"d": 1e3}}"#;
        let v = Json::parse(doc).unwrap();
        assert_eq!(v.get("a").unwrap().as_u64(), Some(1));
        let arr = v.get("b").unwrap().as_arr().unwrap();
        assert_eq!(arr[0].as_bool(), Some(true));
        assert_eq!(arr[1], Json::Null);
        assert_eq!(arr[2].as_str(), Some("x"));
        assert_eq!(arr[3].as_f64(), Some(-2.5));
        assert_eq!(v.get("c").unwrap().get("d").unwrap().as_f64(), Some(1e3));
    }

    #[test]
    fn u64_seeds_survive_exactly() {
        let seed = u64::MAX - 7;
        let doc = format!("{{\"seed\": {seed}}}");
        let v = Json::parse(&doc).unwrap();
        assert_eq!(v.get("seed").unwrap().as_u64(), Some(seed));
        let round = Json::parse(&v.to_string_pretty()).unwrap();
        assert_eq!(round, v);
    }

    #[test]
    fn floats_round_trip_through_display() {
        for x in [0.1, 1.5e-7, -3.25, 123456.789, f64::MIN_POSITIVE] {
            let v = Json::Float(x);
            let text = v.to_string_compact();
            assert_eq!(Json::parse(&text).unwrap().as_f64(), Some(x), "{text}");
        }
    }

    #[test]
    fn string_escapes_round_trip() {
        let s = "a\"b\\c\nd\te\u{1}f";
        let v = Json::Str(s.to_string());
        let text = v.to_string_compact();
        assert_eq!(Json::parse(&text).unwrap().as_str(), Some(s));
    }

    #[test]
    fn rejects_malformed_documents() {
        for (doc, needle) in [
            ("", "unexpected end"),
            ("{", "expected"),
            ("[1, ]", "unexpected character"),
            ("{\"a\" 1}", "expected ':'"),
            ("{\"a\": 1} x", "trailing"),
            ("\"abc", "unterminated string"),
            ("01a", "trailing"),
            ("1.2.3", "malformed number"),
            ("{\"a\": 1, \"a\": 2}", "duplicate key"),
            ("nul", "expected 'null'"),
            ("1e400", "overflows"),
        ] {
            let err = Json::parse(doc).expect_err(doc);
            assert!(
                err.to_string().contains(needle),
                "{doc}: {err} missing {needle}"
            );
        }
    }

    #[test]
    fn pretty_output_is_reparseable_and_indented() {
        let v = Json::Obj(vec![
            ("name".into(), Json::Str("ber".into())),
            (
                "grid".into(),
                Json::Arr(vec![Json::UInt(1), Json::Float(2.5)]),
            ),
            (
                "nested".into(),
                Json::Arr(vec![Json::Obj(vec![("k".into(), Json::UInt(1))])]),
            ),
        ]);
        let text = v.to_string_pretty();
        assert!(text.contains("\n  \"name\": \"ber\""));
        assert!(text.contains("\"grid\": [1, 2.5]"));
        assert!(text.ends_with("}\n"));
        assert_eq!(Json::parse(&text).unwrap(), v);
    }
}
