//! The unified experiment-spec layer: one declarative description of every
//! experiment the workspace can run.
//!
//! The paper's Challenge 3 argues for *composable* hybrid computation
//! structures; on the evaluation side that means scenario composition must
//! be **data**, not new binaries. This module is that data layer:
//!
//! * [`ExperimentSpec`] — a typed, versioned description of one experiment:
//!   a BER-vs-SNR sweep ([`SnrSweepConfig`]), a streaming-grid sweep
//!   ([`StreamGridConfig`]), a compute-fabric sweep ([`FabricGridConfig`]),
//!   or one of the canned figure experiments ([`CannedKind`] + a
//!   [`Scale`]).
//! * [`ExperimentSpec::to_json`] / [`ExperimentSpec::parse`] — a
//!   hand-rolled, offline-safe JSON serializer/parser (the build
//!   environment has no crates-io access) over the [`json`] document
//!   model. `parse(serialize(spec)) == spec` is property-tested in
//!   `tests/spec_proptests.rs`.
//! * [`SpecError`] — the shared validation error every config's
//!   `validate()` returns, replacing the old ad-hoc assert/panic mix
//!   (panicking `validate_or_panic` shims remain for the engine
//!   entry points).
//!
//! The `hqw` runner binary (in `hqw-bench`) consumes this layer: registry
//! presets are `ExperimentSpec` values, and `hqw run spec.json` parses a
//! file into one. The spec document format is versioned through
//! [`SPEC_VERSION`] and documented in `crates/bench/README.md`.

pub mod json;

use crate::experiments::Scale;
use crate::fabric::{
    AnnealerConfig, ArrivalProcess, BackendMix, BackendSpec, FabricGridConfig, FabricMode,
    MockQpuConfig, NetworkModel, PtConfig, RealtimeConfig, SaPoolConfig, TabuConfig,
};
use crate::scenario::SnrSweepConfig;
use crate::sched::{ClassMix, SchedOptions, SchedPolicy};
use crate::sched_grid::SchedGridConfig;
use crate::stream::{CostModel, DispatchPolicy, StreamGridConfig};
use hqw_phy::channel::{ChannelModel, TrackConfig};
use hqw_phy::modulation::Modulation;
use hqw_qubo::pt::PtParams;
use hqw_qubo::sa::{SaParams, SweepKernel};
use hqw_qubo::tabu::TabuParams;
use json::Json;

/// Version of the spec JSON document format this build reads and writes.
///
/// Bump on any incompatible schema change; [`ExperimentSpec::parse`]
/// rejects documents with a different `spec_version`.
pub const SPEC_VERSION: u64 = 1;

/// A configuration value that failed validation, or a spec document that
/// failed to parse.
///
/// Carries the context (which config or spec path) and a human-readable
/// message; [`std::fmt::Display`] renders `"{context}: {message}"`, which
/// is also the panic payload of the deprecated `validate_or_panic` shims.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecError {
    context: String,
    message: String,
}

impl SpecError {
    /// Creates an error for `context` (a config type or spec field path).
    pub fn new(context: impl Into<String>, message: impl Into<String>) -> Self {
        SpecError {
            context: context.into(),
            message: message.into(),
        }
    }

    /// The config type or spec path that failed.
    pub fn context(&self) -> &str {
        &self.context
    }

    /// What was wrong with it.
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.context, self.message)
    }
}

impl std::error::Error for SpecError {}

/// The canned (fixed-shape) figure experiments: each reproduces one
/// figure/claim of the paper at a chosen [`Scale`]. The grid-style
/// experiments (`ber`/`stream`/`fabric`) are *not* canned — their whole
/// configuration is spec data.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CannedKind {
    /// Figure 3: QUBO-simplification preprocessing sweep.
    Fig3,
    /// Figure 4 / §3.1: soft-information constraints under ICE noise.
    Fig4SoftInfo,
    /// Figure 5: FA/RA/FR anneal-schedule shapes.
    Fig5Schedules,
    /// Figure 6: ΔE% distributions for FA / RA-random / RA-GS.
    Fig6,
    /// Figure 7: RA performance vs initial-state quality.
    Fig7,
    /// Figure 8: p★ and TTS vs `s_p` for FA / RA / FR.
    Fig8,
    /// Headline claim: RA+GS vs FA success probability.
    Headline,
    /// Ablation: Chimera minor-embedding overhead.
    AblationEmbedding,
    /// Ablation: simulation-engine and move-set choices.
    AblationEngine,
    /// Ablation: Greedy Search order/variant.
    AblationGreedy,
    /// Ablation: anneal-pause duration.
    AblationPause,
    /// §5 extension: application-specific initializers.
    ExtInitializers,
    /// §2 extension: iterated RA and sample persistence.
    ExtIterative,
    /// Figure 2: the pipelined computation structure.
    PipelineStudy,
}

impl CannedKind {
    /// Every canned experiment, in registry order.
    pub const ALL: [CannedKind; 14] = [
        CannedKind::Fig3,
        CannedKind::Fig4SoftInfo,
        CannedKind::Fig5Schedules,
        CannedKind::Fig6,
        CannedKind::Fig7,
        CannedKind::Fig8,
        CannedKind::Headline,
        CannedKind::AblationEmbedding,
        CannedKind::AblationEngine,
        CannedKind::AblationGreedy,
        CannedKind::AblationPause,
        CannedKind::ExtInitializers,
        CannedKind::ExtIterative,
        CannedKind::PipelineStudy,
    ];

    /// Stable machine-readable name (the registry key and spec tag).
    pub fn name(self) -> &'static str {
        match self {
            CannedKind::Fig3 => "fig3",
            CannedKind::Fig4SoftInfo => "fig4-softinfo",
            CannedKind::Fig5Schedules => "fig5-schedules",
            CannedKind::Fig6 => "fig6",
            CannedKind::Fig7 => "fig7",
            CannedKind::Fig8 => "fig8",
            CannedKind::Headline => "headline",
            CannedKind::AblationEmbedding => "ablation-embedding",
            CannedKind::AblationEngine => "ablation-engine",
            CannedKind::AblationGreedy => "ablation-greedy",
            CannedKind::AblationPause => "ablation-pause",
            CannedKind::ExtInitializers => "ext-initializers",
            CannedKind::ExtIterative => "ext-iterative",
            CannedKind::PipelineStudy => "pipeline-study",
        }
    }

    /// Parses a [`CannedKind::name`] back (`None` for unknown names).
    pub fn from_name(name: &str) -> Option<CannedKind> {
        CannedKind::ALL.into_iter().find(|k| k.name() == name)
    }
}

/// A canned experiment instance: which figure, at what scale, which seed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CannedSpec {
    /// Which canned experiment.
    pub experiment: CannedKind,
    /// Scale knobs (instances, reads, harvest reads, grid thinning).
    pub scale: Scale,
    /// RNG seed.
    pub seed: u64,
}

impl CannedSpec {
    /// Validates the scale knobs.
    ///
    /// # Errors
    /// Returns the first violated constraint.
    pub fn validate(&self) -> Result<(), SpecError> {
        let ctx = "CannedSpec";
        if self.scale.instances == 0 {
            return Err(SpecError::new(ctx, "scale.instances must be > 0"));
        }
        if self.scale.reads == 0 {
            return Err(SpecError::new(ctx, "scale.reads must be > 0"));
        }
        if self.scale.harvest_reads == 0 {
            return Err(SpecError::new(ctx, "scale.harvest_reads must be > 0"));
        }
        if self.scale.grid_thin == 0 {
            return Err(SpecError::new(ctx, "scale.grid_thin must be >= 1"));
        }
        Ok(())
    }
}

/// A complete, declarative description of one experiment — the unit the
/// registry stores, the `hqw` runner executes and spec JSON files encode.
#[derive(Debug, Clone, PartialEq)]
pub enum ExperimentSpec {
    /// BER-vs-SNR scenario sweep over the standard detector roster.
    Ber(SnrSweepConfig),
    /// Streaming (policy × ρ × load) grid sweep.
    Stream(StreamGridConfig),
    /// Compute-fabric (mix × cells × load) grid sweep.
    Fabric(FabricGridConfig),
    /// Paired static-vs-adaptive scheduling sweep over calibrated and
    /// mispredicted planner cost models.
    Sched(SchedGridConfig),
    /// One of the canned figure experiments.
    Canned(CannedSpec),
}

impl ExperimentSpec {
    /// The experiment family tag (`"ber"`, `"stream"`, `"fabric"`,
    /// `"fabric-rt"` for a realtime-mode fabric, or the canned experiment's
    /// name) — the `experiment` field of the JSON document and the registry
    /// key.
    pub fn family(&self) -> &'static str {
        match self {
            ExperimentSpec::Ber(_) => "ber",
            ExperimentSpec::Stream(_) => "stream",
            ExperimentSpec::Fabric(c) => match c.mode {
                FabricMode::Virtual => "fabric",
                FabricMode::Realtime(_) => "fabric-rt",
            },
            ExperimentSpec::Sched(_) => "sched",
            ExperimentSpec::Canned(c) => c.experiment.name(),
        }
    }

    /// Whether this is a realtime-mode spec (worker counts come from the
    /// spec itself, so the CLI `--threads` override is rejected).
    pub fn is_realtime(&self) -> bool {
        matches!(
            self,
            ExperimentSpec::Fabric(FabricGridConfig {
                mode: FabricMode::Realtime(_),
                ..
            })
        )
    }

    /// Whether the experiment's runner can emit telemetry (span traces,
    /// histograms, counter series). True for the stream and fabric engines
    /// — both the virtual-time sims and the realtime service; BER sweeps
    /// and canned experiments have no frame lifecycle to trace, so the
    /// CLI `--telemetry` flag is rejected for them.
    pub fn supports_telemetry(&self) -> bool {
        matches!(self, ExperimentSpec::Stream(_) | ExperimentSpec::Fabric(_))
    }

    /// The spec's RNG seed.
    pub fn seed(&self) -> u64 {
        match self {
            ExperimentSpec::Ber(c) => c.seed,
            ExperimentSpec::Stream(c) => c.seed,
            ExperimentSpec::Fabric(c) => c.seed,
            ExperimentSpec::Sched(c) => c.seed,
            ExperimentSpec::Canned(c) => c.seed,
        }
    }

    /// The spec's worker-thread count (0 = all cores; canned experiments
    /// have no parallel grid and always report 0).
    pub fn threads(&self) -> usize {
        match self {
            ExperimentSpec::Ber(c) => c.threads,
            ExperimentSpec::Stream(c) => c.threads,
            ExperimentSpec::Fabric(c) => c.threads,
            ExperimentSpec::Sched(c) => c.threads,
            ExperimentSpec::Canned(_) => 0,
        }
    }

    /// Overrides the worker-thread count (a no-op for canned experiments,
    /// which have no parallel grid). Threads are a pure throughput knob:
    /// results are bit-identical for any value.
    pub fn set_threads(&mut self, threads: usize) {
        match self {
            ExperimentSpec::Ber(c) => c.threads = threads,
            ExperimentSpec::Stream(c) => c.threads = threads,
            ExperimentSpec::Fabric(c) => c.threads = threads,
            ExperimentSpec::Sched(c) => c.threads = threads,
            ExperimentSpec::Canned(_) => {}
        }
    }

    /// Overrides the RNG seed (the `hqw` runner applies an explicit
    /// `--seed` to spec-file runs through this).
    pub fn set_seed(&mut self, seed: u64) {
        match self {
            ExperimentSpec::Ber(c) => c.seed = seed,
            ExperimentSpec::Stream(c) => c.seed = seed,
            ExperimentSpec::Fabric(c) => c.seed = seed,
            ExperimentSpec::Sched(c) => c.seed = seed,
            ExperimentSpec::Canned(c) => c.seed = seed,
        }
    }

    /// Validates the wrapped configuration.
    ///
    /// # Errors
    /// Returns the first violated constraint.
    pub fn validate(&self) -> Result<(), SpecError> {
        match self {
            ExperimentSpec::Ber(c) => c.validate(),
            ExperimentSpec::Stream(c) => c.validate(),
            ExperimentSpec::Fabric(c) => c.validate(),
            ExperimentSpec::Sched(c) => c.validate(),
            ExperimentSpec::Canned(c) => c.validate(),
        }
    }

    /// Serializes the spec as a versioned JSON document (2-space pretty
    /// format, trailing newline). [`ExperimentSpec::parse`] reads it back
    /// exactly: `parse(to_json(spec)) == spec`.
    pub fn to_json(&self) -> String {
        let config = match self {
            ExperimentSpec::Ber(c) => ber_json(c),
            ExperimentSpec::Stream(c) => stream_json(c),
            ExperimentSpec::Fabric(c) => fabric_json(c),
            ExperimentSpec::Sched(c) => sched_grid_json(c),
            ExperimentSpec::Canned(c) => canned_json(c),
        };
        obj(vec![
            ("spec_version", Json::UInt(SPEC_VERSION)),
            ("experiment", Json::Str(self.family().to_string())),
            ("config", config),
        ])
        .to_string_pretty()
    }

    /// Parses and validates a spec JSON document.
    ///
    /// # Errors
    /// Returns a [`SpecError`] on JSON syntax errors, unknown
    /// `experiment`/field names, a wrong `spec_version`, missing or
    /// mistyped fields, or a configuration that fails `validate()`.
    pub fn parse(text: &str) -> Result<ExperimentSpec, SpecError> {
        let doc = Json::parse(text).map_err(|e| SpecError::new("spec", e.to_string()))?;
        let ctx = "spec";
        check_keys(&doc, &["spec_version", "experiment", "config"], ctx)?;
        let version = req_u64(&doc, "spec_version", ctx)?;
        if version != SPEC_VERSION {
            return Err(SpecError::new(
                ctx,
                format!("unsupported spec_version {version} (this build reads {SPEC_VERSION})"),
            ));
        }
        let experiment = req_str(&doc, "experiment", ctx)?.to_string();
        let config = req(&doc, "config", ctx)?;
        let spec = match experiment.as_str() {
            "ber" => ExperimentSpec::Ber(parse_ber(config)?),
            "stream" => ExperimentSpec::Stream(parse_stream(config)?),
            "fabric" => ExperimentSpec::Fabric(parse_fabric(config, false)?),
            "fabric-rt" => ExperimentSpec::Fabric(parse_fabric(config, true)?),
            "sched" => ExperimentSpec::Sched(parse_sched_grid(config)?),
            other => match CannedKind::from_name(other) {
                Some(kind) => ExperimentSpec::Canned(parse_canned(kind, config)?),
                None => {
                    return Err(SpecError::new(ctx, format!("unknown experiment '{other}'")));
                }
            },
        };
        spec.validate()?;
        Ok(spec)
    }
}

// ---------------------------------------------------------------------------
// Serialization (struct → Json)
// ---------------------------------------------------------------------------

fn obj(fields: Vec<(&str, Json)>) -> Json {
    Json::Obj(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn uint(v: usize) -> Json {
    Json::UInt(v as u64)
}

fn num(v: f64) -> Json {
    Json::Float(v)
}

fn f64_arr(values: &[f64]) -> Json {
    Json::Arr(values.iter().map(|&v| num(v)).collect())
}

fn usize_arr(values: &[usize]) -> Json {
    Json::Arr(values.iter().map(|&v| uint(v)).collect())
}

fn ber_json(c: &SnrSweepConfig) -> Json {
    obj(vec![
        ("n_users", uint(c.n_users)),
        ("n_rx", uint(c.n_rx)),
        ("modulation", Json::Str(c.modulation.name().to_string())),
        ("channel", Json::Str(c.channel.name().to_string())),
        ("snr_db", f64_arr(&c.snr_db)),
        ("realizations", uint(c.realizations)),
        ("seed", Json::UInt(c.seed)),
        ("threads", uint(c.threads)),
    ])
}

fn track_json(t: &TrackConfig) -> Json {
    obj(vec![
        ("n_users", uint(t.n_users)),
        ("n_rx", uint(t.n_rx)),
        ("modulation", Json::Str(t.modulation.name().to_string())),
        ("rho", num(t.rho)),
        ("noise_variance", num(t.noise_variance)),
    ])
}

fn cost_json(c: &CostModel) -> Json {
    obj(vec![
        ("base_us", num(c.base_us)),
        ("us_per_node", num(c.us_per_node)),
        ("us_per_sweep", num(c.us_per_sweep)),
    ])
}

fn sa_json(s: &SaParams) -> Json {
    obj(vec![
        ("beta_initial", num(s.beta_initial)),
        ("beta_final", num(s.beta_final)),
        ("sweeps", uint(s.sweeps)),
        ("num_reads", uint(s.num_reads)),
        ("threads", uint(s.threads)),
        ("kernel", Json::Str(s.kernel.name().to_string())),
    ])
}

fn stream_json(c: &StreamGridConfig) -> Json {
    obj(vec![
        ("track", track_json(&c.track)),
        ("frames", uint(c.frames)),
        ("arrival_periods_us", f64_arr(&c.arrival_periods_us)),
        ("rhos", f64_arr(&c.rhos)),
        (
            "policies",
            Json::Arr(
                c.policies
                    .iter()
                    .map(|p| Json::Str(p.name().to_string()))
                    .collect(),
            ),
        ),
        ("deadline_us", num(c.deadline_us)),
        ("cost", cost_json(&c.cost)),
        ("sa", sa_json(&c.sa)),
        ("seed", Json::UInt(c.seed)),
        ("threads", uint(c.threads)),
    ])
}

fn annealer_fields(c: &AnnealerConfig) -> Vec<(&'static str, Json)> {
    vec![
        ("num_reads", uint(c.num_reads)),
        ("anneal_us", num(c.anneal_us)),
        ("sweeps_per_us", uint(c.sweeps_per_us)),
        ("capacity", uint(c.capacity)),
        ("max_batch", uint(c.max_batch)),
        ("kernel", Json::Str(c.kernel.name().to_string())),
    ]
}

fn backend_json(b: &BackendSpec) -> Json {
    match b {
        BackendSpec::SaPool(c) => obj(vec![
            ("backend", Json::Str("sa-pool".to_string())),
            ("workers", uint(c.workers)),
            ("max_batch", uint(c.max_batch)),
            ("sa", sa_json(&c.sa)),
        ]),
        BackendSpec::Pimc(c) => {
            let mut fields = vec![("backend", Json::Str("pimc".to_string()))];
            fields.extend(annealer_fields(c));
            obj(fields)
        }
        BackendSpec::Svmc(c) => {
            let mut fields = vec![("backend", Json::Str("svmc".to_string()))];
            fields.extend(annealer_fields(c));
            obj(fields)
        }
        BackendSpec::Pt(c) => obj(vec![
            ("backend", Json::Str("pt".to_string())),
            ("workers", uint(c.workers)),
            ("max_batch", uint(c.max_batch)),
            (
                "pt",
                obj(vec![
                    ("replicas", uint(c.pt.replicas)),
                    ("sweeps", uint(c.pt.sweeps)),
                    ("swap_interval", uint(c.pt.swap_interval)),
                    ("beta_min", num(c.pt.beta_min)),
                    ("beta_max", num(c.pt.beta_max)),
                ]),
            ),
        ]),
        BackendSpec::Tabu(c) => obj(vec![
            ("backend", Json::Str("tabu".to_string())),
            ("workers", uint(c.workers)),
            ("max_batch", uint(c.max_batch)),
            (
                "tabu",
                obj(vec![
                    ("tenure", uint(c.tabu.tenure)),
                    ("max_iters", uint(c.tabu.max_iters)),
                    ("stall_limit", uint(c.tabu.stall_limit)),
                ]),
            ),
        ]),
        BackendSpec::MockQpu(c) => obj(vec![
            ("backend", Json::Str("mock-qpu".to_string())),
            ("num_reads", uint(c.num_reads)),
            ("anneal_us", num(c.anneal_us)),
            ("sweeps_per_us", uint(c.sweeps_per_us)),
            ("trotter_slices", uint(c.trotter_slices)),
            ("max_batch", uint(c.max_batch)),
            (
                "network",
                obj(vec![
                    ("rtt_base_us", num(c.network.rtt_base_us)),
                    ("jitter_us", num(c.network.jitter_us)),
                ]),
            ),
            ("programming_us", num(c.programming_us)),
            (
                "embed_derive_us_per_qubit",
                num(c.embed_derive_us_per_qubit),
            ),
            ("chain_strength", num(c.chain_strength)),
        ]),
    }
}

fn arrival_json(a: &ArrivalProcess) -> Json {
    let mut fields = vec![("process", Json::Str(a.name().to_string()))];
    match *a {
        ArrivalProcess::Periodic => {}
        ArrivalProcess::Bursty { burst } => fields.push(("burst", uint(burst))),
        ArrivalProcess::Diurnal {
            amplitude,
            cycle_frames,
        } => {
            fields.push(("amplitude", num(amplitude)));
            fields.push(("cycle_frames", uint(cycle_frames)));
        }
        ArrivalProcess::HeavyTailed { alpha } => fields.push(("alpha", num(alpha))),
    }
    obj(fields)
}

fn mix_json(m: &BackendMix) -> Json {
    obj(vec![
        ("name", Json::Str(m.name.clone())),
        (
            "backends",
            Json::Arr(m.backends.iter().map(backend_json).collect()),
        ),
    ])
}

fn class_mix_json(c: &ClassMix) -> Json {
    obj(vec![
        ("urllc", Json::UInt(u64::from(c.urllc))),
        ("embb", Json::UInt(u64::from(c.embb))),
        ("bulk", Json::UInt(u64::from(c.bulk))),
    ])
}

fn policy_json(p: &SchedPolicy) -> Json {
    let mut fields = vec![("name", Json::Str(p.name().to_string()))];
    match *p {
        SchedPolicy::Static => {}
        SchedPolicy::Ewma { shift } => fields.push(("shift", Json::UInt(u64::from(shift)))),
        SchedPolicy::Ucb { explore_milli } => {
            fields.push(("explore_milli", Json::UInt(u64::from(explore_milli))));
        }
    }
    obj(fields)
}

fn sched_opts_json(s: &SchedOptions) -> Json {
    let mut fields = vec![("policy", policy_json(&s.policy))];
    if let Some(c) = &s.assumed_cost {
        fields.push(("assumed_cost", cost_json(c)));
    }
    if !s.classes.is_default() {
        fields.push(("classes", class_mix_json(&s.classes)));
    }
    obj(fields)
}

fn fabric_json(c: &FabricGridConfig) -> Json {
    let mut fields = vec![
        ("track", track_json(&c.track)),
        ("frames_per_cell", uint(c.frames_per_cell)),
        ("cell_counts", usize_arr(&c.cell_counts)),
        ("arrival_periods_us", f64_arr(&c.arrival_periods_us)),
        ("mixes", Json::Arr(c.mixes.iter().map(mix_json).collect())),
    ];
    // Periodic is the implicit default: pre-arrival fabric specs stay
    // parseable and serialize unchanged.
    if c.arrival != ArrivalProcess::Periodic {
        fields.push(("arrival", arrival_json(&c.arrival)));
    }
    // The mode itself lives in the `experiment` tag ("fabric" vs
    // "fabric-rt"); only the realtime thread topology is config.
    if let FabricMode::Realtime(rt) = &c.mode {
        fields.push((
            "realtime",
            obj(vec![
                ("producers", uint(rt.producers)),
                ("queue_shards", uint(rt.queue_shards)),
            ]),
        ));
    }
    // The all-default scheduler (static policy, no miscalibration, pure
    // eMBB) is implicit: pre-sched fabric specs serialize unchanged.
    if !c.sched.is_default() {
        fields.push(("sched", sched_opts_json(&c.sched)));
    }
    fields.extend(vec![
        ("deadline_us", num(c.deadline_us)),
        ("cost", cost_json(&c.cost)),
        ("seed", Json::UInt(c.seed)),
        ("threads", uint(c.threads)),
    ]);
    obj(fields)
}

fn sched_grid_json(c: &SchedGridConfig) -> Json {
    obj(vec![
        ("track", track_json(&c.track)),
        ("frames_per_cell", uint(c.frames_per_cell)),
        ("cell_counts", usize_arr(&c.cell_counts)),
        ("arrival_periods_us", f64_arr(&c.arrival_periods_us)),
        ("mix", mix_json(&c.mix)),
        ("policy", policy_json(&c.policy)),
        ("classes", class_mix_json(&c.classes)),
        ("assumed_cost", cost_json(&c.assumed_cost)),
        ("deadline_us", num(c.deadline_us)),
        ("cost", cost_json(&c.cost)),
        ("seed", Json::UInt(c.seed)),
        ("threads", uint(c.threads)),
    ])
}

fn canned_json(c: &CannedSpec) -> Json {
    obj(vec![
        (
            "scale",
            obj(vec![
                ("instances", uint(c.scale.instances)),
                ("reads", uint(c.scale.reads)),
                ("harvest_reads", uint(c.scale.harvest_reads)),
                ("grid_thin", uint(c.scale.grid_thin)),
            ]),
        ),
        ("seed", Json::UInt(c.seed)),
    ])
}

// ---------------------------------------------------------------------------
// Parsing (Json → struct)
// ---------------------------------------------------------------------------

pub(crate) fn req<'a>(o: &'a Json, key: &str, ctx: &str) -> Result<&'a Json, SpecError> {
    match o {
        Json::Obj(_) => o
            .get(key)
            .ok_or_else(|| SpecError::new(ctx, format!("missing field \"{key}\""))),
        _ => Err(SpecError::new(ctx, "expected an object")),
    }
}

/// Rejects unknown object keys — the typo guard for hand-written specs.
pub(crate) fn check_keys(o: &Json, allowed: &[&str], ctx: &str) -> Result<(), SpecError> {
    match o {
        Json::Obj(fields) => {
            for (key, _) in fields {
                if !allowed.contains(&key.as_str()) {
                    return Err(SpecError::new(
                        ctx,
                        format!("unknown field \"{key}\" (expected one of: {})", {
                            allowed.join(", ")
                        }),
                    ));
                }
            }
            Ok(())
        }
        _ => Err(SpecError::new(ctx, "expected an object")),
    }
}

pub(crate) fn req_u64(o: &Json, key: &str, ctx: &str) -> Result<u64, SpecError> {
    req(o, key, ctx)?
        .as_u64()
        .ok_or_else(|| SpecError::new(ctx, format!("field \"{key}\" must be an unsigned integer")))
}

pub(crate) fn req_usize(o: &Json, key: &str, ctx: &str) -> Result<usize, SpecError> {
    usize::try_from(req_u64(o, key, ctx)?)
        .map_err(|_| SpecError::new(ctx, format!("field \"{key}\" overflows usize")))
}

pub(crate) fn req_f64(o: &Json, key: &str, ctx: &str) -> Result<f64, SpecError> {
    req(o, key, ctx)?
        .as_f64()
        .ok_or_else(|| SpecError::new(ctx, format!("field \"{key}\" must be a number")))
}

pub(crate) fn req_str<'a>(o: &'a Json, key: &str, ctx: &str) -> Result<&'a str, SpecError> {
    req(o, key, ctx)?
        .as_str()
        .ok_or_else(|| SpecError::new(ctx, format!("field \"{key}\" must be a string")))
}

fn req_f64_arr(o: &Json, key: &str, ctx: &str) -> Result<Vec<f64>, SpecError> {
    req(o, key, ctx)?
        .as_arr()
        .ok_or_else(|| SpecError::new(ctx, format!("field \"{key}\" must be an array")))?
        .iter()
        .map(|v| {
            v.as_f64().ok_or_else(|| {
                SpecError::new(ctx, format!("field \"{key}\" must contain only numbers"))
            })
        })
        .collect()
}

fn req_usize_arr(o: &Json, key: &str, ctx: &str) -> Result<Vec<usize>, SpecError> {
    req(o, key, ctx)?
        .as_arr()
        .ok_or_else(|| SpecError::new(ctx, format!("field \"{key}\" must be an array")))?
        .iter()
        .map(|v| {
            v.as_u64()
                .and_then(|u| usize::try_from(u).ok())
                .ok_or_else(|| {
                    SpecError::new(
                        ctx,
                        format!("field \"{key}\" must contain only unsigned integers"),
                    )
                })
        })
        .collect()
}

fn parse_modulation(name: &str, ctx: &str) -> Result<Modulation, SpecError> {
    Modulation::from_name(name)
        .ok_or_else(|| SpecError::new(ctx, format!("unknown modulation '{name}'")))
}

fn parse_ber(config: &Json) -> Result<SnrSweepConfig, SpecError> {
    let ctx = "spec.config (ber)";
    check_keys(
        config,
        &[
            "n_users",
            "n_rx",
            "modulation",
            "channel",
            "snr_db",
            "realizations",
            "seed",
            "threads",
        ],
        ctx,
    )?;
    let channel_name = req_str(config, "channel", ctx)?;
    Ok(SnrSweepConfig {
        n_users: req_usize(config, "n_users", ctx)?,
        n_rx: req_usize(config, "n_rx", ctx)?,
        modulation: parse_modulation(req_str(config, "modulation", ctx)?, ctx)?,
        channel: ChannelModel::from_name(channel_name)
            .ok_or_else(|| SpecError::new(ctx, format!("unknown channel '{channel_name}'")))?,
        snr_db: req_f64_arr(config, "snr_db", ctx)?,
        realizations: req_usize(config, "realizations", ctx)?,
        seed: req_u64(config, "seed", ctx)?,
        threads: req_usize(config, "threads", ctx)?,
    })
}

fn parse_track(o: &Json, ctx: &str) -> Result<TrackConfig, SpecError> {
    let track = req(o, "track", ctx)?;
    let ctx = &format!("{ctx}.track");
    check_keys(
        track,
        &["n_users", "n_rx", "modulation", "rho", "noise_variance"],
        ctx,
    )?;
    Ok(TrackConfig {
        n_users: req_usize(track, "n_users", ctx)?,
        n_rx: req_usize(track, "n_rx", ctx)?,
        modulation: parse_modulation(req_str(track, "modulation", ctx)?, ctx)?,
        rho: req_f64(track, "rho", ctx)?,
        noise_variance: req_f64(track, "noise_variance", ctx)?,
    })
}

fn parse_cost(o: &Json, ctx: &str) -> Result<CostModel, SpecError> {
    parse_cost_obj(req(o, "cost", ctx)?, &format!("{ctx}.cost"))
}

fn parse_cost_obj(cost: &Json, ctx: &str) -> Result<CostModel, SpecError> {
    check_keys(cost, &["base_us", "us_per_node", "us_per_sweep"], ctx)?;
    Ok(CostModel {
        base_us: req_f64(cost, "base_us", ctx)?,
        us_per_node: req_f64(cost, "us_per_node", ctx)?,
        us_per_sweep: req_f64(cost, "us_per_sweep", ctx)?,
    })
}

fn parse_sa(o: &Json, ctx: &str) -> Result<SaParams, SpecError> {
    let sa = req(o, "sa", ctx)?;
    let ctx = &format!("{ctx}.sa");
    check_keys(
        sa,
        &[
            "beta_initial",
            "beta_final",
            "sweeps",
            "num_reads",
            "threads",
            "kernel",
        ],
        ctx,
    )?;
    Ok(SaParams {
        beta_initial: req_f64(sa, "beta_initial", ctx)?,
        beta_final: req_f64(sa, "beta_final", ctx)?,
        sweeps: req_usize(sa, "sweeps", ctx)?,
        num_reads: req_usize(sa, "num_reads", ctx)?,
        threads: req_usize(sa, "threads", ctx)?,
        kernel: parse_kernel(sa, ctx)?,
    })
}

/// `"kernel"` is optional (pre-kernel specs default to the bit-identical
/// `Exact` mode), but when present it must be a known kernel name.
fn parse_kernel(o: &Json, ctx: &str) -> Result<SweepKernel, SpecError> {
    match o.get("kernel") {
        None => Ok(SweepKernel::Exact),
        Some(v) => {
            let name = v
                .as_str()
                .ok_or_else(|| SpecError::new(ctx, "field \"kernel\" must be a string"))?;
            SweepKernel::parse(name).map_err(|e| SpecError::new(ctx, e))
        }
    }
}

fn parse_stream(config: &Json) -> Result<StreamGridConfig, SpecError> {
    let ctx = "spec.config (stream)";
    check_keys(
        config,
        &[
            "track",
            "frames",
            "arrival_periods_us",
            "rhos",
            "policies",
            "deadline_us",
            "cost",
            "sa",
            "seed",
            "threads",
        ],
        ctx,
    )?;
    let policies = req(config, "policies", ctx)?
        .as_arr()
        .ok_or_else(|| SpecError::new(ctx, "field \"policies\" must be an array"))?
        .iter()
        .map(|v| {
            let name = v
                .as_str()
                .ok_or_else(|| SpecError::new(ctx, "policies must be strings"))?;
            DispatchPolicy::from_name(name)
                .ok_or_else(|| SpecError::new(ctx, format!("unknown policy '{name}'")))
        })
        .collect::<Result<Vec<_>, _>>()?;
    Ok(StreamGridConfig {
        track: parse_track(config, ctx)?,
        frames: req_usize(config, "frames", ctx)?,
        arrival_periods_us: req_f64_arr(config, "arrival_periods_us", ctx)?,
        rhos: req_f64_arr(config, "rhos", ctx)?,
        policies,
        deadline_us: req_f64(config, "deadline_us", ctx)?,
        cost: parse_cost(config, ctx)?,
        sa: parse_sa(config, ctx)?,
        seed: req_u64(config, "seed", ctx)?,
        threads: req_usize(config, "threads", ctx)?,
    })
}

fn parse_annealer(o: &Json, ctx: &str) -> Result<AnnealerConfig, SpecError> {
    Ok(AnnealerConfig {
        num_reads: req_usize(o, "num_reads", ctx)?,
        anneal_us: req_f64(o, "anneal_us", ctx)?,
        sweeps_per_us: req_usize(o, "sweeps_per_us", ctx)?,
        capacity: req_usize(o, "capacity", ctx)?,
        max_batch: req_usize(o, "max_batch", ctx)?,
        kernel: parse_kernel(o, ctx)?,
    })
}

fn parse_backend(o: &Json, ctx: &str) -> Result<BackendSpec, SpecError> {
    let kind = req_str(o, "backend", ctx)?;
    const ANNEALER_KEYS: &[&str] = &[
        "backend",
        "num_reads",
        "anneal_us",
        "sweeps_per_us",
        "capacity",
        "max_batch",
        "kernel",
    ];
    match kind {
        "sa-pool" => {
            check_keys(o, &["backend", "workers", "max_batch", "sa"], ctx)?;
            Ok(BackendSpec::SaPool(SaPoolConfig {
                workers: req_usize(o, "workers", ctx)?,
                max_batch: req_usize(o, "max_batch", ctx)?,
                sa: parse_sa(o, ctx)?,
            }))
        }
        "pimc" => {
            check_keys(o, ANNEALER_KEYS, ctx)?;
            Ok(BackendSpec::Pimc(parse_annealer(o, ctx)?))
        }
        "svmc" => {
            check_keys(o, ANNEALER_KEYS, ctx)?;
            Ok(BackendSpec::Svmc(parse_annealer(o, ctx)?))
        }
        "pt" => {
            check_keys(o, &["backend", "workers", "max_batch", "pt"], ctx)?;
            let pt = req(o, "pt", ctx)?;
            let pt_ctx = &format!("{ctx}.pt");
            check_keys(
                pt,
                &[
                    "replicas",
                    "sweeps",
                    "swap_interval",
                    "beta_min",
                    "beta_max",
                ],
                pt_ctx,
            )?;
            Ok(BackendSpec::Pt(PtConfig {
                workers: req_usize(o, "workers", ctx)?,
                max_batch: req_usize(o, "max_batch", ctx)?,
                pt: PtParams {
                    replicas: req_usize(pt, "replicas", pt_ctx)?,
                    sweeps: req_usize(pt, "sweeps", pt_ctx)?,
                    swap_interval: req_usize(pt, "swap_interval", pt_ctx)?,
                    beta_min: req_f64(pt, "beta_min", pt_ctx)?,
                    beta_max: req_f64(pt, "beta_max", pt_ctx)?,
                },
            }))
        }
        "tabu" => {
            check_keys(o, &["backend", "workers", "max_batch", "tabu"], ctx)?;
            let tabu = req(o, "tabu", ctx)?;
            let tabu_ctx = &format!("{ctx}.tabu");
            check_keys(tabu, &["tenure", "max_iters", "stall_limit"], tabu_ctx)?;
            Ok(BackendSpec::Tabu(TabuConfig {
                workers: req_usize(o, "workers", ctx)?,
                max_batch: req_usize(o, "max_batch", ctx)?,
                tabu: TabuParams {
                    tenure: req_usize(tabu, "tenure", tabu_ctx)?,
                    max_iters: req_usize(tabu, "max_iters", tabu_ctx)?,
                    stall_limit: req_usize(tabu, "stall_limit", tabu_ctx)?,
                },
            }))
        }
        "mock-qpu" => {
            check_keys(
                o,
                &[
                    "backend",
                    "num_reads",
                    "anneal_us",
                    "sweeps_per_us",
                    "trotter_slices",
                    "max_batch",
                    "network",
                    "programming_us",
                    "embed_derive_us_per_qubit",
                    "chain_strength",
                ],
                ctx,
            )?;
            let network = req(o, "network", ctx)?;
            let net_ctx = &format!("{ctx}.network");
            check_keys(network, &["rtt_base_us", "jitter_us"], net_ctx)?;
            Ok(BackendSpec::MockQpu(MockQpuConfig {
                num_reads: req_usize(o, "num_reads", ctx)?,
                anneal_us: req_f64(o, "anneal_us", ctx)?,
                sweeps_per_us: req_usize(o, "sweeps_per_us", ctx)?,
                trotter_slices: req_usize(o, "trotter_slices", ctx)?,
                max_batch: req_usize(o, "max_batch", ctx)?,
                network: NetworkModel {
                    rtt_base_us: req_f64(network, "rtt_base_us", net_ctx)?,
                    jitter_us: req_f64(network, "jitter_us", net_ctx)?,
                },
                programming_us: req_f64(o, "programming_us", ctx)?,
                embed_derive_us_per_qubit: req_f64(o, "embed_derive_us_per_qubit", ctx)?,
                chain_strength: req_f64(o, "chain_strength", ctx)?,
            }))
        }
        other => Err(SpecError::new(ctx, format!("unknown backend '{other}'"))),
    }
}

/// `"arrival"` is optional (pre-arrival fabric specs default to the
/// original periodic process); when present, `process` selects the variant
/// and the variant's own parameters are required.
fn parse_arrival(config: &Json, ctx: &str) -> Result<ArrivalProcess, SpecError> {
    let Some(a) = config.get("arrival") else {
        return Ok(ArrivalProcess::Periodic);
    };
    let a_ctx = &format!("{ctx}.arrival");
    let process = req_str(a, "process", a_ctx)?;
    match process {
        "periodic" => {
            check_keys(a, &["process"], a_ctx)?;
            Ok(ArrivalProcess::Periodic)
        }
        "bursty" => {
            check_keys(a, &["process", "burst"], a_ctx)?;
            Ok(ArrivalProcess::Bursty {
                burst: req_usize(a, "burst", a_ctx)?,
            })
        }
        "diurnal" => {
            check_keys(a, &["process", "amplitude", "cycle_frames"], a_ctx)?;
            Ok(ArrivalProcess::Diurnal {
                amplitude: req_f64(a, "amplitude", a_ctx)?,
                cycle_frames: req_usize(a, "cycle_frames", a_ctx)?,
            })
        }
        "heavy-tailed" => {
            check_keys(a, &["process", "alpha"], a_ctx)?;
            Ok(ArrivalProcess::HeavyTailed {
                alpha: req_f64(a, "alpha", a_ctx)?,
            })
        }
        other => Err(SpecError::new(
            a_ctx,
            format!("unknown arrival process '{other}'"),
        )),
    }
}

fn parse_mix(m: &Json, ctx: &str) -> Result<BackendMix, SpecError> {
    check_keys(m, &["name", "backends"], ctx)?;
    let backends = req(m, "backends", ctx)?
        .as_arr()
        .ok_or_else(|| SpecError::new(ctx, "field \"backends\" must be an array"))?
        .iter()
        .enumerate()
        .map(|(j, b)| parse_backend(b, &format!("{ctx}.backends[{j}]")))
        .collect::<Result<Vec<_>, _>>()?;
    Ok(BackendMix {
        name: req_str(m, "name", ctx)?.to_string(),
        backends,
    })
}

fn req_u32(o: &Json, key: &str, ctx: &str) -> Result<u32, SpecError> {
    u32::try_from(req_u64(o, key, ctx)?)
        .map_err(|_| SpecError::new(ctx, format!("field \"{key}\" overflows u32")))
}

fn parse_class_mix(c: &Json, ctx: &str) -> Result<ClassMix, SpecError> {
    check_keys(c, &["urllc", "embb", "bulk"], ctx)?;
    Ok(ClassMix {
        urllc: req_u32(c, "urllc", ctx)?,
        embb: req_u32(c, "embb", ctx)?,
        bulk: req_u32(c, "bulk", ctx)?,
    })
}

fn parse_policy(p: &Json, ctx: &str) -> Result<SchedPolicy, SpecError> {
    let name = req_str(p, "name", ctx)?;
    match name {
        "static" => {
            check_keys(p, &["name"], ctx)?;
            Ok(SchedPolicy::Static)
        }
        "ewma" => {
            check_keys(p, &["name", "shift"], ctx)?;
            Ok(SchedPolicy::Ewma {
                shift: req_u32(p, "shift", ctx)?,
            })
        }
        "ucb" => {
            check_keys(p, &["name", "explore_milli"], ctx)?;
            Ok(SchedPolicy::Ucb {
                explore_milli: req_u32(p, "explore_milli", ctx)?,
            })
        }
        other => Err(SpecError::new(
            ctx,
            format!("unknown scheduling policy '{other}'"),
        )),
    }
}

/// `"sched"` is optional (pre-sched fabric specs default to the historical
/// static scheduler); within the stanza every knob is individually
/// optional.
fn parse_sched_opts(config: &Json, ctx: &str) -> Result<SchedOptions, SpecError> {
    let Some(s) = config.get("sched") else {
        return Ok(SchedOptions::default());
    };
    let s_ctx = &format!("{ctx}.sched");
    check_keys(s, &["policy", "assumed_cost", "classes"], s_ctx)?;
    Ok(SchedOptions {
        policy: match s.get("policy") {
            None => SchedPolicy::Static,
            Some(p) => parse_policy(p, &format!("{s_ctx}.policy"))?,
        },
        assumed_cost: match s.get("assumed_cost") {
            None => None,
            Some(c) => Some(parse_cost_obj(c, &format!("{s_ctx}.assumed_cost"))?),
        },
        classes: match s.get("classes") {
            None => ClassMix::default(),
            Some(c) => parse_class_mix(c, &format!("{s_ctx}.classes"))?,
        },
    })
}

fn parse_sched_grid(config: &Json) -> Result<SchedGridConfig, SpecError> {
    let ctx = "spec.config (sched)";
    check_keys(
        config,
        &[
            "track",
            "frames_per_cell",
            "cell_counts",
            "arrival_periods_us",
            "mix",
            "policy",
            "classes",
            "assumed_cost",
            "deadline_us",
            "cost",
            "seed",
            "threads",
        ],
        ctx,
    )?;
    Ok(SchedGridConfig {
        track: parse_track(config, ctx)?,
        frames_per_cell: req_usize(config, "frames_per_cell", ctx)?,
        cell_counts: req_usize_arr(config, "cell_counts", ctx)?,
        arrival_periods_us: req_f64_arr(config, "arrival_periods_us", ctx)?,
        mix: parse_mix(req(config, "mix", ctx)?, &format!("{ctx}.mix"))?,
        policy: parse_policy(req(config, "policy", ctx)?, &format!("{ctx}.policy"))?,
        classes: parse_class_mix(req(config, "classes", ctx)?, &format!("{ctx}.classes"))?,
        assumed_cost: parse_cost_obj(
            req(config, "assumed_cost", ctx)?,
            &format!("{ctx}.assumed_cost"),
        )?,
        deadline_us: req_f64(config, "deadline_us", ctx)?,
        cost: parse_cost(config, ctx)?,
        seed: req_u64(config, "seed", ctx)?,
        threads: req_usize(config, "threads", ctx)?,
    })
}

fn parse_fabric(config: &Json, realtime: bool) -> Result<FabricGridConfig, SpecError> {
    let ctx = if realtime {
        "spec.config (fabric-rt)"
    } else {
        "spec.config (fabric)"
    };
    check_keys(
        config,
        &[
            "track",
            "frames_per_cell",
            "cell_counts",
            "arrival_periods_us",
            "mixes",
            "arrival",
            "realtime",
            "sched",
            "deadline_us",
            "cost",
            "seed",
            "threads",
        ],
        ctx,
    )?;
    let mode = match (realtime, config.get("realtime")) {
        (false, None) => FabricMode::Virtual,
        (false, Some(_)) => {
            return Err(SpecError::new(
                ctx,
                "\"realtime\" settings on a virtual fabric spec \
                 (use experiment \"fabric-rt\")",
            ));
        }
        // Realtime with the default thread topology.
        (true, None) => FabricMode::Realtime(RealtimeConfig {
            producers: 2,
            queue_shards: 2,
        }),
        (true, Some(rt)) => {
            let rt_ctx = &format!("{ctx}.realtime");
            check_keys(rt, &["producers", "queue_shards"], rt_ctx)?;
            FabricMode::Realtime(RealtimeConfig {
                producers: req_usize(rt, "producers", rt_ctx)?,
                queue_shards: req_usize(rt, "queue_shards", rt_ctx)?,
            })
        }
    };
    let mixes = req(config, "mixes", ctx)?
        .as_arr()
        .ok_or_else(|| SpecError::new(ctx, "field \"mixes\" must be an array"))?
        .iter()
        .enumerate()
        .map(|(i, m)| parse_mix(m, &format!("{ctx}.mixes[{i}]")))
        .collect::<Result<Vec<_>, SpecError>>()?;
    Ok(FabricGridConfig {
        track: parse_track(config, ctx)?,
        frames_per_cell: req_usize(config, "frames_per_cell", ctx)?,
        cell_counts: req_usize_arr(config, "cell_counts", ctx)?,
        arrival_periods_us: req_f64_arr(config, "arrival_periods_us", ctx)?,
        mixes,
        arrival: parse_arrival(config, ctx)?,
        mode,
        sched: parse_sched_opts(config, ctx)?,
        deadline_us: req_f64(config, "deadline_us", ctx)?,
        cost: parse_cost(config, ctx)?,
        seed: req_u64(config, "seed", ctx)?,
        threads: req_usize(config, "threads", ctx)?,
    })
}

fn parse_canned(kind: CannedKind, config: &Json) -> Result<CannedSpec, SpecError> {
    let ctx = &format!("spec.config ({})", kind.name());
    check_keys(config, &["scale", "seed"], ctx)?;
    let scale = req(config, "scale", ctx)?;
    let scale_ctx = &format!("{ctx}.scale");
    check_keys(
        scale,
        &["instances", "reads", "harvest_reads", "grid_thin"],
        scale_ctx,
    )?;
    Ok(CannedSpec {
        experiment: kind,
        scale: Scale {
            instances: req_usize(scale, "instances", scale_ctx)?,
            reads: req_usize(scale, "reads", scale_ctx)?,
            harvest_reads: req_usize(scale, "harvest_reads", scale_ctx)?,
            grid_thin: req_usize(scale, "grid_thin", scale_ctx)?,
        },
        seed: req_u64(config, "seed", ctx)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ber_spec() -> ExperimentSpec {
        ExperimentSpec::Ber(SnrSweepConfig {
            n_users: 3,
            n_rx: 3,
            modulation: Modulation::Qpsk,
            channel: ChannelModel::UnitGainRandomPhase,
            snr_db: vec![0.0, 8.0, 16.5],
            realizations: 4,
            seed: u64::MAX - 12345,
            threads: 0,
        })
    }

    fn stream_spec() -> ExperimentSpec {
        ExperimentSpec::Stream(StreamGridConfig {
            track: TrackConfig {
                n_users: 3,
                n_rx: 3,
                modulation: Modulation::Qpsk,
                rho: 0.0,
                noise_variance: 0.119,
            },
            frames: 64,
            arrival_periods_us: vec![400.0, 160.0],
            rhos: vec![0.0, 0.95],
            policies: DispatchPolicy::ALL.to_vec(),
            deadline_us: 300.0,
            cost: CostModel::default(),
            sa: SaParams {
                sweeps: 96,
                num_reads: 1,
                threads: 1,
                ..SaParams::default()
            },
            seed: 2026,
            threads: 0,
        })
    }

    fn fabric_spec() -> ExperimentSpec {
        ExperimentSpec::Fabric(FabricGridConfig {
            track: TrackConfig {
                n_users: 2,
                n_rx: 2,
                modulation: Modulation::Qpsk,
                rho: 0.9,
                noise_variance: 0.079,
            },
            frames_per_cell: 24,
            cell_counts: vec![2, 4],
            arrival_periods_us: vec![400.0, 200.0],
            mixes: vec![
                BackendMix {
                    name: "sa-pool".into(),
                    backends: vec![BackendSpec::SaPool(SaPoolConfig {
                        workers: 2,
                        max_batch: 4,
                        sa: SaParams {
                            sweeps: 48,
                            num_reads: 2,
                            threads: 1,
                            ..SaParams::default()
                        },
                    })],
                },
                BackendMix {
                    name: "hetero".into(),
                    backends: vec![
                        BackendSpec::Pimc(AnnealerConfig {
                            num_reads: 2,
                            anneal_us: 2.0,
                            sweeps_per_us: 8,
                            capacity: 1,
                            max_batch: 4,
                            kernel: SweepKernel::Exact,
                        }),
                        BackendSpec::Svmc(AnnealerConfig {
                            num_reads: 2,
                            anneal_us: 2.0,
                            sweeps_per_us: 8,
                            capacity: 1,
                            max_batch: 4,
                            kernel: SweepKernel::Exact,
                        }),
                        BackendSpec::MockQpu(MockQpuConfig {
                            num_reads: 4,
                            anneal_us: 2.0,
                            sweeps_per_us: 8,
                            trotter_slices: 8,
                            max_batch: 4,
                            network: NetworkModel {
                                rtt_base_us: 30.0,
                                jitter_us: 10.0,
                            },
                            programming_us: 120.0,
                            embed_derive_us_per_qubit: 2.0,
                            chain_strength: 2.0,
                        }),
                    ],
                },
            ],
            arrival: ArrivalProcess::Periodic,
            mode: FabricMode::Virtual,
            sched: SchedOptions::default(),
            deadline_us: 700.0,
            cost: CostModel::default(),
            seed: 2026,
            threads: 0,
        })
    }

    fn adaptive_fabric_spec() -> ExperimentSpec {
        let ExperimentSpec::Fabric(mut config) = fabric_spec() else {
            unreachable!()
        };
        config.mixes[0].backends.push(BackendSpec::Pt(PtConfig {
            workers: 1,
            max_batch: 2,
            pt: PtParams::default(),
        }));
        config.mixes[0].backends.push(BackendSpec::Tabu(TabuConfig {
            workers: 1,
            max_batch: 2,
            tabu: TabuParams::default(),
        }));
        config.sched = SchedOptions {
            policy: SchedPolicy::Ewma { shift: 2 },
            assumed_cost: Some(CostModel {
                us_per_sweep: 0.15,
                ..CostModel::default()
            }),
            classes: ClassMix {
                urllc: 1,
                embb: 2,
                bulk: 1,
            },
        };
        ExperimentSpec::Fabric(config)
    }

    fn sched_spec() -> ExperimentSpec {
        let ExperimentSpec::Fabric(fabric) = fabric_spec() else {
            unreachable!()
        };
        ExperimentSpec::Sched(SchedGridConfig {
            track: fabric.track,
            frames_per_cell: 16,
            cell_counts: vec![2, 4],
            arrival_periods_us: vec![400.0, 200.0],
            mix: fabric.mixes[0].clone(),
            policy: SchedPolicy::Ucb { explore_milli: 250 },
            classes: ClassMix {
                urllc: 1,
                embb: 2,
                bulk: 1,
            },
            assumed_cost: CostModel {
                us_per_sweep: 0.15,
                ..CostModel::default()
            },
            deadline_us: 700.0,
            cost: CostModel::default(),
            seed: 2026,
            threads: 0,
        })
    }

    fn fabric_rt_spec() -> ExperimentSpec {
        let ExperimentSpec::Fabric(mut config) = fabric_spec() else {
            unreachable!()
        };
        config.arrival = ArrivalProcess::Bursty { burst: 4 };
        config.mode = FabricMode::Realtime(RealtimeConfig {
            producers: 3,
            queue_shards: 2,
        });
        ExperimentSpec::Fabric(config)
    }

    fn canned_spec() -> ExperimentSpec {
        ExperimentSpec::Canned(CannedSpec {
            experiment: CannedKind::Fig3,
            scale: Scale::quick(),
            seed: 7,
        })
    }

    #[test]
    fn every_family_round_trips_exactly() {
        for spec in [
            ber_spec(),
            stream_spec(),
            fabric_spec(),
            adaptive_fabric_spec(),
            sched_spec(),
            fabric_rt_spec(),
            canned_spec(),
        ] {
            let text = spec.to_json();
            let parsed = ExperimentSpec::parse(&text).expect(&text);
            assert_eq!(parsed, spec, "{text}");
        }
    }

    #[test]
    fn arrival_processes_round_trip_and_typos_are_rejected() {
        let ExperimentSpec::Fabric(base) = fabric_spec() else {
            unreachable!()
        };
        for arrival in [
            ArrivalProcess::Bursty { burst: 3 },
            ArrivalProcess::Diurnal {
                amplitude: 0.5,
                cycle_frames: 16,
            },
            ArrivalProcess::HeavyTailed { alpha: 1.5 },
        ] {
            let mut config = base.clone();
            config.arrival = arrival;
            let spec = ExperimentSpec::Fabric(config);
            let parsed = ExperimentSpec::parse(&spec.to_json()).expect("round trip");
            assert_eq!(parsed, spec);
        }

        let mut config = base.clone();
        config.arrival = ArrivalProcess::Bursty { burst: 3 };
        let doc = ExperimentSpec::Fabric(config)
            .to_json()
            .replace("\"burst\"", "\"bursts\"");
        let err = ExperimentSpec::parse(&doc).unwrap_err();
        assert!(err.to_string().contains("unknown field"), "got: {err}");
    }

    #[test]
    fn realtime_mode_is_the_experiment_tag() {
        // fabric-rt serializes under its own experiment tag...
        let text = fabric_rt_spec().to_json();
        assert!(text.contains("\"experiment\": \"fabric-rt\""), "{text}");
        // ...a realtime stanza on a plain fabric spec is rejected...
        let bad = text.replace("\"fabric-rt\"", "\"fabric\"");
        let err = ExperimentSpec::parse(&bad).unwrap_err();
        assert!(
            err.to_string().contains("virtual fabric spec"),
            "got: {err}"
        );
        // ...and fabric-rt without one gets the default thread topology.
        let mut doc = fabric_spec().to_json();
        doc = doc.replace(
            "\"experiment\": \"fabric\"",
            "\"experiment\": \"fabric-rt\"",
        );
        let spec = ExperimentSpec::parse(&doc).expect("defaulted realtime");
        match spec {
            ExperimentSpec::Fabric(c) => assert_eq!(
                c.mode,
                FabricMode::Realtime(RealtimeConfig {
                    producers: 2,
                    queue_shards: 2,
                })
            ),
            _ => unreachable!(),
        }
    }

    #[test]
    fn default_sched_stanza_is_omitted_and_typos_are_rejected() {
        // The all-default scheduler serializes to nothing: pre-sched specs
        // and their byte-identical outputs are untouched.
        let text = fabric_spec().to_json();
        assert!(!text.contains("\"sched\""), "{text}");

        let text = adaptive_fabric_spec().to_json();
        assert!(text.contains("\"sched\""), "{text}");
        let bad = text.replace("\"name\": \"ewma\"", "\"name\": \"ewmaa\"");
        let err = ExperimentSpec::parse(&bad).unwrap_err();
        assert!(
            err.to_string()
                .contains("unknown scheduling policy 'ewmaa'"),
            "got: {err}"
        );

        let bad = sched_spec().to_json().replace("\"urllc\"", "\"urlcc\"");
        let err = ExperimentSpec::parse(&bad).unwrap_err();
        assert!(
            err.to_string().contains("unknown field \"urlcc\""),
            "got: {err}"
        );
    }

    #[test]
    fn sched_spec_rejects_a_static_policy() {
        let ExperimentSpec::Sched(mut config) = sched_spec() else {
            unreachable!()
        };
        config.policy = SchedPolicy::Static;
        let err = ExperimentSpec::Sched(config).validate().unwrap_err();
        assert!(
            err.to_string().contains("must not be \"static\""),
            "got: {err}"
        );
    }

    #[test]
    fn family_names_and_seeds_are_exposed() {
        assert_eq!(ber_spec().family(), "ber");
        assert_eq!(stream_spec().family(), "stream");
        assert_eq!(fabric_spec().family(), "fabric");
        assert_eq!(sched_spec().family(), "sched");
        assert_eq!(fabric_rt_spec().family(), "fabric-rt");
        assert!(fabric_rt_spec().is_realtime());
        assert!(!fabric_spec().is_realtime());
        assert_eq!(canned_spec().family(), "fig3");
        assert_eq!(canned_spec().seed(), 7);
        let mut spec = ber_spec();
        spec.set_threads(3);
        match spec {
            ExperimentSpec::Ber(c) => assert_eq!(c.threads, 3),
            _ => unreachable!(),
        }
    }

    #[test]
    fn canned_kind_names_round_trip() {
        for kind in CannedKind::ALL {
            assert_eq!(CannedKind::from_name(kind.name()), Some(kind));
        }
        assert_eq!(CannedKind::from_name("fig9"), None);
    }

    #[test]
    fn parse_rejects_unknown_experiment_and_version() {
        let err =
            ExperimentSpec::parse(r#"{"spec_version": 1, "experiment": "nope", "config": {}}"#)
                .unwrap_err();
        assert!(err.to_string().contains("unknown experiment 'nope'"));

        let err =
            ExperimentSpec::parse(r#"{"spec_version": 99, "experiment": "ber", "config": {}}"#)
                .unwrap_err();
        assert!(err.to_string().contains("unsupported spec_version 99"));
    }

    #[test]
    fn parse_rejects_syntax_missing_fields_and_typos() {
        let err = ExperimentSpec::parse("{not json").unwrap_err();
        assert!(err.to_string().contains("JSON error"));

        let err = ExperimentSpec::parse(r#"{"experiment": "ber", "config": {}}"#).unwrap_err();
        assert!(err.to_string().contains("missing field \"spec_version\""));

        // A typo'd config key is caught by name.
        let mut doc = ber_spec().to_json();
        doc = doc.replace("\"realizations\"", "\"realisations\"");
        let err = ExperimentSpec::parse(&doc).unwrap_err();
        assert!(err.to_string().contains("unknown field \"realisations\""));
    }

    #[test]
    fn parse_rejects_invalid_configs_via_validate() {
        let mut doc = ber_spec().to_json();
        doc = doc.replace("\"realizations\": 4", "\"realizations\": 0");
        let err = ExperimentSpec::parse(&doc).unwrap_err();
        assert!(err.to_string().contains("zero realizations"), "got: {err}");
    }

    #[test]
    fn parse_rejects_bad_enum_values() {
        let mut doc = ber_spec().to_json();
        doc = doc.replace("\"QPSK\"", "\"QAM-4096\"");
        let err = ExperimentSpec::parse(&doc).unwrap_err();
        assert!(err.to_string().contains("unknown modulation 'QAM-4096'"));

        let mut doc = stream_spec().to_json();
        doc = doc.replace("\"always-hybrid\"", "\"sometimes-hybrid\"");
        let err = ExperimentSpec::parse(&doc).unwrap_err();
        assert!(err
            .to_string()
            .contains("unknown policy 'sometimes-hybrid'"));

        let mut doc = fabric_spec().to_json();
        doc = doc.replace("\"backend\": \"pimc\"", "\"backend\": \"qpu2000\"");
        let err = ExperimentSpec::parse(&doc).unwrap_err();
        assert!(err.to_string().contains("unknown backend 'qpu2000'"));
    }

    #[test]
    fn spec_error_accessors_and_display_agree() {
        let err = SpecError::new("StreamConfig", "need at least one frame");
        assert_eq!(err.context(), "StreamConfig");
        assert_eq!(err.message(), "need at least one frame");
        assert_eq!(err.to_string(), "StreamConfig: need at least one frame");
    }
}
