//! The three annealing protocols the paper compares (§4.1, Figure 5).
//!
//! [`Protocol`] is a declarative description that compiles to an
//! [`AnnealSchedule`]; the `paper_*` constructors bake in §4.2's settings
//! (`t_a = 1 µs` — the hardware minimum — and `t_p = 1 µs`,
//! "consistently to the guidance in the literature for best performance").

use hqw_anneal::schedule::{AnnealSchedule, ScheduleError};

/// An annealing protocol.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Protocol {
    /// Forward annealing, optionally with a mid-anneal pause — the paper's
    /// FA baseline (fully quantum, no initial state).
    Forward {
        /// Anneal time `t_a` (µs).
        t_a: f64,
        /// Optional pause `(s_p, t_p)`.
        pause: Option<(f64, f64)>,
    },
    /// Reverse annealing from a programmed classical state — the quantum
    /// stage of the paper's hybrid prototype.
    Reverse {
        /// Switch + pause location `s_p`.
        s_p: f64,
        /// Pause time `t_p` (µs).
        t_p: f64,
    },
    /// Single-step forward-reverse annealing — the paper's newly-developed
    /// fully-quantum comparison (no measurement between phases).
    ForwardReverse {
        /// Forward turning point `c_p`.
        c_p: f64,
        /// Reverse target / pause location `s_p`.
        s_p: f64,
        /// Pause time `t_p` (µs).
        t_p: f64,
        /// Final forward anneal time `t_a` (µs).
        t_a: f64,
    },
}

impl Protocol {
    /// §4.2 FA: pause at `s_p` for 1 µs, `t_a = 1 µs` of forward motion.
    ///
    /// The paper's FA waypoints put the pre-pause ramp at unit rate, which
    /// requires `t_a > s_p`; with `t_a = 1 µs` every `s_p < 1` is valid.
    pub fn paper_fa(s_p: f64) -> Self {
        Protocol::Forward {
            t_a: 1.0 + s_p,
            pause: Some((s_p, 1.0)),
        }
    }

    /// Plain 1 µs forward ramp (no pause).
    pub fn plain_fa() -> Self {
        Protocol::Forward {
            t_a: 1.0,
            pause: None,
        }
    }

    /// §4.2 RA: reverse to `s_p`, pause 1 µs, anneal forward.
    pub fn paper_ra(s_p: f64) -> Self {
        Protocol::Reverse { s_p, t_p: 1.0 }
    }

    /// §4.2 FR: forward to `c_p`, reverse to `s_p`, pause 1 µs, `t_a = 1 µs`.
    pub fn paper_fr(c_p: f64, s_p: f64) -> Self {
        Protocol::ForwardReverse {
            c_p,
            s_p,
            t_p: 1.0,
            t_a: 1.0 + s_p,
        }
    }

    /// Protocol name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            Protocol::Forward { .. } => "FA",
            Protocol::Reverse { .. } => "RA",
            Protocol::ForwardReverse { .. } => "FR",
        }
    }

    /// True when the protocol needs a programmed initial state.
    pub fn requires_initial_state(&self) -> bool {
        matches!(self, Protocol::Reverse { .. })
    }

    /// Compiles to an anneal schedule.
    ///
    /// # Errors
    /// Propagates waypoint validation failures.
    pub fn schedule(&self) -> Result<AnnealSchedule, ScheduleError> {
        match *self {
            Protocol::Forward { t_a, pause: None } => AnnealSchedule::forward(t_a),
            Protocol::Forward {
                t_a,
                pause: Some((s_p, t_p)),
            } => AnnealSchedule::forward_with_pause(s_p, t_p, t_a),
            Protocol::Reverse { s_p, t_p } => AnnealSchedule::reverse(s_p, t_p),
            Protocol::ForwardReverse { c_p, s_p, t_p, t_a } => {
                AnnealSchedule::forward_reverse(c_p, s_p, t_p, t_a)
            }
        }
    }

    /// Programmed duration of one read (µs).
    ///
    /// # Panics
    /// Panics on invalid protocol parameters (use [`Protocol::schedule`] for
    /// fallible access).
    pub fn duration_us(&self) -> f64 {
        self.schedule()
            .expect("invalid protocol parameters")
            .duration_us()
    }
}

/// The paper's parameter grid for `s_p` and `c_p`: 0.25–0.99 in steps of
/// 0.04 (§4.2).
pub fn paper_sp_grid() -> Vec<f64> {
    let mut grid = Vec::new();
    let mut sp: f64 = 0.25;
    while sp <= 0.99 + 1e-9 {
        grid.push((sp * 100.0).round() / 100.0);
        sp += 0.04;
    }
    grid
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_constructors_produce_paper_durations() {
        // RA duration = 2(1−s_p) + t_p.
        let ra = Protocol::paper_ra(0.41);
        assert!((ra.duration_us() - (2.0 * 0.59 + 1.0)).abs() < 1e-9);
        // FA duration = t_a + t_p with t_a = 1 + s_p.
        let fa = Protocol::paper_fa(0.41);
        assert!((fa.duration_us() - (1.41 + 1.0)).abs() < 1e-9);
        // FR duration = 2c_p − 2s_p + t_p + t_a.
        let fr = Protocol::paper_fr(0.7, 0.4);
        assert!((fr.duration_us() - (1.4 - 0.8 + 1.0 + 1.4)).abs() < 1e-9);
    }

    #[test]
    fn only_reverse_requires_initial_state() {
        assert!(Protocol::paper_ra(0.5).requires_initial_state());
        assert!(!Protocol::paper_fa(0.5).requires_initial_state());
        assert!(!Protocol::paper_fr(0.7, 0.5).requires_initial_state());
        assert!(!Protocol::plain_fa().requires_initial_state());
    }

    #[test]
    fn schedules_agree_with_requires_initial_state() {
        for p in [
            Protocol::paper_fa(0.5),
            Protocol::paper_ra(0.5),
            Protocol::paper_fr(0.7, 0.5),
            Protocol::plain_fa(),
        ] {
            assert_eq!(
                p.schedule().unwrap().requires_initial_state(),
                p.requires_initial_state(),
                "{}",
                p.name()
            );
        }
    }

    #[test]
    fn paper_grid_matches_section_4_2() {
        let grid = paper_sp_grid();
        assert_eq!(grid[0], 0.25);
        assert!((grid[1] - 0.29).abs() < 1e-12);
        assert!(*grid.last().unwrap() <= 0.99);
        assert!(grid.len() >= 18);
        // All grid points build valid RA and FA protocols.
        for &sp in &grid {
            Protocol::paper_ra(sp).schedule().unwrap();
            Protocol::paper_fa(sp).schedule().unwrap();
        }
    }

    #[test]
    fn invalid_fr_is_fallible_not_panicking() {
        let bad = Protocol::paper_fr(0.3, 0.5); // c_p < s_p
        assert!(bad.schedule().is_err());
    }
}
