//! The unified report surface and its table/CSV rendering helpers.
//!
//! [`Report`] is the one trait every grid-style experiment report
//! implements — `BerReport`, `StreamGridReport` and `FabricGridReport` all
//! render through it, so JSON emission, CSV emission and the stdout table
//! live here instead of being copy-pasted across bench binaries. The
//! figure-regeneration binaries print the same series the paper plots;
//! [`Table`] keeps that output consistent and machine-readable (CSV files
//! land in `results/` so downstream plotting never re-runs experiments).

use std::path::Path;

/// The unified experiment-report surface: one trait carrying every
/// rendering the runner needs, implemented by each grid report.
///
/// The committed `BENCH_*.json` documents are [`Report::to_json`] output
/// verbatim: implementations must keep `to_json` a pure function of the
/// report contents (byte-identical across runs and thread counts — the CI
/// determinism gate diffs them).
pub trait Report {
    /// Stable machine-readable report name (`"ber"`, `"stream"`,
    /// `"fabric"` — the JSON document's `bench` tag).
    fn name(&self) -> &'static str;

    /// Version of the report's JSON schema (documented in
    /// `crates/bench/README.md`). Bump on any incompatible change.
    fn schema_version(&self) -> u32;

    /// Renders the full JSON document.
    fn to_json(&self) -> String;

    /// Builds the human-readable results table (also the CSV row source).
    fn table(&self) -> Table;

    /// Renders the results table with aligned columns.
    fn render_table(&self) -> String {
        self.table().render()
    }

    /// Renders the results table as a CSV document.
    fn to_csv(&self) -> String {
        self.table().to_csv_string()
    }

    /// Writes [`Report::to_json`] to `path`, creating parent directories.
    ///
    /// # Errors
    /// Propagates I/O failures.
    fn write_json(&self, path: &Path) -> std::io::Result<()> {
        write_creating_parents(path, &self.to_json())
    }

    /// Writes [`Report::to_csv`] to `path`, creating parent directories.
    ///
    /// # Errors
    /// Propagates I/O failures.
    fn write_csv(&self, path: &Path) -> std::io::Result<()> {
        write_creating_parents(path, &self.to_csv())
    }
}

/// Writes `content` to `path`, creating parent directories first (shared by
/// every report emitter so the path convention lives in one place).
///
/// # Errors
/// Propagates I/O failures.
pub fn write_creating_parents(path: &Path, content: &str) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    std::fs::write(path, content)
}

/// A simple column-aligned text table.
#[derive(Debug, Clone)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    /// Panics when the row width differs from the header.
    pub fn push_row(&mut self, row: Vec<String>) {
        assert_eq!(row.len(), self.header.len(), "Table: row width mismatch");
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Renders the table as a CSV document (header + rows, comma-separated,
    /// quoted only when needed).
    pub fn to_csv_string(&self) -> String {
        let quote = |cell: &str| -> String {
            if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        };
        let mut out = String::new();
        for line in std::iter::once(&self.header).chain(&self.rows) {
            out.push_str(&line.iter().map(|c| quote(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }

    /// Writes [`Table::to_csv_string`] to `path`, creating parent
    /// directories.
    ///
    /// # Errors
    /// Propagates I/O failures.
    pub fn write_csv(&self, path: &Path) -> std::io::Result<()> {
        write_creating_parents(path, &self.to_csv_string())
    }
}

/// Formats a float with fixed precision, rendering non-finite values
/// readably (`inf` for unreachable TTS).
pub fn fnum(value: f64, decimals: usize) -> String {
    if value.is_infinite() {
        "inf".to_string()
    } else if value.is_nan() {
        "nan".to_string()
    } else {
        format!("{value:.decimals$}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(&["name", "value"]);
        t.push_row(vec!["a".into(), "1".into()]);
        t.push_row(vec!["long-name".into(), "2.5".into()]);
        let s = t.render();
        assert!(s.contains("long-name"));
        assert_eq!(s.lines().count(), 4);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn csv_round_trip_with_quoting() {
        let dir = std::env::temp_dir().join("hqw_report_test");
        let path = dir.join("out.csv");
        let mut t = Table::new(&["a", "b"]);
        t.push_row(vec!["plain".into(), "has,comma".into()]);
        t.write_csv(&path).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.starts_with("a,b\n"));
        assert!(content.contains("\"has,comma\""));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fnum_handles_non_finite() {
        assert_eq!(fnum(1.23456, 2), "1.23");
        assert_eq!(fnum(f64::INFINITY, 2), "inf");
        assert_eq!(fnum(f64::NAN, 2), "nan");
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn rejects_ragged_rows() {
        let mut t = Table::new(&["a", "b"]);
        t.push_row(vec!["only-one".into()]);
    }
}
