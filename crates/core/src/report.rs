//! The unified report surface and its table/CSV rendering helpers.
//!
//! [`Report`] is the one trait every grid-style experiment report
//! implements — `BerReport`, `StreamGridReport` and `FabricGridReport` all
//! render through it, so JSON emission, CSV emission and the stdout table
//! live here instead of being copy-pasted across bench binaries. The
//! figure-regeneration binaries print the same series the paper plots;
//! [`Table`] keeps that output consistent and machine-readable (CSV files
//! land in `results/` so downstream plotting never re-runs experiments).

use crate::spec::{ExperimentSpec, SpecError};
use std::path::Path;

/// The unified experiment-report surface: one trait carrying every
/// rendering the runner needs, implemented by each grid report.
///
/// The committed `BENCH_*.json` documents are [`Report::to_json`] output
/// verbatim: implementations must keep `to_json` a pure function of the
/// report contents (byte-identical across runs and thread counts — the CI
/// determinism gate diffs them).
pub trait Report {
    /// Stable machine-readable report name (`"ber"`, `"stream"`,
    /// `"fabric"` — the JSON document's `bench` tag).
    fn name(&self) -> &'static str;

    /// Version of the report's JSON schema (documented in
    /// `crates/bench/README.md`). Bump on any incompatible change.
    fn schema_version(&self) -> u32;

    /// Renders the full JSON document.
    fn to_json(&self) -> String;

    /// Builds the human-readable results table (also the CSV row source).
    fn table(&self) -> Table;

    /// Renders the results table with aligned columns.
    fn render_table(&self) -> String {
        self.table().render()
    }

    /// Renders the results table as a CSV document.
    fn to_csv(&self) -> String {
        self.table().to_csv_string()
    }

    /// Writes [`Report::to_json`] to `path`, creating parent directories.
    ///
    /// # Errors
    /// Propagates I/O failures.
    fn write_json(&self, path: &Path) -> std::io::Result<()> {
        write_creating_parents(path, &self.to_json())
    }

    /// Writes [`Report::to_csv`] to `path`, creating parent directories.
    ///
    /// # Errors
    /// Propagates I/O failures.
    fn write_csv(&self, path: &Path) -> std::io::Result<()> {
        write_creating_parents(path, &self.to_csv())
    }
}

/// One grid point of a mergeable report: the stable grid-order id plus the
/// point's JSON rendering.
///
/// The payload is the exact single-line JSON object the full report embeds
/// for this point, so `from_points(spec, report.points())` reproduces the
/// report byte-for-byte — the invariant the shard/merge and checkpoint
/// planes are built on. The float codec round-trips exactly (shortest
/// `Display` form parsed back with `str::parse::<f64>`), so going through
/// text loses nothing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PointRecord {
    /// Grid-order point id: the index into the spec's expanded point grid
    /// (`0..grid_len`). Which grid dimension a point spans is
    /// engine-specific — one SNR column for BER, one (policy, ρ, load)
    /// cell for the stream grid, one (mix, cells, load) cell for the
    /// fabric grid.
    pub id: usize,
    /// The point's JSON object, single-line, engine-specific schema
    /// (documented in `crates/bench/README.md`).
    pub payload: String,
}

/// A [`Report`] whose grid decomposes into per-point records that can be
/// computed independently (sharded, checkpointed) and reassembled exactly.
///
/// Contract, property-tested in `tests/shard_proptests.rs`:
/// `from_points(spec, full_report.points())` returns a report whose
/// `to_json()` is byte-identical to the original, and any partition of the
/// records merges back to the same bytes.
pub trait MergeableReport: Report + Sized {
    /// Decomposes the report into per-point records, in grid order.
    fn points(&self) -> Vec<PointRecord>;

    /// Reassembles a report from the spec (the header source) and a
    /// complete set of point records (any order; ids must cover the spec's
    /// grid exactly).
    ///
    /// # Errors
    /// Returns a [`SpecError`] when the spec is the wrong family, ids are
    /// missing/duplicated/out of range, a payload fails to parse, or a
    /// payload's grid coordinates contradict the spec.
    fn from_points(spec: &ExperimentSpec, points: Vec<PointRecord>) -> Result<Self, SpecError>;
}

/// Sorts `points` by id and checks they cover `0..total` exactly — the
/// shared id-validation step of every [`MergeableReport::from_points`].
///
/// # Errors
/// Names the first duplicated, out-of-range, or missing id.
pub fn sort_and_check_point_ids(
    points: &mut [PointRecord],
    total: usize,
    ctx: &str,
) -> Result<(), SpecError> {
    points.sort_by_key(|p| p.id);
    if let Some(p) = points.iter().find(|p| p.id >= total) {
        return Err(SpecError::new(
            ctx,
            format!("point id {} out of range (grid has {total} points)", p.id),
        ));
    }
    if let Some(w) = points.windows(2).find(|w| w[0].id == w[1].id) {
        return Err(SpecError::new(
            ctx,
            format!("duplicate point id {}", w[0].id),
        ));
    }
    if points.len() != total {
        let have: std::collections::BTreeSet<usize> = points.iter().map(|p| p.id).collect();
        let missing: Vec<String> = (0..total)
            .filter(|id| !have.contains(id))
            .take(8)
            .map(|id| id.to_string())
            .collect();
        return Err(SpecError::new(
            ctx,
            format!("missing point id(s) {} of 0..{total}", missing.join(", ")),
        ));
    }
    Ok(())
}

/// Writes `content` to `path`, creating parent directories first (shared by
/// every report emitter so the path convention lives in one place).
///
/// # Errors
/// Propagates I/O failures.
pub fn write_creating_parents(path: &Path, content: &str) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    std::fs::write(path, content)
}

/// A simple column-aligned text table.
#[derive(Debug, Clone)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    /// Panics when the row width differs from the header.
    pub fn push_row(&mut self, row: Vec<String>) {
        assert_eq!(row.len(), self.header.len(), "Table: row width mismatch");
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Renders the table as a CSV document (header + rows, comma-separated,
    /// quoted only when needed).
    pub fn to_csv_string(&self) -> String {
        let quote = |cell: &str| -> String {
            if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        };
        let mut out = String::new();
        for line in std::iter::once(&self.header).chain(&self.rows) {
            out.push_str(&line.iter().map(|c| quote(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }

    /// Writes [`Table::to_csv_string`] to `path`, creating parent
    /// directories.
    ///
    /// # Errors
    /// Propagates I/O failures.
    pub fn write_csv(&self, path: &Path) -> std::io::Result<()> {
        write_creating_parents(path, &self.to_csv_string())
    }
}

/// Formats a float with fixed precision, rendering non-finite values
/// readably (`inf` for unreachable TTS).
pub fn fnum(value: f64, decimals: usize) -> String {
    if value.is_infinite() {
        "inf".to_string()
    } else if value.is_nan() {
        "nan".to_string()
    } else {
        format!("{value:.decimals$}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(&["name", "value"]);
        t.push_row(vec!["a".into(), "1".into()]);
        t.push_row(vec!["long-name".into(), "2.5".into()]);
        let s = t.render();
        assert!(s.contains("long-name"));
        assert_eq!(s.lines().count(), 4);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn csv_round_trip_with_quoting() {
        let dir = std::env::temp_dir().join("hqw_report_test");
        let path = dir.join("out.csv");
        let mut t = Table::new(&["a", "b"]);
        t.push_row(vec!["plain".into(), "has,comma".into()]);
        t.write_csv(&path).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.starts_with("a,b\n"));
        assert!(content.contains("\"has,comma\""));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fnum_handles_non_finite() {
        assert_eq!(fnum(1.23456, 2), "1.23");
        assert_eq!(fnum(f64::INFINITY, 2), "inf");
        assert_eq!(fnum(f64::NAN, 2), "nan");
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn rejects_ragged_rows() {
        let mut t = Table::new(&["a", "b"]);
        t.push_row(vec!["only-one".into()]);
    }
}
