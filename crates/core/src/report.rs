//! Plain-text table and CSV rendering for experiment outputs.
//!
//! The figure-regeneration binaries print the same series the paper plots;
//! these helpers keep that output consistent and machine-readable (CSV files
//! land in `results/` so downstream plotting never re-runs experiments).

use std::io::Write;
use std::path::Path;

/// A simple column-aligned text table.
#[derive(Debug, Clone)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    /// Panics when the row width differs from the header.
    pub fn push_row(&mut self, row: Vec<String>) {
        assert_eq!(row.len(), self.header.len(), "Table: row width mismatch");
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Writes the table as CSV (header + rows, comma-separated, quoted only
    /// when needed).
    ///
    /// # Errors
    /// Propagates I/O failures.
    pub fn write_csv(&self, path: &Path) -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        let mut file = std::fs::File::create(path)?;
        let quote = |cell: &str| -> String {
            if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        };
        writeln!(
            file,
            "{}",
            self.header
                .iter()
                .map(|c| quote(c))
                .collect::<Vec<_>>()
                .join(",")
        )?;
        for row in &self.rows {
            writeln!(
                file,
                "{}",
                row.iter().map(|c| quote(c)).collect::<Vec<_>>().join(",")
            )?;
        }
        Ok(())
    }
}

/// Formats a float with fixed precision, rendering non-finite values
/// readably (`inf` for unreachable TTS).
pub fn fnum(value: f64, decimals: usize) -> String {
    if value.is_infinite() {
        "inf".to_string()
    } else if value.is_nan() {
        "nan".to_string()
    } else {
        format!("{value:.decimals$}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(&["name", "value"]);
        t.push_row(vec!["a".into(), "1".into()]);
        t.push_row(vec!["long-name".into(), "2.5".into()]);
        let s = t.render();
        assert!(s.contains("long-name"));
        assert_eq!(s.lines().count(), 4);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn csv_round_trip_with_quoting() {
        let dir = std::env::temp_dir().join("hqw_report_test");
        let path = dir.join("out.csv");
        let mut t = Table::new(&["a", "b"]);
        t.push_row(vec!["plain".into(), "has,comma".into()]);
        t.write_csv(&path).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.starts_with("a,b\n"));
        assert!(content.contains("\"has,comma\""));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fnum_handles_non_finite() {
        assert_eq!(fnum(1.23456, 2), "1.23");
        assert_eq!(fnum(f64::INFINITY, 2), "inf");
        assert_eq!(fnum(f64::NAN, 2), "nan");
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn rejects_ragged_rows() {
        let mut t = Table::new(&["a", "b"]);
        t.push_row(vec!["only-one".into()]);
    }
}
