//! Iterative and variable-prefixing hybrid structures (§2's survey, made
//! concrete).
//!
//! Beyond the paper's sequential GS→RA prototype, its related-work section
//! catalogs richer classical-quantum couplings:
//!
//! * "Classical computing can also ease the problem by prefixing some
//!   variables **as part of iterative loops** \[28\]" — sample persistence:
//!   after each quantum round, variables that agree across the best samples
//!   are frozen and the next round anneals a smaller problem.
//! * Repeated reverse annealing, where each round is seeded by the best
//!   state found so far — the natural closed-loop extension of the
//!   prototype (and what D-Wave's `reinitialize_state=false` mode
//!   approximates in hardware).
//!
//! Both are built from the same substrate pieces (preprocess-style
//! reduction, the sampler, the metrics) and are exercised by the
//! `ext_iterative` bench binary.

use crate::metrics::GROUND_TOL;
use crate::protocol::Protocol;
use hqw_anneal::sampler::QuantumSampler;
use hqw_math::Rng64;
use hqw_qubo::{Qubo, SampleSet};

/// Outcome of one iterative-refinement round.
#[derive(Debug, Clone)]
pub struct Round {
    /// Round index (0-based).
    pub round: usize,
    /// Best energy after this round.
    pub best_energy: f64,
    /// Number of variables still free (differs from the problem size only
    /// for the prefixing strategy).
    pub free_vars: usize,
}

/// Result of an iterative hybrid run.
#[derive(Debug, Clone)]
pub struct IterativeResult {
    /// Best bits found (full problem labeling).
    pub best_bits: Vec<u8>,
    /// Best energy found.
    pub best_energy: f64,
    /// Per-round progress.
    pub rounds: Vec<Round>,
    /// Total programmed anneal time spent (µs, across all reads and rounds).
    pub total_anneal_us: f64,
}

/// Repeated reverse annealing: each round re-anneals from the best state
/// found so far ("iterated reverse annealing"). Stops early when a round
/// fails to improve, or after `max_rounds`.
///
/// # Panics
/// Panics when `max_rounds == 0` or the seed state length mismatches.
pub fn iterated_reverse_annealing(
    sampler: &QuantumSampler,
    qubo: &Qubo,
    s_p: f64,
    seed_state: &[u8],
    max_rounds: usize,
    seed: u64,
) -> IterativeResult {
    assert!(
        max_rounds > 0,
        "iterated_reverse_annealing: max_rounds must be > 0"
    );
    assert_eq!(
        seed_state.len(),
        qubo.num_vars(),
        "iterated_reverse_annealing: seed length mismatch"
    );
    let schedule = Protocol::paper_ra(s_p)
        .schedule()
        .expect("valid RA parameters");

    let mut best_bits = seed_state.to_vec();
    let mut best_energy = qubo.energy(&best_bits);
    let mut rounds = Vec::new();
    let mut total_anneal_us = 0.0;

    for round in 0..max_rounds {
        let result = sampler.sample_qubo(
            qubo,
            &schedule,
            Some(&best_bits),
            seed.wrapping_add(round as u64 * 0x9E37),
        );
        total_anneal_us += result.timing.anneal_us_per_read * result.timing.num_reads as f64;
        let improved = match result.samples.best() {
            Some(s) if s.energy < best_energy - GROUND_TOL => {
                best_energy = s.energy;
                best_bits = s.bits.clone();
                true
            }
            _ => false,
        };
        rounds.push(Round {
            round,
            best_energy,
            free_vars: qubo.num_vars(),
        });
        if !improved && round > 0 {
            break; // converged
        }
    }

    IterativeResult {
        best_bits,
        best_energy,
        rounds,
        total_anneal_us,
    }
}

/// Fraction of the best samples that must agree on a variable before the
/// prefixing strategy freezes it.
pub const PERSISTENCE_CONSENSUS: f64 = 0.9;

/// Sample-persistence prefixing (Karimi & Rosenberg \[28\]): anneal, freeze
/// the variables on which the elite samples agree, re-anneal the reduced
/// problem seeded with the best state's free part, and repeat.
///
/// `elite_fraction` selects which lowest-energy reads vote (e.g. 0.2 = the
/// best 20%). Freezing substitutes values into the QUBO exactly (folding
/// couplings into neighbor diagonals), so energies remain comparable.
///
/// # Panics
/// Panics on an empty elite fraction, zero rounds, or mismatched seed.
pub fn sample_persistence_solve(
    sampler: &QuantumSampler,
    qubo: &Qubo,
    s_p: f64,
    seed_state: &[u8],
    elite_fraction: f64,
    max_rounds: usize,
    seed: u64,
) -> IterativeResult {
    assert!(
        elite_fraction > 0.0 && elite_fraction <= 1.0,
        "sample_persistence_solve: elite fraction out of (0, 1]"
    );
    assert!(
        max_rounds > 0,
        "sample_persistence_solve: max_rounds must be > 0"
    );
    let n = qubo.num_vars();
    assert_eq!(seed_state.len(), n, "sample_persistence_solve: seed length");

    let schedule = Protocol::paper_ra(s_p)
        .schedule()
        .expect("valid RA parameters");

    // `fixed[i]` = Some(bit) once variable i is frozen.
    let mut fixed: Vec<Option<u8>> = vec![None; n];
    let mut best_bits = seed_state.to_vec();
    let mut best_energy = qubo.energy(&best_bits);
    let mut rounds = Vec::new();
    let mut total_anneal_us = 0.0;
    let mut rng = Rng64::new(seed);

    for round in 0..max_rounds {
        // Build the reduced problem over the free variables.
        let free: Vec<usize> = (0..n).filter(|&i| fixed[i].is_none()).collect();
        if free.is_empty() {
            break;
        }
        let mut reduced = Qubo::new(free.len());
        for (ri, &oi) in free.iter().enumerate() {
            let mut diag = qubo.diagonal(oi);
            for (j, f) in fixed.iter().enumerate() {
                if let Some(1) = f {
                    if j != oi {
                        diag += qubo.get(oi, j);
                    }
                }
            }
            reduced.set(ri, ri, diag);
            for (rj, &oj) in free.iter().enumerate().skip(ri + 1) {
                let c = qubo.get(oi, oj);
                if c != 0.0 {
                    reduced.set(ri, rj, c);
                }
            }
        }

        // Anneal the reduced problem from the best state's free part.
        let init: Vec<u8> = free.iter().map(|&i| best_bits[i]).collect();
        let result = sampler.sample_qubo(&reduced, &schedule, Some(&init), rng.next_u64());
        total_anneal_us += result.timing.anneal_us_per_read * result.timing.num_reads as f64;

        // Expand samples back to full states and track the best.
        let template = best_bits.clone();
        for s in result.samples.iter() {
            let mut full = template.clone();
            for (ri, &oi) in free.iter().enumerate() {
                full[oi] = s.bits[ri];
            }
            let e = qubo.energy(&full);
            if e < best_energy - GROUND_TOL {
                best_energy = e;
                best_bits = full;
            }
        }

        // Vote: freeze free variables on which the elite samples agree.
        let elites = elite_samples(&result.samples, elite_fraction);
        if !elites.is_empty() {
            for (ri, &oi) in free.iter().enumerate() {
                let ones: u64 = elites
                    .iter()
                    .map(|(bits, occ)| if bits[ri] == 1 { *occ } else { 0 })
                    .sum();
                let total: u64 = elites.iter().map(|(_, occ)| *occ).sum();
                let frac = ones as f64 / total as f64;
                if frac >= PERSISTENCE_CONSENSUS {
                    fixed[oi] = Some(1);
                } else if frac <= 1.0 - PERSISTENCE_CONSENSUS {
                    fixed[oi] = Some(0);
                }
            }
            // Keep the frozen variables consistent with the incumbent best:
            // persistence must never freeze against the best-known state, or
            // later rounds can't reach it.
            for (i, f) in fixed.iter_mut().enumerate() {
                if let Some(b) = f {
                    if *b != best_bits[i] {
                        *f = None;
                    }
                }
            }
        }

        rounds.push(Round {
            round,
            best_energy,
            free_vars: fixed.iter().filter(|f| f.is_none()).count(),
        });
    }

    IterativeResult {
        best_bits,
        best_energy,
        rounds,
        total_anneal_us,
    }
}

/// The elite (lowest-energy) slice of a sample set as `(bits, occurrences)`.
fn elite_samples(samples: &SampleSet, fraction: f64) -> Vec<(Vec<u8>, u64)> {
    let budget = ((samples.total_reads() as f64 * fraction).ceil() as u64).max(1);
    let mut taken = 0u64;
    let mut out = Vec::new();
    for s in samples.iter() {
        if taken >= budget {
            break;
        }
        let take = s.occurrences.min(budget - taken);
        out.push((s.bits.clone(), take));
        taken += take;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use hqw_anneal::sampler::{EngineKind, SamplerConfig};
    use hqw_anneal::DWaveProfile;
    use hqw_phy::instance::{DetectionInstance, InstanceConfig};
    use hqw_phy::modulation::Modulation;

    fn sampler(reads: usize) -> QuantumSampler {
        QuantumSampler::new(
            DWaveProfile::calibrated(),
            SamplerConfig {
                num_reads: reads,
                engine: EngineKind::Pimc { trotter_slices: 8 },
                ..Default::default()
            },
        )
    }

    fn instance() -> DetectionInstance {
        let mut rng = Rng64::new(12);
        DetectionInstance::generate(&InstanceConfig::paper(4, Modulation::Qam16), &mut rng)
    }

    #[test]
    fn iterated_ra_never_regresses() {
        let inst = instance();
        let (gs_bits, gs_e) = hqw_qubo::greedy_search(&inst.reduction.qubo, Default::default());
        let result =
            iterated_reverse_annealing(&sampler(15), &inst.reduction.qubo, 0.69, &gs_bits, 4, 7);
        assert!(result.best_energy <= gs_e + 1e-9);
        // Rounds are monotone non-increasing in best energy.
        for w in result.rounds.windows(2) {
            assert!(w[1].best_energy <= w[0].best_energy + 1e-9);
        }
        assert!((inst.reduction.qubo.energy(&result.best_bits) - result.best_energy).abs() < 1e-9);
        assert!(result.total_anneal_us > 0.0);
    }

    #[test]
    fn iterated_ra_from_ground_stays_at_ground() {
        let inst = instance();
        let result = iterated_reverse_annealing(
            &sampler(10),
            &inst.reduction.qubo,
            0.85,
            &inst.tx_natural_bits,
            3,
            9,
        );
        assert!((result.best_energy - inst.ground_energy()).abs() < 1e-6);
    }

    #[test]
    fn persistence_never_regresses_and_shrinks_the_problem() {
        let inst = instance();
        let (gs_bits, gs_e) = hqw_qubo::greedy_search(&inst.reduction.qubo, Default::default());
        let result = sample_persistence_solve(
            &sampler(20),
            &inst.reduction.qubo,
            0.69,
            &gs_bits,
            0.25,
            3,
            5,
        );
        assert!(result.best_energy <= gs_e + 1e-9);
        assert!((inst.reduction.qubo.energy(&result.best_bits) - result.best_energy).abs() < 1e-9);
        // Free-variable counts never grow.
        for w in result.rounds.windows(2) {
            assert!(w[1].free_vars <= w[0].free_vars);
        }
    }

    #[test]
    fn elite_selection_respects_the_budget() {
        let set = SampleSet::from_reads(vec![
            (vec![0], -3.0),
            (vec![0], -3.0),
            (vec![0], -3.0),
            (vec![1], -1.0),
            (vec![1], -1.0),
            (vec![1], -1.0),
        ]);
        let elites = elite_samples(&set, 0.5);
        let total: u64 = elites.iter().map(|(_, occ)| occ).sum();
        assert_eq!(total, 3); // ceil(6 · 0.5)
                              // Lowest energies first.
        assert_eq!(elites[0].0, vec![0]);
    }

    #[test]
    #[should_panic(expected = "max_rounds must be > 0")]
    fn zero_rounds_rejected() {
        let inst = instance();
        iterated_reverse_annealing(
            &sampler(2),
            &inst.reduction.qubo,
            0.7,
            &inst.tx_natural_bits,
            0,
            1,
        );
    }
}
