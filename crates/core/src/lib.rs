//! # hqw-core — hybrid classical-quantum computation structures
//!
//! The paper's contribution: a framework for composing classical and quantum
//! processing stages for wireless-network optimization problems, its
//! GS+Reverse-Annealing prototype, the metrics it evaluates with, and the
//! pipelined computation structure it envisions.
//!
//! * [`protocol`] — FA / RA / FR protocol definitions (§4.1, Figure 5).
//! * [`stages`] — classical initializers: the paper's Greedy Search plus the
//!   §5 application-specific solvers (ZF, K-best, FCSD), random and oracle
//!   controls.
//! * [`solver`] — [`solver::HybridSolver`]: classical stage → quantum stage →
//!   best-sample selection (Figure 1).
//! * [`metrics`] — ΔE%, success probability `p★`, TTS (Eq. 2).
//! * [`harvest`] — initial-state harvesting by ΔE_IS% (Figures 7–8
//!   methodology).
//! * [`sweep`] — `s_p`/`c_p` parameter sweeps with median-best selection
//!   (Challenge 2).
//! * [`pipeline`] / [`event_sim`] — the Figure-2 pipelined computation
//!   structure: a real threaded pipeline and a discrete-event latency
//!   analyzer (Challenge 3).
//! * [`iterative`] — the richer hybrid couplings of §2's survey: iterated
//!   reverse annealing and sample-persistence variable prefixing.
//! * [`scenario`] — the batched BER-vs-SNR scenario engine: any
//!   [`hqw_phy::detect::Detector`] (classical, SA-QUBO, or the hybrid solver
//!   via [`scenario::HybridDetector`]) swept over a deterministic
//!   (SNR × realization) grid into a JSON link-metric report.
//! * [`stream`] — the streaming frame engine: Gauss–Markov
//!   temporally-correlated channels ([`hqw_phy::channel::ChannelTrack`]),
//!   deadline-aware classical/hybrid dispatch on a virtual clock, and
//!   warm-started solvers measuring warm-vs-cold sweeps-to-solution.
//! * [`fabric`] — the quantum compute fabric: many cells sharing a
//!   heterogeneous pool of solver backends (SA pool, PIMC, SVMC, mock QPU
//!   behind a network with cached embeddings) through the batching,
//!   deadline-aware [`fabric::FabricScheduler`].
//! * [`sched`] — the adaptive scheduling plane: deterministic learned
//!   service predictors (EWMA and UCB-bandit over fixed-point correction
//!   ratios), wireless priority classes (URLLC/eMBB/Bulk) with class-aware
//!   deadlines, and the [`sched::SchedOptions`] knobs the fabric
//!   scheduler consumes.
//! * [`sched_grid`] — the paired static-vs-adaptive scheduling experiment:
//!   every grid point run under a calibrated and a deliberately
//!   mispredicted planner cost model, both arms over identical frames, with
//!   merged-histogram per-class summaries (`BENCH_sched.json`).
//! * [`fabric_rt`] — the fabric's wall-clock realtime twin: concurrent
//!   frame producers, sharded MPMC delivery queues, per-backend worker
//!   pools, and a charge-only control plane whose routing decisions replay
//!   bit-exactly through the [`fabric`] virtual-time sim.
//! * [`experiments`] — canned runners for every figure in the evaluation.
//! * [`spec`] — the unified experiment-spec layer: declarative, versioned
//!   [`spec::ExperimentSpec`] descriptions of every experiment, an
//!   offline-safe JSON codec for them, and the shared [`spec::SpecError`]
//!   validation error.
//! * [`report`] — the unified [`report::Report`] trait (JSON/CSV/table in
//!   one place) plus table/CSV rendering for the bench binaries, and the
//!   [`report::MergeableReport`] per-point decomposition every grid report
//!   implements.
//! * [`shard`] — the distributed experiment plane: deterministic grid
//!   sharding, byte-stable [`shard::merge_shards`] reassembly, and the
//!   streaming [`shard::Checkpoint`] journal long runs resume from.
//! * [`telemetry`] — zero-perturbation observability: per-thread span
//!   recorders, the mergeable [`telemetry::LogHistogram`], the periodic
//!   queue/backend sampler series, and the Chrome trace-event exporter.

#![warn(missing_docs)]

pub mod event_sim;
pub mod experiments;
pub mod fabric;
pub mod fabric_rt;
pub mod harvest;
pub mod iterative;
pub mod metrics;
pub mod pipeline;
pub mod protocol;
pub mod report;
pub mod scenario;
pub mod sched;
pub mod sched_grid;
pub mod shard;
pub mod solver;
pub mod spec;
pub mod stages;
pub mod stream;
pub mod sweep;
pub mod telemetry;

pub use fabric::{
    run_fabric, run_fabric_grid, run_fabric_grid_observed, run_fabric_points,
    run_fabric_points_observed, run_fabric_traced, ArrivalProcess, BackendMix, BackendSpec,
    FabricConfig, FabricGridConfig, FabricGridReport, FabricMode, FabricReport, FabricScheduler,
    NetworkModel, RealtimeConfig, RouteTrace, SolverBackend,
};
pub use fabric_rt::{
    diff_traces, replay_trace_doc, run_fabric_rt_grid, run_fabric_rt_grid_observed,
    FabricRtGridReport, FabricRtReport, ReplayReport,
};
pub use protocol::Protocol;
pub use report::{MergeableReport, PointRecord, Report};
pub use scenario::{
    run_ber_points, run_ber_sweep, BerReport, HybridDetector, ScenarioDetector, SnrSweepConfig,
};
pub use sched::{
    ClassMix, ClassReport, EwmaPredictor, PriorityClass, SchedOptions, SchedPolicy,
    ServicePredictor, StaticPredictor, UcbPredictor,
};
pub use sched_grid::{
    run_sched_grid, run_sched_points, ArmSummary, ClassSummary, SchedGridConfig, SchedGridReport,
    SchedPointReport, SCHED_WORKLOADS,
};
pub use shard::{
    grid_len, merge_shards, shard_ids, spec_fingerprint, Checkpoint, GridReport, ShardReport,
    SHARD_SCHEMA_VERSION,
};
pub use solver::{HybridConfig, HybridResult, HybridSolver};
pub use spec::{CannedKind, CannedSpec, ExperimentSpec, SpecError, SPEC_VERSION};
pub use stages::{ClassicalInitializer, GreedyInitializer, InitialState};
pub use stream::{
    run_stream, run_stream_grid, run_stream_grid_observed, run_stream_points,
    run_stream_points_observed, CostModel, DispatchPolicy, StreamConfig, StreamGridConfig,
    StreamGridReport, StreamReport,
};
pub use telemetry::{Collector, CounterSample, LogHistogram, TelemetrySummary, TraceEvent};
