//! The hybrid classical-quantum solver — the paper's prototype (§4.1).
//!
//! ```text
//!   classical initializer ──candidate──▶ reverse annealer ──samples──▶ best
//! ```
//!
//! The final answer is "the best sample (e.g. the one with the lowest QUBO
//! cost function)" across the quantum samples *and* the classical candidate
//! itself (the refinement stage can only help, never hurt). Forward-only
//! protocols skip the initializer and run fully quantum, so the same type
//! drives every arm of the paper's comparison.

use crate::metrics::{delta_e_percent, success_probability, time_to_solution};
use crate::protocol::Protocol;
use crate::stages::{ClassicalInitializer, InitialState};
use hqw_anneal::sampler::{QpuTiming, QuantumSampler};
use hqw_math::Rng64;
use hqw_phy::instance::DetectionInstance;
use hqw_qubo::SampleSet;

/// Hybrid solver configuration.
pub struct HybridConfig {
    /// The annealing protocol for the quantum stage.
    pub protocol: Protocol,
    /// The classical stage (ignored by forward-only protocols).
    pub initializer: Box<dyn ClassicalInitializer>,
}

impl std::fmt::Debug for HybridConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "HybridConfig({} + {})",
            self.initializer.name(),
            self.protocol.name()
        )
    }
}

/// Output of one hybrid solve.
#[derive(Debug, Clone)]
pub struct HybridResult {
    /// Best bits found (natural/QUBO labeling).
    pub best_bits: Vec<u8>,
    /// Best QUBO energy found.
    pub best_energy: f64,
    /// The classical candidate, when the protocol used one.
    pub initial: Option<InitialState>,
    /// All quantum samples.
    pub samples: SampleSet,
    /// QPU time accounting for the quantum stage.
    pub quantum_timing: QpuTiming,
    /// Classical stage latency (µs; 0 without an initializer).
    pub classical_us: f64,
}

impl HybridResult {
    /// ΔE% of the final answer against a known ground energy.
    pub fn delta_e_percent(&self, ground_energy: f64) -> f64 {
        delta_e_percent(self.best_energy, ground_energy)
    }

    /// ΔE_IS% of the classical candidate (`None` for forward protocols).
    pub fn initial_delta_e_percent(&self, ground_energy: f64) -> Option<f64> {
        self.initial
            .as_ref()
            .map(|i| delta_e_percent(i.energy, ground_energy))
    }

    /// Per-read ground-state probability of the quantum samples.
    pub fn success_probability(&self, ground_energy: f64) -> f64 {
        success_probability(&self.samples, ground_energy)
    }

    /// TTS of the quantum stage at the given confidence (paper Eq. 2).
    pub fn time_to_solution(&self, ground_energy: f64, confidence_pct: f64) -> f64 {
        time_to_solution(
            self.quantum_timing.anneal_us_per_read,
            self.success_probability(ground_energy),
            confidence_pct,
        )
    }
}

/// The hybrid classical-quantum solver.
pub struct HybridSolver {
    /// The simulated QPU.
    pub sampler: QuantumSampler,
    /// Stage configuration.
    pub config: HybridConfig,
}

impl std::fmt::Debug for HybridSolver {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "HybridSolver({:?})", self.config)
    }
}

impl HybridSolver {
    /// Creates a solver.
    pub fn new(sampler: QuantumSampler, config: HybridConfig) -> Self {
        HybridSolver { sampler, config }
    }

    /// The paper's prototype: Greedy Search + Reverse Annealing at `s_p`,
    /// on the given sampler.
    pub fn paper_prototype(sampler: QuantumSampler, s_p: f64) -> Self {
        HybridSolver::new(
            sampler,
            HybridConfig {
                protocol: Protocol::paper_ra(s_p),
                initializer: Box::new(crate::stages::GreedyInitializer::default()),
            },
        )
    }

    /// Solves one detection instance.
    ///
    /// # Panics
    /// Panics when the protocol parameters are invalid.
    pub fn solve(&self, instance: &DetectionInstance, seed: u64) -> HybridResult {
        self.solve_warm(instance, seed, None)
    }

    /// Solves one detection instance with an optional **warm start**.
    ///
    /// When `warm_start` is given and the protocol takes an initial state,
    /// the warm bits replace the classical initializer's candidate (at zero
    /// classical latency — the bits are a previous frame's decision, already
    /// paid for). This is the streaming engine's cross-frame reuse: under a
    /// temporally-coherent channel the previous decision is a low-ΔE_IS
    /// initial state, exactly the regime the harvest studies sample offline.
    /// Forward-only protocols ignore the warm start. `solve_warm(i, s, None)`
    /// is exactly `solve(i, s)`.
    ///
    /// # Panics
    /// Panics when the protocol parameters are invalid or the warm-start
    /// length mismatches the instance.
    pub fn solve_warm(
        &self,
        instance: &DetectionInstance,
        seed: u64,
        warm_start: Option<&[u8]>,
    ) -> HybridResult {
        let mut rng = Rng64::new(seed);
        let schedule = self
            .config
            .protocol
            .schedule()
            .expect("invalid protocol parameters");

        let (initial, classical_us) = if self.config.protocol.requires_initial_state() {
            let init = match warm_start {
                Some(bits) => {
                    assert_eq!(
                        bits.len(),
                        instance.num_vars(),
                        "solve_warm: warm-start length mismatch"
                    );
                    InitialState {
                        bits: bits.to_vec(),
                        energy: instance.reduction.qubo.energy(bits),
                        latency_us: 0.0,
                    }
                }
                None => self.config.initializer.initialize(instance, &mut rng),
            };
            let latency = init.latency_us;
            (Some(init), latency)
        } else {
            (None, 0.0)
        };

        let result = self.sampler.sample_qubo(
            &instance.reduction.qubo,
            &schedule,
            initial.as_ref().map(|i| i.bits.as_slice()),
            rng.next_u64(),
        );

        // Final selection: best quantum sample, or the classical candidate
        // when it is still the lowest-energy state seen.
        let (best_bits, best_energy) = match (result.samples.best(), &initial) {
            (Some(sample), Some(init)) if init.energy < sample.energy => {
                (init.bits.clone(), init.energy)
            }
            (Some(sample), _) => (sample.bits.clone(), sample.energy),
            (None, Some(init)) => (init.bits.clone(), init.energy),
            (None, None) => unreachable!("sampler always returns ≥ 1 read"),
        };

        HybridResult {
            best_bits,
            best_energy,
            initial,
            samples: result.samples,
            quantum_timing: result.timing,
            classical_us,
        }
    }

    /// Solves a batch of instances, fanning the instances out across
    /// `threads` worker threads (0 = all available cores).
    ///
    /// Each instance gets a seed derived from `batch_seed` and its index —
    /// the same derivation [`crate::pipeline::run_sequential`] uses — so the
    /// output is bit-identical to solving the batch serially, for any thread
    /// count. This is the data-parallel outer loop for figure sweeps and
    /// high-traffic serving, layered on top of the sampler's own parallel
    /// reads (keep `sampler.config.threads = 1` when batching many
    /// instances, or the two levels will oversubscribe cores).
    pub fn solve_batch(
        &self,
        instances: &[DetectionInstance],
        batch_seed: u64,
        threads: usize,
    ) -> Vec<HybridResult> {
        hqw_math::parallel::parallel_map_indexed(instances, threads, |i, inst| {
            self.solve(inst, crate::pipeline::item_seed(batch_seed, i))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stages::{GreedyInitializer, OracleInitializer, RandomInitializer};
    use hqw_anneal::sampler::{EngineKind, SamplerConfig};
    use hqw_anneal::DWaveProfile;
    use hqw_phy::instance::InstanceConfig;
    use hqw_phy::modulation::Modulation;

    fn quick_sampler(reads: usize) -> QuantumSampler {
        QuantumSampler::new(
            DWaveProfile::calibrated(),
            SamplerConfig {
                num_reads: reads,
                engine: EngineKind::Pimc { trotter_slices: 8 },
                ..Default::default()
            },
        )
    }

    fn instance() -> DetectionInstance {
        let mut rng = Rng64::new(99);
        DetectionInstance::generate(&InstanceConfig::paper(3, Modulation::Qam16), &mut rng)
    }

    #[test]
    fn prototype_never_returns_worse_than_its_initializer() {
        let inst = instance();
        let solver = HybridSolver::paper_prototype(quick_sampler(20), 0.65);
        let result = solver.solve(&inst, 5);
        let init = result.initial.as_ref().expect("RA uses an initializer");
        assert!(result.best_energy <= init.energy + 1e-9);
        assert!((inst.reduction.qubo.energy(&result.best_bits) - result.best_energy).abs() < 1e-9);
    }

    #[test]
    fn oracle_seeded_ra_returns_the_ground_state() {
        let inst = instance();
        let solver = HybridSolver::new(
            quick_sampler(10),
            HybridConfig {
                protocol: Protocol::paper_ra(0.8),
                initializer: Box::new(OracleInitializer),
            },
        );
        let result = solver.solve(&inst, 3);
        assert!((result.best_energy - inst.ground_energy()).abs() < 1e-6);
        assert_eq!(result.delta_e_percent(inst.ground_energy()), 0.0);
    }

    #[test]
    fn forward_protocol_skips_the_initializer() {
        let inst = instance();
        let solver = HybridSolver::new(
            quick_sampler(10),
            HybridConfig {
                protocol: Protocol::paper_fa(0.45),
                initializer: Box::new(GreedyInitializer::default()),
            },
        );
        let result = solver.solve(&inst, 3);
        assert!(result.initial.is_none());
        assert_eq!(result.classical_us, 0.0);
    }

    #[test]
    fn result_metrics_are_consistent() {
        let inst = instance();
        let solver = HybridSolver::new(
            quick_sampler(25),
            HybridConfig {
                protocol: Protocol::paper_ra(0.7),
                initializer: Box::new(RandomInitializer),
            },
        );
        let result = solver.solve(&inst, 11);
        let eg = inst.ground_energy();
        let p = result.success_probability(eg);
        assert!((0.0..=1.0).contains(&p));
        let tts = result.time_to_solution(eg, 99.0);
        if p > 0.0 {
            assert!(tts >= result.quantum_timing.anneal_us_per_read);
        } else {
            assert!(tts.is_infinite());
        }
        assert!(result.initial_delta_e_percent(eg).is_some());
    }

    #[test]
    fn deterministic_per_seed() {
        let inst = instance();
        let solver = HybridSolver::paper_prototype(quick_sampler(10), 0.7);
        let a = solver.solve(&inst, 42);
        let b = solver.solve(&inst, 42);
        assert_eq!(a.best_bits, b.best_bits);
        assert_eq!(a.best_energy, b.best_energy);
    }

    #[test]
    fn solve_warm_none_is_exactly_solve() {
        let inst = instance();
        let solver = HybridSolver::paper_prototype(quick_sampler(10), 0.7);
        let a = solver.solve(&inst, 23);
        let b = solver.solve_warm(&inst, 23, None);
        assert_eq!(a.best_bits, b.best_bits);
        assert_eq!(a.best_energy.to_bits(), b.best_energy.to_bits());
    }

    #[test]
    fn ground_truth_warm_start_is_never_lost() {
        // Seeding RA with the exact ground state must return it: the final
        // selection includes the initial state itself.
        let inst = instance();
        let solver = HybridSolver::paper_prototype(quick_sampler(8), 0.8);
        let result = solver.solve_warm(&inst, 9, Some(&inst.tx_natural_bits));
        assert!((result.best_energy - inst.ground_energy()).abs() < 1e-6);
        let init = result.initial.as_ref().expect("RA records its seed");
        assert_eq!(init.bits, inst.tx_natural_bits);
        assert_eq!(init.latency_us, 0.0, "warm starts are already paid for");
    }

    #[test]
    fn forward_protocols_ignore_warm_starts() {
        let inst = instance();
        let solver = HybridSolver::new(
            quick_sampler(6),
            HybridConfig {
                protocol: Protocol::paper_fa(0.45),
                initializer: Box::new(GreedyInitializer::default()),
            },
        );
        let result = solver.solve_warm(&inst, 3, Some(&inst.tx_natural_bits));
        assert!(result.initial.is_none());
    }

    #[test]
    #[should_panic(expected = "warm-start length mismatch")]
    fn warm_start_length_mismatch_panics() {
        let inst = instance();
        let solver = HybridSolver::paper_prototype(quick_sampler(4), 0.7);
        solver.solve_warm(&inst, 1, Some(&[0, 1, 0]));
    }

    #[test]
    fn solve_batch_is_thread_count_invariant() {
        let mut rng = Rng64::new(120);
        let instances = DetectionInstance::generate_batch(
            &InstanceConfig::paper(3, Modulation::Qpsk),
            5,
            &mut rng,
        );
        let solver = HybridSolver::paper_prototype(quick_sampler(8), 0.7);
        let serial = solver.solve_batch(&instances, 17, 1);
        for threads in [2, 4] {
            let parallel = solver.solve_batch(&instances, 17, threads);
            assert_eq!(serial.len(), parallel.len());
            for (a, b) in serial.iter().zip(&parallel) {
                assert_eq!(a.best_bits, b.best_bits, "threads={threads}");
                assert_eq!(
                    a.best_energy.to_bits(),
                    b.best_energy.to_bits(),
                    "threads={threads}"
                );
            }
        }
    }

    #[test]
    fn solve_batch_matches_sequential_pipeline_reference() {
        let mut rng = Rng64::new(121);
        let instances = DetectionInstance::generate_batch(
            &InstanceConfig::paper(2, Modulation::Qpsk),
            4,
            &mut rng,
        );
        let solver = HybridSolver::paper_prototype(quick_sampler(6), 0.7);
        let batch = solver.solve_batch(&instances, 55, 0);
        let reference = crate::pipeline::run_sequential(&solver, &instances, 55);
        for (a, b) in batch.iter().zip(&reference) {
            assert_eq!(a.best_bits, b.best_bits);
            assert_eq!(a.best_energy.to_bits(), b.best_energy.to_bits());
        }
    }
}
