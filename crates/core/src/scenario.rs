//! Batched BER-vs-SNR scenario engine.
//!
//! The paper's central evaluation judges detectors by end-to-end link
//! metrics: BER-vs-SNR curves comparing the quantum-annealing ML path
//! against classical receivers. This module is the harness that produces
//! those curves for *any* [`Detector`] — the five classical families in
//! `hqw-phy`, the SA-backed [`QuboDetector`](hqw_phy::detect::QuboDetector),
//! and the full annealer-backed [`HybridSolver`] via [`HybridDetector`].
//!
//! ## Determinism contract
//!
//! The sweep fans out over the (SNR point × channel realization) grid with
//! [`hqw_math::parallel::parallel_map_indexed`]; every cell's seed is drawn
//! up front from the scenario seed and the cell index, every detector inside
//! a cell sees the *same* channel/observation (paired comparison), and the
//! accumulation pass runs serially in grid order. The thread count is
//! therefore a pure throughput knob: reports — including their JSON
//! rendering — are **byte-identical** for any value, which CI pins by
//! diffing a 1-thread against an N-thread run.

use crate::report::PointRecord;
use crate::solver::HybridSolver;
use crate::spec::json::Json;
use crate::spec::{check_keys, req, req_f64, req_str, ExperimentSpec, SpecError};
use hqw_math::parallel::parallel_map_indexed;
use hqw_math::{CMatrix, CVector, Rng64};
use hqw_phy::channel::{add_awgn, snr_db_to_noise_variance, ChannelModel};
use hqw_phy::detect::{instance_fingerprint, DetectionResult, Detector, DetectorMeta};
use hqw_phy::instance::DetectionInstance;
use hqw_phy::metrics::{bit_error_rate, symbol_error_rate, vector_error};
use hqw_phy::mimo::MimoSystem;
use hqw_phy::modulation::Modulation;
use hqw_phy::reduction::reduce_to_qubo;
use std::sync::Arc;

/// The annealer-backed hybrid solver wrapped as a [`Detector`].
///
/// Routes `(H, y)` through the ML→Ising reduction into the full
/// [`HybridSolver`] path (classical initializer → simulated QPU → best
/// sample). The per-call solver seed derives from the stored base seed and
/// an [`instance_fingerprint`] of the inputs, so `detect` is a pure function
/// of its arguments (the [`Detector`] determinism contract).
///
/// The wrapped solver must not use ground-truth initializers
/// (`OracleInitializer`): the detector has no access to transmitted bits,
/// and the synthesized instance is marked noisy so ground-truth shortcuts
/// panic instead of silently cheating.
pub struct HybridDetector {
    solver: HybridSolver,
    seed: u64,
}

impl HybridDetector {
    /// Wraps a hybrid solver as a detector with the given base seed.
    pub fn new(solver: HybridSolver, seed: u64) -> Self {
        HybridDetector { solver, seed }
    }
}

impl Detector for HybridDetector {
    fn name(&self) -> &'static str {
        "hybrid"
    }

    fn detect(&self, system: &MimoSystem, h: &CMatrix, y: &CVector) -> DetectionResult {
        let reduction = reduce_to_qubo(system, h, y);
        let n_vars = reduction.qubo.num_vars();
        // The solver API takes a DetectionInstance; synthesize one with
        // placeholder ground truth. `noisy: true` makes any ground-truth
        // access (`ground_energy`) panic rather than read the placeholders.
        let instance = DetectionInstance {
            system: *system,
            h: h.clone(),
            y: y.clone(),
            tx_gray_bits: vec![0; system.bits_per_use()],
            tx_natural_bits: vec![0; n_vars],
            reduction,
            noisy: true,
        };
        let seed = self.seed ^ instance_fingerprint(h, y);
        let result = self.solver.solve(&instance, seed);
        let symbols = instance.reduction.bits_to_symbols(&result.best_bits);
        let gray_bits = instance.reduction.natural_to_gray(&result.best_bits);
        DetectionResult {
            symbols,
            gray_bits,
            meta: DetectorMeta {
                nodes_visited: 0,
                sweeps: result.samples.total_reads(),
            },
        }
    }
}

/// One named arm of a BER sweep: a detector factory parameterized by the
/// operating noise variance (so noise-aware detectors like MMSE stay matched
/// at every SNR point), plus report metadata.
pub struct ScenarioDetector {
    name: String,
    qubo_backed: bool,
    build: Box<dyn Fn(f64) -> Arc<dyn Detector> + Send + Sync>,
}

impl ScenarioDetector {
    /// An arm that uses the same detector at every SNR point.
    pub fn fixed(qubo_backed: bool, detector: impl Detector + 'static) -> Self {
        let name = detector.name().to_string();
        let det: Arc<dyn Detector> = Arc::new(detector);
        ScenarioDetector {
            name,
            qubo_backed,
            build: Box::new(move |_| det.clone()),
        }
    }

    /// An arm whose detector is rebuilt from the per-point noise variance.
    pub fn noise_matched(
        name: &str,
        qubo_backed: bool,
        build: impl Fn(f64) -> Arc<dyn Detector> + Send + Sync + 'static,
    ) -> Self {
        ScenarioDetector {
            name: name.to_string(),
            qubo_backed,
            build: Box::new(build),
        }
    }

    /// Arm name as it appears in reports.
    pub fn name(&self) -> &str {
        &self.name
    }
}

/// Configuration of a BER-vs-SNR sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct SnrSweepConfig {
    /// Number of transmitting users.
    pub n_users: usize,
    /// Number of base-station antennas.
    pub n_rx: usize,
    /// Modulation for all users.
    pub modulation: Modulation,
    /// Channel model.
    pub channel: ChannelModel,
    /// SNR grid in dB (one report point per entry).
    pub snr_db: Vec<f64>,
    /// Independent channel realizations per SNR point.
    pub realizations: usize,
    /// Scenario seed; all cell seeds derive from it.
    pub seed: u64,
    /// Worker threads for the grid fan-out (0 = all available cores).
    /// Results are bit-identical for any value.
    pub threads: usize,
}

impl SnrSweepConfig {
    /// Starts a builder for an `n_users × n_users` sweep (override `n_rx`
    /// on the builder for asymmetric arrays) over the paper's unit-gain
    /// random-phase channel.
    pub fn builder(n_users: usize, modulation: Modulation) -> SnrSweepConfigBuilder {
        SnrSweepConfigBuilder {
            config: SnrSweepConfig {
                n_users,
                n_rx: n_users,
                modulation,
                channel: ChannelModel::UnitGainRandomPhase,
                snr_db: Vec::new(),
                realizations: 1,
                seed: 0,
                threads: 0,
            },
        }
    }

    /// Validates the sweep configuration.
    ///
    /// An empty `snr_db` grid is **legal** (it yields series with no
    /// points), matching [`run_ber_sweep`]'s degenerate-input contract.
    ///
    /// # Errors
    /// Returns the first violated constraint: zero users/antennas, zero
    /// realizations, or non-finite SNR values.
    pub fn validate(&self) -> Result<(), SpecError> {
        let ctx = "SnrSweepConfig";
        if self.n_users == 0 {
            return Err(SpecError::new(ctx, "need at least one user"));
        }
        if self.n_rx == 0 {
            return Err(SpecError::new(ctx, "need at least one receive antenna"));
        }
        if self.realizations == 0 {
            return Err(SpecError::new(ctx, "zero realizations per point"));
        }
        if let Some(bad) = self.snr_db.iter().find(|v| !v.is_finite()) {
            return Err(SpecError::new(ctx, format!("non-finite SNR value {bad}")));
        }
        Ok(())
    }

    /// Shim for callers that still want the original panicking behaviour.
    /// Deprecated in spirit: new code should propagate
    /// [`SnrSweepConfig::validate`] errors instead.
    ///
    /// # Panics
    /// Panics with the [`SnrSweepConfig::validate`] message on any invalid
    /// field.
    pub fn validate_or_panic(&self) {
        if let Err(e) = self.validate() {
            panic!("{e}");
        }
    }
}

/// Builder for [`SnrSweepConfig`] — the validated construction path the
/// spec layer and examples use (`build()` runs
/// [`SnrSweepConfig::validate`]).
#[derive(Debug, Clone)]
pub struct SnrSweepConfigBuilder {
    config: SnrSweepConfig,
}

impl SnrSweepConfigBuilder {
    /// Overrides the receive-antenna count (defaults to `n_users`).
    pub fn n_rx(mut self, n_rx: usize) -> Self {
        self.config.n_rx = n_rx;
        self
    }

    /// Sets the channel model (default: unit-gain random phase).
    pub fn channel(mut self, channel: ChannelModel) -> Self {
        self.config.channel = channel;
        self
    }

    /// Sets the SNR grid in dB.
    pub fn snr_db(mut self, snr_db: Vec<f64>) -> Self {
        self.config.snr_db = snr_db;
        self
    }

    /// Sets the channel realizations per SNR point (default 1).
    pub fn realizations(mut self, realizations: usize) -> Self {
        self.config.realizations = realizations;
        self
    }

    /// Sets the scenario seed (default 0).
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Sets the worker-thread count (default 0 = all cores; results are
    /// bit-identical for any value).
    pub fn threads(mut self, threads: usize) -> Self {
        self.config.threads = threads;
        self
    }

    /// Validates and returns the configuration.
    ///
    /// # Errors
    /// Returns the first [`SnrSweepConfig::validate`] violation.
    pub fn build(self) -> Result<SnrSweepConfig, SpecError> {
        self.config.validate()?;
        Ok(self.config)
    }
}

/// One point of one detector's BER-vs-SNR curve (averages over the point's
/// channel realizations).
#[derive(Debug, Clone, Copy)]
pub struct BerPoint {
    /// Operating SNR (dB).
    pub snr_db: f64,
    /// AWGN per-antenna noise variance at this SNR.
    pub noise_variance: f64,
    /// Bit error rate.
    pub ber: f64,
    /// Symbol error rate.
    pub ser: f64,
    /// Block (whole channel-use vector) error rate.
    pub bler: f64,
    /// Deterministic goodput proxy: correct-block bits per channel use,
    /// `bits_per_use × (1 − bler)`.
    pub goodput_bpcu: f64,
    /// Mean search-tree nodes visited per detection.
    pub avg_nodes_visited: f64,
    /// Mean annealer/SA sweeps per detection.
    pub avg_sweeps: f64,
}

/// One detector's result at one SNR grid point — one arm of a
/// [`BerColumn`].
#[derive(Debug, Clone)]
pub struct BerArmPoint {
    /// Detector name.
    pub detector: String,
    /// Whether this arm routes through the ML→QUBO/Ising reduction.
    pub qubo_backed: bool,
    /// The arm's metrics at this SNR point.
    pub point: BerPoint,
}

/// Every detector's result at one SNR grid point: the unit of BER-sweep
/// sharding (point id = index into `config.snr_db`).
///
/// A column is the report sliced the other way round from
/// [`DetectorSeries`]: per-point across detectors instead of per-detector
/// across points. [`run_ber_points`] produces columns; the full sweep and
/// [`MergeableReport::from_points`](crate::report::MergeableReport)
/// transpose them back into series.
#[derive(Debug, Clone)]
pub struct BerColumn {
    /// Grid-order point id (index into the configured `snr_db` grid).
    pub id: usize,
    /// One entry per roster detector, in roster order.
    pub arms: Vec<BerArmPoint>,
}

impl BerColumn {
    /// Renders the column as a shard/checkpoint point record
    /// (`{"arms": [{"detector": ..., "qubo_backed": ..., "point": {...}}]}`).
    pub fn to_record(&self) -> PointRecord {
        let arms = self
            .arms
            .iter()
            .map(|a| {
                format!(
                    "{{\"detector\": {}, \"qubo_backed\": {}, \"point\": {}}}",
                    Json::Str(a.detector.clone()).to_string_compact(),
                    a.qubo_backed,
                    a.point.to_json_object()
                )
            })
            .collect::<Vec<_>>()
            .join(", ");
        PointRecord {
            id: self.id,
            payload: format!("{{\"arms\": [{arms}]}}"),
        }
    }

    /// Parses a [`BerColumn::to_record`] payload back.
    ///
    /// # Errors
    /// Returns a [`SpecError`] on syntax errors, unknown/missing fields, or
    /// mistyped values.
    pub fn from_record(record: &PointRecord) -> Result<BerColumn, SpecError> {
        let ctx = &format!("ber point {}", record.id);
        let doc =
            Json::parse(&record.payload).map_err(|e| SpecError::new(ctx.clone(), e.to_string()))?;
        check_keys(&doc, &["arms"], ctx)?;
        let arms = req(&doc, "arms", ctx)?
            .as_arr()
            .ok_or_else(|| SpecError::new(ctx.clone(), "field \"arms\" must be an array"))?
            .iter()
            .enumerate()
            .map(|(i, a)| {
                let a_ctx = &format!("{ctx}.arms[{i}]");
                check_keys(a, &["detector", "qubo_backed", "point"], a_ctx)?;
                Ok(BerArmPoint {
                    detector: req_str(a, "detector", a_ctx)?.to_string(),
                    qubo_backed: req(a, "qubo_backed", a_ctx)?.as_bool().ok_or_else(|| {
                        SpecError::new(a_ctx.clone(), "field \"qubo_backed\" must be a boolean")
                    })?,
                    point: BerPoint::from_json(req(a, "point", a_ctx)?, a_ctx)?,
                })
            })
            .collect::<Result<Vec<_>, SpecError>>()?;
        Ok(BerColumn {
            id: record.id,
            arms,
        })
    }
}

/// One detector's full curve.
#[derive(Debug, Clone)]
pub struct DetectorSeries {
    /// Detector name.
    pub detector: String,
    /// Whether this arm routes through the ML→QUBO/Ising reduction.
    pub qubo_backed: bool,
    /// One point per configured SNR value, in grid order.
    pub points: Vec<BerPoint>,
}

/// A full scenario report: the config echo plus every detector's curve.
#[derive(Debug, Clone)]
pub struct BerReport {
    /// Number of transmitting users.
    pub n_users: usize,
    /// Number of receive antennas.
    pub n_rx: usize,
    /// Modulation.
    pub modulation: Modulation,
    /// Channel model.
    pub channel: ChannelModel,
    /// Realizations per SNR point.
    pub realizations: usize,
    /// Scenario seed.
    pub seed: u64,
    /// Per-detector curves, in roster order.
    pub series: Vec<DetectorSeries>,
}

/// Per-(cell, detector) outcome carried back from the parallel fan-out.
struct CellOutcome {
    ber: f64,
    ser: f64,
    block_err: f64,
    nodes_visited: u64,
    sweeps: u64,
}

/// Runs a batched BER-vs-SNR sweep.
///
/// Fans the (SNR × realization) grid out across `config.threads` workers;
/// within each cell every detector sees the same channel, transmitted bits
/// and noise (paired comparison). See the module docs for the determinism
/// contract.
///
/// Degenerate inputs stay well-formed rather than panicking: an empty
/// roster yields a report with no series, and an empty SNR grid yields
/// series with no points (both render as valid JSON).
///
/// # Panics
/// Panics on an invalid configuration — most notably zero realizations per
/// point (the averages would be `0/0`). See [`SnrSweepConfig::validate`]
/// for the non-panicking check.
pub fn run_ber_sweep(config: &SnrSweepConfig, detectors: &[ScenarioDetector]) -> BerReport {
    config.validate_or_panic();
    let ids: Vec<usize> = (0..config.snr_db.len()).collect();
    let columns = run_ber_points(config, detectors, &ids);
    let series = detectors
        .iter()
        .enumerate()
        .map(|(det_idx, arm)| DetectorSeries {
            detector: arm.name.clone(),
            qubo_backed: arm.qubo_backed,
            points: columns.iter().map(|c| c.arms[det_idx].point).collect(),
        })
        .collect();
    BerReport {
        n_users: config.n_users,
        n_rx: config.n_rx,
        modulation: config.modulation,
        channel: config.channel,
        realizations: config.realizations,
        seed: config.seed,
        series,
    }
}

/// Runs an arbitrary subset of a BER sweep's SNR grid — the sharded form of
/// [`run_ber_sweep`].
///
/// `ids` are indices into `config.snr_db` (strictly increasing). Every
/// cell's seed is derived from its position in the **full** grid, and the
/// per-point accumulation runs over the same realization order as the full
/// sweep, so a point's column is byte-identical whether it is computed
/// alone or as part of the complete sweep. `run_ber_sweep` itself is the
/// `ids = 0..snr_db.len()` case.
///
/// # Panics
/// Panics on an invalid configuration or on ids that are out of range or
/// not strictly increasing.
pub fn run_ber_points(
    config: &SnrSweepConfig,
    detectors: &[ScenarioDetector],
    ids: &[usize],
) -> Vec<BerColumn> {
    config.validate_or_panic();
    for w in ids.windows(2) {
        assert!(
            w[0] < w[1],
            "run_ber_points: ids must be strictly increasing"
        );
    }
    if let Some(&last) = ids.last() {
        assert!(
            last < config.snr_db.len(),
            "run_ber_points: id {last} out of range (grid has {} points)",
            config.snr_db.len()
        );
    }

    // Per-cell seeds drawn up front, indexed by the cell's position in the
    // FULL grid — the same derivation the batch solver uses, so a point's
    // randomness depends on neither thread placement nor which subset of
    // the grid is running.
    struct Cell {
        pos: usize,
        snr_idx: usize,
        seed: u64,
    }
    let mut cells = Vec::with_capacity(ids.len() * config.realizations);
    for (pos, &snr_idx) in ids.iter().enumerate() {
        for r in 0..config.realizations {
            let seed = crate::pipeline::item_seed(config.seed, snr_idx * config.realizations + r);
            cells.push(Cell { pos, snr_idx, seed });
        }
    }

    let bits_per_symbol = config.modulation.bits_per_symbol();
    let per_cell: Vec<Vec<CellOutcome>> =
        parallel_map_indexed(&cells, config.threads, |_, cell| {
            let noise_variance =
                snr_db_to_noise_variance(config.snr_db[cell.snr_idx], config.n_users);
            let mut rng = Rng64::new(cell.seed);
            let system = MimoSystem::new(config.n_users, config.n_rx, config.modulation);
            let h = config
                .channel
                .generate(config.n_rx, config.n_users, &mut rng);
            let tx_bits = system.random_bits(&mut rng);
            let x = system.modulate(&tx_bits);
            let mut y = system.transmit(&h, &x);
            add_awgn(&mut y, noise_variance, &mut rng);

            detectors
                .iter()
                .map(|arm| {
                    let detector = (arm.build)(noise_variance);
                    let result = detector.detect(&system, &h, &y);
                    CellOutcome {
                        ber: bit_error_rate(&tx_bits, &result.gray_bits),
                        ser: symbol_error_rate(&tx_bits, &result.gray_bits, bits_per_symbol),
                        block_err: vector_error(&tx_bits, &result.gray_bits),
                        nodes_visited: result.meta.nodes_visited,
                        sweeps: result.meta.sweeps,
                    }
                })
                .collect()
        });

    // Serial reduction in grid order: deterministic float accumulation.
    #[derive(Clone, Copy, Default)]
    struct Acc {
        ber: f64,
        ser: f64,
        block_err: f64,
        nodes: f64,
        sweeps: f64,
    }
    let mut acc = vec![vec![Acc::default(); ids.len()]; detectors.len()];
    for (cell, outcomes) in cells.iter().zip(&per_cell) {
        for (det_idx, outcome) in outcomes.iter().enumerate() {
            let a = &mut acc[det_idx][cell.pos];
            a.ber += outcome.ber;
            a.ser += outcome.ser;
            a.block_err += outcome.block_err;
            a.nodes += outcome.nodes_visited as f64;
            a.sweeps += outcome.sweeps as f64;
        }
    }

    let bits_per_use = (config.n_users * bits_per_symbol) as f64;
    let n = config.realizations as f64;
    ids.iter()
        .enumerate()
        .map(|(pos, &snr_idx)| {
            let snr_db = config.snr_db[snr_idx];
            BerColumn {
                id: snr_idx,
                arms: detectors
                    .iter()
                    .enumerate()
                    .map(|(det_idx, arm)| {
                        let a = &acc[det_idx][pos];
                        let bler = a.block_err / n;
                        BerArmPoint {
                            detector: arm.name.clone(),
                            qubo_backed: arm.qubo_backed,
                            point: BerPoint {
                                snr_db,
                                noise_variance: snr_db_to_noise_variance(snr_db, config.n_users),
                                ber: a.ber / n,
                                ser: a.ser / n,
                                bler,
                                goodput_bpcu: bits_per_use * (1.0 - bler),
                                avg_nodes_visited: a.nodes / n,
                                avg_sweeps: a.sweeps / n,
                            },
                        }
                    })
                    .collect(),
            }
        })
        .collect()
}

/// Formats a finite float as a JSON number (shared with the stream engine's
/// report writer).
///
/// # Panics
/// Panics on non-finite input (JSON has no representation for it, and the
/// scenario metrics are finite by construction).
pub(crate) fn json_num(v: f64) -> String {
    assert!(v.is_finite(), "json_num: non-finite value {v}");
    format!("{v}")
}

impl BerPoint {
    /// Renders the point as a single-line JSON object — one line of the
    /// report's points arrays and the `point` field of a shard/checkpoint
    /// record.
    pub fn to_json_object(&self) -> String {
        format!(
            "{{\"snr_db\": {}, \"noise_variance\": {}, \"ber\": {}, \
             \"ser\": {}, \"bler\": {}, \"goodput_bpcu\": {}, \
             \"avg_nodes_visited\": {}, \"avg_sweeps\": {}}}",
            json_num(self.snr_db),
            json_num(self.noise_variance),
            json_num(self.ber),
            json_num(self.ser),
            json_num(self.bler),
            json_num(self.goodput_bpcu),
            json_num(self.avg_nodes_visited),
            json_num(self.avg_sweeps),
        )
    }

    /// Parses a [`BerPoint::to_json_object`] document back. Exact: the
    /// float codec round-trips shortest-`Display` renderings losslessly.
    pub(crate) fn from_json(o: &Json, ctx: &str) -> Result<BerPoint, SpecError> {
        check_keys(
            o,
            &[
                "snr_db",
                "noise_variance",
                "ber",
                "ser",
                "bler",
                "goodput_bpcu",
                "avg_nodes_visited",
                "avg_sweeps",
            ],
            ctx,
        )?;
        Ok(BerPoint {
            snr_db: req_f64(o, "snr_db", ctx)?,
            noise_variance: req_f64(o, "noise_variance", ctx)?,
            ber: req_f64(o, "ber", ctx)?,
            ser: req_f64(o, "ser", ctx)?,
            bler: req_f64(o, "bler", ctx)?,
            goodput_bpcu: req_f64(o, "goodput_bpcu", ctx)?,
            avg_nodes_visited: req_f64(o, "avg_nodes_visited", ctx)?,
            avg_sweeps: req_f64(o, "avg_sweeps", ctx)?,
        })
    }
}

impl BerReport {
    /// Renders the report as the `BENCH_ber.json` document (schema in
    /// `crates/bench/README.md`). Pure function of the report contents:
    /// byte-identical across runs and thread counts.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n  \"bench\": \"ber\",\n  \"scenario\": {\n");
        s.push_str(&format!("    \"n_users\": {},\n", self.n_users));
        s.push_str(&format!("    \"n_rx\": {},\n", self.n_rx));
        s.push_str(&format!(
            "    \"modulation\": \"{}\",\n",
            self.modulation.name()
        ));
        s.push_str(&format!("    \"channel\": \"{}\",\n", self.channel.name()));
        s.push_str(&format!("    \"realizations\": {},\n", self.realizations));
        s.push_str(&format!("    \"seed\": {}\n  }},\n", self.seed));
        s.push_str("  \"series\": [\n");
        for (i, series) in self.series.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"detector\": \"{}\", \"qubo_backed\": {}, \"points\": [\n",
                series.detector, series.qubo_backed
            ));
            for (j, p) in series.points.iter().enumerate() {
                s.push_str(&format!(
                    "      {}{}\n",
                    p.to_json_object(),
                    if j + 1 < series.points.len() { "," } else { "" }
                ));
            }
            s.push_str(&format!(
                "    ]}}{}\n",
                if i + 1 < self.series.len() { "," } else { "" }
            ));
        }
        s.push_str("  ]\n}\n");
        s
    }
}

impl crate::report::Report for BerReport {
    fn name(&self) -> &'static str {
        "ber"
    }

    fn schema_version(&self) -> u32 {
        1
    }

    fn to_json(&self) -> String {
        // Delegates to the inherent renderer (the committed-bytes contract
        // lives there).
        BerReport::to_json(self)
    }

    fn table(&self) -> crate::report::Table {
        use crate::report::{fnum, Table};
        let mut table = Table::new(&[
            "detector",
            "snr_db",
            "ber",
            "ser",
            "bler",
            "goodput_bpcu",
            "avg_nodes",
            "avg_sweeps",
        ]);
        for series in &self.series {
            for p in &series.points {
                table.push_row(vec![
                    series.detector.clone(),
                    fnum(p.snr_db, 1),
                    fnum(p.ber, 5),
                    fnum(p.ser, 5),
                    fnum(p.bler, 5),
                    fnum(p.goodput_bpcu, 3),
                    fnum(p.avg_nodes_visited, 1),
                    fnum(p.avg_sweeps, 1),
                ]);
            }
        }
        table
    }
}

impl crate::report::MergeableReport for BerReport {
    fn points(&self) -> Vec<PointRecord> {
        let n_points = self.series.first().map_or(0, |s| s.points.len());
        (0..n_points)
            .map(|id| {
                BerColumn {
                    id,
                    arms: self
                        .series
                        .iter()
                        .map(|s| BerArmPoint {
                            detector: s.detector.clone(),
                            qubo_backed: s.qubo_backed,
                            point: s.points[id],
                        })
                        .collect(),
                }
                .to_record()
            })
            .collect()
    }

    fn from_points(spec: &ExperimentSpec, mut points: Vec<PointRecord>) -> Result<Self, SpecError> {
        let ctx = "BerReport";
        let ExperimentSpec::Ber(config) = spec else {
            return Err(SpecError::new(
                ctx,
                format!("expected a ber spec, got '{}'", spec.family()),
            ));
        };
        crate::report::sort_and_check_point_ids(&mut points, config.snr_db.len(), ctx)?;
        let columns = points
            .iter()
            .map(BerColumn::from_record)
            .collect::<Result<Vec<_>, _>>()?;
        if let Some(first) = columns.first() {
            // Every column must carry the same roster, in the same order —
            // a mismatch means the records came from different runs.
            for c in &columns[1..] {
                let same = c.arms.len() == first.arms.len()
                    && c.arms
                        .iter()
                        .zip(&first.arms)
                        .all(|(a, b)| a.detector == b.detector && a.qubo_backed == b.qubo_backed);
                if !same {
                    return Err(SpecError::new(
                        ctx,
                        format!(
                            "point {} has a different detector roster than point {}",
                            c.id, first.id
                        ),
                    ));
                }
            }
        }
        for c in &columns {
            let want = config.snr_db[c.id];
            if let Some(a) = c
                .arms
                .iter()
                .find(|a| a.point.snr_db.to_bits() != want.to_bits())
            {
                return Err(SpecError::new(
                    ctx,
                    format!(
                        "point {}: snr_db {} does not match the spec grid value {}",
                        c.id, a.point.snr_db, want
                    ),
                ));
            }
        }
        let series = columns.first().map_or_else(Vec::new, |first| {
            first
                .arms
                .iter()
                .enumerate()
                .map(|(ai, arm)| DetectorSeries {
                    detector: arm.detector.clone(),
                    qubo_backed: arm.qubo_backed,
                    points: columns.iter().map(|c| c.arms[ai].point).collect(),
                })
                .collect()
        });
        Ok(BerReport {
            n_users: config.n_users,
            n_rx: config.n_rx,
            modulation: config.modulation,
            channel: config.channel,
            realizations: config.realizations,
            seed: config.seed,
            series,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::Protocol;
    use crate::solver::HybridConfig;
    use crate::stages::GreedyInitializer;
    use hqw_anneal::sampler::{EngineKind, QuantumSampler, SamplerConfig};
    use hqw_anneal::DWaveProfile;
    use hqw_phy::detect::{KBest, Mmse, QuboDetector, SphereDecoder, ZeroForcing};
    use hqw_phy::instance::InstanceConfig;
    use hqw_qubo::sa::SaParams;

    /// A named field mutation for the validate() rejection-path tests.
    type Mutation<T> = (&'static str, Box<dyn Fn(&mut T)>);

    fn quick_qubo_detector() -> QuboDetector {
        QuboDetector::with_params(
            SaParams {
                sweeps: 48,
                num_reads: 12,
                ..Default::default()
            },
            0xDEC0DE,
        )
    }

    fn quick_hybrid() -> HybridDetector {
        let sampler = QuantumSampler::new(
            DWaveProfile::calibrated(),
            SamplerConfig {
                num_reads: 8,
                engine: EngineKind::Pimc { trotter_slices: 8 },
                threads: 1,
                ..Default::default()
            },
        );
        let solver = HybridSolver::new(
            sampler,
            HybridConfig {
                protocol: Protocol::paper_ra(0.65),
                initializer: Box::new(GreedyInitializer::default()),
            },
        );
        HybridDetector::new(solver, 0xA11CE)
    }

    fn roster() -> Vec<ScenarioDetector> {
        vec![
            ScenarioDetector::fixed(false, ZeroForcing),
            ScenarioDetector::noise_matched("MMSE", false, |nv| Arc::new(Mmse::new(nv))),
            ScenarioDetector::fixed(false, SphereDecoder::with_budget(20_000)),
            ScenarioDetector::fixed(false, KBest::new(8)),
            ScenarioDetector::fixed(true, quick_qubo_detector()),
            ScenarioDetector::fixed(true, quick_hybrid()),
        ]
    }

    fn quick_config(threads: usize) -> SnrSweepConfig {
        SnrSweepConfig {
            n_users: 3,
            n_rx: 3,
            modulation: Modulation::Qpsk,
            channel: ChannelModel::UnitGainRandomPhase,
            snr_db: vec![4.0, 16.0, 28.0],
            realizations: 3,
            seed: 7,
            threads,
        }
    }

    #[test]
    fn report_is_bit_identical_for_any_thread_count() {
        let detectors = roster();
        let serial = run_ber_sweep(&quick_config(1), &detectors).to_json();
        for threads in [2, 5, 0] {
            let parallel = run_ber_sweep(&quick_config(threads), &detectors).to_json();
            assert_eq!(serial, parallel, "threads={threads}");
        }
    }

    #[test]
    fn report_covers_every_arm_and_point_with_sane_metrics() {
        let detectors = roster();
        let config = quick_config(0);
        let report = run_ber_sweep(&config, &detectors);
        assert_eq!(report.series.len(), detectors.len());
        assert!(report.series.iter().any(|s| s.qubo_backed));
        let bits_per_use = (config.n_users * config.modulation.bits_per_symbol()) as f64;
        for series in &report.series {
            assert_eq!(series.points.len(), config.snr_db.len());
            for p in &series.points {
                assert!(
                    (0.0..=1.0).contains(&p.ber),
                    "{}: ber {}",
                    series.detector,
                    p.ber
                );
                assert!((0.0..=1.0).contains(&p.ser));
                assert!((0.0..=1.0).contains(&p.bler));
                assert!(p.ber <= p.ser + 1e-12, "BER cannot exceed SER");
                assert!(p.ser <= p.bler + 1e-12, "SER cannot exceed BLER");
                assert!((0.0..=bits_per_use).contains(&p.goodput_bpcu));
            }
        }
    }

    #[test]
    fn ber_improves_with_snr_for_zero_forcing() {
        let detectors = vec![ScenarioDetector::fixed(false, ZeroForcing)];
        let config = SnrSweepConfig {
            snr_db: vec![-2.0, 30.0],
            realizations: 24,
            ..quick_config(0)
        };
        let report = run_ber_sweep(&config, &detectors);
        let points = &report.series[0].points;
        assert!(
            points[1].ber < points[0].ber,
            "ZF BER at 30 dB ({}) should beat −2 dB ({})",
            points[1].ber,
            points[0].ber
        );
        assert!(points[0].ber > 0.05, "low-SNR BER should be substantial");
    }

    #[test]
    fn json_report_round_trips_structure() {
        let detectors = vec![
            ScenarioDetector::fixed(false, ZeroForcing),
            ScenarioDetector::fixed(true, quick_qubo_detector()),
        ];
        let report = run_ber_sweep(&quick_config(1), &detectors);
        let json = report.to_json();
        assert!(json.starts_with("{\n  \"bench\": \"ber\""));
        assert!(json.contains("\"detector\": \"ZF\""));
        assert!(json.contains("\"detector\": \"QUBO-SA\""));
        assert!(json.contains("\"qubo_backed\": true"));
        assert_eq!(json.matches("\"snr_db\"").count(), 2 * 3);
        // Balanced braces/brackets — cheap structural sanity without a
        // JSON parser (CI runs a real parser over the emitted file).
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn hybrid_detector_recovers_noiseless_transmissions() {
        let mut rng = Rng64::new(902);
        let config = InstanceConfig::paper(3, Modulation::Qpsk);
        let inst = DetectionInstance::generate(&config, &mut rng);
        let det = quick_hybrid();
        let result = det.detect(&inst.system, &inst.h, &inst.y);
        assert_eq!(result.gray_bits, inst.tx_gray_bits);
        assert!(result.meta.sweeps > 0, "hybrid must report read metadata");
    }

    #[test]
    fn hybrid_detector_is_a_pure_function_of_its_inputs() {
        let mut rng = Rng64::new(903);
        let config = InstanceConfig::paper(2, Modulation::Qam16);
        let inst = DetectionInstance::generate(&config, &mut rng);
        let det = quick_hybrid();
        let a = det.detect(&inst.system, &inst.h, &inst.y);
        let b = det.detect(&inst.system, &inst.h, &inst.y);
        assert_eq!(a, b);
    }

    #[test]
    fn empty_grid_yields_empty_curves_not_a_panic() {
        let config = SnrSweepConfig {
            snr_db: vec![],
            ..quick_config(1)
        };
        let report = run_ber_sweep(&config, &[ScenarioDetector::fixed(false, ZeroForcing)]);
        assert_eq!(report.series.len(), 1);
        assert!(report.series[0].points.is_empty());
        let json = report.to_json();
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn empty_roster_yields_empty_report_not_a_panic() {
        let report = run_ber_sweep(&quick_config(1), &[]);
        assert!(report.series.is_empty());
        let json = report.to_json();
        assert!(json.contains("\"series\": [\n  ]"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn single_snr_grid_is_well_formed() {
        let config = SnrSweepConfig {
            snr_db: vec![12.0],
            ..quick_config(0)
        };
        let detectors = vec![
            ScenarioDetector::fixed(false, ZeroForcing),
            ScenarioDetector::fixed(true, quick_qubo_detector()),
        ];
        let report = run_ber_sweep(&config, &detectors);
        assert_eq!(report.series.len(), 2);
        for series in &report.series {
            assert_eq!(series.points.len(), 1);
            assert!((0.0..=1.0).contains(&series.points[0].ber));
        }
    }

    #[test]
    #[should_panic(expected = "zero realizations")]
    fn zero_realizations_rejected() {
        let config = SnrSweepConfig {
            realizations: 0,
            ..quick_config(1)
        };
        run_ber_sweep(&config, &[ScenarioDetector::fixed(false, ZeroForcing)]);
    }

    #[test]
    fn validate_rejects_each_bad_field_with_a_message() {
        let cases: [Mutation<SnrSweepConfig>; 4] = [
            ("at least one user", Box::new(|c| c.n_users = 0)),
            ("at least one receive antenna", Box::new(|c| c.n_rx = 0)),
            (
                "zero realizations per point",
                Box::new(|c| c.realizations = 0),
            ),
            ("non-finite SNR", Box::new(|c| c.snr_db = vec![f64::NAN])),
        ];
        for (needle, mutate) in cases {
            let mut config = quick_config(0);
            mutate(&mut config);
            let err = config.validate().expect_err(needle);
            assert!(err.to_string().contains(needle), "{err} missing {needle}");
            assert_eq!(err.context(), "SnrSweepConfig");
        }
        assert_eq!(quick_config(0).validate(), Ok(()));
    }

    #[test]
    fn builder_constructs_validated_configs() {
        let config = SnrSweepConfig::builder(3, Modulation::Qpsk)
            .snr_db(vec![4.0, 16.0])
            .realizations(5)
            .seed(11)
            .threads(2)
            .channel(ChannelModel::RayleighIid)
            .n_rx(4)
            .build()
            .expect("valid builder chain");
        assert_eq!(config.n_users, 3);
        assert_eq!(config.n_rx, 4);
        assert_eq!(config.channel, ChannelModel::RayleighIid);
        assert_eq!(config.realizations, 5);
        assert_eq!(config.seed, 11);
        assert_eq!(config.threads, 2);

        let err = SnrSweepConfig::builder(3, Modulation::Qpsk)
            .realizations(0)
            .build()
            .expect_err("zero realizations must be rejected");
        assert!(err.to_string().contains("zero realizations"));
    }
}
