//! The adaptive scheduling plane: learned service-cost predictors, frame
//! priority classes, and the configuration the fabric scheduler consumes.
//!
//! The fabric's admission control (`fabric::FabricScheduler`) budgets
//! against a static [`CostModel`]. Real backends mispredict it — RTT
//! jitter, batching amortization, embedding-cache state — so ROADMAP item 4
//! calls for routing that *learns*: this module provides the
//! [`ServicePredictor`] trait with an EWMA estimator and a UCB-style bandit
//! estimator that refine per-(backend, problem-shape) service predictions
//! online from observed batch completions.
//!
//! Everything here is deterministic by construction so the virtual↔realtime
//! replay contract survives:
//!
//! * predictor state is **fixed-point** (Q16.16 correction ratios updated
//!   with integer shifts and counts) — no accumulation-order-dependent
//!   float drift;
//! * a correction of exactly [`Q16_ONE`] applies as a no-op (the quoted µs
//!   are returned bit-identically), so a perfectly-calibrated workload
//!   routes byte-identically to the static scheduler;
//! * priority-class assignment is a pure seeded function of
//!   `(seed, cell, frame)` — and draws **no** randomness at all for the
//!   default single-class mix.
//!
//! Priority classes mirror wireless service tiers: [`PriorityClass::Urllc`]
//! (tight deadline, may preempt), [`PriorityClass::Embb`] (the default
//! best-effort tier) and [`PriorityClass::Bulk`] (relaxed deadline,
//! first to be evicted).

use crate::spec::json::Json;
use crate::spec::{check_keys, req, req_f64, req_str, req_usize, SpecError};
use crate::stream::CostModel;
use crate::telemetry::LogHistogram;
use hqw_math::Rng64;

/// Fixed-point one: corrections are Q16.16 ratios of observed over
/// predicted service time, so `65536` means "the static model is exact".
pub const Q16_ONE: i64 = 1 << 16;

/// Lower clamp for learned corrections (ratio 1/64): a backend can never
/// look more than 64× faster than its static quote.
const Q16_MIN: i64 = Q16_ONE / 64;

/// Upper clamp for learned corrections (ratio 64).
const Q16_MAX: i64 = Q16_ONE * 64;

/// Applies a Q16.16 correction ratio to a quoted µs figure.
///
/// A correction of exactly [`Q16_ONE`] is a bitwise no-op — the float is
/// returned untouched, which is what keeps a calibrated adaptive run
/// byte-identical to the static scheduler.
pub fn corrected_us(us: f64, q16: i64) -> f64 {
    if q16 == Q16_ONE {
        us
    } else {
        us * (q16 as f64 / Q16_ONE as f64)
    }
}

fn clamp_q16(v: i64) -> i64 {
    v.clamp(Q16_MIN, Q16_MAX)
}

/// Observed/predicted ratio as a clamped Q16.16 integer.
fn ratio_q16(predicted_us: f64, observed_us: f64) -> i64 {
    // NaN-safe: a NaN prediction fails the `> 0.0` test and falls through
    // to the identity correction.
    if !(predicted_us > 0.0 && observed_us.is_finite()) {
        return Q16_ONE;
    }
    clamp_q16(((observed_us / predicted_us) * Q16_ONE as f64).round() as i64)
}

// ---------------------------------------------------------------------------
// Priority classes
// ---------------------------------------------------------------------------

/// Wireless service tier of a frame, ordered by urgency.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PriorityClass {
    /// Ultra-reliable low-latency: half the nominal deadline, may preempt
    /// queued lower-class jobs.
    Urllc,
    /// Enhanced mobile broadband: the nominal deadline (the default tier —
    /// a fabric with classes disabled behaves as all-eMBB).
    #[default]
    Embb,
    /// Background bulk transfer: double the nominal deadline, evicted
    /// first.
    Bulk,
}

impl PriorityClass {
    /// All classes, most-urgent first (report ordering).
    pub const ALL: [PriorityClass; 3] = [
        PriorityClass::Urllc,
        PriorityClass::Embb,
        PriorityClass::Bulk,
    ];

    /// Canonical lower-case name, as used by the spec codec and reports.
    pub fn name(&self) -> &'static str {
        match self {
            PriorityClass::Urllc => "urllc",
            PriorityClass::Embb => "embb",
            PriorityClass::Bulk => "bulk",
        }
    }

    /// Parses a canonical name.
    ///
    /// # Errors
    /// Returns the offending string on anything but `"urllc"` / `"embb"` /
    /// `"bulk"`.
    pub fn parse(name: &str) -> Result<Self, String> {
        match name {
            "urllc" => Ok(PriorityClass::Urllc),
            "embb" => Ok(PriorityClass::Embb),
            "bulk" => Ok(PriorityClass::Bulk),
            other => Err(format!("unknown priority class {other:?}")),
        }
    }

    /// Preemption rank: higher preempts lower, equal never preempts equal.
    pub fn rank(&self) -> u8 {
        match self {
            PriorityClass::Urllc => 2,
            PriorityClass::Embb => 1,
            PriorityClass::Bulk => 0,
        }
    }

    /// Multiplier on the fabric's nominal deadline for this tier. Exactly
    /// `1.0` for [`PriorityClass::Embb`], so single-class runs keep their
    /// historical deadlines bit-for-bit.
    pub fn deadline_factor(&self) -> f64 {
        match self {
            PriorityClass::Urllc => 0.5,
            PriorityClass::Embb => 1.0,
            PriorityClass::Bulk => 2.0,
        }
    }
}

/// Integer weights of the three service tiers in the offered traffic.
///
/// The default mix is pure eMBB — `is_default()` mixes draw **no**
/// randomness and assign every frame [`PriorityClass::Embb`], keeping the
/// job stream of a classless fabric byte-identical to the pre-class
/// engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClassMix {
    /// URLLC weight.
    pub urllc: u32,
    /// eMBB weight.
    pub embb: u32,
    /// Bulk weight.
    pub bulk: u32,
}

impl Default for ClassMix {
    fn default() -> Self {
        ClassMix {
            urllc: 0,
            embb: 1,
            bulk: 0,
        }
    }
}

/// Domain-separation constant for the class-assignment RNG stream.
const CLASS_SEED: u64 = 0xC1A5_5EED;

impl ClassMix {
    /// True for the pure-eMBB default (classes effectively disabled).
    pub fn is_default(&self) -> bool {
        *self == ClassMix::default()
    }

    /// Validates the mix: at least one weight must be positive.
    ///
    /// # Errors
    /// Returns a message when all weights are zero.
    pub fn validate(&self) -> Result<(), String> {
        if self.urllc == 0 && self.embb == 0 && self.bulk == 0 {
            return Err("ClassMix: all weights are zero".to_string());
        }
        Ok(())
    }

    /// Deterministically assigns a class to frame `frame` of cell `cell`.
    ///
    /// A pure function of `(seed, cell, frame)` — independent of routing,
    /// batching and thread count. The default mix short-circuits to
    /// [`PriorityClass::Embb`] without constructing an RNG.
    pub fn assign(&self, seed: u64, cell: usize, frame: usize) -> PriorityClass {
        if self.is_default() {
            return PriorityClass::Embb;
        }
        let stream =
            crate::pipeline::item_seed(crate::pipeline::item_seed(seed ^ CLASS_SEED, cell), frame);
        let total = (self.urllc + self.embb + self.bulk) as u64;
        let draw = Rng64::new(stream).next_below(total);
        if draw < self.urllc as u64 {
            PriorityClass::Urllc
        } else if draw < (self.urllc + self.embb) as u64 {
            PriorityClass::Embb
        } else {
            PriorityClass::Bulk
        }
    }
}

// ---------------------------------------------------------------------------
// Scheduling policy + options
// ---------------------------------------------------------------------------

/// Which service predictor the fabric scheduler budgets with.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedPolicy {
    /// Trust the static [`CostModel`] quotes unchanged (the historical
    /// scheduler).
    #[default]
    Static,
    /// Exponentially-weighted moving average of the observed/predicted
    /// ratio per (backend, problem shape): `s += (obs − s) >> shift`.
    Ewma {
        /// Smoothing shift: 0 replaces outright, larger values average
        /// over `~2^shift` observations.
        shift: u32,
    },
    /// UCB-style optimistic bandit: the running mean ratio minus an
    /// exploration bonus that shrinks as a (backend, shape) pair
    /// accumulates observations — under-sampled backends quote
    /// optimistically and get re-tried.
    Ucb {
        /// Exploration strength in milli-ratio units (250 ⇒ bonus starts
        /// around a quarter of the static quote).
        explore_milli: u32,
    },
}

impl SchedPolicy {
    /// Canonical lower-case name (`"static"` / `"ewma"` / `"ucb"`).
    pub fn name(&self) -> &'static str {
        match self {
            SchedPolicy::Static => "static",
            SchedPolicy::Ewma { .. } => "ewma",
            SchedPolicy::Ucb { .. } => "ucb",
        }
    }

    /// Validates policy parameters.
    ///
    /// # Errors
    /// Returns a message for an EWMA shift above 16 or a UCB exploration
    /// strength above 4000 milli (ratio 4).
    pub fn validate(&self) -> Result<(), String> {
        match self {
            SchedPolicy::Static => Ok(()),
            SchedPolicy::Ewma { shift } => {
                if *shift > 16 {
                    Err("SchedPolicy: ewma shift must be <= 16".to_string())
                } else {
                    Ok(())
                }
            }
            SchedPolicy::Ucb { explore_milli } => {
                if *explore_milli > 4000 {
                    Err("SchedPolicy: ucb explore_milli must be <= 4000".to_string())
                } else {
                    Ok(())
                }
            }
        }
    }

    /// Builds the predictor implementing this policy.
    pub fn predictor(&self) -> Box<dyn ServicePredictor> {
        match self {
            SchedPolicy::Static => Box::new(StaticPredictor),
            SchedPolicy::Ewma { shift } => Box::new(EwmaPredictor::new(*shift)),
            SchedPolicy::Ucb { explore_milli } => Box::new(UcbPredictor::new(*explore_milli)),
        }
    }
}

/// The adaptive-scheduling knobs of a fabric run. The default — static
/// policy, no assumed cost model, pure-eMBB mix — reproduces the
/// historical scheduler byte-for-byte.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SchedOptions {
    /// Service-prediction policy.
    pub policy: SchedPolicy,
    /// When set, admission quotes are computed from **this** model while
    /// charging stays on the true [`CostModel`] — the controlled
    /// miscalibration the adaptive-vs-static comparison is run under.
    pub assumed_cost: Option<CostModel>,
    /// Offered traffic mix over the service tiers.
    pub classes: ClassMix,
}

impl SchedOptions {
    /// True when every knob is at its default (the historical scheduler).
    pub fn is_default(&self) -> bool {
        *self == SchedOptions::default()
    }

    /// Validates all knobs.
    ///
    /// # Errors
    /// Returns the first policy, assumed-cost or class-mix violation.
    pub fn validate(&self) -> Result<(), String> {
        self.policy.validate()?;
        if let Some(c) = &self.assumed_cost {
            if !(c.base_us >= 0.0
                && c.base_us.is_finite()
                && c.us_per_node >= 0.0
                && c.us_per_node.is_finite()
                && c.us_per_sweep >= 0.0
                && c.us_per_sweep.is_finite())
            {
                return Err("SchedOptions: assumed_cost fields must be finite and >= 0".to_string());
            }
        }
        self.classes.validate()
    }
}

// ---------------------------------------------------------------------------
// Service predictors
// ---------------------------------------------------------------------------

/// An online estimator of per-(backend, problem-shape) service-time
/// corrections.
///
/// The scheduler quotes `corrected_us(static_quote, correction_q16(b, n))`
/// at admission and feeds every completed batch back through
/// [`ServicePredictor::observe`]. Implementations must be deterministic:
/// fixed-point state, no wall clocks, no unseeded randomness.
pub trait ServicePredictor: std::fmt::Debug + Send {
    /// Current Q16.16 correction ratio for backend `backend` solving
    /// problems of `n_logical` variables ([`Q16_ONE`] = trust the static
    /// quote).
    fn correction_q16(&self, backend: usize, n_logical: usize) -> i64;

    /// Feeds back one completed batch: the static quote for it and the µs
    /// actually charged.
    fn observe(&mut self, backend: usize, n_logical: usize, predicted_us: f64, observed_us: f64);

    /// Mean absolute prediction error (µs) over everything observed, using
    /// the correction that was in force *before* each observation updated
    /// the state. 0.0 before any observation (and always, for the static
    /// predictor).
    fn mae_us(&self) -> f64;

    /// Total observations fed back.
    fn observations(&self) -> u64;
}

/// Running |observed − corrected-prediction| accumulator shared by the
/// learning predictors.
#[derive(Debug, Default, Clone, Copy)]
struct MaeState {
    sum_err_us: f64,
    count: u64,
}

impl MaeState {
    fn record(&mut self, corrected_pred_us: f64, observed_us: f64) {
        self.sum_err_us += (observed_us - corrected_pred_us).abs();
        self.count += 1;
    }

    fn mae_us(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_err_us / self.count as f64
        }
    }
}

/// The no-op predictor of [`SchedPolicy::Static`]: every correction is
/// exactly [`Q16_ONE`] and observations are discarded.
#[derive(Debug, Default, Clone, Copy)]
pub struct StaticPredictor;

impl ServicePredictor for StaticPredictor {
    fn correction_q16(&self, _backend: usize, _n_logical: usize) -> i64 {
        Q16_ONE
    }

    fn observe(
        &mut self,
        _backend: usize,
        _n_logical: usize,
        _predicted_us: f64,
        _observed_us: f64,
    ) {
    }

    fn mae_us(&self) -> f64 {
        0.0
    }

    fn observations(&self) -> u64 {
        0
    }
}

/// Per-(backend, shape) EWMA of the observed/predicted ratio in Q16.16.
///
/// The first observation of a key replaces the prior outright; later ones
/// move by `(obs − s) >> shift` (arithmetic shift, so convergence is
/// monotone from either side). All state is integer — bit-identical
/// regardless of observation timing granularity.
#[derive(Debug)]
pub struct EwmaPredictor {
    shift: u32,
    state: std::collections::BTreeMap<(usize, usize), i64>,
    mae: MaeState,
}

impl EwmaPredictor {
    /// Creates an EWMA predictor with the given smoothing shift.
    pub fn new(shift: u32) -> Self {
        EwmaPredictor {
            shift,
            state: std::collections::BTreeMap::new(),
            mae: MaeState::default(),
        }
    }
}

impl ServicePredictor for EwmaPredictor {
    fn correction_q16(&self, backend: usize, n_logical: usize) -> i64 {
        *self.state.get(&(backend, n_logical)).unwrap_or(&Q16_ONE)
    }

    fn observe(&mut self, backend: usize, n_logical: usize, predicted_us: f64, observed_us: f64) {
        let before = self.correction_q16(backend, n_logical);
        self.mae
            .record(corrected_us(predicted_us, before), observed_us);
        let obs = ratio_q16(predicted_us, observed_us);
        let entry = self.state.entry((backend, n_logical));
        match entry {
            std::collections::btree_map::Entry::Vacant(v) => {
                v.insert(obs);
            }
            std::collections::btree_map::Entry::Occupied(mut o) => {
                let s = *o.get();
                *o.get_mut() = clamp_q16(s + ((obs - s) >> self.shift));
            }
        }
    }

    fn mae_us(&self) -> f64 {
        self.mae.mae_us()
    }

    fn observations(&self) -> u64 {
        self.mae.count
    }
}

/// UCB-style optimistic predictor: the running mean ratio per
/// (backend, shape) minus an exploration bonus
/// `explore · sqrt(ln(1 + T) / (1 + n))` (in ratio units), where `T` is
/// the total observation count and `n` the key's. Optimism lowers the
/// quote of under-sampled pairs, steering occasional traffic at them; the
/// bonus decays as evidence accumulates. State is integer counts and sums,
/// so the estimate stream is deterministic.
#[derive(Debug)]
pub struct UcbPredictor {
    explore_milli: u32,
    /// `(count, sum of Q16 ratios)` per key.
    state: std::collections::BTreeMap<(usize, usize), (u64, i64)>,
    total: u64,
    mae: MaeState,
}

impl UcbPredictor {
    /// Creates a UCB predictor with the given exploration strength
    /// (milli-ratio units).
    pub fn new(explore_milli: u32) -> Self {
        UcbPredictor {
            explore_milli,
            state: std::collections::BTreeMap::new(),
            total: 0,
            mae: MaeState::default(),
        }
    }
}

impl ServicePredictor for UcbPredictor {
    fn correction_q16(&self, backend: usize, n_logical: usize) -> i64 {
        let (count, sum) = self
            .state
            .get(&(backend, n_logical))
            .copied()
            .unwrap_or((0, 0));
        let mean = if count == 0 {
            Q16_ONE as f64
        } else {
            sum as f64 / count as f64
        };
        let bonus = (self.explore_milli as f64 / 1000.0)
            * Q16_ONE as f64
            * ((1.0 + self.total as f64).ln() / (1.0 + count as f64)).sqrt();
        clamp_q16((mean - bonus).round() as i64)
    }

    fn observe(&mut self, backend: usize, n_logical: usize, predicted_us: f64, observed_us: f64) {
        let before = self.correction_q16(backend, n_logical);
        self.mae
            .record(corrected_us(predicted_us, before), observed_us);
        let obs = ratio_q16(predicted_us, observed_us);
        let entry = self.state.entry((backend, n_logical)).or_insert((0, 0));
        entry.0 += 1;
        entry.1 += obs;
        self.total += 1;
    }

    fn mae_us(&self) -> f64 {
        self.mae.mae_us()
    }

    fn observations(&self) -> u64 {
        self.mae.count
    }
}

// ---------------------------------------------------------------------------
// Per-class report stanza
// ---------------------------------------------------------------------------

/// Latency/miss accounting of one priority class within one fabric run.
///
/// Kept alongside the scalar summaries is the full mergeable
/// [`LogHistogram`] of latencies, so shard merges and cross-point
/// aggregation reproduce percentiles exactly instead of averaging
/// averages.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassReport {
    /// The class.
    pub class: PriorityClass,
    /// Jobs assigned to this class.
    pub jobs: usize,
    /// Jobs that missed the class's effective deadline (integer, so
    /// aggregation across shards is exact).
    pub misses: usize,
    /// Mean end-to-end latency (µs).
    pub mean_latency_us: f64,
    /// Median latency from the histogram (µs).
    pub p50_latency_us: f64,
    /// 99th-percentile latency from the histogram (µs).
    pub p99_latency_us: f64,
    /// Full latency distribution (mergeable).
    pub hist: LogHistogram,
}

impl ClassReport {
    /// Serializes to the JSON object [`ClassReport::from_json`] parses
    /// back exactly.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            (
                "class".to_string(),
                Json::Str(self.class.name().to_string()),
            ),
            ("jobs".to_string(), Json::UInt(self.jobs as u64)),
            ("misses".to_string(), Json::UInt(self.misses as u64)),
            (
                "mean_latency_us".to_string(),
                Json::Float(self.mean_latency_us),
            ),
            (
                "p50_latency_us".to_string(),
                Json::Float(self.p50_latency_us),
            ),
            (
                "p99_latency_us".to_string(),
                Json::Float(self.p99_latency_us),
            ),
            ("hist".to_string(), self.hist.to_json()),
        ])
    }

    /// Parses a [`ClassReport::to_json`] document back.
    ///
    /// # Errors
    /// Returns a [`SpecError`] on unknown keys, missing fields or an
    /// unknown class name.
    pub fn from_json(doc: &Json) -> Result<ClassReport, SpecError> {
        let ctx = "ClassReport";
        check_keys(
            doc,
            &[
                "class",
                "jobs",
                "misses",
                "mean_latency_us",
                "p50_latency_us",
                "p99_latency_us",
                "hist",
            ],
            ctx,
        )?;
        let class = PriorityClass::parse(req_str(doc, "class", ctx)?)
            .map_err(|e| SpecError::new(ctx, e))?;
        Ok(ClassReport {
            class,
            jobs: req_usize(doc, "jobs", ctx)?,
            misses: req_usize(doc, "misses", ctx)?,
            mean_latency_us: req_f64(doc, "mean_latency_us", ctx)?,
            p50_latency_us: req_f64(doc, "p50_latency_us", ctx)?,
            p99_latency_us: req_f64(doc, "p99_latency_us", ctx)?,
            hist: LogHistogram::from_json(req(doc, "hist", ctx)?)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_options_are_default() {
        assert!(SchedOptions::default().is_default());
        assert!(ClassMix::default().is_default());
        assert_eq!(SchedPolicy::default(), SchedPolicy::Static);
        assert!(SchedOptions::default().validate().is_ok());
    }

    #[test]
    fn default_mix_assigns_embb_everywhere() {
        let mix = ClassMix::default();
        for cell in 0..4 {
            for frame in 0..16 {
                assert_eq!(mix.assign(99, cell, frame), PriorityClass::Embb);
            }
        }
    }

    #[test]
    fn mixed_assignment_is_deterministic_and_covers_classes() {
        let mix = ClassMix {
            urllc: 1,
            embb: 2,
            bulk: 1,
        };
        let mut seen = [0usize; 3];
        for cell in 0..4 {
            for frame in 0..64 {
                let a = mix.assign(7, cell, frame);
                let b = mix.assign(7, cell, frame);
                assert_eq!(a, b);
                seen[a.rank() as usize] += 1;
            }
        }
        assert!(
            seen.iter().all(|&c| c > 0),
            "some class never drawn: {seen:?}"
        );
    }

    #[test]
    fn assignment_depends_on_cell_and_frame_not_order() {
        let mix = ClassMix {
            urllc: 1,
            embb: 1,
            bulk: 1,
        };
        // Query order must not matter: pure function of (seed, cell, frame).
        let forward: Vec<_> = (0..32).map(|f| mix.assign(3, 1, f)).collect();
        let backward: Vec<_> = (0..32).rev().map(|f| mix.assign(3, 1, f)).collect();
        assert_eq!(forward, backward.into_iter().rev().collect::<Vec<_>>());
    }

    #[test]
    fn class_names_round_trip() {
        for c in PriorityClass::ALL {
            assert_eq!(PriorityClass::parse(c.name()).unwrap(), c);
        }
        assert!(PriorityClass::parse("gold").is_err());
    }

    #[test]
    fn deadline_factors_are_ordered() {
        assert!(PriorityClass::Urllc.deadline_factor() < PriorityClass::Embb.deadline_factor());
        assert!(PriorityClass::Embb.deadline_factor() < PriorityClass::Bulk.deadline_factor());
        assert_eq!(PriorityClass::Embb.deadline_factor(), 1.0);
    }

    #[test]
    fn corrected_us_identity_is_bitwise() {
        for us in [0.0, 1.5, 123.456, 1e9, f64::MIN_POSITIVE] {
            assert_eq!(corrected_us(us, Q16_ONE).to_bits(), us.to_bits());
        }
        assert_eq!(corrected_us(100.0, Q16_ONE * 2), 200.0);
        assert_eq!(corrected_us(100.0, Q16_ONE / 2), 50.0);
    }

    #[test]
    fn ewma_learns_a_constant_ratio() {
        let mut p = EwmaPredictor::new(1);
        // Backend 0 is consistently 10x the static quote.
        for _ in 0..32 {
            p.observe(0, 16, 100.0, 1000.0);
        }
        let q = p.correction_q16(0, 16);
        assert!(
            (q - 10 * Q16_ONE).abs() <= Q16_ONE / 16,
            "EWMA did not converge: {q}"
        );
        // Unobserved keys stay at identity.
        assert_eq!(p.correction_q16(1, 16), Q16_ONE);
        assert_eq!(p.correction_q16(0, 8), Q16_ONE);
        assert!(p.mae_us() > 0.0);
        assert_eq!(p.observations(), 32);
    }

    #[test]
    fn ewma_shift_zero_replaces() {
        let mut p = EwmaPredictor::new(0);
        p.observe(0, 4, 100.0, 300.0);
        assert_eq!(p.correction_q16(0, 4), 3 * Q16_ONE);
        p.observe(0, 4, 100.0, 100.0);
        assert_eq!(p.correction_q16(0, 4), Q16_ONE);
    }

    #[test]
    fn ewma_first_observation_replaces_prior() {
        let mut p = EwmaPredictor::new(4);
        p.observe(2, 16, 100.0, 800.0);
        assert_eq!(p.correction_q16(2, 16), 8 * Q16_ONE);
    }

    #[test]
    fn corrections_are_clamped() {
        let mut p = EwmaPredictor::new(0);
        p.observe(0, 4, 1.0, 1e12);
        assert_eq!(p.correction_q16(0, 4), Q16_MAX);
        p.observe(0, 4, 1e12, 1.0);
        assert_eq!(p.correction_q16(0, 4), Q16_MIN);
    }

    #[test]
    fn ucb_is_optimistic_then_converges() {
        let mut p = UcbPredictor::new(250);
        // Before any global evidence the bonus is zero (ln 1 = 0).
        assert_eq!(p.correction_q16(0, 16), Q16_ONE);
        for _ in 0..64 {
            p.observe(0, 16, 100.0, 1000.0);
        }
        // Observed key converges near ratio 10 (bonus shrinks with n).
        let seen = p.correction_q16(0, 16);
        assert!(
            (seen - 10 * Q16_ONE).abs() < Q16_ONE,
            "UCB mean off: {seen}"
        );
        // An unobserved key now quotes optimistically below identity.
        assert!(p.correction_q16(1, 16) < Q16_ONE);
    }

    #[test]
    fn static_predictor_is_inert() {
        let mut p = StaticPredictor;
        p.observe(0, 16, 100.0, 1000.0);
        assert_eq!(p.correction_q16(0, 16), Q16_ONE);
        assert_eq!(p.mae_us(), 0.0);
        assert_eq!(p.observations(), 0);
    }

    #[test]
    fn policy_names_and_validation() {
        assert_eq!(SchedPolicy::Static.name(), "static");
        assert_eq!(SchedPolicy::Ewma { shift: 2 }.name(), "ewma");
        assert_eq!(SchedPolicy::Ucb { explore_milli: 250 }.name(), "ucb");
        assert!(SchedPolicy::Ewma { shift: 17 }.validate().is_err());
        assert!(SchedPolicy::Ucb {
            explore_milli: 4001
        }
        .validate()
        .is_err());
        assert!(ClassMix {
            urllc: 0,
            embb: 0,
            bulk: 0
        }
        .validate()
        .is_err());
    }

    #[test]
    fn class_report_json_round_trips() {
        let mut hist = LogHistogram::new();
        for v in [120.0, 340.5, 980.0] {
            hist.record(v);
        }
        let r = ClassReport {
            class: PriorityClass::Urllc,
            jobs: 3,
            misses: 1,
            mean_latency_us: 480.17,
            p50_latency_us: 340.5,
            p99_latency_us: 980.0,
            hist,
        };
        let back = ClassReport::from_json(&r.to_json()).unwrap();
        assert_eq!(back, r);
        // Unknown keys are rejected.
        let mut doc = match r.to_json() {
            Json::Obj(fields) => fields,
            _ => unreachable!(),
        };
        doc.push(("extra".to_string(), Json::UInt(1)));
        assert!(ClassReport::from_json(&Json::Obj(doc)).is_err());
    }
}
