//! The distributed experiment plane: deterministic shards, streaming
//! checkpoints, and byte-stable merges.
//!
//! The paper's fabric argument only pays off at scales a single process
//! can't hold; this module is the substrate that lets any grid-style
//! [`ExperimentSpec`] span processes (and machines) without giving up the
//! workspace's byte-reproducibility contract. Three pieces:
//!
//! * **Sharding** — [`shard_ids`] deterministically partitions a spec's
//!   point grid ([`grid_len`]) into `N` strided subsets; the engines'
//!   subset runners (`run_ber_points` / `run_stream_points` /
//!   `run_fabric_points`) execute one subset with the exact per-point
//!   seeds of the full run, and [`ShardReport`] is the self-describing
//!   output document (spec + fingerprint + point records).
//! * **Merging** — [`merge_shards`] validates a set of shards (same spec
//!   fingerprint, pairwise-disjoint ids, exact grid coverage) and
//!   reassembles the ordinary report through
//!   [`MergeableReport::from_points`]: `merge(shards over k/N)` is
//!   **byte-identical** to the single-run report for any `N`, which the
//!   `shard-merge` CI job pins against the committed `BENCH_*.json`.
//! * **Checkpointing** — [`Checkpoint`] is a JSONL journal (header line +
//!   one line per completed point) a long run appends to; a killed run
//!   resumes by parsing the journal (tolerating a torn trailing line),
//!   running only the missing points, and assembling the identical final
//!   report.
//!
//! Everything is keyed by [`spec_fingerprint`] — a hash of the spec's
//! canonical JSON — so shards or checkpoints from different specs (or the
//! same spec at different seeds/scales) can never be mixed silently.

use crate::fabric::{FabricGridReport, FabricMode};
use crate::report::{MergeableReport, PointRecord, Report};
use crate::scenario::BerReport;
use crate::sched_grid::SchedGridReport;
use crate::spec::json::Json;
use crate::spec::{check_keys, req, req_str, req_u64, req_usize, ExperimentSpec, SpecError};
use crate::stream::StreamGridReport;

/// Version of the shard/checkpoint document schemas this build reads and
/// writes (documented in `crates/bench/README.md`). Bump on any
/// incompatible change.
pub const SHARD_SCHEMA_VERSION: u64 = 1;

/// Fingerprint of a spec's canonical JSON document (FNV-1a 64, 16 hex
/// digits): the compatibility key stamped into every shard and checkpoint
/// so artifacts from different specs cannot be merged silently.
pub fn spec_fingerprint(spec: &ExperimentSpec) -> String {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in spec.to_json().bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    format!("{hash:016x}")
}

/// The number of shardable grid points a spec expands to: SNR points for a
/// BER sweep, (policy × ρ × load) cells for the stream grid,
/// (mix × cells × load) points for the virtual fabric grid.
///
/// # Errors
/// Returns a [`SpecError`] for specs without a shardable point grid: canned
/// figure experiments, realtime fabric runs (points occupy wall-clock
/// worker threads), and empty grids.
pub fn grid_len(spec: &ExperimentSpec) -> Result<usize, SpecError> {
    let ctx = "shard";
    let total = match spec {
        ExperimentSpec::Ber(c) => c.snr_db.len(),
        ExperimentSpec::Stream(c) => c.policies.len() * c.rhos.len() * c.arrival_periods_us.len(),
        ExperimentSpec::Fabric(c) if c.mode == FabricMode::Virtual => {
            c.mixes.len() * c.cell_counts.len() * c.arrival_periods_us.len()
        }
        ExperimentSpec::Fabric(_) => {
            return Err(SpecError::new(
                ctx,
                "the realtime fabric service cannot be sharded \
                 (points occupy wall-clock worker threads)",
            ));
        }
        ExperimentSpec::Sched(c) => c.grid_len(),
        ExperimentSpec::Canned(c) => {
            return Err(SpecError::new(
                ctx,
                format!(
                    "canned experiment '{}' has no point grid to shard",
                    c.experiment.name()
                ),
            ));
        }
    };
    if total == 0 {
        return Err(SpecError::new(ctx, "the spec's point grid is empty"));
    }
    Ok(total)
}

/// The point ids of shard `index` of `count` (1-based) over a grid of
/// `total` points: the strided subset `{id : id ≡ index−1 (mod count)}`.
///
/// Striding (rather than contiguous ranges) balances grids whose point
/// cost varies systematically along an axis — e.g. high-load fabric points
/// simulate more queueing than low-load ones. The shards partition
/// `0..total` exactly: pairwise disjoint, union complete (property-tested
/// in `tests/shard_proptests.rs`).
///
/// # Panics
/// Panics unless `1 <= index <= count`.
pub fn shard_ids(total: usize, index: usize, count: usize) -> Vec<usize> {
    assert!(
        index >= 1 && index <= count,
        "shard_ids: index must satisfy 1 <= index ({index}) <= count ({count})"
    );
    (0..total).filter(|id| id % count == index - 1).collect()
}

/// Renders the spec's canonical JSON document in compact (single-line)
/// form, for embedding in shard headers and checkpoint lines.
fn compact_spec(spec: &ExperimentSpec) -> String {
    Json::parse(&spec.to_json())
        .expect("spec JSON is valid by construction")
        .to_string_compact()
}

/// Parses the embedded spec subtree of a shard/checkpoint header and
/// cross-checks it against the header's own tags.
fn parse_embedded_spec(
    header: &Json,
    ctx: &str,
) -> Result<(ExperimentSpec, String, usize), SpecError> {
    let spec_doc = req(header, "spec", ctx)?.to_string_compact();
    let spec = ExperimentSpec::parse(&spec_doc)
        .map_err(|e| SpecError::new(ctx.to_string(), format!("embedded spec: {e}")))?;
    let experiment = req_str(header, "experiment", ctx)?;
    if experiment != spec.family() {
        return Err(SpecError::new(
            ctx.to_string(),
            format!(
                "experiment tag '{experiment}' does not match the embedded spec family '{}'",
                spec.family()
            ),
        ));
    }
    let fingerprint = req_str(header, "fingerprint", ctx)?.to_string();
    let actual = spec_fingerprint(&spec);
    if fingerprint != actual {
        return Err(SpecError::new(
            ctx.to_string(),
            format!(
                "fingerprint mismatch: document says {fingerprint} but the \
                 embedded spec hashes to {actual}"
            ),
        ));
    }
    let total = req_usize(header, "total_points", ctx)?;
    let expected = grid_len(&spec)?;
    if total != expected {
        return Err(SpecError::new(
            ctx.to_string(),
            format!(
                "total_points {total} does not match the embedded spec's \
                 grid ({expected} points)"
            ),
        ));
    }
    Ok((spec, fingerprint, total))
}

/// Parses one `{"id": N, "point": {...}}` record object.
fn parse_point_entry(doc: &Json, ctx: &str) -> Result<PointRecord, SpecError> {
    check_keys(doc, &["id", "point"], ctx)?;
    Ok(PointRecord {
        id: req_usize(doc, "id", ctx)?,
        payload: req(doc, "point", ctx)?.to_string_compact(),
    })
}

/// Checks that `points` ids are strictly increasing and within `0..total`.
fn check_shard_point_ids(points: &[PointRecord], total: usize, ctx: &str) -> Result<(), SpecError> {
    if let Some(w) = points.windows(2).find(|w| w[0].id >= w[1].id) {
        return Err(SpecError::new(
            ctx.to_string(),
            format!(
                "point ids must be strictly increasing, got {} then {}",
                w[0].id, w[1].id
            ),
        ));
    }
    if let Some(p) = points.last().filter(|p| p.id >= total) {
        return Err(SpecError::new(
            ctx.to_string(),
            format!("point id {} out of range (grid has {total} points)", p.id),
        ));
    }
    Ok(())
}

/// One shard's output: the spec it was cut from, which slice it is, and the
/// completed point records. `hqw run --shard k/N` writes one; `hqw merge`
/// reassembles a full set into the ordinary report.
#[derive(Debug, Clone)]
pub struct ShardReport {
    /// The experiment the shard belongs to.
    pub spec: ExperimentSpec,
    /// [`spec_fingerprint`] of `spec` (the merge compatibility key).
    pub fingerprint: String,
    /// 1-based shard index.
    pub index: usize,
    /// Total shard count of the partition.
    pub count: usize,
    /// Size of the full point grid.
    pub total_points: usize,
    /// Completed point records, sorted by id.
    pub points: Vec<PointRecord>,
}

impl ShardReport {
    /// Builds a shard report, validating the shard coordinates and point
    /// ids against the spec's grid.
    ///
    /// # Errors
    /// Returns a [`SpecError`] for unshardable specs, an out-of-range
    /// `index`/`count`, or ids that are unsorted, duplicated, or out of
    /// range.
    pub fn new(
        spec: &ExperimentSpec,
        index: usize,
        count: usize,
        points: Vec<PointRecord>,
    ) -> Result<ShardReport, SpecError> {
        let ctx = "ShardReport";
        let total_points = grid_len(spec)?;
        if index < 1 || index > count {
            return Err(SpecError::new(
                ctx,
                format!("shard index must satisfy 1 <= index ({index}) <= count ({count})"),
            ));
        }
        check_shard_point_ids(&points, total_points, ctx)?;
        Ok(ShardReport {
            spec: spec.clone(),
            fingerprint: spec_fingerprint(spec),
            index,
            count,
            total_points,
            points,
        })
    }

    /// Renders the shard document (schema in `crates/bench/README.md`).
    /// Pure function of the shard contents.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n  \"bench\": \"shard\",\n");
        s.push_str(&format!("  \"schema_version\": {SHARD_SCHEMA_VERSION},\n"));
        s.push_str(&format!("  \"experiment\": \"{}\",\n", self.spec.family()));
        s.push_str(&format!("  \"fingerprint\": \"{}\",\n", self.fingerprint));
        s.push_str(&format!(
            "  \"shard\": {{\"index\": {}, \"count\": {}}},\n",
            self.index, self.count
        ));
        s.push_str(&format!("  \"total_points\": {},\n", self.total_points));
        let ids = self
            .points
            .iter()
            .map(|p| p.id.to_string())
            .collect::<Vec<_>>()
            .join(", ");
        s.push_str(&format!("  \"point_ids\": [{ids}],\n"));
        s.push_str(&format!("  \"spec\": {},\n", compact_spec(&self.spec)));
        if self.points.is_empty() {
            s.push_str("  \"points\": []\n}\n");
        } else {
            s.push_str("  \"points\": [\n");
            for (i, p) in self.points.iter().enumerate() {
                s.push_str(&format!(
                    "    {{\"id\": {}, \"point\": {}}}{}\n",
                    p.id,
                    p.payload,
                    if i + 1 < self.points.len() { "," } else { "" }
                ));
            }
            s.push_str("  ]\n}\n");
        }
        s
    }

    /// Parses a [`ShardReport::to_json`] document back, re-validating the
    /// header (fingerprint vs embedded spec, ids vs grid).
    ///
    /// # Errors
    /// Returns a [`SpecError`] on syntax errors, schema mismatches, a
    /// fingerprint that does not hash from the embedded spec, or
    /// inconsistent point ids.
    pub fn parse(text: &str) -> Result<ShardReport, SpecError> {
        let ctx = "shard document";
        let doc = Json::parse(text).map_err(|e| SpecError::new(ctx, e.to_string()))?;
        check_keys(
            &doc,
            &[
                "bench",
                "schema_version",
                "experiment",
                "fingerprint",
                "shard",
                "total_points",
                "point_ids",
                "spec",
                "points",
            ],
            ctx,
        )?;
        if req_str(&doc, "bench", ctx)? != "shard" {
            return Err(SpecError::new(
                ctx,
                "not a shard document (bench != \"shard\")",
            ));
        }
        let version = req_u64(&doc, "schema_version", ctx)?;
        if version != SHARD_SCHEMA_VERSION {
            return Err(SpecError::new(
                ctx,
                format!(
                    "unsupported schema_version {version} \
                     (this build reads {SHARD_SCHEMA_VERSION})"
                ),
            ));
        }
        let (spec, fingerprint, total_points) = parse_embedded_spec(&doc, ctx)?;
        let shard = req(&doc, "shard", ctx)?;
        let shard_ctx = &format!("{ctx}.shard");
        check_keys(shard, &["index", "count"], shard_ctx)?;
        let index = req_usize(shard, "index", shard_ctx)?;
        let count = req_usize(shard, "count", shard_ctx)?;
        if index < 1 || index > count {
            return Err(SpecError::new(
                shard_ctx.clone(),
                format!("shard index must satisfy 1 <= index ({index}) <= count ({count})"),
            ));
        }
        let points = req(&doc, "points", ctx)?
            .as_arr()
            .ok_or_else(|| SpecError::new(ctx, "field \"points\" must be an array"))?
            .iter()
            .enumerate()
            .map(|(i, p)| parse_point_entry(p, &format!("{ctx}.points[{i}]")))
            .collect::<Result<Vec<_>, _>>()?;
        check_shard_point_ids(&points, total_points, ctx)?;
        let declared = req(&doc, "point_ids", ctx)?
            .as_arr()
            .ok_or_else(|| SpecError::new(ctx, "field \"point_ids\" must be an array"))?
            .iter()
            .map(|v| {
                v.as_u64()
                    .and_then(|u| usize::try_from(u).ok())
                    .ok_or_else(|| {
                        SpecError::new(
                            ctx,
                            "field \"point_ids\" must contain only unsigned integers",
                        )
                    })
            })
            .collect::<Result<Vec<_>, _>>()?;
        let actual: Vec<usize> = points.iter().map(|p| p.id).collect();
        if declared != actual {
            return Err(SpecError::new(
                ctx,
                "point_ids header does not match the points array",
            ));
        }
        Ok(ShardReport {
            spec,
            fingerprint,
            index,
            count,
            total_points,
            points,
        })
    }
}

/// A reassembled grid report of any family — what [`merge_shards`] and
/// [`Checkpoint::assemble`] return, and what the runner emits through the
/// ordinary [`Report`] surface.
#[derive(Debug, Clone)]
pub enum GridReport {
    /// A BER-vs-SNR sweep report.
    Ber(BerReport),
    /// A streaming-grid report.
    Stream(StreamGridReport),
    /// A virtual fabric-grid report.
    Fabric(FabricGridReport),
    /// A static-vs-adaptive scheduling report.
    Sched(SchedGridReport),
}

impl GridReport {
    /// Reassembles the family-appropriate report from a complete set of
    /// point records (dispatching on the spec family).
    ///
    /// # Errors
    /// Returns a [`SpecError`] for unshardable specs or records that fail
    /// the family's [`MergeableReport::from_points`] validation.
    pub fn from_points(
        spec: &ExperimentSpec,
        points: Vec<PointRecord>,
    ) -> Result<GridReport, SpecError> {
        grid_len(spec)?;
        match spec {
            ExperimentSpec::Ber(_) => Ok(GridReport::Ber(BerReport::from_points(spec, points)?)),
            ExperimentSpec::Stream(_) => Ok(GridReport::Stream(StreamGridReport::from_points(
                spec, points,
            )?)),
            ExperimentSpec::Fabric(_) => Ok(GridReport::Fabric(FabricGridReport::from_points(
                spec, points,
            )?)),
            ExperimentSpec::Sched(_) => Ok(GridReport::Sched(SchedGridReport::from_points(
                spec, points,
            )?)),
            ExperimentSpec::Canned(_) => unreachable!("grid_len rejects canned specs"),
        }
    }

    /// The wrapped report through the unified [`Report`] surface.
    pub fn as_report(&self) -> &dyn Report {
        match self {
            GridReport::Ber(r) => r,
            GridReport::Stream(r) => r,
            GridReport::Fabric(r) => r,
            GridReport::Sched(r) => r,
        }
    }
}

/// Merges a set of shards back into the ordinary single-run report.
///
/// Each shard carries a label (typically its file path) used in error
/// messages. The shards must share one spec fingerprint, have
/// pairwise-disjoint point sets, and cover the grid exactly; the merged
/// report is byte-identical to the corresponding single-process run.
///
/// # Errors
/// Returns a [`SpecError`] naming the offending shard(s) on mixed
/// fingerprints, overlapping point sets, or missing points.
pub fn merge_shards(shards: &[(String, ShardReport)]) -> Result<GridReport, SpecError> {
    let ctx = "merge";
    let Some((first_label, first)) = shards.first() else {
        return Err(SpecError::new(ctx, "no shards to merge"));
    };
    for (label, shard) in &shards[1..] {
        if shard.fingerprint != first.fingerprint {
            return Err(SpecError::new(
                ctx,
                format!(
                    "mixed spec fingerprints: '{first_label}' has {} but '{label}' has {}",
                    first.fingerprint, shard.fingerprint
                ),
            ));
        }
    }
    let total = first.total_points;
    let mut owner: Vec<Option<&str>> = vec![None; total];
    let mut points = Vec::new();
    for (label, shard) in shards {
        for p in &shard.points {
            if let Some(prev) = owner[p.id] {
                return Err(SpecError::new(
                    ctx,
                    format!(
                        "overlapping point sets: point id {} appears in both \
                         '{prev}' and '{label}'",
                        p.id
                    ),
                ));
            }
            owner[p.id] = Some(label);
            points.push(p.clone());
        }
    }
    let missing: Vec<String> = owner
        .iter()
        .enumerate()
        .filter(|(_, o)| o.is_none())
        .take(8)
        .map(|(id, _)| id.to_string())
        .collect();
    if !missing.is_empty() {
        return Err(SpecError::new(
            ctx,
            format!(
                "missing point id(s) {} of 0..{total} — the shards do not \
                 cover the grid",
                missing.join(", ")
            ),
        ));
    }
    GridReport::from_points(&first.spec, points)
}

/// A streaming checkpoint: the JSONL journal a long run appends completed
/// points to, and a killed run resumes from.
///
/// Line 1 is the header (spec + fingerprint + grid size); every following
/// line is one completed point record. [`Checkpoint::parse`] tolerates a
/// torn **trailing** line (a kill mid-append) but rejects corruption
/// anywhere else.
#[derive(Debug, Clone)]
pub struct Checkpoint {
    /// The experiment the checkpoint belongs to.
    pub spec: ExperimentSpec,
    /// [`spec_fingerprint`] of `spec`.
    pub fingerprint: String,
    /// Size of the full point grid.
    pub total_points: usize,
    /// Completed point records, sorted by id.
    pub points: Vec<PointRecord>,
}

impl Checkpoint {
    /// Renders the header line (line 1 of the journal, no trailing
    /// newline).
    ///
    /// # Errors
    /// Returns a [`SpecError`] for specs without a shardable grid.
    pub fn header_line(spec: &ExperimentSpec) -> Result<String, SpecError> {
        let total = grid_len(spec)?;
        Ok(format!(
            "{{\"checkpoint\": \"hqw\", \"schema_version\": {SHARD_SCHEMA_VERSION}, \
             \"experiment\": \"{}\", \"fingerprint\": \"{}\", \
             \"total_points\": {total}, \"spec\": {}}}",
            spec.family(),
            spec_fingerprint(spec),
            compact_spec(spec)
        ))
    }

    /// Renders one completed point as a journal line (no trailing newline).
    pub fn point_line(record: &PointRecord) -> String {
        format!("{{\"id\": {}, \"point\": {}}}", record.id, record.payload)
    }

    /// Parses a journal back. A torn trailing line (the run was killed
    /// mid-append) is dropped; malformed content anywhere else is an
    /// error, as are duplicate or out-of-range ids.
    ///
    /// # Errors
    /// Returns a [`SpecError`] on a bad header, mid-file corruption, or
    /// inconsistent ids.
    pub fn parse(text: &str) -> Result<Checkpoint, SpecError> {
        let ctx = "checkpoint";
        let mut lines = text.lines();
        let header_text = lines
            .next()
            .ok_or_else(|| SpecError::new(ctx, "empty checkpoint file"))?;
        let header =
            Json::parse(header_text).map_err(|e| SpecError::new(ctx, format!("line 1: {e}")))?;
        check_keys(
            &header,
            &[
                "checkpoint",
                "schema_version",
                "experiment",
                "fingerprint",
                "total_points",
                "spec",
            ],
            ctx,
        )?;
        if req_str(&header, "checkpoint", ctx)? != "hqw" {
            return Err(SpecError::new(ctx, "not an hqw checkpoint"));
        }
        let version = req_u64(&header, "schema_version", ctx)?;
        if version != SHARD_SCHEMA_VERSION {
            return Err(SpecError::new(
                ctx,
                format!(
                    "unsupported schema_version {version} \
                     (this build reads {SHARD_SCHEMA_VERSION})"
                ),
            ));
        }
        let (spec, fingerprint, total_points) = parse_embedded_spec(&header, ctx)?;
        let rest: Vec<&str> = lines.collect();
        let mut points = Vec::new();
        for (i, line) in rest.iter().enumerate() {
            let last = i + 1 == rest.len();
            let doc = match Json::parse(line) {
                Ok(doc) => doc,
                // A kill mid-append leaves at most one torn line, and only
                // at the tail; anything else is real corruption.
                Err(_) if last => break,
                Err(e) => {
                    return Err(SpecError::new(ctx, format!("line {}: {e}", i + 2)));
                }
            };
            let p_ctx = &format!("{ctx} line {}", i + 2);
            let record = parse_point_entry(&doc, p_ctx)?;
            if record.id >= total_points {
                return Err(SpecError::new(
                    p_ctx.clone(),
                    format!(
                        "point id {} out of range (grid has {total_points} points)",
                        record.id
                    ),
                ));
            }
            points.push(record);
        }
        points.sort_by_key(|p| p.id);
        if let Some(w) = points.windows(2).find(|w| w[0].id == w[1].id) {
            return Err(SpecError::new(
                ctx,
                format!("duplicate point id {}", w[0].id),
            ));
        }
        Ok(Checkpoint {
            spec,
            fingerprint,
            total_points,
            points,
        })
    }

    /// Re-renders the journal (header + completed points + trailing
    /// newline) — the repaired form a resume rewrites before appending, so
    /// a torn tail never accumulates.
    pub fn render(&self) -> String {
        let mut s = Self::header_line(&self.spec).expect("parsed checkpoints have a valid grid");
        s.push('\n');
        for p in &self.points {
            s.push_str(&Self::point_line(p));
            s.push('\n');
        }
        s
    }

    /// The grid ids not yet completed, in grid order.
    pub fn remaining_ids(&self) -> Vec<usize> {
        let have: std::collections::BTreeSet<usize> = self.points.iter().map(|p| p.id).collect();
        (0..self.total_points)
            .filter(|id| !have.contains(id))
            .collect()
    }

    /// Whether every grid point is completed.
    pub fn is_complete(&self) -> bool {
        self.points.len() == self.total_points
    }

    /// Assembles the final report from a complete journal.
    ///
    /// # Errors
    /// Returns a [`SpecError`] when points are missing or fail the
    /// family's record validation.
    pub fn assemble(&self) -> Result<GridReport, SpecError> {
        if !self.is_complete() {
            return Err(SpecError::new(
                "checkpoint",
                format!(
                    "incomplete: {}/{} points done — run with --resume to finish it",
                    self.points.len(),
                    self.total_points
                ),
            ));
        }
        GridReport::from_points(&self.spec, self.points.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{run_ber_points, run_ber_sweep, ScenarioDetector, SnrSweepConfig};
    use crate::spec::CannedSpec;
    use crate::CannedKind;
    use hqw_phy::channel::ChannelModel;
    use hqw_phy::detect::ZeroForcing;
    use hqw_phy::modulation::Modulation;

    fn tiny_ber_spec() -> ExperimentSpec {
        ExperimentSpec::Ber(SnrSweepConfig {
            n_users: 2,
            n_rx: 2,
            modulation: Modulation::Qpsk,
            channel: ChannelModel::UnitGainRandomPhase,
            snr_db: vec![0.0, 10.0, 20.0, 30.0],
            realizations: 2,
            seed: 11,
            threads: 1,
        })
    }

    fn tiny_roster() -> Vec<ScenarioDetector> {
        vec![ScenarioDetector::fixed(false, ZeroForcing)]
    }

    fn tiny_records(ids: &[usize]) -> Vec<PointRecord> {
        let ExperimentSpec::Ber(config) = tiny_ber_spec() else {
            unreachable!()
        };
        run_ber_points(&config, &tiny_roster(), ids)
            .iter()
            .map(|c| c.to_record())
            .collect()
    }

    #[test]
    fn shard_ids_partition_the_grid() {
        for total in [0, 1, 7, 12] {
            for count in 1..=5 {
                let mut seen = vec![false; total];
                for index in 1..=count {
                    for id in shard_ids(total, index, count) {
                        assert!(!seen[id], "id {id} assigned twice");
                        seen[id] = true;
                    }
                }
                assert!(seen.iter().all(|&s| s), "total={total} count={count}");
            }
        }
        // Strided: shard 1/3 of 7 points takes ids ≡ 0 (mod 3).
        assert_eq!(shard_ids(7, 1, 3), vec![0, 3, 6]);
        assert_eq!(shard_ids(7, 3, 3), vec![2, 5]);
    }

    #[test]
    #[should_panic(expected = "1 <= index")]
    fn shard_ids_rejects_zero_index() {
        shard_ids(4, 0, 2);
    }

    #[test]
    fn grid_len_counts_points_and_rejects_unshardable_specs() {
        assert_eq!(grid_len(&tiny_ber_spec()), Ok(4));

        let canned = ExperimentSpec::Canned(CannedSpec {
            experiment: CannedKind::Fig3,
            scale: crate::experiments::Scale::quick(),
            seed: 1,
        });
        let err = grid_len(&canned).unwrap_err();
        assert!(err.to_string().contains("no point grid"), "got: {err}");

        let ExperimentSpec::Ber(mut config) = tiny_ber_spec() else {
            unreachable!()
        };
        config.snr_db.clear();
        let err = grid_len(&ExperimentSpec::Ber(config)).unwrap_err();
        assert!(err.to_string().contains("empty"), "got: {err}");
    }

    #[test]
    fn fingerprint_is_stable_and_spec_sensitive() {
        let a = spec_fingerprint(&tiny_ber_spec());
        assert_eq!(a, spec_fingerprint(&tiny_ber_spec()));
        assert_eq!(a.len(), 16);
        assert!(a.chars().all(|c| c.is_ascii_hexdigit()));
        let mut other = tiny_ber_spec();
        other.set_seed(12);
        assert_ne!(a, spec_fingerprint(&other));
    }

    #[test]
    fn shard_report_round_trips_through_json() {
        let spec = tiny_ber_spec();
        let ids = shard_ids(4, 1, 3);
        let shard = ShardReport::new(&spec, 1, 3, tiny_records(&ids)).expect("valid shard");
        let text = shard.to_json();
        let parsed = ShardReport::parse(&text).expect(&text);
        assert_eq!(parsed.spec, spec);
        assert_eq!(parsed.fingerprint, shard.fingerprint);
        assert_eq!((parsed.index, parsed.count), (1, 3));
        assert_eq!(parsed.total_points, 4);
        assert_eq!(parsed.points, shard.points);
        // The round trip is byte-exact too.
        assert_eq!(parsed.to_json(), text);
    }

    #[test]
    fn shard_parse_rejects_tampered_documents() {
        let spec = tiny_ber_spec();
        let shard = ShardReport::new(&spec, 1, 1, tiny_records(&[0, 1, 2, 3])).unwrap();
        let text = shard.to_json();

        let err = ShardReport::parse(&text.replace("\"seed\": 11", "\"seed\": 12")).unwrap_err();
        assert!(err.to_string().contains("fingerprint mismatch"), "{err}");

        let err = ShardReport::parse(&text.replace("\"bench\": \"shard\"", "\"bench\": \"ber\""))
            .unwrap_err();
        assert!(err.to_string().contains("not a shard document"), "{err}");

        let err =
            ShardReport::parse(&text.replace("\"schema_version\": 1", "\"schema_version\": 99"))
                .unwrap_err();
        assert!(
            err.to_string().contains("unsupported schema_version"),
            "{err}"
        );

        let err = ShardReport::parse(
            &text.replace("\"point_ids\": [0, 1, 2, 3]", "\"point_ids\": [0, 1, 2]"),
        )
        .unwrap_err();
        assert!(
            err.to_string().contains("point_ids header does not match"),
            "{err}"
        );
    }

    #[test]
    fn merge_reassembles_the_single_run_bytes_for_any_partition() {
        let spec = tiny_ber_spec();
        let ExperimentSpec::Ber(config) = &spec else {
            unreachable!()
        };
        let full = run_ber_sweep(config, &tiny_roster()).to_json();
        for count in 1..=5 {
            let shards: Vec<(String, ShardReport)> = (1..=count)
                .map(|index| {
                    let ids = shard_ids(4, index, count);
                    (
                        format!("shard{index}.json"),
                        ShardReport::new(&spec, index, count, tiny_records(&ids)).unwrap(),
                    )
                })
                .collect();
            let merged = merge_shards(&shards).expect("complete partition");
            assert_eq!(merged.as_report().to_json(), full, "count={count}");
        }
    }

    #[test]
    fn merge_rejects_mixed_overlapping_and_incomplete_shards() {
        let spec = tiny_ber_spec();
        let mut other = spec.clone();
        other.set_seed(99);
        let s1 = ShardReport::new(&spec, 1, 2, tiny_records(&[0, 2])).unwrap();
        let s2 = ShardReport::new(&spec, 2, 2, tiny_records(&[1, 3])).unwrap();

        let err = merge_shards(&[]).unwrap_err();
        assert!(err.to_string().contains("no shards"), "{err}");

        let mut foreign = s2.clone();
        foreign.spec = other.clone();
        foreign.fingerprint = spec_fingerprint(&other);
        let err =
            merge_shards(&[("a.json".into(), s1.clone()), ("b.json".into(), foreign)]).unwrap_err();
        assert!(err.to_string().contains("mixed spec fingerprints"), "{err}");
        assert!(err.to_string().contains("a.json") && err.to_string().contains("b.json"));

        let err = merge_shards(&[
            ("a.json".into(), s1.clone()),
            ("a2.json".into(), s1.clone()),
        ])
        .unwrap_err();
        assert!(err.to_string().contains("overlapping point sets"), "{err}");
        assert!(err.to_string().contains("point id 0"), "{err}");

        let err = merge_shards(&[("a.json".into(), s1.clone())]).unwrap_err();
        assert!(
            err.to_string().contains("missing point id(s) 1, 3"),
            "{err}"
        );

        let merged = merge_shards(&[("a.json".into(), s1), ("b.json".into(), s2)]).unwrap();
        assert_eq!(merged.as_report().name(), "ber");
    }

    #[test]
    fn checkpoint_journal_round_trips_and_tolerates_a_torn_tail() {
        let spec = tiny_ber_spec();
        let records = tiny_records(&[0, 1, 2, 3]);
        let mut journal = Checkpoint::header_line(&spec).unwrap();
        journal.push('\n');
        for r in &records[..2] {
            journal.push_str(&Checkpoint::point_line(r));
            journal.push('\n');
        }
        let ck = Checkpoint::parse(&journal).expect("clean journal");
        assert_eq!(ck.spec, spec);
        assert_eq!(ck.points.len(), 2);
        assert_eq!(ck.remaining_ids(), vec![2, 3]);
        assert!(!ck.is_complete());
        assert!(ck
            .assemble()
            .unwrap_err()
            .to_string()
            .contains("incomplete"));
        assert_eq!(ck.render(), journal);

        // A torn tail (kill mid-append) is dropped...
        let torn = format!("{journal}{}", &Checkpoint::point_line(&records[2])[..20]);
        let ck = Checkpoint::parse(&torn).expect("torn tail tolerated");
        assert_eq!(ck.points.len(), 2);
        // ...but corruption mid-file is not.
        let mid = format!(
            "{}\n{}\n{}\n",
            Checkpoint::header_line(&spec).unwrap(),
            &Checkpoint::point_line(&records[0])[..20],
            Checkpoint::point_line(&records[1]),
        );
        let err = Checkpoint::parse(&mid).unwrap_err();
        assert!(err.to_string().contains("line 2"), "{err}");

        // A complete journal assembles to the single-run bytes.
        let mut full = Checkpoint::header_line(&spec).unwrap();
        full.push('\n');
        for r in &records {
            full.push_str(&Checkpoint::point_line(r));
            full.push('\n');
        }
        let ck = Checkpoint::parse(&full).unwrap();
        assert!(ck.is_complete());
        let ExperimentSpec::Ber(config) = &spec else {
            unreachable!()
        };
        assert_eq!(
            ck.assemble().unwrap().as_report().to_json(),
            run_ber_sweep(config, &tiny_roster()).to_json()
        );
    }

    #[test]
    fn checkpoint_rejects_duplicates_and_foreign_headers() {
        let spec = tiny_ber_spec();
        let records = tiny_records(&[0]);
        let mut journal = Checkpoint::header_line(&spec).unwrap();
        journal.push('\n');
        journal.push_str(&Checkpoint::point_line(&records[0]));
        journal.push('\n');
        journal.push_str(&Checkpoint::point_line(&records[0]));
        journal.push('\n');
        let err = Checkpoint::parse(&journal).unwrap_err();
        assert!(err.to_string().contains("duplicate point id 0"), "{err}");

        let err = Checkpoint::parse("").unwrap_err();
        assert!(err.to_string().contains("empty checkpoint"), "{err}");

        let err = Checkpoint::parse("{\"checkpoint\": \"other\"}").unwrap_err();
        assert!(err.to_string().contains("not an hqw checkpoint"), "{err}");
    }
}
