//! Streaming frame engine: temporally-correlated channels, deadline-aware
//! hybrid dispatch, warm-started solvers.
//!
//! The paper's core systems argument (Figure 2, Challenge 3) is that hybrid
//! classical-quantum detection runs as a *pipeline under link-layer
//! deadlines*: data bits from successive channel uses stream through
//! classical and quantum stages against a turnaround budget. This module
//! turns the one-shot scenario engine into that workload: frames arrive on a
//! virtual clock from a Gauss–Markov [`ChannelTrack`], a [`DispatchPolicy`]
//! routes each frame to a classical detector or the warm-started SA/anneal
//! path, and per-frame service times are derived **deterministically** from
//! [`DetectorMeta`]-style work counters through a [`CostModel`] — never from
//! wall clocks — so the whole simulation is byte-reproducible at any thread
//! count.
//!
//! Warm starts are the streaming payoff of temporal coherence: frame `t` is
//! seeded from frame `t − 1`'s decision, which under a coherent channel
//! (`ρ` close to 1) is a low-ΔE_IS initial state — the premise the harvest
//! studies (`crate::harvest`) sample offline, earned online here. Each
//! hybrid frame also runs a cold-started reference read, so the report
//! carries the paired *warm-vs-cold sweeps-to-solution* measurement.
//!
//! ## Determinism contract
//!
//! A single stream is sequential by nature (the queue state and the warm
//! state both carry across frames); [`run_stream_grid`] fans the
//! (load × ρ × policy) grid out with
//! [`hqw_math::parallel::parallel_map_indexed`], with every cell's seed
//! derived up front from the grid seed and the cell's ρ index. Cells that
//! differ only in load or policy therefore see **identical frame
//! sequences** (paired comparison), and the JSON report is byte-identical
//! for any thread count — CI pins this by diffing a 1-thread against an
//! N-thread `fig-stream` run.

use crate::pipeline::item_seed;
use crate::report::PointRecord;
use crate::scenario::json_num;
use crate::spec::json::Json;
use crate::spec::{check_keys, req_f64, req_str, req_usize, ExperimentSpec, SpecError};
use hqw_math::parallel::parallel_map_indexed;
use hqw_math::stats::percentiles_of;
use hqw_math::Rng64;
use hqw_phy::channel::{ChannelTrack, TrackConfig};
use hqw_phy::detect::{Detector, DetectorMeta};
use hqw_phy::instance::DetectionInstance;
use hqw_phy::metrics::bit_error_rate;
use hqw_qubo::sa::{sa_read_traced, SaParams};
use hqw_qubo::{bits_to_spins, spins_to_bits, CsrIsing};

/// How the dispatcher routes frames between the classical and hybrid arms.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DispatchPolicy {
    /// Every frame takes the classical (linear) detector.
    AlwaysClassical,
    /// Every frame takes the warm-started hybrid/SA path.
    AlwaysHybrid,
    /// Deadline-aware fallback: a frame takes the hybrid path only when its
    /// projected completion (queue wait + nominal hybrid service) fits the
    /// latency budget, and downgrades to the classical detector otherwise.
    DeadlineAware,
}

impl DispatchPolicy {
    /// Every policy, in report order.
    pub const ALL: [DispatchPolicy; 3] = [
        DispatchPolicy::AlwaysClassical,
        DispatchPolicy::AlwaysHybrid,
        DispatchPolicy::DeadlineAware,
    ];

    /// Stable machine-readable name (used in stream reports).
    pub fn name(self) -> &'static str {
        match self {
            DispatchPolicy::AlwaysClassical => "always-classical",
            DispatchPolicy::AlwaysHybrid => "always-hybrid",
            DispatchPolicy::DeadlineAware => "deadline-aware",
        }
    }

    /// Parses a [`DispatchPolicy::name`] back (`None` for unknown names) —
    /// the experiment-spec layer's inverse of `name`.
    pub fn from_name(name: &str) -> Option<DispatchPolicy> {
        DispatchPolicy::ALL.into_iter().find(|p| p.name() == name)
    }
}

/// Deterministic per-operation cost model: maps a detector's algorithmic
/// work counters to programmed service microseconds.
///
/// Service time is `base + nodes·us_per_node + sweeps·us_per_sweep` — the
/// same programmed-time convention as the annealer's QPU accounting and the
/// initializer latency models, so the virtual clock never reads a wall
/// clock and stream reports stay bit-identical across machines and thread
/// counts.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Fixed per-frame overhead (filtering, reduction, readout) in µs.
    pub base_us: f64,
    /// Cost per search-tree node visited (µs).
    pub us_per_node: f64,
    /// Cost per SA/annealer sweep (µs).
    pub us_per_sweep: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            base_us: 10.0,
            us_per_node: 0.05,
            us_per_sweep: 1.5,
        }
    }
}

impl CostModel {
    /// Service time for a detection with the given work counters.
    pub fn service_us(&self, meta: &DetectorMeta) -> f64 {
        self.base_us
            + meta.nodes_visited as f64 * self.us_per_node
            + meta.sweeps as f64 * self.us_per_sweep
    }

    /// Nominal hybrid-path service time for an SA schedule of `sweeps`
    /// sweeps — what the deadline-aware policy budgets against.
    pub fn nominal_hybrid_us(&self, sweeps: usize) -> f64 {
        self.base_us + sweeps as f64 * self.us_per_sweep
    }
}

/// Configuration of one streaming cell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamConfig {
    /// The Gauss–Markov channel process frames are drawn from.
    pub track: TrackConfig,
    /// Number of frames to stream.
    pub frames: usize,
    /// Frame inter-arrival period (µs); smaller = higher offered load.
    pub arrival_period_us: f64,
    /// Per-frame latency budget (µs) — the link-layer turnaround deadline.
    pub deadline_us: f64,
    /// Routing policy.
    pub policy: DispatchPolicy,
    /// Work-counter → service-time model.
    pub cost: CostModel,
    /// SA schedule for the hybrid arm. The stream runs **one serving read
    /// per frame** (warm-started when a previous decision exists) plus one
    /// cold reference read; `num_reads`/`threads` are ignored.
    pub sa: SaParams,
    /// Cell seed; the track and every per-frame solver stream derive from it.
    pub seed: u64,
}

impl StreamConfig {
    /// Validates the cell configuration (including its track and SA
    /// parameters).
    ///
    /// A deadline of exactly 0 is **legal**: every frame then misses it,
    /// and the deadline-aware policy downgrades everything to the classical
    /// arm.
    ///
    /// # Errors
    /// Returns the first violated constraint.
    pub fn validate(&self) -> Result<(), SpecError> {
        let ctx = "StreamConfig";
        if self.frames == 0 {
            return Err(SpecError::new(ctx, "need at least one frame"));
        }
        if !(self.arrival_period_us > 0.0 && self.arrival_period_us.is_finite()) {
            return Err(SpecError::new(ctx, "arrival period must be > 0"));
        }
        if !(self.deadline_us >= 0.0 && self.deadline_us.is_finite()) {
            return Err(SpecError::new(
                ctx,
                "deadline must be >= 0 (a zero budget downgrades every deadline-aware frame)",
            ));
        }
        self.track
            .validate()
            .map_err(|msg| SpecError::new(ctx, msg))?;
        self.sa.validate().map_err(|msg| SpecError::new(ctx, msg))?;
        validate_cost(&self.cost).map_err(|msg| SpecError::new(ctx, msg))?;
        Ok(())
    }

    /// Shim for callers that still want the original panicking behaviour.
    /// Deprecated in spirit: new code should propagate
    /// [`StreamConfig::validate`] errors instead.
    ///
    /// # Panics
    /// Panics with the [`StreamConfig::validate`] message on any invalid
    /// field.
    pub fn validate_or_panic(&self) {
        if let Err(e) = self.validate() {
            panic!("{e}");
        }
    }
}

/// Shared cost-model sanity check (no context prefix — callers add their
/// own): all rates finite and non-negative.
pub(crate) fn validate_cost(cost: &CostModel) -> Result<(), String> {
    for (name, v) in [
        ("base_us", cost.base_us),
        ("us_per_node", cost.us_per_node),
        ("us_per_sweep", cost.us_per_sweep),
    ] {
        if !(v.is_finite() && v >= 0.0) {
            return Err(format!("cost.{name} must be finite and >= 0, got {v}"));
        }
    }
    Ok(())
}

/// Aggregate report of one streaming cell.
#[derive(Debug, Clone)]
pub struct StreamReport {
    /// Routing policy.
    pub policy: DispatchPolicy,
    /// Channel coherence of the cell's track.
    pub rho: f64,
    /// Frames streamed.
    pub frames: usize,
    /// Frame inter-arrival period (µs).
    pub arrival_period_us: f64,
    /// Latency budget (µs).
    pub deadline_us: f64,
    /// Cell seed.
    pub seed: u64,
    /// Mean wireless bit error rate across frames.
    pub ber: f64,
    /// Fraction of frames whose end-to-end latency exceeded the deadline.
    pub deadline_miss_rate: f64,
    /// Median end-to-end latency (µs).
    pub p50_latency_us: f64,
    /// 99th-percentile end-to-end latency (µs).
    pub p99_latency_us: f64,
    /// Sustained throughput: frames per millisecond of simulated time.
    pub throughput_per_ms: f64,
    /// Mean service time per frame (µs).
    pub avg_service_us: f64,
    /// Frames served by the classical arm.
    pub classical_frames: usize,
    /// Frames served by the hybrid arm.
    pub hybrid_frames: usize,
    /// Hybrid frames with a warm/cold measurement pair.
    pub warm_pairs: usize,
    /// Mean sweeps a **cold**-started read needed to reach its own final
    /// solution quality (over warm-pair frames; 0 when `warm_pairs == 0`).
    pub cold_sweeps_to_solution: f64,
    /// Mean sweeps a **warm**-started read needed to reach the paired cold
    /// read's final quality (misses count as the full sweep budget;
    /// 0 when `warm_pairs == 0`).
    pub warm_sweeps_to_solution: f64,
}

/// Runs one streaming cell: frames arrive every `arrival_period_us` on a
/// virtual clock, the policy routes each to `classical` or to the
/// warm-started SA path, and a FIFO single-server queue (the
/// [`crate::event_sim`] recurrence `start = max(arrival, prev_finish)`)
/// models the detection stage.
///
/// The classical arm is any [`Detector`]; the hybrid arm runs one
/// warm-started serving read per frame (seeded from the previous frame's
/// decision, whichever arm produced it) plus one cold-started reference
/// read that instruments the warm-vs-cold sweeps-to-solution comparison.
/// The cold read is measurement only — it never changes the decision and is
/// not charged to the virtual clock.
///
/// # Panics
/// Panics on zero frames, a non-positive arrival period, a negative
/// deadline, or invalid SA/track parameters (see
/// [`StreamConfig::validate`] for the non-panicking check). A deadline of
/// exactly 0 is accepted: every frame then misses it, and the
/// deadline-aware policy downgrades everything to the classical arm.
pub fn run_stream(config: &StreamConfig, classical: &dyn Detector) -> StreamReport {
    run_stream_observed(config, classical, None, 0)
}

/// [`run_stream`] with optional telemetry: when a collector is given, each
/// frame emits virtual-time spans under trace process `pid` — a `"stage"`
/// span for queue wait (when non-zero) and one for service on the server
/// lane (named after the serving arm), plus an end-to-end `"job"` span on
/// the frame lane. Timestamps are the virtual clock's µs, so the trace is
/// byte-stable across runs; the report is byte-identical with and without
/// a collector.
///
/// # Panics
/// As [`run_stream`].
pub fn run_stream_observed(
    config: &StreamConfig,
    classical: &dyn Detector,
    telemetry: Option<&crate::telemetry::Collector>,
    pid: u32,
) -> StreamReport {
    config.validate_or_panic();

    let mut recorders = telemetry.map(|collector| {
        collector.label_process(
            pid,
            &format!(
                "stream rho={} period={}us {}",
                config.track.rho,
                config.arrival_period_us,
                config.policy.name()
            ),
        );
        (
            collector.recorder(pid, 1, "server"),
            collector.recorder(pid, 2, "frames"),
        )
    });

    let mut track = ChannelTrack::new(config.track, config.seed);
    let single_read = SaParams {
        num_reads: 1,
        threads: 1,
        ..config.sa
    };
    // Reverse-annealing analog for the warm read: quench from the geometric
    // midpoint of the β ladder instead of the hot end. A full re-anneal
    // would randomize the seed away in the hot phase — the same reason the
    // paper's prototype reverses from s_p rather than annealing from s = 0.
    let warm_read = SaParams {
        beta_initial: (config.sa.beta_initial * config.sa.beta_final).sqrt(),
        ..single_read
    };
    let nominal_hybrid_us = config.cost.nominal_hybrid_us(config.sa.sweeps);

    let mut server_free = 0.0f64;
    let mut warm: Option<Vec<u8>> = None;
    let mut latencies = Vec::with_capacity(config.frames);
    let mut misses = 0usize;
    let mut ber_sum = 0.0f64;
    let mut service_sum = 0.0f64;
    let mut classical_frames = 0usize;
    let mut hybrid_frames = 0usize;
    let mut warm_pairs = 0usize;
    let mut cold_sweep_sum = 0.0f64;
    let mut warm_sweep_sum = 0.0f64;

    for t in 0..config.frames {
        let inst: DetectionInstance = track.next().expect("ChannelTrack is infinite");
        let arrival = t as f64 * config.arrival_period_us;
        let start = arrival.max(server_free);
        let queue_wait = start - arrival;

        let take_hybrid = match config.policy {
            DispatchPolicy::AlwaysClassical => false,
            DispatchPolicy::AlwaysHybrid => true,
            DispatchPolicy::DeadlineAware => queue_wait + nominal_hybrid_us <= config.deadline_us,
        };

        let (gray_decision, natural_decision, meta) = if take_hybrid {
            hybrid_frames += 1;
            let mut frame_rng = Rng64::new(item_seed(config.seed ^ 0x0057_EA4D, t));
            let (ising, _offset) = inst.reduction.qubo.to_ising();
            let csr = CsrIsing::from_ising(&ising);
            let n = inst.num_vars();

            // Cold reference read: uniform random start.
            let cold_start: Vec<i8> = (0..n)
                .map(|_| if frame_rng.next_bool() { 1 } else { -1 })
                .collect();
            let (cold_spins, _, cold_trace) =
                sa_read_traced(&csr, &single_read, &cold_start, &mut frame_rng);

            // Serving read: warm-started from the previous frame's decision
            // when one exists; the cold read doubles as the serving read on
            // the first hybrid frame.
            let natural = match &warm {
                Some(prev) if prev.len() == n => {
                    let warm_start = bits_to_spins(prev);
                    let (warm_spins, warm_energy, warm_trace) =
                        sa_read_traced(&csr, &warm_read, &warm_start, &mut frame_rng);
                    warm_pairs += 1;
                    cold_sweep_sum += cold_trace.sweeps_to_best() as f64;
                    warm_sweep_sum += warm_trace
                        .sweeps_to_reach(cold_trace.best_energy())
                        .unwrap_or(config.sa.sweeps) as f64;
                    // The paper's selection rule: the refined sample or the
                    // seed itself, whichever is lower — refinement can only
                    // help, never hurt. `best_by_sweep[0]` is the seed's
                    // energy on *this* frame's problem.
                    if warm_trace.best_by_sweep[0] < warm_energy {
                        prev.clone()
                    } else {
                        spins_to_bits(&warm_spins)
                    }
                }
                _ => spins_to_bits(&cold_spins),
            };
            let gray = inst.reduction.natural_to_gray(&natural);
            let meta = DetectorMeta {
                nodes_visited: 0,
                sweeps: config.sa.sweeps as u64,
            };
            (gray, natural, meta)
        } else {
            classical_frames += 1;
            let result = classical.detect(&inst.system, &inst.h, &inst.y);
            let natural = inst.reduction.gray_to_natural(&result.gray_bits);
            (result.gray_bits, natural, result.meta)
        };

        let service = config.cost.service_us(&meta);
        let finish = start + service;
        server_free = finish;
        let latency = finish - arrival;
        if let Some((server_rec, frame_rec)) = &mut recorders {
            let job = Some(t as u64);
            if queue_wait > 0.0 {
                server_rec.span_at("stage", "queue", job, arrival, queue_wait);
            }
            let arm = if take_hybrid {
                "hybrid-sa"
            } else {
                "classical"
            };
            server_rec.span_at("stage", arm, job, start, service);
            frame_rec.span_at("job", "frame", job, arrival, latency);
        }
        latencies.push(latency);
        if latency > config.deadline_us {
            misses += 1;
        }
        service_sum += service;
        ber_sum += bit_error_rate(&inst.tx_gray_bits, &gray_decision);
        // Either arm's decision seeds the next frame's warm start.
        warm = Some(natural_decision);
    }

    drop(recorders);

    let makespan_us = (config.frames - 1) as f64 * config.arrival_period_us
        + latencies.last().expect("frames > 0");
    // `latencies.last()` above is the *unsorted* final frame's latency;
    // only the percentile queries see the sorted order.
    let percentiles = percentiles_of(&latencies, &[50.0, 99.0]);
    let n = config.frames as f64;
    StreamReport {
        policy: config.policy,
        rho: config.track.rho,
        frames: config.frames,
        arrival_period_us: config.arrival_period_us,
        deadline_us: config.deadline_us,
        seed: config.seed,
        ber: ber_sum / n,
        deadline_miss_rate: misses as f64 / n,
        p50_latency_us: percentiles[0],
        p99_latency_us: percentiles[1],
        throughput_per_ms: n / makespan_us * 1000.0,
        avg_service_us: service_sum / n,
        classical_frames,
        hybrid_frames,
        warm_pairs,
        cold_sweeps_to_solution: if warm_pairs > 0 {
            cold_sweep_sum / warm_pairs as f64
        } else {
            0.0
        },
        warm_sweeps_to_solution: if warm_pairs > 0 {
            warm_sweep_sum / warm_pairs as f64
        } else {
            0.0
        },
    }
}

/// Configuration of a full (load × ρ × policy) stream sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamGridConfig {
    /// Base track; each cell overrides `rho` from [`StreamGridConfig::rhos`].
    pub track: TrackConfig,
    /// Frames per cell.
    pub frames: usize,
    /// Arrival periods to sweep (µs). List them **descending** so "later in
    /// the list" means "higher offered load".
    pub arrival_periods_us: Vec<f64>,
    /// Channel coherence values to sweep.
    pub rhos: Vec<f64>,
    /// Dispatch policies to sweep.
    pub policies: Vec<DispatchPolicy>,
    /// Latency budget shared by every cell (µs).
    pub deadline_us: f64,
    /// Work-counter → service-time model.
    pub cost: CostModel,
    /// Hybrid-arm SA schedule.
    pub sa: SaParams,
    /// Grid seed. Cell seeds derive from it and the cell's ρ index only, so
    /// cells differing in load or policy see identical frame sequences.
    pub seed: u64,
    /// Worker threads for the cell fan-out (0 = all available cores).
    /// Results are bit-identical for any value.
    pub threads: usize,
}

impl StreamGridConfig {
    /// Starts a builder with the standard policy roster
    /// ([`DispatchPolicy::ALL`]), default cost model and SA schedule; the
    /// load axis must be set before `build()`.
    pub fn builder(track: TrackConfig) -> StreamGridConfigBuilder {
        StreamGridConfigBuilder {
            config: StreamGridConfig {
                track,
                frames: 64,
                arrival_periods_us: Vec::new(),
                rhos: vec![0.0],
                policies: DispatchPolicy::ALL.to_vec(),
                deadline_us: 300.0,
                cost: CostModel::default(),
                sa: SaParams::default(),
                seed: 0,
                threads: 0,
            },
        }
    }

    /// Validates the grid configuration (axes plus every per-cell
    /// parameter).
    ///
    /// # Errors
    /// Returns the first violated constraint.
    pub fn validate(&self) -> Result<(), SpecError> {
        let ctx = "StreamGridConfig";
        if self.arrival_periods_us.is_empty() {
            return Err(SpecError::new(ctx, "empty load axis"));
        }
        if self.rhos.is_empty() {
            return Err(SpecError::new(ctx, "empty rho axis"));
        }
        if self.policies.is_empty() {
            return Err(SpecError::new(ctx, "empty policy axis"));
        }
        if let Some(bad) = self.rhos.iter().find(|r| !(0.0..=1.0).contains(*r)) {
            return Err(SpecError::new(ctx, format!("rho {bad} outside [0, 1]")));
        }
        // Every cell shares the remaining parameters; validate them once
        // through a representative cell.
        StreamConfig {
            track: TrackConfig {
                rho: self.rhos[0],
                ..self.track
            },
            frames: self.frames,
            arrival_period_us: self.arrival_periods_us[0],
            deadline_us: self.deadline_us,
            policy: self.policies[0],
            cost: self.cost,
            sa: self.sa,
            seed: self.seed,
        }
        .validate()?;
        if let Some(bad) = self
            .arrival_periods_us
            .iter()
            .find(|p| !(p.is_finite() && **p > 0.0))
        {
            return Err(SpecError::new(ctx, format!("arrival period {bad} not > 0")));
        }
        Ok(())
    }

    /// Shim for callers that still want the original panicking behaviour.
    /// Deprecated in spirit: new code should propagate
    /// [`StreamGridConfig::validate`] errors instead.
    ///
    /// # Panics
    /// Panics with the [`StreamGridConfig::validate`] message on any
    /// invalid field.
    pub fn validate_or_panic(&self) {
        if let Err(e) = self.validate() {
            panic!("{e}");
        }
    }
}

/// Builder for [`StreamGridConfig`] — the validated construction path the
/// spec layer and examples use (`build()` runs
/// [`StreamGridConfig::validate`]).
#[derive(Debug, Clone)]
pub struct StreamGridConfigBuilder {
    config: StreamGridConfig,
}

impl StreamGridConfigBuilder {
    /// Sets the frames streamed per cell (default 64).
    pub fn frames(mut self, frames: usize) -> Self {
        self.config.frames = frames;
        self
    }

    /// Sets the load axis: arrival periods in µs, **descending** so "later
    /// in the list" means "higher offered load". Required.
    pub fn arrival_periods_us(mut self, periods: Vec<f64>) -> Self {
        self.config.arrival_periods_us = periods;
        self
    }

    /// Sets the channel-coherence axis (default `[0.0]`).
    pub fn rhos(mut self, rhos: Vec<f64>) -> Self {
        self.config.rhos = rhos;
        self
    }

    /// Sets the policy axis (default: every [`DispatchPolicy`]).
    pub fn policies(mut self, policies: Vec<DispatchPolicy>) -> Self {
        self.config.policies = policies;
        self
    }

    /// Sets the per-frame latency budget in µs (default 300).
    pub fn deadline_us(mut self, deadline_us: f64) -> Self {
        self.config.deadline_us = deadline_us;
        self
    }

    /// Sets the work-counter → service-time model (default
    /// [`CostModel::default`]).
    pub fn cost(mut self, cost: CostModel) -> Self {
        self.config.cost = cost;
        self
    }

    /// Sets the hybrid-arm SA schedule (default [`SaParams::default`]).
    pub fn sa(mut self, sa: SaParams) -> Self {
        self.config.sa = sa;
        self
    }

    /// Sets the grid seed (default 0).
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Sets the worker-thread count (default 0 = all cores; results are
    /// bit-identical for any value).
    pub fn threads(mut self, threads: usize) -> Self {
        self.config.threads = threads;
        self
    }

    /// Validates and returns the configuration.
    ///
    /// # Errors
    /// Returns the first [`StreamGridConfig::validate`] violation.
    pub fn build(self) -> Result<StreamGridConfig, SpecError> {
        self.config.validate()?;
        Ok(self.config)
    }
}

/// A full stream-sweep report: the config echo plus one report per cell, in
/// (policy, ρ, load) grid order.
#[derive(Debug, Clone)]
pub struct StreamGridReport {
    /// Number of transmitting users.
    pub n_users: usize,
    /// Number of receive antennas.
    pub n_rx: usize,
    /// Modulation name.
    pub modulation: String,
    /// AWGN per-antenna variance.
    pub noise_variance: f64,
    /// Frames per cell.
    pub frames: usize,
    /// Latency budget (µs).
    pub deadline_us: f64,
    /// Grid seed.
    pub seed: u64,
    /// Per-cell reports: policy-major, then ρ, then load (arrival period in
    /// the configured order).
    pub cells: Vec<StreamReport>,
}

/// Runs the full (policy × ρ × load) grid, fanning cells out across
/// `config.threads` workers. See the module docs for the determinism
/// contract.
///
/// # Panics
/// Panics on an empty load/ρ/policy axis or invalid cell parameters (see
/// [`StreamGridConfig::validate`] for the non-panicking check).
pub fn run_stream_grid(config: &StreamGridConfig, classical: &dyn Detector) -> StreamGridReport {
    run_stream_grid_observed(config, classical, None)
}

/// [`run_stream_grid`] with optional telemetry: cell `i` of the flat
/// policy-major grid emits its virtual-time spans under trace process
/// `i + 1`. The report is byte-identical with and without a collector.
///
/// # Panics
/// As [`run_stream_grid`].
pub fn run_stream_grid_observed(
    config: &StreamGridConfig,
    classical: &dyn Detector,
    telemetry: Option<&crate::telemetry::Collector>,
) -> StreamGridReport {
    config.validate_or_panic();
    let ids: Vec<usize> =
        (0..config.policies.len() * config.rhos.len() * config.arrival_periods_us.len()).collect();
    StreamGridReport {
        n_users: config.track.n_users,
        n_rx: config.track.n_rx,
        modulation: config.track.modulation.name().to_string(),
        noise_variance: config.track.noise_variance,
        frames: config.frames,
        deadline_us: config.deadline_us,
        seed: config.seed,
        cells: run_stream_points_observed(config, classical, &ids, telemetry),
    }
}

/// Builds the cell config for one flat grid id (policy-major, then ρ, then
/// load — the `cells` array order of the report).
pub(crate) fn stream_cell_config(config: &StreamGridConfig, id: usize) -> StreamConfig {
    let loads = config.arrival_periods_us.len();
    let rhos = config.rhos.len();
    let policy = config.policies[id / (rhos * loads)];
    let rho_idx = (id / loads) % rhos;
    let mut track = config.track;
    track.rho = config.rhos[rho_idx];
    StreamConfig {
        track,
        frames: config.frames,
        arrival_period_us: config.arrival_periods_us[id % loads],
        deadline_us: config.deadline_us,
        policy,
        cost: config.cost,
        sa: config.sa,
        // ρ-indexed only: same frames across loads and policies.
        seed: item_seed(config.seed, rho_idx),
    }
}

/// Runs an arbitrary subset of the (policy × ρ × load) grid — the sharded
/// form of [`run_stream_grid`].
///
/// `ids` are flat indices into the policy-major grid (strictly increasing).
/// Cell seeds depend only on the grid seed and the cell's ρ index, so a
/// cell's report is byte-identical whether it runs alone or as part of the
/// full grid; `run_stream_grid` itself is the all-ids case.
///
/// # Panics
/// Panics on an invalid configuration or on ids that are out of range or
/// not strictly increasing.
pub fn run_stream_points(
    config: &StreamGridConfig,
    classical: &dyn Detector,
    ids: &[usize],
) -> Vec<StreamReport> {
    run_stream_points_observed(config, classical, ids, None)
}

/// [`run_stream_points`] with optional telemetry: flat grid id `i` emits
/// its virtual-time spans under trace process `i + 1` (stable whether the
/// cell runs alone or as part of the full grid).
///
/// # Panics
/// As [`run_stream_points`].
pub fn run_stream_points_observed(
    config: &StreamGridConfig,
    classical: &dyn Detector,
    ids: &[usize],
    telemetry: Option<&crate::telemetry::Collector>,
) -> Vec<StreamReport> {
    config.validate_or_panic();
    let total = config.policies.len() * config.rhos.len() * config.arrival_periods_us.len();
    for w in ids.windows(2) {
        assert!(
            w[0] < w[1],
            "run_stream_points: ids must be strictly increasing"
        );
    }
    if let Some(&last) = ids.last() {
        assert!(
            last < total,
            "run_stream_points: id {last} out of range (grid has {total} points)"
        );
    }
    let cells: Vec<(usize, StreamConfig)> = ids
        .iter()
        .map(|&id| (id, stream_cell_config(config, id)))
        .collect();
    parallel_map_indexed(&cells, config.threads, |_, (id, cell)| {
        run_stream_observed(cell, classical, telemetry, 1 + *id as u32)
    })
}

impl StreamReport {
    /// Renders one cell as a JSON object — one line of the report's `cells`
    /// array and the `point` field of a shard/checkpoint record.
    ///
    /// `frames`, `deadline_us` and `seed` are omitted: they are derivable
    /// from the grid config (and `StreamReport::from_json` reconstructs
    /// them from it).
    pub fn to_json_object(&self) -> String {
        format!(
            "{{\"policy\": \"{}\", \"rho\": {}, \"arrival_period_us\": {}, \
             \"ber\": {}, \"deadline_miss_rate\": {}, \"p50_latency_us\": {}, \
             \"p99_latency_us\": {}, \"throughput_per_ms\": {}, \
             \"avg_service_us\": {}, \"classical_frames\": {}, \
             \"hybrid_frames\": {}, \"warm_pairs\": {}, \
             \"cold_sweeps_to_solution\": {}, \"warm_sweeps_to_solution\": {}}}",
            self.policy.name(),
            json_num(self.rho),
            json_num(self.arrival_period_us),
            json_num(self.ber),
            json_num(self.deadline_miss_rate),
            json_num(self.p50_latency_us),
            json_num(self.p99_latency_us),
            json_num(self.throughput_per_ms),
            json_num(self.avg_service_us),
            self.classical_frames,
            self.hybrid_frames,
            self.warm_pairs,
            json_num(self.cold_sweeps_to_solution),
            json_num(self.warm_sweeps_to_solution),
        )
    }

    /// Parses a [`StreamReport::to_json_object`] document back, taking the
    /// omitted `frames`/`deadline_us`/`seed` fields as arguments. Exact:
    /// the float codec round-trips shortest-`Display` renderings
    /// losslessly.
    pub(crate) fn from_json(
        o: &Json,
        frames: usize,
        deadline_us: f64,
        seed: u64,
        ctx: &str,
    ) -> Result<StreamReport, SpecError> {
        check_keys(
            o,
            &[
                "policy",
                "rho",
                "arrival_period_us",
                "ber",
                "deadline_miss_rate",
                "p50_latency_us",
                "p99_latency_us",
                "throughput_per_ms",
                "avg_service_us",
                "classical_frames",
                "hybrid_frames",
                "warm_pairs",
                "cold_sweeps_to_solution",
                "warm_sweeps_to_solution",
            ],
            ctx,
        )?;
        let policy_name = req_str(o, "policy", ctx)?;
        let policy = DispatchPolicy::from_name(policy_name).ok_or_else(|| {
            SpecError::new(ctx.to_string(), format!("unknown policy '{policy_name}'"))
        })?;
        Ok(StreamReport {
            policy,
            rho: req_f64(o, "rho", ctx)?,
            frames,
            arrival_period_us: req_f64(o, "arrival_period_us", ctx)?,
            deadline_us,
            seed,
            ber: req_f64(o, "ber", ctx)?,
            deadline_miss_rate: req_f64(o, "deadline_miss_rate", ctx)?,
            p50_latency_us: req_f64(o, "p50_latency_us", ctx)?,
            p99_latency_us: req_f64(o, "p99_latency_us", ctx)?,
            throughput_per_ms: req_f64(o, "throughput_per_ms", ctx)?,
            avg_service_us: req_f64(o, "avg_service_us", ctx)?,
            classical_frames: req_usize(o, "classical_frames", ctx)?,
            hybrid_frames: req_usize(o, "hybrid_frames", ctx)?,
            warm_pairs: req_usize(o, "warm_pairs", ctx)?,
            cold_sweeps_to_solution: req_f64(o, "cold_sweeps_to_solution", ctx)?,
            warm_sweeps_to_solution: req_f64(o, "warm_sweeps_to_solution", ctx)?,
        })
    }
}

impl StreamGridReport {
    /// Renders the report as the `BENCH_stream.json` document (schema in
    /// `crates/bench/README.md`). Pure function of the report contents:
    /// byte-identical across runs and thread counts.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n  \"bench\": \"stream\",\n  \"scenario\": {\n");
        s.push_str(&format!("    \"n_users\": {},\n", self.n_users));
        s.push_str(&format!("    \"n_rx\": {},\n", self.n_rx));
        s.push_str(&format!("    \"modulation\": \"{}\",\n", self.modulation));
        s.push_str(&format!(
            "    \"noise_variance\": {},\n",
            json_num(self.noise_variance)
        ));
        s.push_str(&format!("    \"frames\": {},\n", self.frames));
        s.push_str(&format!(
            "    \"deadline_us\": {},\n",
            json_num(self.deadline_us)
        ));
        s.push_str(&format!("    \"seed\": {}\n  }},\n", self.seed));
        s.push_str("  \"cells\": [\n");
        for (i, cell) in self.cells.iter().enumerate() {
            s.push_str("    ");
            s.push_str(&cell.to_json_object());
            s.push_str(if i + 1 < self.cells.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        s.push_str("  ]\n}\n");
        s
    }
}

impl crate::report::Report for StreamGridReport {
    fn name(&self) -> &'static str {
        "stream"
    }

    fn schema_version(&self) -> u32 {
        1
    }

    fn to_json(&self) -> String {
        // Delegates to the inherent renderer (the committed-bytes contract
        // lives there).
        StreamGridReport::to_json(self)
    }

    fn table(&self) -> crate::report::Table {
        use crate::report::{fnum, Table};
        let mut table = Table::new(&[
            "policy",
            "rho",
            "period_us",
            "ber",
            "miss_rate",
            "p50_us",
            "p99_us",
            "fr_per_ms",
            "hybrid",
            "cold_sweeps",
            "warm_sweeps",
        ]);
        for c in &self.cells {
            table.push_row(vec![
                c.policy.name().to_string(),
                fnum(c.rho, 2),
                fnum(c.arrival_period_us, 0),
                fnum(c.ber, 5),
                fnum(c.deadline_miss_rate, 4),
                fnum(c.p50_latency_us, 1),
                fnum(c.p99_latency_us, 1),
                fnum(c.throughput_per_ms, 3),
                format!("{}/{}", c.hybrid_frames, c.frames),
                fnum(c.cold_sweeps_to_solution, 2),
                fnum(c.warm_sweeps_to_solution, 2),
            ]);
        }
        table
    }
}

impl crate::report::MergeableReport for StreamGridReport {
    fn points(&self) -> Vec<PointRecord> {
        self.cells
            .iter()
            .enumerate()
            .map(|(id, cell)| PointRecord {
                id,
                payload: cell.to_json_object(),
            })
            .collect()
    }

    fn from_points(spec: &ExperimentSpec, mut points: Vec<PointRecord>) -> Result<Self, SpecError> {
        let ctx = "StreamGridReport";
        let ExperimentSpec::Stream(config) = spec else {
            return Err(SpecError::new(
                ctx,
                format!("expected a stream spec, got '{}'", spec.family()),
            ));
        };
        let total = config.policies.len() * config.rhos.len() * config.arrival_periods_us.len();
        crate::report::sort_and_check_point_ids(&mut points, total, ctx)?;
        let cells = points
            .iter()
            .map(|record| {
                let p_ctx = &format!("stream point {}", record.id);
                let doc = Json::parse(&record.payload)
                    .map_err(|e| SpecError::new(p_ctx.clone(), e.to_string()))?;
                // The grid coordinates the cell was computed for: frames,
                // deadline and seed come from the spec, and the payload's
                // own coordinates must agree with its id.
                let want = stream_cell_config(config, record.id);
                let cell =
                    StreamReport::from_json(&doc, want.frames, want.deadline_us, want.seed, p_ctx)?;
                if cell.policy != want.policy
                    || cell.rho.to_bits() != want.track.rho.to_bits()
                    || cell.arrival_period_us.to_bits() != want.arrival_period_us.to_bits()
                {
                    return Err(SpecError::new(
                        p_ctx.clone(),
                        format!(
                            "grid coordinates ({}, rho {}, period {}) do not match the \
                             spec grid cell ({}, rho {}, period {})",
                            cell.policy.name(),
                            cell.rho,
                            cell.arrival_period_us,
                            want.policy.name(),
                            want.track.rho,
                            want.arrival_period_us
                        ),
                    ));
                }
                Ok(cell)
            })
            .collect::<Result<Vec<_>, SpecError>>()?;
        Ok(StreamGridReport {
            n_users: config.track.n_users,
            n_rx: config.track.n_rx,
            modulation: config.track.modulation.name().to_string(),
            noise_variance: config.track.noise_variance,
            frames: config.frames,
            deadline_us: config.deadline_us,
            seed: config.seed,
            cells,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hqw_phy::channel::snr_db_to_noise_variance;
    use hqw_phy::detect::Mmse;
    use hqw_phy::modulation::Modulation;

    /// A named field mutation for the validate() rejection-path tests.
    type Mutation<T> = (&'static str, Box<dyn Fn(&mut T)>);

    fn track(rho: f64) -> TrackConfig {
        TrackConfig {
            n_users: 3,
            n_rx: 3,
            modulation: Modulation::Qpsk,
            rho,
            noise_variance: snr_db_to_noise_variance(14.0, 3),
        }
    }

    fn quick_sa() -> SaParams {
        SaParams {
            sweeps: 48,
            num_reads: 1,
            threads: 1,
            ..SaParams::default()
        }
    }

    fn cell(policy: DispatchPolicy, rho: f64, period: f64) -> StreamConfig {
        StreamConfig {
            track: track(rho),
            frames: 40,
            arrival_period_us: period,
            deadline_us: 250.0,
            policy,
            cost: CostModel::default(),
            sa: quick_sa(),
            seed: 42,
        }
    }

    fn mmse() -> Mmse {
        Mmse::new(snr_db_to_noise_variance(14.0, 3))
    }

    #[test]
    fn stream_is_deterministic_per_seed() {
        let config = cell(DispatchPolicy::DeadlineAware, 0.9, 100.0);
        let a = run_stream(&config, &mmse());
        let b = run_stream(&config, &mmse());
        assert_eq!(a.to_json_object(), b.to_json_object());
    }

    #[test]
    fn always_classical_never_runs_the_hybrid_arm() {
        let report = run_stream(&cell(DispatchPolicy::AlwaysClassical, 0.5, 100.0), &mmse());
        assert_eq!(report.hybrid_frames, 0);
        assert_eq!(report.classical_frames, report.frames);
        assert_eq!(report.warm_pairs, 0);
        assert_eq!(report.deadline_miss_rate, 0.0, "MMSE fits any sane budget");
    }

    #[test]
    fn always_hybrid_warm_pairs_cover_all_but_frame_zero() {
        let report = run_stream(&cell(DispatchPolicy::AlwaysHybrid, 0.9, 400.0), &mmse());
        assert_eq!(report.hybrid_frames, report.frames);
        assert_eq!(report.warm_pairs, report.frames - 1);
        assert!(report.cold_sweeps_to_solution > 0.0);
    }

    #[test]
    fn coherent_warm_starts_beat_cold_starts() {
        // The acceptance criterion: at ρ ≥ 0.9 a warm-started read reaches
        // the cold read's final quality in strictly fewer sweeps on average.
        let report = run_stream(&cell(DispatchPolicy::AlwaysHybrid, 0.95, 400.0), &mmse());
        assert!(
            report.warm_sweeps_to_solution < report.cold_sweeps_to_solution,
            "warm {} vs cold {}",
            report.warm_sweeps_to_solution,
            report.cold_sweeps_to_solution
        );
    }

    #[test]
    fn miss_rate_is_monotone_in_offered_load() {
        // Same seed ⇒ same frames and service times; a shorter arrival
        // period can only increase queueing, so misses are monotone.
        let rates: Vec<f64> = [400.0, 150.0, 90.0, 60.0]
            .iter()
            .map(|&p| {
                run_stream(&cell(DispatchPolicy::AlwaysHybrid, 0.9, p), &mmse()).deadline_miss_rate
            })
            .collect();
        for w in rates.windows(2) {
            assert!(w[1] >= w[0], "miss rate dropped under load: {rates:?}");
        }
        assert!(
            rates.last().unwrap() > &0.5,
            "overload cell should miss most deadlines: {rates:?}"
        );
    }

    #[test]
    fn deadline_aware_downgrades_under_overload() {
        let overload = 60.0; // well below the nominal hybrid service time
        let hybrid = run_stream(&cell(DispatchPolicy::AlwaysHybrid, 0.9, overload), &mmse());
        let aware = run_stream(&cell(DispatchPolicy::DeadlineAware, 0.9, overload), &mmse());
        assert!(aware.classical_frames > 0, "no fallback under overload");
        assert!(
            aware.deadline_miss_rate < hybrid.deadline_miss_rate,
            "deadline-aware ({}) should miss less than always-hybrid ({})",
            aware.deadline_miss_rate,
            hybrid.deadline_miss_rate
        );
    }

    #[test]
    fn hybrid_detection_tracks_the_coherent_channel() {
        // Sanity: the warm-started hybrid arm still detects correctly — BER
        // at 14 dB QPSK must stay moderate, and the high-coherence stream
        // must not collapse to garbage decisions.
        let report = run_stream(&cell(DispatchPolicy::AlwaysHybrid, 0.95, 400.0), &mmse());
        assert!(report.ber < 0.2, "BER {} out of range", report.ber);
    }

    fn quick_grid(threads: usize) -> StreamGridConfig {
        StreamGridConfig {
            track: track(0.0),
            frames: 24,
            arrival_periods_us: vec![300.0, 90.0],
            rhos: vec![0.0, 0.95],
            policies: DispatchPolicy::ALL.to_vec(),
            deadline_us: 250.0,
            cost: CostModel::default(),
            sa: quick_sa(),
            seed: 7,
            threads,
        }
    }

    #[test]
    fn grid_report_is_bit_identical_for_any_thread_count() {
        let serial = run_stream_grid(&quick_grid(1), &mmse()).to_json();
        for threads in [2, 5, 0] {
            let parallel = run_stream_grid(&quick_grid(threads), &mmse()).to_json();
            assert_eq!(serial, parallel, "threads={threads}");
        }
    }

    #[test]
    fn grid_covers_every_cell_with_sane_metrics() {
        let config = quick_grid(0);
        let report = run_stream_grid(&config, &mmse());
        assert_eq!(report.cells.len(), 3 * 2 * 2);
        for c in &report.cells {
            assert!(
                (0.0..=1.0).contains(&c.ber),
                "{}: ber {}",
                c.policy.name(),
                c.ber
            );
            assert!((0.0..=1.0).contains(&c.deadline_miss_rate));
            assert!(c.p50_latency_us > 0.0 && c.p99_latency_us >= c.p50_latency_us);
            assert!(c.throughput_per_ms > 0.0);
            assert_eq!(c.classical_frames + c.hybrid_frames, c.frames);
        }
        let json = report.to_json();
        assert!(json.starts_with("{\n  \"bench\": \"stream\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert_eq!(json.matches("\"policy\"").count(), report.cells.len());
    }

    #[test]
    fn cells_differing_only_in_load_share_frame_sequences() {
        // The paired-comparison contract: same ρ ⇒ same seed ⇒ same BER for
        // the always-hybrid arm regardless of load.
        let report = run_stream_grid(&quick_grid(0), &mmse());
        let hybrid: Vec<_> = report
            .cells
            .iter()
            .filter(|c| c.policy == DispatchPolicy::AlwaysHybrid)
            .collect();
        for pair in hybrid.chunks(2) {
            assert_eq!(pair[0].rho, pair[1].rho);
            assert_eq!(pair[0].ber.to_bits(), pair[1].ber.to_bits());
        }
    }

    #[test]
    #[should_panic(expected = "need at least one frame")]
    fn zero_frame_track_rejected() {
        let mut config = cell(DispatchPolicy::AlwaysHybrid, 0.5, 100.0);
        config.frames = 0;
        run_stream(&config, &mmse());
    }

    #[test]
    fn zero_deadline_budget_downgrades_every_frame() {
        // A budget of 0 is legal: the deadline-aware policy can never fit
        // the hybrid path, so everything falls back to the classical arm —
        // and every frame (classical service > 0) is counted as a miss.
        let mut config = cell(DispatchPolicy::DeadlineAware, 0.9, 100.0);
        config.deadline_us = 0.0;
        let report = run_stream(&config, &mmse());
        assert_eq!(report.hybrid_frames, 0, "zero budget must disable hybrid");
        assert_eq!(report.classical_frames, report.frames);
        assert_eq!(report.warm_pairs, 0);
        assert_eq!(report.deadline_miss_rate, 1.0);
        // The downgraded stream still detects (MMSE at 14 dB).
        assert!(report.ber < 0.2, "fallback BER {}", report.ber);
    }

    #[test]
    #[should_panic(expected = "deadline must be >= 0")]
    fn negative_deadline_rejected() {
        let mut config = cell(DispatchPolicy::DeadlineAware, 0.9, 100.0);
        config.deadline_us = -1.0;
        run_stream(&config, &mmse());
    }

    #[test]
    #[should_panic(expected = "arrival period must be > 0")]
    fn zero_arrival_period_rejected() {
        let mut config = cell(DispatchPolicy::AlwaysHybrid, 0.5, 100.0);
        config.arrival_period_us = 0.0;
        run_stream(&config, &mmse());
    }

    #[test]
    #[should_panic(expected = "empty load axis")]
    fn empty_grid_axis_rejected() {
        let mut config = quick_grid(1);
        config.arrival_periods_us.clear();
        run_stream_grid(&config, &mmse());
    }

    #[test]
    fn cell_validate_rejects_each_bad_field_with_a_message() {
        let cases: [Mutation<StreamConfig>; 6] = [
            ("need at least one frame", Box::new(|c| c.frames = 0)),
            (
                "arrival period must be > 0",
                Box::new(|c| c.arrival_period_us = 0.0),
            ),
            ("deadline must be >= 0", Box::new(|c| c.deadline_us = -1.0)),
            ("rho must be in [0, 1]", Box::new(|c| c.track.rho = 1.5)),
            (
                "SaParams: sweeps must be > 0",
                Box::new(|c| c.sa.sweeps = 0),
            ),
            (
                "cost.base_us must be finite",
                Box::new(|c| c.cost.base_us = f64::NAN),
            ),
        ];
        for (needle, mutate) in cases {
            let mut config = cell(DispatchPolicy::AlwaysHybrid, 0.5, 100.0);
            mutate(&mut config);
            let err = config.validate().expect_err(needle);
            assert!(err.to_string().contains(needle), "{err} missing {needle}");
            assert_eq!(err.context(), "StreamConfig");
        }
        assert_eq!(
            cell(DispatchPolicy::AlwaysHybrid, 0.5, 100.0).validate(),
            Ok(())
        );
    }

    #[test]
    fn grid_validate_rejects_each_empty_axis_with_a_message() {
        let cases: [Mutation<StreamGridConfig>; 4] = [
            (
                "empty load axis",
                Box::new(|c| c.arrival_periods_us.clear()),
            ),
            ("empty rho axis", Box::new(|c| c.rhos.clear())),
            ("empty policy axis", Box::new(|c| c.policies.clear())),
            ("outside [0, 1]", Box::new(|c| c.rhos = vec![-0.5])),
        ];
        for (needle, mutate) in cases {
            let mut config = quick_grid(1);
            mutate(&mut config);
            let err = config.validate().expect_err(needle);
            assert!(err.to_string().contains(needle), "{err} missing {needle}");
            assert_eq!(err.context(), "StreamGridConfig");
        }
        assert_eq!(quick_grid(1).validate(), Ok(()));
    }

    #[test]
    fn grid_builder_constructs_validated_configs() {
        let config = StreamGridConfig::builder(track(0.0))
            .frames(32)
            .arrival_periods_us(vec![300.0, 90.0])
            .rhos(vec![0.0, 0.9])
            .policies(vec![DispatchPolicy::AlwaysHybrid])
            .deadline_us(250.0)
            .cost(CostModel::default())
            .sa(quick_sa())
            .seed(3)
            .threads(1)
            .build()
            .expect("valid builder chain");
        assert_eq!(config.frames, 32);
        assert_eq!(config.policies, vec![DispatchPolicy::AlwaysHybrid]);
        assert_eq!(config.seed, 3);

        let err = StreamGridConfig::builder(track(0.0))
            .build()
            .expect_err("missing load axis must be rejected");
        assert!(err.to_string().contains("empty load axis"));
    }

    #[test]
    fn policy_names_round_trip() {
        for policy in DispatchPolicy::ALL {
            assert_eq!(DispatchPolicy::from_name(policy.name()), Some(policy));
        }
        assert_eq!(DispatchPolicy::from_name("sometimes"), None);
    }
}
