//! The wall-clock realtime fabric service — the production twin of the
//! [`crate::fabric`] virtual-time simulation.
//!
//! ## Architecture: virtual control plane, wall-clock data plane
//!
//! The service splits the fabric into two planes running on real threads:
//!
//! * **Producers** (`RealtimeConfig::producers` threads): cells are sharded
//!   across producer threads; each producer streams its cells' frames, in
//!   arrival order, into **sharded MPMC delivery queues**
//!   (`RealtimeConfig::queue_shards` mutex+condvar queues, std-only).
//! * **Sequencer** (the control plane): drains the delivery shards and
//!   feeds a **charge-only** [`FabricScheduler`] in virtual-arrival order.
//!   Charge-only means backends are charged the exact `service_us` that
//!   [`crate::fabric::SolverBackend::solve_batch`] would bill — via
//!   `charge_batch_us`, which also evolves amortization state (the mock
//!   QPU's embedding cache) identically — without solving anything.
//!   Admission, batch formation and routing therefore remain a **pure
//!   function of the arrival sequence**, no matter how threads race.
//! * **Workers** (one pool per backend, plus a classical-fallback worker):
//!   consume the formed batches from per-backend execution queues and run
//!   the actual solves on their own backend instances, off the control
//!   plane's critical path.
//!
//! ## The replay contract
//!
//! Because the control plane's virtual bookkeeping is deterministic, the
//! recorded [`RouteTrace`] must be **bit-identical** to the trace the
//! virtual-time sim produces for the same config
//! ([`crate::fabric::run_fabric_traced`]) — zero divergence, by
//! construction, checked per point at run time and re-checked in CI by
//! replaying the committed trace file through the sim
//! ([`replay_trace_doc`]). Detection results are equally deterministic
//! (per-job seeds, identical batch composition), so the realtime BER
//! equals the sim's bit for bit; only the wall-clock throughput/latency
//! numbers (`BENCH_fabric_rt.json`) vary with the machine.

use crate::fabric::{
    generate_jobs, grid_points, run_fabric_traced, FabricConfig, FabricGridConfig, FabricJob,
    FabricMode, FabricScheduler, RealtimeConfig, RouteTrace,
};
use crate::scenario::json_num;
use crate::spec::json::Json;
use crate::spec::{ExperimentSpec, SpecError};
use crate::telemetry::{Collector, CounterSample, LogHistogram, TelemetrySummary};
use hqw_math::stats::safe_ratio;
use hqw_phy::detect::{Detector, Mmse};
use hqw_phy::metrics::bit_error_rate;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------------
// Queues
// ---------------------------------------------------------------------------

/// A closable MPMC queue: mutex-guarded deque plus condvar (std-only; the
/// container has no crates-io access, so no channel crates).
struct SharedQueue<T> {
    inner: Mutex<(VecDeque<T>, bool)>,
    cv: Condvar,
}

impl<T> SharedQueue<T> {
    fn new() -> Self {
        SharedQueue {
            inner: Mutex::new((VecDeque::new(), false)),
            cv: Condvar::new(),
        }
    }

    fn push(&self, value: T) {
        let mut guard = self.inner.lock().expect("queue poisoned");
        debug_assert!(!guard.1, "push after close");
        guard.0.push_back(value);
        self.cv.notify_one();
    }

    fn close(&self) {
        let mut guard = self.inner.lock().expect("queue poisoned");
        guard.1 = true;
        self.cv.notify_all();
    }

    /// Blocks for the next value; `None` once closed and empty.
    fn pop(&self) -> Option<T> {
        let mut guard = self.inner.lock().expect("queue poisoned");
        loop {
            if let Some(value) = guard.0.pop_front() {
                return Some(value);
            }
            if guard.1 {
                return None;
            }
            guard = self.cv.wait(guard).expect("queue poisoned");
        }
    }

    /// Instantaneous depth (the telemetry sampler's read; racy by nature).
    fn len(&self) -> usize {
        self.inner.lock().expect("queue poisoned").0.len()
    }
}

/// The producer→sequencer delivery fabric: sharded queues with one shared
/// wake-up signal so the sequencer can sleep while nothing is in flight.
struct DeliveryShards {
    /// `(job id, delivery instant)` per shard; a job's shard is
    /// `cell % shards.len()`.
    shards: Vec<Mutex<VecDeque<(usize, Instant)>>>,
    /// `(jobs pushed, producers finished)` — the sequencer's sleep guard.
    signal: Mutex<(usize, usize)>,
    cv: Condvar,
}

impl DeliveryShards {
    fn new(n_shards: usize) -> Self {
        DeliveryShards {
            shards: (0..n_shards).map(|_| Mutex::new(VecDeque::new())).collect(),
            signal: Mutex::new((0, 0)),
            cv: Condvar::new(),
        }
    }

    fn push(&self, shard: usize, job_id: usize) {
        self.shards[shard]
            .lock()
            .expect("shard poisoned")
            .push_back((job_id, Instant::now()));
        self.signal.lock().expect("signal poisoned").0 += 1;
        self.cv.notify_one();
    }

    fn producer_done(&self) {
        self.signal.lock().expect("signal poisoned").1 += 1;
        self.cv.notify_one();
    }

    /// Drains every shard into `out`; when nothing is available and
    /// producers are still running, sleeps until a push or a producer exit.
    fn drain_or_wait(&self, consumed: usize, n_producers: usize, out: &mut Vec<(usize, Instant)>) {
        loop {
            for shard in &self.shards {
                out.extend(shard.lock().expect("shard poisoned").drain(..));
            }
            if !out.is_empty() {
                return;
            }
            let mut signal = self.signal.lock().expect("signal poisoned");
            while signal.0 == consumed && signal.1 < n_producers {
                signal = self.cv.wait(signal).expect("signal poisoned");
            }
            if signal.0 == consumed {
                // Every producer exited with nothing left to deliver.
                return;
            }
        }
    }

    /// Instantaneous total depth across shards (the telemetry sampler's
    /// read; racy by nature).
    fn depth(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("shard poisoned").len())
            .sum()
    }
}

// ---------------------------------------------------------------------------
// One realtime point
// ---------------------------------------------------------------------------

/// Wall-clock metrics of one realtime grid point.
#[derive(Debug, Clone)]
pub struct FabricRtReport {
    /// Backend-mix name.
    pub mix: String,
    /// Radio cells sharing the fabric.
    pub n_cells: usize,
    /// Mean per-cell arrival period on the virtual clock (µs).
    pub arrival_period_us: f64,
    /// Total jobs across all cells.
    pub jobs: usize,
    /// Mean wireless bit error rate — bit-identical to the virtual sim's.
    pub ber: f64,
    /// Fraction of jobs routed to the classical fallback.
    pub fallback_rate: f64,
    /// Sustained throughput: jobs over the wall-clock makespan (frames/s).
    pub frames_per_sec: f64,
    /// Median wall-clock delivery→completion latency (ms).
    pub p50_ms: f64,
    /// 99th-percentile wall-clock latency (ms).
    pub p99_ms: f64,
    /// 99.9th-percentile wall-clock latency (ms).
    pub p999_ms: f64,
    /// Mean scheduler decision cost per job (ns): the control-plane
    /// critical path — virtual-clock advance plus admission.
    pub decision_ns_per_job: f64,
    /// Wall-clock makespan of the point (ms).
    pub wall_ms: f64,
    /// Routing decisions differing from the virtual-time sim's on the same
    /// config. The service self-checks every point; **must be 0**.
    pub replay_divergences: usize,
}

/// Telemetry lane (tid) allocation within a point's trace process: the
/// sequencer, then one lane per backend worker, the fallback worker,
/// producers from 500, and per-cell frame lanes from 1000.
const TID_SEQUENCER: u32 = 1;
const TID_WORKER_BASE: u32 = 2;
const TID_PRODUCER_BASE: u32 = 500;
const TID_FRAME_BASE: u32 = 1000;

/// Runs one realtime point and returns its metrics plus the recorded
/// routing trace.
///
/// With a collector, the run emits the full frame-lifecycle span chain
/// (`enqueue → admit → form → wait → solve` per job, contiguous by
/// construction so the stage sum equals the end-to-end span), per-batch
/// worker spans, and ~1 ms queue-depth / in-flight / backend-utilization
/// counter samples under trace process `pid`. Instrumentation reads clocks
/// and counters but feeds nothing back into scheduling: the routing trace
/// and every deterministic report field are identical with telemetry on or
/// off.
fn run_fabric_rt_point(
    config: &FabricConfig,
    rt: RealtimeConfig,
    telemetry: Option<&Collector>,
    pid: u32,
) -> (FabricRtReport, RouteTrace) {
    let jobs = generate_jobs(config);
    let n_jobs = jobs.len();
    let n_backends = config.backends.len();
    let n_producers = rt.producers.min(config.n_cells).max(1);

    if n_jobs == 0 {
        // A zero-frame point has nothing to run and nothing to divide by:
        // every ratio reports 0.0, not NaN.
        return (
            FabricRtReport {
                mix: String::new(),
                n_cells: config.n_cells,
                arrival_period_us: config.arrival_period_us,
                jobs: 0,
                ber: 0.0,
                fallback_rate: 0.0,
                frames_per_sec: 0.0,
                p50_ms: 0.0,
                p99_ms: 0.0,
                p999_ms: 0.0,
                decision_ns_per_job: 0.0,
                wall_ms: 0.0,
                replay_divergences: 0,
            },
            Vec::new(),
        );
    }

    if let Some(collector) = telemetry {
        collector.label_process(
            pid,
            &format!(
                "fabric-rt cells={} period={}us",
                config.n_cells, config.arrival_period_us
            ),
        );
    }

    let delivery = DeliveryShards::new(rt.queue_shards);
    // Batches carry their formation instant so workers can attribute
    // exec-queue wait; the stamp is one clock read per batch, taken after
    // the routing decision is already made.
    let exec_queues: Vec<SharedQueue<(Vec<usize>, Instant)>> =
        (0..n_backends).map(|_| SharedQueue::new()).collect();
    let fallback_queue: SharedQueue<(usize, Instant)> = SharedQueue::new();

    let mut scheduler = FabricScheduler::new_charge_only(
        &config.backends,
        config.cost,
        config.deadline_us,
        config.sched,
    );
    let backend_names = scheduler.backend_names();
    let mut delivered_at: Vec<Option<Instant>> = vec![None; n_jobs];
    let mut decision_ns: u128 = 0;

    // Telemetry-only stage bookkeeping (allocated only when observing).
    let mut admit_bounds: Option<Vec<(Instant, Instant)>> =
        telemetry.map(|_| Vec::with_capacity(n_jobs));
    let mut formed_at: Option<Vec<Option<Instant>>> = telemetry.map(|_| vec![None; n_jobs]);

    // Sampler-visible gauges: jobs admitted/completed and per-lane busy ns
    // (backends, then the fallback). Touched only when observing.
    let admitted = AtomicU64::new(0);
    let completed = AtomicU64::new(0);
    let busy_ns: Vec<AtomicU64> = (0..n_backends + 1).map(|_| AtomicU64::new(0)).collect();
    let sampler_stop = AtomicBool::new(false);

    // `(job id, ber, completion instant)` per worker, joined below.
    let mut worker_results: Vec<Vec<(usize, f64, Instant)>> = Vec::new();

    std::thread::scope(|s| {
        // Producers: cells are sharded across producer threads; each
        // producer streams its cells' jobs in global arrival order (job
        // ids index the arrival-sorted list) into the delivery shards.
        for p in 0..n_producers {
            let jobs = &jobs;
            let delivery = &delivery;
            s.spawn(move || {
                for (id, job) in jobs.iter().enumerate() {
                    if job.cell % n_producers == p {
                        delivery.push(job.cell % rt.queue_shards, id);
                    }
                }
                delivery.producer_done();
            });
        }

        // Backend workers: each owns a freshly built backend instance (the
        // solving role; the control plane's instances only charge) and
        // drains its execution queue. Backends hold `Rc` state internally,
        // so each instance is built inside its own thread.
        let worker_handles: Vec<_> = (0..n_backends)
            .map(|b| {
                let jobs = &jobs;
                let spec = config.backends[b];
                let cost = config.cost;
                let queue = &exec_queues[b];
                let busy_ns = &busy_ns;
                let completed = &completed;
                s.spawn(move || {
                    let mut backend = spec.build();
                    let mut recorder = telemetry
                        .map(|c| c.recorder(pid, TID_WORKER_BASE + b as u32, backend.name()));
                    let mut results = Vec::new();
                    while let Some((batch, formed)) = queue.pop() {
                        let popped = Instant::now();
                        let batch_jobs: Vec<&FabricJob> =
                            batch.iter().map(|&id| &jobs[id]).collect();
                        let outcome = backend.solve_batch(&cost, &batch_jobs);
                        let done = Instant::now();
                        if let Some(rec) = &mut recorder {
                            busy_ns[b]
                                .fetch_add((done - popped).as_nanos() as u64, Ordering::Relaxed);
                            completed.fetch_add(batch.len() as u64, Ordering::Relaxed);
                            rec.span_wall("batch", backend.name(), None, popped, done);
                            for &id in &batch {
                                rec.span_wall("stage", "wait", Some(id as u64), formed, popped);
                                rec.span_wall("stage", "solve", Some(id as u64), popped, done);
                            }
                        }
                        for (&id, decision) in batch.iter().zip(&outcome.decisions) {
                            let ber =
                                bit_error_rate(&jobs[id].inst.tx_gray_bits, &decision.gray_bits);
                            results.push((id, ber, done));
                        }
                    }
                    results
                })
            })
            .collect();

        // Classical-fallback worker: uncontended local compute for jobs
        // the admission control rejects.
        let fallback_handle = {
            let jobs = &jobs;
            let queue = &fallback_queue;
            let noise_variance = config.track.noise_variance;
            let busy_ns = &busy_ns;
            let completed = &completed;
            s.spawn(move || {
                let classical = Mmse::new(noise_variance);
                let mut recorder = telemetry
                    .map(|c| c.recorder(pid, TID_WORKER_BASE + n_backends as u32, "fallback-mmse"));
                let mut results = Vec::new();
                while let Some((id, formed)) = queue.pop() {
                    let popped = Instant::now();
                    let job = &jobs[id];
                    let result = classical.detect(&job.inst.system, &job.inst.h, &job.inst.y);
                    let done = Instant::now();
                    if let Some(rec) = &mut recorder {
                        busy_ns[n_backends]
                            .fetch_add((done - popped).as_nanos() as u64, Ordering::Relaxed);
                        completed.fetch_add(1, Ordering::Relaxed);
                        rec.span_wall("stage", "wait", Some(id as u64), formed, popped);
                        rec.span_wall("stage", "solve", Some(id as u64), popped, done);
                    }
                    let ber = bit_error_rate(&job.inst.tx_gray_bits, &result.gray_bits);
                    results.push((id, ber, done));
                }
                results
            })
        };

        // Periodic sampler (telemetry only): queue depths, in-flight count
        // and per-lane utilization roughly every millisecond, entirely
        // read-only against the data plane.
        let sampler_handle = telemetry.map(|collector| {
            let delivery = &delivery;
            let exec_queues = &exec_queues;
            let fallback_queue = &fallback_queue;
            let admitted = &admitted;
            let completed = &completed;
            let busy_ns = &busy_ns;
            let sampler_stop = &sampler_stop;
            let backend_names = backend_names.clone();
            s.spawn(move || {
                let mut last = Instant::now();
                let mut last_busy = vec![0u64; busy_ns.len()];
                while !sampler_stop.load(Ordering::Relaxed) {
                    std::thread::sleep(Duration::from_millis(1));
                    let now = Instant::now();
                    let ts_us = collector.us_since_origin(now);

                    let mut values = vec![("delivery".to_string(), delivery.depth() as f64)];
                    for (b, queue) in exec_queues.iter().enumerate() {
                        values.push((format!("exec_{}", backend_names[b]), queue.len() as f64));
                    }
                    values.push(("fallback".to_string(), fallback_queue.len() as f64));
                    let in_flight = admitted.load(Ordering::Relaxed) as i64
                        - completed.load(Ordering::Relaxed) as i64;
                    values.push(("in_flight".to_string(), in_flight.max(0) as f64));
                    collector.push_counter(CounterSample {
                        pid,
                        name: "queues",
                        ts_us,
                        values,
                    });

                    let wall_ns = (now - last).as_nanos() as f64;
                    if wall_ns > 0.0 {
                        let values = busy_ns
                            .iter()
                            .enumerate()
                            .map(|(i, busy)| {
                                let total = busy.load(Ordering::Relaxed);
                                let delta = total.saturating_sub(last_busy[i]) as f64;
                                last_busy[i] = total;
                                let name = backend_names
                                    .get(i)
                                    .map(|n| (*n).to_string())
                                    .unwrap_or_else(|| "fallback".to_string());
                                (name, (delta / wall_ns).min(1.0))
                            })
                            .collect();
                        collector.push_counter(CounterSample {
                            pid,
                            name: "utilization",
                            ts_us,
                            values,
                        });
                    }
                    last = now;
                }
            })
        });

        // Sequencer (control plane), on this thread: consume deliveries,
        // admit in virtual-arrival order, dispatch formed batches.
        let mut next = 0usize;
        let mut consumed = 0usize;
        let mut drained: Vec<(usize, Instant)> = Vec::new();
        while next < n_jobs {
            drained.clear();
            delivery.drain_or_wait(consumed, n_producers, &mut drained);
            consumed += drained.len();
            for &(id, at) in &drained {
                delivered_at[id] = Some(at);
            }
            // Admissions happen strictly in virtual-arrival order: job k
            // is admitted only once delivered, and never before job k-1.
            // This is what pins the trace to the sim's regardless of how
            // producer threads interleave.
            while next < n_jobs && delivered_at[next].is_some() {
                let t_a = jobs[next].arrival_us;
                let t0 = Instant::now();
                scheduler.advance_to(t_a, &jobs);
                scheduler.admit_charged(next, t_a, &jobs);
                let t1 = Instant::now();
                decision_ns += (t1 - t0).as_nanos();
                if let Some(bounds) = &mut admit_bounds {
                    bounds.push((t0, t1));
                    admitted.fetch_add(1, Ordering::Relaxed);
                }
                for formed in scheduler.take_formed() {
                    let at = Instant::now();
                    if let Some(stamps) = &mut formed_at {
                        for &id in &formed.jobs {
                            stamps[id] = Some(at);
                        }
                    }
                    exec_queues[formed.backend].push((formed.jobs, at));
                }
                if scheduler.trace()[next].is_none() {
                    let at = Instant::now();
                    if let Some(stamps) = &mut formed_at {
                        stamps[next] = Some(at);
                    }
                    fallback_queue.push((next, at));
                }
                // Preempted victims were still queued (never dispatched),
                // so they take the classical path here exactly as in the
                // sim; their trace entries already read `None`.
                for victim in scheduler.take_evicted() {
                    let at = Instant::now();
                    if let Some(stamps) = &mut formed_at {
                        stamps[victim] = Some(at);
                    }
                    fallback_queue.push((victim, at));
                }
                next += 1;
            }
        }
        // All jobs admitted: run the virtual clock out so residual queued
        // jobs coalesce into their final batches, then release the pools.
        scheduler.drain(&jobs);
        for formed in scheduler.take_formed() {
            let at = Instant::now();
            if let Some(stamps) = &mut formed_at {
                for &id in &formed.jobs {
                    stamps[id] = Some(at);
                }
            }
            exec_queues[formed.backend].push((formed.jobs, at));
        }
        for queue in &exec_queues {
            queue.close();
        }
        fallback_queue.close();

        for handle in worker_handles {
            worker_results.push(handle.join().expect("backend worker panicked"));
        }
        worker_results.push(fallback_handle.join().expect("fallback worker panicked"));
        if let Some(handle) = sampler_handle {
            sampler_stop.store(true, Ordering::Relaxed);
            handle.join().expect("sampler panicked");
        }
    });

    let trace: RouteTrace = scheduler.trace().to_vec();
    assert_eq!(trace.len(), n_jobs, "every job gets a routing decision");

    // Assemble per-job outcomes in job-id order (the same order the sim
    // sums in, so the BER mean is bit-identical).
    let mut ber_by_job: Vec<Option<f64>> = vec![None; n_jobs];
    let mut completed_at: Vec<Option<Instant>> = vec![None; n_jobs];
    for (id, ber, done) in worker_results.into_iter().flatten() {
        ber_by_job[id] = Some(ber);
        completed_at[id] = Some(done);
    }

    // Sequencer-side stage spans and per-cell frame lanes, emitted after
    // the run from the recorded instants.
    if let Some(collector) = telemetry {
        let bounds = admit_bounds.as_ref().expect("observing");
        let stamps = formed_at.as_ref().expect("observing");
        {
            let mut seq = collector.recorder(pid, TID_SEQUENCER, "sequencer");
            for id in 0..n_jobs {
                let delivered = delivered_at[id].expect("delivered");
                let (t0, t1) = bounds[id];
                let job = Some(id as u64);
                seq.span_wall("stage", "enqueue", job, delivered, t0);
                seq.span_wall("stage", "admit", job, t0, t1);
                seq.span_wall("stage", "form", job, t1, stamps[id].expect("formed"));
            }
        }
        let mut producer_recs: Vec<_> = (0..n_producers)
            .map(|p| collector.recorder(pid, TID_PRODUCER_BASE + p as u32, &format!("producer{p}")))
            .collect();
        let mut frame_recs: Vec<_> = (0..config.n_cells)
            .map(|c| collector.recorder(pid, TID_FRAME_BASE + c as u32, &format!("cell{c} frames")))
            .collect();
        for (id, job) in jobs.iter().enumerate() {
            let delivered = delivered_at[id].expect("delivered");
            producer_recs[job.cell % n_producers].mark_wall("produce", Some(id as u64), delivered);
            frame_recs[job.cell].span_wall(
                "job",
                "frame",
                Some(id as u64),
                delivered,
                completed_at[id].expect("completed"),
            );
        }
    }

    let started = delivered_at
        .iter()
        .map(|t| t.expect("every job was delivered"))
        .min()
        .expect("non-empty point");
    let finished = completed_at
        .iter()
        .map(|t| t.expect("every job completed"))
        .max()
        .expect("non-empty point");
    let makespan = finished.duration_since(started);

    // Log-bucketed latency digest: bounded-relative-error percentiles
    // without keeping (or sorting) the full latency vector.
    let mut latency_hist = LogHistogram::new();
    for id in 0..n_jobs {
        let from = delivered_at[id].expect("delivered");
        let to = completed_at[id].expect("completed");
        latency_hist.record(to.duration_since(from).as_secs_f64() * 1e3);
    }

    // Self-check: the virtual-time sim must make the same decisions.
    let (_, sim_trace) = run_fabric_traced(config);
    let replay_divergences = diff_traces(&trace, &sim_trace).len();

    let fallbacks = trace.iter().filter(|r| r.is_none()).count();
    let n = n_jobs as f64;
    let report = FabricRtReport {
        mix: String::new(), // filled by the grid runner
        n_cells: config.n_cells,
        arrival_period_us: config.arrival_period_us,
        jobs: n_jobs,
        ber: safe_ratio(
            ber_by_job
                .iter()
                .map(|b| b.expect("every job has a result"))
                .sum::<f64>(),
            n,
        ),
        fallback_rate: safe_ratio(fallbacks as f64, n),
        frames_per_sec: safe_ratio(n, makespan.as_secs_f64()),
        p50_ms: latency_hist.percentile(50.0),
        p99_ms: latency_hist.percentile(99.0),
        p999_ms: latency_hist.percentile(99.9),
        decision_ns_per_job: safe_ratio(decision_ns as f64, n),
        wall_ms: makespan.as_secs_f64() * 1e3,
        replay_divergences,
    };
    (report, trace)
}

// ---------------------------------------------------------------------------
// The grid
// ---------------------------------------------------------------------------

/// A full realtime-fabric sweep: the config echo, one wall-clock report per
/// grid point, and the recorded routing traces (emitted separately as the
/// replay-trace document, not part of `BENCH_fabric_rt.json`).
#[derive(Debug, Clone)]
pub struct FabricRtGridReport {
    /// Number of transmitting users per cell.
    pub n_users: usize,
    /// Number of receive antennas per cell.
    pub n_rx: usize,
    /// Modulation name.
    pub modulation: String,
    /// AWGN per-antenna variance.
    pub noise_variance: f64,
    /// Frames per cell.
    pub frames_per_cell: usize,
    /// Latency budget on the virtual clock (µs).
    pub deadline_us: f64,
    /// Grid seed.
    pub seed: u64,
    /// Arrival-process tag.
    pub arrival: String,
    /// Producer threads per point.
    pub producers: usize,
    /// Delivery-queue shards per point.
    pub queue_shards: usize,
    /// Per-point reports: mix-major, then cell count, then load.
    pub points: Vec<FabricRtReport>,
    /// Per-point routing traces, parallel to `points`.
    pub traces: Vec<RouteTrace>,
    /// Telemetry digest across all points — present only when the grid ran
    /// with a collector (`--telemetry`); rendered as the `"telemetry"`
    /// stanza of `BENCH_fabric_rt.json`. `None` leaves the document
    /// byte-identical to a pre-telemetry run.
    pub telemetry: Option<TelemetrySummary>,
}

/// Runs the full realtime (mix × cells × load) grid. Points run
/// sequentially — each point's producers and worker pools occupy the
/// machine — over the exact per-point configs the virtual grid expands to,
/// so the sim can replay every trace.
///
/// # Panics
/// Panics when `config.mode` is not [`FabricMode::Realtime`], or on any
/// [`FabricGridConfig::validate`] violation.
pub fn run_fabric_rt_grid(config: &FabricGridConfig) -> FabricRtGridReport {
    run_fabric_rt_grid_observed(config, None)
}

/// [`run_fabric_rt_grid`] with optional telemetry: point `i` of the flat
/// mix-major grid records its spans and counter samples under trace
/// process `i + 1`, and the returned report carries the
/// [`TelemetrySummary`] digest. The routing traces and every deterministic
/// report field are identical with and without a collector.
///
/// # Panics
/// As [`run_fabric_rt_grid`].
pub fn run_fabric_rt_grid_observed(
    config: &FabricGridConfig,
    telemetry: Option<&Collector>,
) -> FabricRtGridReport {
    config.validate_or_panic();
    let FabricMode::Realtime(rt) = config.mode else {
        panic!("run_fabric_rt_grid needs a realtime-mode config (FabricMode::Realtime)");
    };

    let mut points = Vec::new();
    let mut traces = Vec::new();
    for (i, (mix_name, point)) in grid_points(config).into_iter().enumerate() {
        let (mut report, trace) = run_fabric_rt_point(&point, rt, telemetry, 1 + i as u32);
        report.mix = mix_name;
        points.push(report);
        traces.push(trace);
    }

    FabricRtGridReport {
        n_users: config.track.n_users,
        n_rx: config.track.n_rx,
        modulation: config.track.modulation.name().to_string(),
        noise_variance: config.track.noise_variance,
        frames_per_cell: config.frames_per_cell,
        deadline_us: config.deadline_us,
        seed: config.seed,
        arrival: config.arrival.name().to_string(),
        producers: rt.producers,
        queue_shards: rt.queue_shards,
        points,
        traces,
        telemetry: telemetry.map(TelemetrySummary::from_collector),
    }
}

// ---------------------------------------------------------------------------
// JSON report
// ---------------------------------------------------------------------------

impl FabricRtReport {
    fn to_json_object(&self) -> String {
        format!(
            "{{\"mix\": \"{}\", \"n_cells\": {}, \"arrival_period_us\": {}, \
             \"jobs\": {}, \"ber\": {}, \"fallback_rate\": {}, \
             \"frames_per_sec\": {}, \"p50_ms\": {}, \"p99_ms\": {}, \
             \"p999_ms\": {}, \"decision_ns_per_job\": {}, \"wall_ms\": {}, \
             \"replay_divergences\": {}}}",
            self.mix,
            self.n_cells,
            json_num(self.arrival_period_us),
            self.jobs,
            json_num(self.ber),
            json_num(self.fallback_rate),
            json_num(self.frames_per_sec),
            json_num(self.p50_ms),
            json_num(self.p99_ms),
            json_num(self.p999_ms),
            json_num(self.decision_ns_per_job),
            json_num(self.wall_ms),
            self.replay_divergences,
        )
    }
}

impl FabricRtGridReport {
    /// Renders the report as the `BENCH_fabric_rt.json` document (schema in
    /// `crates/bench/README.md`). Wall-clock fields vary per machine and
    /// run; the deterministic fields (`jobs`, `ber`, `fallback_rate`,
    /// `replay_divergences`) do not.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n  \"bench\": \"fabric-rt\",\n  \"scenario\": {\n");
        s.push_str(&format!("    \"n_users\": {},\n", self.n_users));
        s.push_str(&format!("    \"n_rx\": {},\n", self.n_rx));
        s.push_str(&format!("    \"modulation\": \"{}\",\n", self.modulation));
        s.push_str(&format!(
            "    \"noise_variance\": {},\n",
            json_num(self.noise_variance)
        ));
        s.push_str(&format!(
            "    \"frames_per_cell\": {},\n",
            self.frames_per_cell
        ));
        s.push_str(&format!(
            "    \"deadline_us\": {},\n",
            json_num(self.deadline_us)
        ));
        s.push_str(&format!("    \"seed\": {},\n", self.seed));
        s.push_str(&format!("    \"arrival\": \"{}\",\n", self.arrival));
        s.push_str(&format!("    \"producers\": {},\n", self.producers));
        s.push_str(&format!(
            "    \"queue_shards\": {}\n  }},\n",
            self.queue_shards
        ));
        s.push_str("  \"points\": [\n");
        for (i, point) in self.points.iter().enumerate() {
            s.push_str("    ");
            s.push_str(&point.to_json_object());
            s.push_str(if i + 1 < self.points.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        if let Some(summary) = &self.telemetry {
            s.push_str("  ],\n  \"telemetry\": ");
            s.push_str(&summary.to_json_stanza(2));
            s.push_str("\n}\n");
        } else {
            s.push_str("  ]\n}\n");
        }
        s
    }
}

impl crate::report::Report for FabricRtGridReport {
    fn name(&self) -> &'static str {
        "fabric-rt"
    }

    fn schema_version(&self) -> u32 {
        1
    }

    fn to_json(&self) -> String {
        FabricRtGridReport::to_json(self)
    }

    fn table(&self) -> crate::report::Table {
        use crate::report::{fnum, Table};
        let mut table = Table::new(&[
            "mix",
            "cells",
            "period_us",
            "ber",
            "fallback",
            "frames/s",
            "p50_ms",
            "p99_ms",
            "p99.9_ms",
            "decide_ns",
            "diverge",
        ]);
        for p in &self.points {
            table.push_row(vec![
                p.mix.clone(),
                p.n_cells.to_string(),
                fnum(p.arrival_period_us, 0),
                fnum(p.ber, 5),
                fnum(p.fallback_rate, 4),
                fnum(p.frames_per_sec, 1),
                fnum(p.p50_ms, 2),
                fnum(p.p99_ms, 2),
                fnum(p.p999_ms, 2),
                fnum(p.decision_ns_per_job, 0),
                p.replay_divergences.to_string(),
            ]);
        }
        table
    }
}

// ---------------------------------------------------------------------------
// The replay-trace document
// ---------------------------------------------------------------------------

/// Indices where two routing traces disagree (a length mismatch counts
/// every position past the shorter trace).
pub fn diff_traces(recorded: &[Option<usize>], simulated: &[Option<usize>]) -> Vec<usize> {
    let len = recorded.len().max(simulated.len());
    (0..len)
        .filter(|&i| recorded.get(i) != simulated.get(i))
        .collect()
}

fn route_json(route: &Option<usize>) -> Json {
    match route {
        Some(b) => Json::UInt(*b as u64),
        None => Json::Null,
    }
}

/// Renders the replay-trace document: the full spec (so the replayer can
/// rebuild the exact grid) plus each point's recorded routing decisions
/// (`null` = classical fallback). Schema in `crates/bench/README.md`.
pub fn trace_doc(config: &FabricGridConfig, report: &FabricRtGridReport) -> String {
    let spec_text = ExperimentSpec::Fabric(config.clone()).to_json();
    let spec_json = Json::parse(&spec_text).expect("spec serializer emits valid JSON");
    let points = report
        .points
        .iter()
        .zip(&report.traces)
        .map(|(p, trace)| {
            Json::Obj(vec![
                ("mix".to_string(), Json::Str(p.mix.clone())),
                ("n_cells".to_string(), Json::UInt(p.n_cells as u64)),
                (
                    "arrival_period_us".to_string(),
                    Json::Float(p.arrival_period_us),
                ),
                (
                    "routes".to_string(),
                    Json::Arr(trace.iter().map(route_json).collect()),
                ),
            ])
        })
        .collect();
    let doc = Json::Obj(vec![
        (
            "bench".to_string(),
            Json::Str("fabric-rt-trace".to_string()),
        ),
        ("spec".to_string(), spec_json),
        ("points".to_string(), Json::Arr(points)),
    ]);
    let mut text = doc.to_string_pretty();
    text.push('\n');
    text
}

/// One point's replay verdict.
#[derive(Debug, Clone)]
pub struct PointReplay {
    /// Backend-mix name.
    pub mix: String,
    /// Radio cells.
    pub n_cells: usize,
    /// Mean per-cell arrival period (µs).
    pub arrival_period_us: f64,
    /// Jobs in the trace.
    pub jobs: usize,
    /// Positions where the recorded trace and the sim's disagree.
    pub divergences: Vec<usize>,
}

/// The verdict of replaying a recorded trace document through the
/// virtual-time sim.
#[derive(Debug, Clone)]
pub struct ReplayReport {
    /// Per-point verdicts, in document order.
    pub points: Vec<PointReplay>,
}

impl ReplayReport {
    /// Total routing-decision divergences across all points.
    pub fn total_divergences(&self) -> usize {
        self.points.iter().map(|p| p.divergences.len()).sum()
    }
}

fn parse_routes(point: &Json, ctx: &str) -> Result<RouteTrace, SpecError> {
    point
        .get("routes")
        .and_then(Json::as_arr)
        .ok_or_else(|| SpecError::new(ctx, "missing \"routes\" array"))?
        .iter()
        .map(|r| match r {
            Json::Null => Ok(None),
            other => other
                .as_u64()
                .map(|b| Some(b as usize))
                .ok_or_else(|| SpecError::new(ctx, "routes must be backend indices or null")),
        })
        .collect()
}

/// Replays a recorded trace document through the virtual-time sim: rebuilds
/// the grid from the embedded spec, re-simulates every point, and diffs
/// each simulated [`RouteTrace`] against the recorded one. Zero divergence
/// is the realtime service's CI contract.
///
/// # Errors
/// Returns a [`SpecError`] on malformed documents or a spec/points
/// mismatch. Divergences are **not** errors — they are the report's
/// content; callers decide the exit status.
pub fn replay_trace_doc(text: &str) -> Result<ReplayReport, SpecError> {
    let ctx = "trace";
    let doc = Json::parse(text).map_err(|e| SpecError::new(ctx, e.to_string()))?;
    if doc.get("bench").and_then(Json::as_str) != Some("fabric-rt-trace") {
        return Err(SpecError::new(ctx, "not a fabric-rt-trace document"));
    }
    let spec_json = doc
        .get("spec")
        .ok_or_else(|| SpecError::new(ctx, "missing \"spec\""))?;
    let spec = ExperimentSpec::parse(&spec_json.to_string_pretty())?;
    let ExperimentSpec::Fabric(config) = spec else {
        return Err(SpecError::new(ctx, "embedded spec is not a fabric spec"));
    };
    let recorded_points = doc
        .get("points")
        .and_then(Json::as_arr)
        .ok_or_else(|| SpecError::new(ctx, "missing \"points\" array"))?;
    let grid = grid_points(&config);
    if grid.len() != recorded_points.len() {
        return Err(SpecError::new(
            ctx,
            format!(
                "trace has {} points but the spec expands to {}",
                recorded_points.len(),
                grid.len()
            ),
        ));
    }

    let mut points = Vec::with_capacity(grid.len());
    for (i, ((mix_name, point_config), recorded)) in
        grid.into_iter().zip(recorded_points).enumerate()
    {
        let p_ctx = &format!("{ctx}.points[{i}]");
        let mix = recorded
            .get("mix")
            .and_then(Json::as_str)
            .ok_or_else(|| SpecError::new(p_ctx, "missing \"mix\""))?;
        if mix != mix_name {
            return Err(SpecError::new(
                p_ctx,
                format!("point order mismatch: trace says '{mix}', spec expands to '{mix_name}'"),
            ));
        }
        let routes = parse_routes(recorded, p_ctx)?;
        let (_, sim_trace) = run_fabric_traced(&point_config);
        points.push(PointReplay {
            mix: mix_name,
            n_cells: point_config.n_cells,
            arrival_period_us: point_config.arrival_period_us,
            jobs: routes.len(),
            divergences: diff_traces(&routes, &sim_trace),
        });
    }
    Ok(ReplayReport { points })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fabric::{
        run_fabric, AnnealerConfig, ArrivalProcess, BackendMix, BackendSpec, MockQpuConfig,
        NetworkModel, SaPoolConfig,
    };
    use crate::sched::SchedOptions;
    use crate::stream::CostModel;
    use hqw_phy::channel::{snr_db_to_noise_variance, TrackConfig};
    use hqw_phy::modulation::Modulation;
    use hqw_qubo::sa::{SaParams, SweepKernel};
    use std::time::Duration;

    /// Runs `f` on a helper thread and fails fast (instead of hanging the
    /// suite) if it does not finish within `WATCHDOG` — the queue-deadlock
    /// guard the `[profile.checked]` CI job relies on.
    const WATCHDOG: Duration = Duration::from_secs(120);

    fn with_watchdog<T: Send + 'static>(name: &str, f: impl FnOnce() -> T + Send + 'static) -> T {
        let (tx, rx) = std::sync::mpsc::channel();
        let handle = std::thread::spawn(move || {
            let _ = tx.send(f());
        });
        match rx.recv_timeout(WATCHDOG) {
            Ok(value) => {
                handle.join().expect("watchdog body panicked");
                value
            }
            Err(_) => panic!("{name}: deadlock suspected (no result within {WATCHDOG:?})"),
        }
    }

    fn track() -> TrackConfig {
        TrackConfig {
            n_users: 2,
            n_rx: 2,
            modulation: Modulation::Qpsk,
            rho: 0.9,
            noise_variance: snr_db_to_noise_variance(14.0, 2),
        }
    }

    fn quick_pool() -> Vec<BackendSpec> {
        vec![
            BackendSpec::SaPool(SaPoolConfig {
                workers: 2,
                max_batch: 4,
                sa: SaParams {
                    sweeps: 24,
                    num_reads: 1,
                    threads: 1,
                    ..SaParams::default()
                },
            }),
            BackendSpec::Pimc(AnnealerConfig {
                num_reads: 1,
                anneal_us: 1.0,
                sweeps_per_us: 4,
                capacity: 1,
                max_batch: 2,
                kernel: SweepKernel::Exact,
            }),
            BackendSpec::MockQpu(MockQpuConfig {
                num_reads: 2,
                anneal_us: 1.0,
                sweeps_per_us: 4,
                trotter_slices: 4,
                max_batch: 4,
                network: NetworkModel {
                    rtt_base_us: 30.0,
                    jitter_us: 10.0,
                },
                programming_us: 120.0,
                embed_derive_us_per_qubit: 2.0,
                chain_strength: 2.0,
            }),
        ]
    }

    fn point(
        n_cells: usize,
        period: f64,
        deadline: f64,
        arrival: ArrivalProcess,
        backends: Vec<BackendSpec>,
    ) -> FabricConfig {
        FabricConfig {
            track: track(),
            n_cells,
            frames_per_cell: 12,
            arrival_period_us: period,
            arrival,
            deadline_us: deadline,
            cost: CostModel::default(),
            backends,
            sched: SchedOptions::default(),
            seed: 42,
        }
    }

    fn rt_grid(arrival: ArrivalProcess, rt: RealtimeConfig) -> FabricGridConfig {
        FabricGridConfig {
            track: track(),
            frames_per_cell: 8,
            cell_counts: vec![2, 3],
            arrival_periods_us: vec![300.0, 120.0],
            mixes: vec![BackendMix {
                name: "pool".into(),
                backends: quick_pool(),
            }],
            arrival,
            mode: FabricMode::Realtime(rt),
            deadline_us: 600.0,
            cost: CostModel::default(),
            sched: SchedOptions::default(),
            seed: 7,
            threads: 0,
        }
    }

    #[test]
    fn realtime_routing_matches_the_virtual_sim_under_contention() {
        with_watchdog("contention", || {
            // Bursty load across a heterogeneous pool with real producer
            // and worker threads racing: the recorded decisions must still
            // equal the deterministic sim's, and so must the detected bits.
            let config = point(
                3,
                100.0,
                500.0,
                ArrivalProcess::Bursty { burst: 3 },
                quick_pool(),
            );
            let rt = RealtimeConfig {
                producers: 3,
                queue_shards: 2,
            };
            let (report, trace) = run_fabric_rt_point(&config, rt, None, 1);
            assert_eq!(report.replay_divergences, 0, "routing diverged");
            assert_eq!(report.jobs, 3 * 12);
            let sim = run_fabric(&config);
            assert_eq!(report.ber.to_bits(), sim.ber.to_bits(), "BER drifted");
            assert_eq!(report.fallback_rate, sim.fallback_rate);
            assert_eq!(trace.len(), report.jobs);
            assert!(report.frames_per_sec > 0.0);
            assert!(report.p999_ms >= report.p99_ms);
            assert!(report.p99_ms >= report.p50_ms);
            assert!(report.decision_ns_per_job > 0.0);
        });
    }

    #[test]
    fn fallbacks_and_every_arrival_process_stay_replayable() {
        with_watchdog("arrivals", || {
            for arrival in [
                ArrivalProcess::Periodic,
                ArrivalProcess::Diurnal {
                    amplitude: 0.8,
                    cycle_frames: 6,
                },
                ArrivalProcess::HeavyTailed { alpha: 1.3 },
            ] {
                // A tight deadline forces a fallback mixture.
                let config = point(2, 80.0, 250.0, arrival, quick_pool());
                let rt = RealtimeConfig {
                    producers: 2,
                    queue_shards: 3,
                };
                let (report, _) = run_fabric_rt_point(&config, rt, None, 1);
                assert_eq!(report.replay_divergences, 0, "{} diverged", arrival.name());
                let sim = run_fabric(&config);
                assert_eq!(report.ber.to_bits(), sim.ber.to_bits());
            }
        });
    }

    #[test]
    fn grid_runs_and_trace_doc_replays_with_zero_divergence() {
        with_watchdog("replay", || {
            let config = rt_grid(
                ArrivalProcess::Bursty { burst: 2 },
                RealtimeConfig {
                    producers: 2,
                    queue_shards: 2,
                },
            );
            let report = run_fabric_rt_grid(&config);
            assert_eq!(report.points.len(), 2 * 2); // 1 mix x 2 cells x 2 periods
            assert_eq!(report.traces.len(), report.points.len());
            for p in &report.points {
                assert_eq!(p.replay_divergences, 0, "{}: diverged", p.mix);
            }

            let doc = trace_doc(&config, &report);
            let replay = replay_trace_doc(&doc).expect("valid trace doc");
            assert_eq!(replay.points.len(), report.points.len());
            assert_eq!(replay.total_divergences(), 0);

            // A corrupted route is caught.
            let corrupted =
                doc.replacen("\"routes\": [\n        0,", "\"routes\": [\n        1,", 1);
            if corrupted != doc {
                let replay = replay_trace_doc(&corrupted).expect("still well-formed");
                assert_eq!(replay.total_divergences(), 1);
            }

            // A truncated document is an error, not a silent pass.
            assert!(replay_trace_doc("{\"bench\": \"other\"}").is_err());
        });
    }

    #[test]
    fn report_json_is_well_formed_and_tagged() {
        with_watchdog("json", || {
            let config = rt_grid(
                ArrivalProcess::Periodic,
                RealtimeConfig {
                    producers: 1,
                    queue_shards: 1,
                },
            );
            let report = run_fabric_rt_grid(&config);
            let text = FabricRtGridReport::to_json(&report);
            let parsed = Json::parse(&text).expect("report JSON parses");
            assert_eq!(
                parsed.get("bench").and_then(Json::as_str),
                Some("fabric-rt")
            );
            let points = parsed.get("points").and_then(Json::as_arr).expect("points");
            assert_eq!(points.len(), report.points.len());
            for p in points {
                assert!(p.get("frames_per_sec").and_then(Json::as_f64).is_some());
                assert!(p.get("p999_ms").and_then(Json::as_f64).is_some());
                assert!(p
                    .get("decision_ns_per_job")
                    .and_then(Json::as_f64)
                    .is_some());
                assert_eq!(p.get("replay_divergences").and_then(Json::as_u64), Some(0));
            }
        });
    }

    #[test]
    fn zero_job_point_reports_zeroed_ratios_not_nan() {
        // Regression: a point that admits zero jobs used to divide by zero
        // (NaN decision_ns_per_job) or panic on the empty latency vector.
        let mut config = point(2, 100.0, 500.0, ArrivalProcess::Periodic, quick_pool());
        config.frames_per_cell = 0;
        let rt = RealtimeConfig {
            producers: 2,
            queue_shards: 2,
        };
        let (report, trace) = run_fabric_rt_point(&config, rt, None, 1);
        assert!(trace.is_empty());
        assert_eq!(report.jobs, 0);
        for ratio in [
            report.ber,
            report.fallback_rate,
            report.frames_per_sec,
            report.p50_ms,
            report.p99_ms,
            report.p999_ms,
            report.decision_ns_per_job,
            report.wall_ms,
        ] {
            assert_eq!(ratio, 0.0, "zero-job ratios must be 0.0, not NaN");
        }
        assert_eq!(report.replay_divergences, 0);
    }

    #[test]
    fn telemetry_never_perturbs_routing_and_spans_are_well_formed() {
        with_watchdog("telemetry", || {
            let config = rt_grid(
                ArrivalProcess::Bursty { burst: 2 },
                RealtimeConfig {
                    producers: 2,
                    queue_shards: 2,
                },
            );
            let baseline = run_fabric_rt_grid(&config);
            let collector = Collector::new();
            let observed = run_fabric_rt_grid_observed(&config, Some(&collector));

            // The zero-perturbation contract: identical routing, identical
            // deterministic fields, zero divergence — bit for bit.
            assert_eq!(baseline.traces, observed.traces);
            for (a, b) in baseline.points.iter().zip(&observed.points) {
                assert_eq!(a.ber.to_bits(), b.ber.to_bits());
                assert_eq!(a.fallback_rate, b.fallback_rate);
                assert_eq!(b.replay_divergences, 0);
            }

            // Per-job stage chains are contiguous: the stage sum equals the
            // end-to-end span (within float eps), and every lifecycle stage
            // shows up.
            let events = collector.events();
            let mut stage_sum: std::collections::BTreeMap<(u32, u64), f64> =
                std::collections::BTreeMap::new();
            let mut end_to_end: std::collections::BTreeMap<(u32, u64), f64> =
                std::collections::BTreeMap::new();
            for e in &events {
                let Some(job) = e.job else { continue };
                match e.cat {
                    "stage" => *stage_sum.entry((e.pid, job)).or_insert(0.0) += e.dur_us,
                    "job" => {
                        end_to_end.insert((e.pid, job), e.dur_us);
                    }
                    _ => {}
                }
            }
            assert!(!end_to_end.is_empty());
            for (key, &total) in &end_to_end {
                let sum = stage_sum.get(key).copied().unwrap_or(f64::NAN);
                assert!(
                    (sum - total).abs() <= 1.0 + total * 1e-9,
                    "job {key:?}: stage sum {sum} vs end-to-end {total}"
                );
            }
            for stage in ["enqueue", "admit", "form", "wait", "solve"] {
                assert!(
                    events.iter().any(|e| e.cat == "stage" && e.name == stage),
                    "missing stage {stage}"
                );
            }
            assert!(
                collector.counters().iter().any(|c| c.name == "queues"),
                "sampler emitted no queue samples"
            );

            // The stanza renders, parses, and appears in the JSON document
            // only when telemetry ran.
            let summary = observed.telemetry.as_ref().expect("summary present");
            assert!(summary.end_to_end.count() > 0);
            assert!(!summary.table().is_empty());
            let with = FabricRtGridReport::to_json(&observed);
            let without = FabricRtGridReport::to_json(&baseline);
            assert!(with.contains("\"telemetry\""));
            assert!(!without.contains("\"telemetry\""));
            Json::parse(&with).expect("telemetry-bearing report parses");

            // The Chrome trace document parses too.
            Json::parse(&collector.to_chrome_json()).expect("chrome trace parses");
        });
    }

    #[test]
    fn diff_traces_flags_value_and_length_mismatches() {
        assert!(diff_traces(&[Some(0), None], &[Some(0), None]).is_empty());
        assert_eq!(diff_traces(&[Some(0), None], &[Some(0), Some(1)]), vec![1]);
        assert_eq!(diff_traces(&[Some(0)], &[Some(0), Some(1)]), vec![1]);
        assert_eq!(diff_traces(&[], &[None]), vec![0]);
    }
}
