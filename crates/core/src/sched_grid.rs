//! The adaptive-vs-static scheduling experiment: the paired fabric sweep
//! behind `BENCH_sched.json`.
//!
//! The fabric's admission control budgets against a cost model; the
//! interesting question for the adaptive plane (`crate::sched`) is what
//! happens when that model is *wrong*. This experiment runs every grid
//! point under two **workloads** —
//!
//! * `"calibrated"` — the planner's cost model is the true one, and
//! * `"mispredicted"` — admission quotes come from a deliberately
//!   miscalibrated [`CostModel`] while charging stays honest,
//!
//! and under two **arms** per point: the historical static scheduler and
//! the configured learning policy. Both arms of a point share one seed, one
//! frame stream and one class assignment, so the comparison isolates the
//! scheduler. The CI gate (`ci/check_bench.py --sched`) pins the headline:
//! the adaptive arm must dominate static under miscalibration and match it
//! under calibration.
//!
//! Per-class statistics aggregate across grid points through the mergeable
//! [`LogHistogram`] carried by every [`crate::sched::ClassReport`] —
//! percentiles of the
//! merged distribution, never averages of averages — which is also what
//! keeps sharded runs (`hqw run --shard k/N`) byte-identical to
//! single-process ones.

use crate::fabric::{run_fabric, BackendMix, FabricConfig, FabricReport};
use crate::pipeline::item_seed;
use crate::report::PointRecord;
use crate::scenario::json_num;
use crate::sched::{ClassMix, PriorityClass, SchedOptions, SchedPolicy};
use crate::spec::json::Json;
use crate::spec::{check_keys, req, req_f64, req_str, req_usize, ExperimentSpec, SpecError};
use crate::stream::CostModel;
use crate::telemetry::LogHistogram;
use hqw_math::parallel::parallel_map_indexed;
use hqw_phy::channel::TrackConfig;

/// The two planner-calibration workloads, in grid order.
pub const SCHED_WORKLOADS: [&str; 2] = ["calibrated", "mispredicted"];

/// Configuration of the (workload × cells × load) adaptive-scheduling
/// sweep. One backend mix, one learning policy; every point runs both the
/// static and the adaptive arm.
#[derive(Debug, Clone, PartialEq)]
pub struct SchedGridConfig {
    /// Channel process shared by every cell.
    pub track: TrackConfig,
    /// Frames per cell.
    pub frames_per_cell: usize,
    /// Cell counts to sweep.
    pub cell_counts: Vec<usize>,
    /// Per-cell arrival periods to sweep (µs), descending = rising load.
    pub arrival_periods_us: Vec<f64>,
    /// The backend pool both arms route over.
    pub mix: BackendMix,
    /// The learning policy of the adaptive arm (must not be
    /// [`SchedPolicy::Static`] — that is the control arm).
    pub policy: SchedPolicy,
    /// Offered traffic mix over the service tiers (both arms).
    pub classes: ClassMix,
    /// The miscalibrated planner model of the `"mispredicted"` workload.
    /// Admission quotes use it; charging stays on `cost`.
    pub assumed_cost: CostModel,
    /// Latency budget shared by every point (µs).
    pub deadline_us: f64,
    /// The true work-counter → service-time model.
    pub cost: CostModel,
    /// Grid seed. Point seeds derive from it and the cell-count index only,
    /// so workloads, loads and arms all see identical frames.
    pub seed: u64,
    /// Worker threads for the point fan-out (0 = all cores).
    pub threads: usize,
}

impl SchedGridConfig {
    /// Validates the grid configuration.
    ///
    /// # Errors
    /// Returns the first violated constraint.
    pub fn validate(&self) -> Result<(), SpecError> {
        let ctx = "SchedGridConfig";
        if self.policy == SchedPolicy::Static {
            return Err(SpecError::new(
                ctx,
                "the adaptive arm's policy must not be \"static\" \
                 (static is the built-in control arm)",
            ));
        }
        if self.cell_counts.is_empty() {
            return Err(SpecError::new(ctx, "empty cells axis"));
        }
        if self.arrival_periods_us.is_empty() {
            return Err(SpecError::new(ctx, "empty load axis"));
        }
        // Every point shares the remaining parameters; validate once per
        // (workload, arm) through a representative point.
        for workload in SCHED_WORKLOADS {
            for adaptive in [false, true] {
                self.point_config(
                    workload,
                    self.cell_counts[0],
                    self.arrival_periods_us[0],
                    0,
                    adaptive,
                )
                .validate()?;
            }
        }
        Ok(())
    }

    /// Panicking shim for the engine entry points.
    ///
    /// # Panics
    /// Panics with the [`SchedGridConfig::validate`] message.
    pub fn validate_or_panic(&self) {
        if let Err(e) = self.validate() {
            panic!("{e}");
        }
    }

    /// The scheduling options of one arm under one workload.
    fn arm_options(&self, workload: &str, adaptive: bool) -> SchedOptions {
        SchedOptions {
            policy: if adaptive {
                self.policy
            } else {
                SchedPolicy::Static
            },
            assumed_cost: if workload == "mispredicted" {
                Some(self.assumed_cost)
            } else {
                None
            },
            classes: self.classes,
        }
    }

    /// The fabric point configuration of one arm of one grid point.
    fn point_config(
        &self,
        workload: &str,
        n_cells: usize,
        arrival_period_us: f64,
        cells_idx: usize,
        adaptive: bool,
    ) -> FabricConfig {
        FabricConfig {
            track: self.track,
            n_cells,
            frames_per_cell: self.frames_per_cell,
            arrival_period_us,
            arrival: crate::fabric::ArrivalProcess::Periodic,
            deadline_us: self.deadline_us,
            cost: self.cost,
            backends: self.mix.backends.clone(),
            sched: self.arm_options(workload, adaptive),
            // Cell-count-indexed only: identical frames across workloads,
            // loads and arms.
            seed: item_seed(self.seed, cells_idx),
        }
    }

    /// Total grid points: workload-major, then cell count, then load.
    pub fn grid_len(&self) -> usize {
        SCHED_WORKLOADS.len() * self.cell_counts.len() * self.arrival_periods_us.len()
    }
}

/// One (workload, cells, load) grid point: the same fabric run under both
/// arms.
#[derive(Debug, Clone)]
pub struct SchedPointReport {
    /// `"calibrated"` or `"mispredicted"`.
    pub workload: String,
    /// Radio cells sharing the fabric.
    pub n_cells: usize,
    /// Per-cell arrival period (µs).
    pub arrival_period_us: f64,
    /// The static control arm.
    pub static_arm: FabricReport,
    /// The learning arm.
    pub adaptive: FabricReport,
}

impl SchedPointReport {
    /// Renders the point as a single-line JSON object (the shard/checkpoint
    /// payload and one entry of the report's `points` array).
    pub fn to_json_object(&self) -> String {
        format!(
            "{{\"workload\": \"{}\", \"n_cells\": {}, \"arrival_period_us\": {}, \
             \"static\": {}, \"adaptive\": {}}}",
            self.workload,
            self.n_cells,
            json_num(self.arrival_period_us),
            self.static_arm.to_json_object(),
            self.adaptive.to_json_object(),
        )
    }

    /// Parses a [`SchedPointReport::to_json_object`] document back exactly.
    pub(crate) fn from_json(o: &Json, ctx: &str) -> Result<SchedPointReport, SpecError> {
        check_keys(
            o,
            &[
                "workload",
                "n_cells",
                "arrival_period_us",
                "static",
                "adaptive",
            ],
            ctx,
        )?;
        Ok(SchedPointReport {
            workload: req_str(o, "workload", ctx)?.to_string(),
            n_cells: req_usize(o, "n_cells", ctx)?,
            arrival_period_us: req_f64(o, "arrival_period_us", ctx)?,
            static_arm: FabricReport::from_json(req(o, "static", ctx)?, &format!("{ctx}.static"))?,
            adaptive: FabricReport::from_json(
                req(o, "adaptive", ctx)?,
                &format!("{ctx}.adaptive"),
            )?,
        })
    }
}

/// Cross-point aggregate of one arm under one workload — what the CI gate
/// reads and the results table prints. Derived entirely from the point
/// reports at render time (merged [`LogHistogram`]s, summed integer
/// counters), so shard merges reproduce it exactly.
#[derive(Debug, Clone)]
pub struct ArmSummary {
    /// `"calibrated"` or `"mispredicted"`.
    pub workload: String,
    /// `"static"` or `"adaptive"`.
    pub arm: String,
    /// Total jobs across the workload's points.
    pub jobs: usize,
    /// Jobs that missed their class-effective deadline.
    pub misses: usize,
    /// Fraction of jobs downgraded to the classical fallback.
    pub fallback_rate: f64,
    /// 99th-percentile latency of the merged distribution (µs).
    pub p99_latency_us: f64,
    /// Total preemptions.
    pub preemptions: u64,
    /// Per-class aggregates, most-urgent first, empty classes omitted.
    pub classes: Vec<ClassSummary>,
}

/// Per-class slice of an [`ArmSummary`].
#[derive(Debug, Clone)]
pub struct ClassSummary {
    /// The class.
    pub class: PriorityClass,
    /// Jobs of this class.
    pub jobs: usize,
    /// Class-effective deadline misses.
    pub misses: usize,
    /// 99th-percentile latency of the merged class distribution (µs).
    pub p99_latency_us: f64,
}

impl ArmSummary {
    fn to_json_object(&self) -> String {
        let classes = self
            .classes
            .iter()
            .map(|c| {
                format!(
                    "{{\"class\": \"{}\", \"jobs\": {}, \"misses\": {}, \
                     \"p99_latency_us\": {}}}",
                    c.class.name(),
                    c.jobs,
                    c.misses,
                    json_num(c.p99_latency_us)
                )
            })
            .collect::<Vec<_>>()
            .join(", ");
        format!(
            "{{\"workload\": \"{}\", \"arm\": \"{}\", \"jobs\": {}, \
             \"misses\": {}, \"fallback_rate\": {}, \"p99_latency_us\": {}, \
             \"preemptions\": {}, \"classes\": [{classes}]}}",
            self.workload,
            self.arm,
            self.jobs,
            self.misses,
            json_num(self.fallback_rate),
            json_num(self.p99_latency_us),
            self.preemptions,
        )
    }
}

/// The full adaptive-scheduling report: config echo, per-point reports, and
/// the derived per-arm summaries.
#[derive(Debug, Clone)]
pub struct SchedGridReport {
    /// Number of transmitting users per cell.
    pub n_users: usize,
    /// Number of receive antennas per cell.
    pub n_rx: usize,
    /// Modulation name.
    pub modulation: String,
    /// AWGN per-antenna variance.
    pub noise_variance: f64,
    /// Frames per cell.
    pub frames_per_cell: usize,
    /// Nominal latency budget (µs).
    pub deadline_us: f64,
    /// Adaptive-arm policy name (`"ewma"` / `"ucb"`).
    pub policy: String,
    /// Backend-mix name.
    pub mix: String,
    /// Grid seed.
    pub seed: u64,
    /// Per-point reports: workload-major, then cell count, then load.
    pub points: Vec<SchedPointReport>,
}

impl SchedGridReport {
    /// Aggregates each (workload, arm) across its grid points: integer
    /// counters summed, percentiles from the merged per-class
    /// [`LogHistogram`]s.
    pub fn summaries(&self) -> Vec<ArmSummary> {
        let mut out = Vec::new();
        for workload in SCHED_WORKLOADS {
            for arm in ["static", "adaptive"] {
                let reports: Vec<&FabricReport> = self
                    .points
                    .iter()
                    .filter(|p| p.workload == workload)
                    .map(|p| {
                        if arm == "static" {
                            &p.static_arm
                        } else {
                            &p.adaptive
                        }
                    })
                    .collect();
                if reports.is_empty() {
                    continue;
                }
                let mut hist = LogHistogram::new();
                let mut classes = Vec::new();
                for class in PriorityClass::ALL {
                    let mut c_hist = LogHistogram::new();
                    let mut jobs = 0usize;
                    let mut misses = 0usize;
                    for r in &reports {
                        for c in r.classes.iter().filter(|c| c.class == class) {
                            c_hist.merge(&c.hist);
                            jobs += c.jobs;
                            misses += c.misses;
                        }
                    }
                    if jobs == 0 {
                        continue;
                    }
                    hist.merge(&c_hist);
                    classes.push(ClassSummary {
                        class,
                        jobs,
                        misses,
                        p99_latency_us: c_hist.percentile(99.0),
                    });
                }
                let jobs: usize = classes.iter().map(|c| c.jobs).sum();
                let misses: usize = classes.iter().map(|c| c.misses).sum();
                let total_jobs: usize = reports.iter().map(|r| r.jobs).sum();
                let fallbacks: f64 = reports
                    .iter()
                    .map(|r| r.fallback_rate * r.jobs as f64)
                    .sum();
                out.push(ArmSummary {
                    workload: workload.to_string(),
                    arm: arm.to_string(),
                    jobs,
                    misses,
                    fallback_rate: if total_jobs > 0 {
                        fallbacks / total_jobs as f64
                    } else {
                        0.0
                    },
                    p99_latency_us: hist.percentile(99.0),
                    preemptions: reports.iter().map(|r| r.preemptions).sum(),
                    classes,
                });
            }
        }
        out
    }

    /// Renders the report as the `BENCH_sched.json` document (schema in
    /// `crates/bench/README.md`). Pure function of the report contents:
    /// byte-identical across runs, thread counts and shard partitions.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n  \"bench\": \"sched\",\n  \"scenario\": {\n");
        s.push_str(&format!("    \"n_users\": {},\n", self.n_users));
        s.push_str(&format!("    \"n_rx\": {},\n", self.n_rx));
        s.push_str(&format!("    \"modulation\": \"{}\",\n", self.modulation));
        s.push_str(&format!(
            "    \"noise_variance\": {},\n",
            json_num(self.noise_variance)
        ));
        s.push_str(&format!(
            "    \"frames_per_cell\": {},\n",
            self.frames_per_cell
        ));
        s.push_str(&format!(
            "    \"deadline_us\": {},\n",
            json_num(self.deadline_us)
        ));
        s.push_str(&format!("    \"policy\": \"{}\",\n", self.policy));
        s.push_str(&format!("    \"mix\": \"{}\",\n", self.mix));
        s.push_str(&format!("    \"seed\": {}\n  }},\n", self.seed));
        s.push_str("  \"summary\": [\n");
        let summaries = self.summaries();
        for (i, a) in summaries.iter().enumerate() {
            s.push_str("    ");
            s.push_str(&a.to_json_object());
            s.push_str(if i + 1 < summaries.len() { ",\n" } else { "\n" });
        }
        s.push_str("  ],\n  \"points\": [\n");
        for (i, point) in self.points.iter().enumerate() {
            s.push_str("    ");
            s.push_str(&point.to_json_object());
            s.push_str(if i + 1 < self.points.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        s.push_str("  ]\n}\n");
        s
    }
}

impl crate::report::Report for SchedGridReport {
    fn name(&self) -> &'static str {
        "sched"
    }

    fn schema_version(&self) -> u32 {
        1
    }

    fn to_json(&self) -> String {
        SchedGridReport::to_json(self)
    }

    fn table(&self) -> crate::report::Table {
        use crate::report::{fnum, Table};
        let mut table = Table::new(&[
            "workload",
            "arm",
            "jobs",
            "miss_rate",
            "fallback",
            "p99_us",
            "urllc_p99",
            "embb_p99",
            "bulk_p99",
            "preempt",
        ]);
        for a in self.summaries() {
            let class_p99 = |class: PriorityClass| -> String {
                a.classes
                    .iter()
                    .find(|c| c.class == class)
                    .map_or("-".to_string(), |c| fnum(c.p99_latency_us, 1))
            };
            table.push_row(vec![
                a.workload.clone(),
                a.arm.clone(),
                a.jobs.to_string(),
                fnum(a.misses as f64 / a.jobs.max(1) as f64, 4),
                fnum(a.fallback_rate, 4),
                fnum(a.p99_latency_us, 1),
                class_p99(PriorityClass::Urllc),
                class_p99(PriorityClass::Embb),
                class_p99(PriorityClass::Bulk),
                a.preemptions.to_string(),
            ]);
        }
        table
    }
}

impl crate::report::MergeableReport for SchedGridReport {
    fn points(&self) -> Vec<PointRecord> {
        self.points
            .iter()
            .enumerate()
            .map(|(id, point)| PointRecord {
                id,
                payload: point.to_json_object(),
            })
            .collect()
    }

    fn from_points(spec: &ExperimentSpec, mut points: Vec<PointRecord>) -> Result<Self, SpecError> {
        let ctx = "SchedGridReport";
        let ExperimentSpec::Sched(config) = spec else {
            return Err(SpecError::new(
                ctx,
                format!("expected a sched spec, got '{}'", spec.family()),
            ));
        };
        let loads = config.arrival_periods_us.len();
        let cells_n = config.cell_counts.len();
        let total = config.grid_len();
        crate::report::sort_and_check_point_ids(&mut points, total, ctx)?;
        let reports = points
            .iter()
            .map(|record| {
                let p_ctx = &format!("sched point {}", record.id);
                let doc = Json::parse(&record.payload)
                    .map_err(|e| SpecError::new(p_ctx.clone(), e.to_string()))?;
                let point = SchedPointReport::from_json(&doc, p_ctx)?;
                // The payload's own grid coordinates must agree with its id.
                let workload = SCHED_WORKLOADS[record.id / (cells_n * loads)];
                let n_cells = config.cell_counts[(record.id / loads) % cells_n];
                let period = config.arrival_periods_us[record.id % loads];
                if point.workload != workload
                    || point.n_cells != n_cells
                    || point.arrival_period_us.to_bits() != period.to_bits()
                {
                    return Err(SpecError::new(
                        p_ctx.clone(),
                        format!(
                            "grid coordinates ({}, {} cells, period {}) do not match the \
                             spec grid point ({}, {} cells, period {})",
                            point.workload,
                            point.n_cells,
                            point.arrival_period_us,
                            workload,
                            n_cells,
                            period
                        ),
                    ));
                }
                Ok(point)
            })
            .collect::<Result<Vec<_>, SpecError>>()?;
        Ok(SchedGridReport {
            n_users: config.track.n_users,
            n_rx: config.track.n_rx,
            modulation: config.track.modulation.name().to_string(),
            noise_variance: config.track.noise_variance,
            frames_per_cell: config.frames_per_cell,
            deadline_us: config.deadline_us,
            policy: config.policy.name().to_string(),
            mix: config.mix.name.clone(),
            seed: config.seed,
            points: reports,
        })
    }
}

/// Runs an arbitrary subset of the (workload × cells × load) grid — the
/// sharded form of [`run_sched_grid`]. Each point runs the virtual-time
/// fabric sim **twice** (static arm, then adaptive arm) over identical
/// frames.
///
/// # Panics
/// Panics on an invalid configuration or on ids that are out of range or
/// not strictly increasing.
pub fn run_sched_points(config: &SchedGridConfig, ids: &[usize]) -> Vec<SchedPointReport> {
    config.validate_or_panic();
    let loads = config.arrival_periods_us.len();
    let cells_n = config.cell_counts.len();
    let total = config.grid_len();
    for w in ids.windows(2) {
        assert!(
            w[0] < w[1],
            "run_sched_points: ids must be strictly increasing"
        );
    }
    if let Some(&last) = ids.last() {
        assert!(
            last < total,
            "run_sched_points: id {last} out of range (grid has {total} points)"
        );
    }
    let subset: Vec<usize> = ids.to_vec();
    parallel_map_indexed(&subset, config.threads, |_, &id| {
        let workload = SCHED_WORKLOADS[id / (cells_n * loads)];
        let cells_idx = (id / loads) % cells_n;
        let n_cells = config.cell_counts[cells_idx];
        let period = config.arrival_periods_us[id % loads];
        let run_arm = |adaptive: bool| -> FabricReport {
            let mut report =
                run_fabric(&config.point_config(workload, n_cells, period, cells_idx, adaptive));
            report.mix = config.mix.name.clone();
            report
        };
        SchedPointReport {
            workload: workload.to_string(),
            n_cells,
            arrival_period_us: period,
            static_arm: run_arm(false),
            adaptive: run_arm(true),
        }
    })
}

/// Runs the full (workload × cells × load) grid.
///
/// # Panics
/// Panics on an invalid configuration (see [`SchedGridConfig::validate`]).
pub fn run_sched_grid(config: &SchedGridConfig) -> SchedGridReport {
    let ids: Vec<usize> = (0..config.grid_len()).collect();
    SchedGridReport {
        n_users: config.track.n_users,
        n_rx: config.track.n_rx,
        modulation: config.track.modulation.name().to_string(),
        noise_variance: config.track.noise_variance,
        frames_per_cell: config.frames_per_cell,
        deadline_us: config.deadline_us,
        policy: config.policy.name().to_string(),
        mix: config.mix.name.clone(),
        seed: config.seed,
        points: run_sched_points(config, &ids),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fabric::{BackendSpec, SaPoolConfig};
    use crate::report::MergeableReport;
    use hqw_phy::channel::snr_db_to_noise_variance;
    use hqw_phy::modulation::Modulation;
    use hqw_qubo::sa::SaParams;

    fn track() -> TrackConfig {
        TrackConfig {
            n_users: 2,
            n_rx: 2,
            modulation: Modulation::Qpsk,
            rho: 0.9,
            noise_variance: snr_db_to_noise_variance(14.0, 2),
        }
    }

    fn quick_config(threads: usize) -> SchedGridConfig {
        SchedGridConfig {
            track: track(),
            frames_per_cell: 12,
            cell_counts: vec![2],
            arrival_periods_us: vec![300.0, 150.0],
            mix: BackendMix {
                name: "sa-pool".into(),
                backends: vec![BackendSpec::SaPool(SaPoolConfig {
                    workers: 2,
                    max_batch: 4,
                    sa: SaParams {
                        sweeps: 32,
                        num_reads: 2,
                        threads: 1,
                        ..SaParams::default()
                    },
                })],
            },
            policy: SchedPolicy::Ewma { shift: 1 },
            classes: ClassMix {
                urllc: 1,
                embb: 2,
                bulk: 1,
            },
            assumed_cost: CostModel {
                us_per_sweep: 0.15,
                ..CostModel::default()
            },
            deadline_us: 700.0,
            cost: CostModel::default(),
            seed: 11,
            threads,
        }
    }

    #[test]
    fn rejects_a_static_adaptive_arm() {
        let mut config = quick_config(1);
        config.policy = SchedPolicy::Static;
        assert!(config.validate().is_err());
    }

    #[test]
    fn grid_is_deterministic_and_thread_invariant() {
        let serial = run_sched_grid(&quick_config(1)).to_json();
        let parallel = run_sched_grid(&quick_config(0)).to_json();
        assert_eq!(serial, parallel);
    }

    #[test]
    fn calibrated_points_route_identically_across_arms() {
        // Jitter-free backends + the true cost model: the EWMA corrections
        // stay pinned at identity, so the adaptive arm must reproduce the
        // static arm byte-for-byte on the calibrated workload.
        let report = run_sched_grid(&quick_config(0));
        for p in report.points.iter().filter(|p| p.workload == "calibrated") {
            assert_eq!(
                p.static_arm.to_json_object(),
                p.adaptive.to_json_object(),
                "calibrated arms diverged at cells={} period={}",
                p.n_cells,
                p.arrival_period_us
            );
        }
    }

    #[test]
    fn summaries_cover_both_workloads_and_arms() {
        let report = run_sched_grid(&quick_config(0));
        let summaries = report.summaries();
        assert_eq!(summaries.len(), 4);
        for a in &summaries {
            assert!(a.jobs > 0);
            assert!(!a.classes.is_empty());
            // Classes report most-urgent first.
            for w in a.classes.windows(2) {
                assert!(w[0].class.rank() > w[1].class.rank());
            }
        }
    }

    #[test]
    fn report_round_trips_through_points() {
        let config = quick_config(0);
        let report = run_sched_grid(&config);
        let spec = ExperimentSpec::Sched(config);
        let rebuilt = SchedGridReport::from_points(&spec, report.points()).expect("round trip");
        assert_eq!(rebuilt.to_json(), report.to_json());
    }

    #[test]
    fn from_points_rejects_mismatched_coordinates() {
        let config = quick_config(0);
        let report = run_sched_grid(&config);
        let spec = ExperimentSpec::Sched(config);
        let mut points = report.points();
        points.swap(0, 1);
        let (a, b) = (points[0].id, points[1].id);
        points[0].id = b;
        points[1].id = a;
        let err = SchedGridReport::from_points(&spec, points).unwrap_err();
        assert!(
            err.to_string().contains("do not match"),
            "unexpected error: {err}"
        );
    }
}
