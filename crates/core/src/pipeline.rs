//! Threaded execution pipeline over successive channel uses (Figure 2).
//!
//! Where [`crate::event_sim`] *analyzes* the pipeline in programmed
//! microseconds, this module *executes* it: a classical-stage thread runs
//! initializers while quantum-stage workers run the annealer on earlier
//! channel uses, connected by bounded `std::sync::mpsc` channels — the
//! classical/quantum overlap of the paper's Figure 2 as real concurrency.
//!
//! Results are deterministic: each channel use gets a seed derived from the
//! batch seed and its index, so the pipelined output is bit-identical to a
//! sequential run of the same solver.

use crate::solver::{HybridResult, HybridSolver};
use crate::stages::InitialState;
use hqw_math::Rng64;
use hqw_phy::instance::DetectionInstance;
use hqw_qubo::SampleSet;

/// Per-item seed derivation shared by the sequential, pipelined and
/// data-parallel ([`HybridSolver::solve_batch`]) paths.
pub(crate) fn item_seed(batch_seed: u64, index: usize) -> u64 {
    let mut rng = Rng64::new(batch_seed ^ (index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    rng.next_u64()
}

/// Runs the solver over a batch sequentially (reference implementation).
pub fn run_sequential(
    solver: &HybridSolver,
    instances: &[DetectionInstance],
    batch_seed: u64,
) -> Vec<HybridResult> {
    instances
        .iter()
        .enumerate()
        .map(|(i, inst)| solver.solve(inst, item_seed(batch_seed, i)))
        .collect()
}

/// Runs the solver over a batch with the classical stage pipelined ahead of
/// the quantum stage.
///
/// `queue_depth` bounds the buffer between the stages (the paper's
/// "buffering" consideration); the classical thread stalls when the quantum
/// stage falls behind by more than this many channel uses.
///
/// # Panics
/// Panics when `queue_depth == 0` or a worker thread panics.
pub fn run_pipelined(
    solver: &HybridSolver,
    instances: &[DetectionInstance],
    batch_seed: u64,
    queue_depth: usize,
) -> Vec<HybridResult> {
    assert!(queue_depth > 0, "run_pipelined: queue depth must be > 0");
    if instances.is_empty() {
        return Vec::new();
    }

    let (tx, rx) = std::sync::mpsc::sync_channel::<(usize, Option<InitialState>, u64)>(queue_depth);
    let mut results: Vec<Option<HybridResult>> = Vec::new();
    results.resize_with(instances.len(), || None);

    std::thread::scope(|scope| {
        // Classical stage: compute initializers in arrival order.
        let protocol = solver.config.protocol;
        let initializer = &solver.config.initializer;
        scope.spawn(move || {
            for (i, inst) in instances.iter().enumerate() {
                let seed = item_seed(batch_seed, i);
                let mut rng = Rng64::new(seed);
                let initial = if protocol.requires_initial_state() {
                    Some(initializer.initialize(inst, &mut rng))
                } else {
                    None
                };
                // The quantum stage continues the same RNG stream.
                let quantum_seed = rng.next_u64();
                if tx.send((i, initial, quantum_seed)).is_err() {
                    return; // receiver dropped (quantum stage panicked)
                }
            }
        });

        // Quantum stage: consume in order, anneal, select.
        let schedule = solver
            .config
            .protocol
            .schedule()
            .expect("invalid protocol parameters");
        for (i, initial, quantum_seed) in rx.iter() {
            let inst = &instances[i];
            let annealed = solver.sampler.sample_qubo(
                &inst.reduction.qubo,
                &schedule,
                initial.as_ref().map(|s| s.bits.as_slice()),
                quantum_seed,
            );
            results[i] = Some(assemble(initial, annealed.samples, annealed.timing));
        }
    });

    results
        .into_iter()
        .map(|r| r.expect("all items processed"))
        .collect()
}

fn assemble(
    initial: Option<InitialState>,
    samples: SampleSet,
    timing: hqw_anneal::sampler::QpuTiming,
) -> HybridResult {
    let classical_us = initial.as_ref().map(|i| i.latency_us).unwrap_or(0.0);
    let (best_bits, best_energy) = match (samples.best(), &initial) {
        (Some(sample), Some(init)) if init.energy < sample.energy => {
            (init.bits.clone(), init.energy)
        }
        (Some(sample), _) => (sample.bits.clone(), sample.energy),
        (None, Some(init)) => (init.bits.clone(), init.energy),
        (None, None) => unreachable!("sampler always returns ≥ 1 read"),
    };
    HybridResult {
        best_bits,
        best_energy,
        initial,
        samples,
        quantum_timing: timing,
        classical_us,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::Protocol;
    use crate::solver::HybridConfig;
    use crate::stages::GreedyInitializer;
    use hqw_anneal::sampler::{EngineKind, QuantumSampler, SamplerConfig};
    use hqw_anneal::DWaveProfile;
    use hqw_phy::instance::InstanceConfig;
    use hqw_phy::modulation::Modulation;

    fn solver(reads: usize) -> HybridSolver {
        HybridSolver::new(
            QuantumSampler::new(
                DWaveProfile::calibrated(),
                SamplerConfig {
                    num_reads: reads,
                    engine: EngineKind::Pimc { trotter_slices: 8 },
                    threads: 1,
                    ..Default::default()
                },
            ),
            HybridConfig {
                protocol: Protocol::paper_ra(0.7),
                initializer: Box::new(GreedyInitializer::default()),
            },
        )
    }

    fn batch(n: usize) -> Vec<DetectionInstance> {
        let mut rng = Rng64::new(8);
        DetectionInstance::generate_batch(&InstanceConfig::paper(3, Modulation::Qpsk), n, &mut rng)
    }

    #[test]
    fn pipelined_matches_sequential_bit_for_bit() {
        let solver = solver(8);
        let instances = batch(6);
        let seq = run_sequential(&solver, &instances, 77);
        let pip = run_pipelined(&solver, &instances, 77, 2);
        assert_eq!(seq.len(), pip.len());
        for (a, b) in seq.iter().zip(&pip) {
            assert_eq!(a.best_bits, b.best_bits);
            assert_eq!(a.best_energy, b.best_energy);
            assert_eq!(
                a.initial.as_ref().map(|i| i.bits.clone()),
                b.initial.as_ref().map(|i| i.bits.clone())
            );
        }
    }

    #[test]
    fn empty_batch_is_fine() {
        let solver = solver(4);
        assert!(run_pipelined(&solver, &[], 1, 4).is_empty());
    }

    #[test]
    fn small_queue_depth_still_completes() {
        let solver = solver(4);
        let instances = batch(5);
        let results = run_pipelined(&solver, &instances, 3, 1);
        assert_eq!(results.len(), 5);
    }

    #[test]
    #[should_panic(expected = "queue depth must be > 0")]
    fn zero_queue_depth_rejected() {
        let solver = solver(4);
        run_pipelined(&solver, &batch(1), 1, 0);
    }
}
