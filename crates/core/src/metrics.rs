//! The paper's evaluation metrics (§4.3).
//!
//! * **ΔE%** — solution quality as a percentage gap from the ground energy.
//!   The paper's formula `ΔE% = 100·[(E_g − |E_s|)/E_g]` reads sensibly only
//!   when both energies are negative with `E_g` meaning `|E_g|`; we
//!   implement the equivalent, sign-robust relative gap
//!   `ΔE% = 100·(E_s − E_g)/|E_g|` (0 = ground state found; documented
//!   deviation, see DESIGN.md).
//! * **p★** — per-read ground-state probability.
//! * **TTS(C_t%)** — time-to-solution (the paper's Eq. 2): expected time to
//!   observe the ground state at least once with confidence `C_t`, charging
//!   the *programmed schedule duration* per read:
//!   `TTS = duration · log(1 − C_t/100) / log(1 − p★)`.

use hqw_qubo::SampleSet;

/// Energy tolerance when deciding whether a sample hit the ground state.
pub const GROUND_TOL: f64 = 1e-6;

/// Relative optimality gap `ΔE%` of a sample energy against the ground
/// energy (0% = optimum found).
///
/// # Panics
/// Panics when `ground_energy == 0` (noiseless MIMO ground energies are
/// strictly negative: `−‖y‖²`-scaled offsets).
pub fn delta_e_percent(sample_energy: f64, ground_energy: f64) -> f64 {
    assert!(
        ground_energy != 0.0,
        "delta_e_percent: ground energy must be non-zero to normalize"
    );
    100.0 * (sample_energy - ground_energy) / ground_energy.abs()
}

/// Per-read success probability `p★`: the fraction of reads that reached the
/// ground energy (within [`GROUND_TOL`]).
pub fn success_probability(samples: &SampleSet, ground_energy: f64) -> f64 {
    samples.ground_probability(ground_energy, GROUND_TOL)
}

/// ΔE% for every read in a sample set (the paper's Figure 6 distributions).
pub fn delta_e_distribution(samples: &SampleSet, ground_energy: f64) -> Vec<f64> {
    samples
        .energies_per_read()
        .into_iter()
        .map(|e| delta_e_percent(e, ground_energy))
        .collect()
}

/// Time-to-solution at confidence `confidence_pct` (the paper's Eq. 2).
///
/// Returns `f64::INFINITY` when `p_star ≤ 0` (the solver never succeeds) and
/// clamps to one read's duration when `p_star` is high enough that a single
/// read meets the confidence target.
///
/// # Panics
/// Panics when `duration_us ≤ 0`, `p_star ∉ [0, 1]`, or
/// `confidence_pct ∉ (0, 100)`.
pub fn time_to_solution(duration_us: f64, p_star: f64, confidence_pct: f64) -> f64 {
    assert!(duration_us > 0.0, "time_to_solution: duration must be > 0");
    assert!(
        (0.0..=1.0).contains(&p_star),
        "time_to_solution: p_star out of [0,1]"
    );
    assert!(
        confidence_pct > 0.0 && confidence_pct < 100.0,
        "time_to_solution: confidence out of (0,100)"
    );
    if p_star <= 0.0 {
        return f64::INFINITY;
    }
    if p_star >= 1.0 {
        return duration_us;
    }
    let reads = (1.0 - confidence_pct / 100.0).ln() / (1.0 - p_star).ln();
    duration_us * reads.max(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delta_e_is_zero_at_ground() {
        assert_eq!(delta_e_percent(-150.0, -150.0), 0.0);
    }

    #[test]
    fn delta_e_matches_papers_intent_for_negative_energies() {
        // E_g = −100, E_s = −90: ten percent worse.
        assert!((delta_e_percent(-90.0, -100.0) - 10.0).abs() < 1e-12);
    }

    #[test]
    fn delta_e_handles_positive_ground() {
        // Shifted problems with positive energies still normalize sensibly.
        assert!((delta_e_percent(110.0, 100.0) - 10.0).abs() < 1e-12);
    }

    #[test]
    fn tts_reference_value() {
        // p★ = 0.1, C_t = 99%: reads = ln(0.01)/ln(0.9) ≈ 43.7.
        let tts = time_to_solution(2.0, 0.1, 99.0);
        let expected = 2.0 * (0.01f64.ln() / 0.9f64.ln());
        assert!((tts - expected).abs() < 1e-9);
        assert!((tts - 87.4).abs() < 0.1);
    }

    #[test]
    fn tts_monotone_in_p_star() {
        let a = time_to_solution(1.0, 0.05, 99.0);
        let b = time_to_solution(1.0, 0.5, 99.0);
        assert!(a > b);
    }

    #[test]
    fn tts_edge_cases() {
        assert!(time_to_solution(1.0, 0.0, 99.0).is_infinite());
        assert_eq!(time_to_solution(2.5, 1.0, 99.0), 2.5);
        // Very high p★: still at least one read.
        assert_eq!(time_to_solution(2.5, 0.9999, 50.0), 2.5);
    }

    #[test]
    fn distribution_expands_reads() {
        let set =
            SampleSet::from_reads(vec![(vec![0], -100.0), (vec![0], -100.0), (vec![1], -90.0)]);
        let mut d = delta_e_distribution(&set, -100.0);
        d.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(d.len(), 3);
        assert_eq!(d[0], 0.0);
        assert!((d[2] - 10.0).abs() < 1e-12);
        assert!((success_probability(&set, -100.0) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "duration must be > 0")]
    fn tts_rejects_bad_duration() {
        time_to_solution(0.0, 0.5, 99.0);
    }
}
