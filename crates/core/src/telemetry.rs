//! Zero-perturbation observability for the fabric engines: span recorders,
//! log2-bucketed latency histograms, counter time series, and the Chrome
//! trace-event exporter.
//!
//! ## The zero-perturbation contract
//!
//! Telemetry **reads clocks but feeds nothing back into scheduling**. The
//! realtime service's routing is a pure function of the virtual arrival
//! sequence (charge-only control plane), and the virtual-time engines are
//! deterministic by construction — so enabling telemetry must leave every
//! committed `BENCH_*.json` byte-identical and the replay contract at zero
//! divergence. The `telemetry` CI job pins this with `cmp` on a
//! with/without-telemetry run pair.
//!
//! ## Pieces
//!
//! * [`LogHistogram`] — a hand-rolled log2-bucketed histogram (32 linear
//!   sub-buckets per octave straight from the float's top mantissa bits):
//!   mergeable, serializable, percentile queries with relative error
//!   bounded by one sub-bucket (≤ 1/32). The realtime service records
//!   every latency into one of these instead of keeping and sorting the
//!   full latency vector.
//! * [`Collector`] / [`Recorder`] — per-thread event recording without
//!   shared-lock traffic on the hot path: each thread buffers spans into a
//!   plain `Vec` and flushes once, when the recorder drops.
//! * [`CounterSample`] — the periodic sampler's queue-depth / in-flight /
//!   backend-utilization time series.
//! * [`TelemetrySummary`] — per-stage histograms + counter maxima: the
//!   `TELEMETRY` stanza of `BENCH_fabric_rt.json` and the per-stage CLI
//!   breakdown table.
//! * [`Collector::to_chrome_json`] — the `trace.json` exporter in Chrome
//!   trace-event format (open in Perfetto / `chrome://tracing`).
//!
//! Wall-clock engines stamp spans from `Instant`s against the collector's
//! origin; virtual-clock engines ([`crate::fabric`], [`crate::stream`])
//! emit the same event shapes with virtual-µs timestamps.

use crate::spec::json::Json;
use crate::spec::SpecError;
use std::collections::BTreeMap;
use std::path::Path;
use std::sync::Mutex;
use std::time::Instant;

// ---------------------------------------------------------------------------
// Log2-bucketed histogram
// ---------------------------------------------------------------------------

/// Sub-buckets per octave: each power-of-two range splits into `2^5 = 32`
/// linear sub-buckets keyed by the value's top 5 mantissa bits.
const SUB_BITS: u32 = 5;
const SUB: u64 = 1 << SUB_BITS;

/// A mergeable log2-bucketed histogram with bounded-relative-error
/// percentile queries.
///
/// `record` maps a positive value to `(biased exponent, top 5 mantissa
/// bits)` — a pure bit extraction, no `log2` rounding — so each octave
/// `[2^k, 2^{k+1})` splits into 32 linear sub-buckets. A percentile query
/// walks the cumulative counts and returns the owning bucket's midpoint,
/// clamped into the exact recorded `[min, max]`; the result is within
/// [`LogHistogram::RELATIVE_ERROR`] of the recorded value at that rank.
///
/// Zero, negative and subnormal values collapse into a dedicated zero
/// bucket; non-finite values are ignored. Merging adds bucket counts and
/// widens min/max, so merge is exactly associative and commutative
/// (property-tested in `tests/telemetry_proptests.rs`).
#[derive(Debug, Clone, PartialEq)]
pub struct LogHistogram {
    /// `(biased exponent << 5 | mantissa top bits) → count`.
    buckets: BTreeMap<u64, u64>,
    /// Count of zero/negative/subnormal observations.
    zero: u64,
    /// Total observations (all buckets plus the zero bucket).
    count: u64,
    min: f64,
    max: f64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        LogHistogram::new()
    }
}

impl LogHistogram {
    /// Worst-case relative error of a percentile query against the exact
    /// nearest-rank percentile of the recorded values: one sub-bucket,
    /// `1/32`.
    pub const RELATIVE_ERROR: f64 = 1.0 / SUB as f64;

    /// Creates an empty histogram.
    pub fn new() -> Self {
        LogHistogram {
            buckets: BTreeMap::new(),
            zero: 0,
            count: 0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    fn bucket_index(v: f64) -> u64 {
        debug_assert!(v >= f64::MIN_POSITIVE && v.is_finite());
        let bits = v.to_bits();
        let exp = (bits >> 52) & 0x7ff;
        let sub = (bits >> (52 - SUB_BITS)) & (SUB - 1);
        (exp << SUB_BITS) | sub
    }

    /// `[lo, hi)` bounds of bucket `idx` (inverse of the bit extraction).
    fn bucket_bounds(idx: u64) -> (f64, f64) {
        let exp = idx >> SUB_BITS;
        let sub = idx & (SUB - 1);
        let lo = f64::from_bits((exp << 52) | (sub << (52 - SUB_BITS)));
        let hi = if sub + 1 < SUB {
            f64::from_bits((exp << 52) | ((sub + 1) << (52 - SUB_BITS)))
        } else {
            f64::from_bits((exp + 1) << 52)
        };
        (lo, hi)
    }

    /// Records one observation. Non-finite values are ignored; zero,
    /// negative and subnormal values land in the zero bucket.
    pub fn record(&mut self, v: f64) {
        if !v.is_finite() {
            return;
        }
        self.count += 1;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        if v < f64::MIN_POSITIVE {
            self.zero += 1;
        } else {
            *self.buckets.entry(Self::bucket_index(v)).or_insert(0) += 1;
        }
    }

    /// Total recorded observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Exact minimum recorded value (0.0 when empty).
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Exact maximum recorded value (0.0 when empty).
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Nearest-rank percentile query: the midpoint of the bucket owning
    /// rank `ceil(p/100 · count)`, clamped into the exact `[min, max]`.
    /// Within [`LogHistogram::RELATIVE_ERROR`] of the recorded value at
    /// that rank; 0.0 when empty (a point with no observations reports
    /// zeroed latencies, not NaN).
    ///
    /// # Panics
    /// Panics when `p` is outside `[0, 100]`.
    pub fn percentile(&self, p: f64) -> f64 {
        assert!(
            (0.0..=100.0).contains(&p),
            "LogHistogram::percentile: p out of range"
        );
        if self.count == 0 {
            return 0.0;
        }
        if p == 0.0 {
            return self.min;
        }
        if p == 100.0 {
            return self.max;
        }
        let rank = ((p / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = self.zero;
        let raw = if rank <= seen {
            0.0
        } else {
            let mut value = self.max;
            for (&idx, &c) in &self.buckets {
                seen += c;
                if rank <= seen {
                    let (lo, hi) = Self::bucket_bounds(idx);
                    value = 0.5 * (lo + hi);
                    break;
                }
            }
            value
        };
        raw.clamp(self.min, self.max)
    }

    /// Merges another histogram into this one. Exactly associative and
    /// commutative: bucket counts add, min/max widen.
    pub fn merge(&mut self, other: &LogHistogram) {
        for (&idx, &c) in &other.buckets {
            *self.buckets.entry(idx).or_insert(0) += c;
        }
        self.zero += other.zero;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Serializes to the JSON object `from_json` parses back exactly
    /// (bucket keys and counts are integers; min/max round-trip through
    /// the shortest-`Display` float codec).
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("sub_buckets".to_string(), Json::UInt(SUB)),
            ("count".to_string(), Json::UInt(self.count)),
            ("zero".to_string(), Json::UInt(self.zero)),
            ("min".to_string(), Json::Float(self.min())),
            ("max".to_string(), Json::Float(self.max())),
            (
                "buckets".to_string(),
                Json::Arr(
                    self.buckets
                        .iter()
                        .map(|(&idx, &c)| Json::Arr(vec![Json::UInt(idx), Json::UInt(c)]))
                        .collect(),
                ),
            ),
        ])
    }

    /// Parses a [`LogHistogram::to_json`] document back.
    ///
    /// # Errors
    /// Returns a [`SpecError`] on missing/mistyped fields or a sub-bucket
    /// width that does not match this build.
    pub fn from_json(doc: &Json) -> Result<LogHistogram, SpecError> {
        let ctx = "LogHistogram";
        let field_u64 = |key: &str| {
            doc.get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| SpecError::new(ctx, format!("missing integer \"{key}\"")))
        };
        let field_f64 = |key: &str| {
            doc.get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| SpecError::new(ctx, format!("missing number \"{key}\"")))
        };
        if field_u64("sub_buckets")? != SUB {
            return Err(SpecError::new(ctx, "sub-bucket width mismatch"));
        }
        let count = field_u64("count")?;
        let zero = field_u64("zero")?;
        let mut buckets = BTreeMap::new();
        for entry in doc
            .get("buckets")
            .and_then(Json::as_arr)
            .ok_or_else(|| SpecError::new(ctx, "missing \"buckets\" array"))?
        {
            let pair = entry
                .as_arr()
                .filter(|p| p.len() == 2)
                .ok_or_else(|| SpecError::new(ctx, "bucket entries are [index, count] pairs"))?;
            let idx = pair[0]
                .as_u64()
                .ok_or_else(|| SpecError::new(ctx, "bucket index must be an integer"))?;
            let c = pair[1]
                .as_u64()
                .ok_or_else(|| SpecError::new(ctx, "bucket count must be an integer"))?;
            if buckets.insert(idx, c).is_some() {
                return Err(SpecError::new(ctx, format!("duplicate bucket index {idx}")));
            }
        }
        let in_buckets: u64 = buckets.values().sum();
        if zero + in_buckets != count {
            return Err(SpecError::new(ctx, "bucket counts do not sum to count"));
        }
        let (min, max) = if count == 0 {
            (f64::INFINITY, f64::NEG_INFINITY)
        } else {
            (field_f64("min")?, field_f64("max")?)
        };
        Ok(LogHistogram {
            buckets,
            zero,
            count,
            min,
            max,
        })
    }
}

// ---------------------------------------------------------------------------
// Events, recorders, counters
// ---------------------------------------------------------------------------

/// One span or mark in the trace. Timestamps are µs — wall-clock spans are
/// stamped relative to the collector's origin, virtual-clock spans carry
/// the simulation's own µs clock.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Trace process id — one per grid point, so a single `trace.json`
    /// holds the whole sweep.
    pub pid: u32,
    /// Trace thread id within the point (see the engine's tid map).
    pub tid: u32,
    /// Span name (stage name, backend name, …).
    pub name: String,
    /// Category: `"stage"` (one lifecycle stage of one job), `"job"` (a
    /// job's end-to-end span), `"batch"` (a worker's batch solve), or
    /// `"mark"` (an instant).
    pub cat: &'static str,
    /// Start, µs.
    pub ts_us: f64,
    /// Duration, µs (0 for marks).
    pub dur_us: f64,
    /// Job id the event belongs to, when it belongs to one.
    pub job: Option<u64>,
}

/// One periodic-sampler reading: a named set of gauge values at one
/// instant.
#[derive(Debug, Clone, PartialEq)]
pub struct CounterSample {
    /// Trace process id (grid point).
    pub pid: u32,
    /// Counter-track name (`"queues"`, `"utilization"`, …).
    pub name: &'static str,
    /// Sample time, µs since the collector origin.
    pub ts_us: f64,
    /// `(series name, value)` pairs.
    pub values: Vec<(String, f64)>,
}

#[derive(Debug, Default)]
struct CollectorInner {
    events: Vec<TraceEvent>,
    counters: Vec<CounterSample>,
    processes: BTreeMap<u32, String>,
    threads: BTreeMap<(u32, u32), String>,
}

/// The run-wide telemetry sink. Threads record through per-thread
/// [`Recorder`]s (plain `Vec` buffers, flushed under the lock once at drop)
/// so the hot path takes no shared lock.
#[derive(Debug)]
pub struct Collector {
    origin: Instant,
    inner: Mutex<CollectorInner>,
}

impl Default for Collector {
    fn default() -> Self {
        Collector::new()
    }
}

impl Collector {
    /// Creates a collector; wall-clock spans are stamped relative to this
    /// moment.
    pub fn new() -> Self {
        Collector {
            origin: Instant::now(),
            inner: Mutex::new(CollectorInner::default()),
        }
    }

    /// µs elapsed from the collector origin to `t` (0 for instants before
    /// the origin).
    pub fn us_since_origin(&self, t: Instant) -> f64 {
        t.saturating_duration_since(self.origin).as_secs_f64() * 1e6
    }

    /// Names a trace process (grid point) in the exported trace.
    pub fn label_process(&self, pid: u32, name: &str) {
        let mut inner = self.inner.lock().expect("collector poisoned");
        inner.processes.insert(pid, name.to_string());
    }

    /// Opens a per-thread recorder on `(pid, tid)`, registering the thread
    /// name. Dropping the recorder flushes its buffered events.
    pub fn recorder(&self, pid: u32, tid: u32, thread_name: &str) -> Recorder<'_> {
        {
            let mut inner = self.inner.lock().expect("collector poisoned");
            inner.threads.insert((pid, tid), thread_name.to_string());
        }
        Recorder {
            collector: self,
            pid,
            tid,
            events: Vec::new(),
        }
    }

    /// Appends one sampler reading.
    pub fn push_counter(&self, sample: CounterSample) {
        let mut inner = self.inner.lock().expect("collector poisoned");
        inner.counters.push(sample);
    }

    fn flush(&self, events: &mut Vec<TraceEvent>) {
        if events.is_empty() {
            return;
        }
        let mut inner = self.inner.lock().expect("collector poisoned");
        inner.events.append(events);
    }

    /// A deterministic snapshot of every recorded event, sorted by
    /// `(pid, tid, ts, name)` — so virtual-clock traces are byte-stable
    /// across runs regardless of flush interleaving.
    pub fn events(&self) -> Vec<TraceEvent> {
        let inner = self.inner.lock().expect("collector poisoned");
        let mut events = inner.events.clone();
        events.sort_by(|a, b| {
            (a.pid, a.tid)
                .cmp(&(b.pid, b.tid))
                .then(a.ts_us.total_cmp(&b.ts_us))
                .then(a.name.cmp(&b.name))
                .then(a.job.cmp(&b.job))
        });
        events
    }

    /// A snapshot of every counter sample, sorted by `(pid, name, ts)`.
    pub fn counters(&self) -> Vec<CounterSample> {
        let inner = self.inner.lock().expect("collector poisoned");
        let mut counters = inner.counters.clone();
        counters.sort_by(|a, b| {
            (a.pid, a.name)
                .cmp(&(b.pid, b.name))
                .then(a.ts_us.total_cmp(&b.ts_us))
        });
        counters
    }

    /// Renders the Chrome trace-event document: metadata (process/thread
    /// names), `X` complete events for spans, `i` instants for marks, and
    /// `C` counter events for the sampler series. Load it in Perfetto or
    /// `chrome://tracing`.
    pub fn to_chrome_json(&self) -> String {
        fn esc(s: &str) -> String {
            s.replace('\\', "\\\\").replace('"', "\\\"")
        }
        let num = |v: f64| {
            assert!(v.is_finite(), "trace event with non-finite number");
            format!("{v}")
        };
        let mut lines: Vec<String> = Vec::new();
        let (processes, threads) = {
            let inner = self.inner.lock().expect("collector poisoned");
            (inner.processes.clone(), inner.threads.clone())
        };
        for (pid, name) in &processes {
            lines.push(format!(
                "{{\"ph\": \"M\", \"name\": \"process_name\", \"pid\": {pid}, \"tid\": 0, \
                 \"args\": {{\"name\": \"{}\"}}}}",
                esc(name)
            ));
        }
        for ((pid, tid), name) in &threads {
            lines.push(format!(
                "{{\"ph\": \"M\", \"name\": \"thread_name\", \"pid\": {pid}, \"tid\": {tid}, \
                 \"args\": {{\"name\": \"{}\"}}}}",
                esc(name)
            ));
        }
        for e in self.events() {
            let args = match e.job {
                Some(job) => format!("{{\"job\": {job}}}"),
                None => "{}".to_string(),
            };
            if e.cat == "mark" {
                lines.push(format!(
                    "{{\"ph\": \"i\", \"s\": \"t\", \"name\": \"{}\", \"cat\": \"{}\", \
                     \"pid\": {}, \"tid\": {}, \"ts\": {}, \"args\": {args}}}",
                    esc(&e.name),
                    e.cat,
                    e.pid,
                    e.tid,
                    num(e.ts_us),
                ));
            } else {
                lines.push(format!(
                    "{{\"ph\": \"X\", \"name\": \"{}\", \"cat\": \"{}\", \"pid\": {}, \
                     \"tid\": {}, \"ts\": {}, \"dur\": {}, \"args\": {args}}}",
                    esc(&e.name),
                    e.cat,
                    e.pid,
                    e.tid,
                    num(e.ts_us),
                    num(e.dur_us),
                ));
            }
        }
        for c in self.counters() {
            let args = c
                .values
                .iter()
                .map(|(k, v)| format!("\"{}\": {}", esc(k), num(*v)))
                .collect::<Vec<_>>()
                .join(", ");
            lines.push(format!(
                "{{\"ph\": \"C\", \"name\": \"{}\", \"pid\": {}, \"tid\": 0, \"ts\": {}, \
                 \"args\": {{{args}}}}}",
                esc(c.name),
                c.pid,
                num(c.ts_us),
            ));
        }
        let mut out = String::from("{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n");
        for (i, line) in lines.iter().enumerate() {
            out.push_str("  ");
            out.push_str(line);
            out.push_str(if i + 1 < lines.len() { ",\n" } else { "\n" });
        }
        out.push_str("]}\n");
        out
    }

    /// Writes [`Collector::to_chrome_json`] to `path`, creating parent
    /// directories.
    ///
    /// # Errors
    /// Propagates I/O failures.
    pub fn write_chrome_trace(&self, path: &Path) -> std::io::Result<()> {
        crate::report::write_creating_parents(path, &self.to_chrome_json())
    }
}

/// A per-thread span buffer opened by [`Collector::recorder`]. Recording
/// appends to a local `Vec`; the collector lock is taken once, on drop.
#[derive(Debug)]
pub struct Recorder<'a> {
    collector: &'a Collector,
    pid: u32,
    tid: u32,
    events: Vec<TraceEvent>,
}

impl Recorder<'_> {
    /// Records a wall-clock span between two instants.
    pub fn span_wall(
        &mut self,
        cat: &'static str,
        name: &str,
        job: Option<u64>,
        start: Instant,
        end: Instant,
    ) {
        let ts_us = self.collector.us_since_origin(start);
        let dur_us = (self.collector.us_since_origin(end) - ts_us).max(0.0);
        self.span_at(cat, name, job, ts_us, dur_us);
    }

    /// Records a span at explicit µs coordinates (virtual-clock engines).
    pub fn span_at(
        &mut self,
        cat: &'static str,
        name: &str,
        job: Option<u64>,
        ts_us: f64,
        dur_us: f64,
    ) {
        self.events.push(TraceEvent {
            pid: self.pid,
            tid: self.tid,
            name: name.to_string(),
            cat,
            ts_us,
            dur_us,
            job,
        });
    }

    /// Records a wall-clock instant mark.
    pub fn mark_wall(&mut self, name: &str, job: Option<u64>, at: Instant) {
        let ts_us = self.collector.us_since_origin(at);
        self.events.push(TraceEvent {
            pid: self.pid,
            tid: self.tid,
            name: name.to_string(),
            cat: "mark",
            ts_us,
            dur_us: 0.0,
            job,
        });
    }
}

impl Drop for Recorder<'_> {
    fn drop(&mut self) {
        self.collector.flush(&mut self.events);
    }
}

// ---------------------------------------------------------------------------
// Summary: per-stage histograms + counter maxima
// ---------------------------------------------------------------------------

/// One stage's latency histogram within a [`TelemetrySummary`].
#[derive(Debug, Clone, PartialEq)]
pub struct StageStats {
    /// Stage name (`"enqueue"`, `"admit"`, `"form"`, `"wait"`, `"solve"`).
    pub stage: String,
    /// Span-duration histogram (µs).
    pub hist: LogHistogram,
}

/// The digest of a collector: per-stage and end-to-end latency histograms
/// plus counter maxima. Rendered as the `TELEMETRY` stanza of
/// `BENCH_fabric_rt.json` and the per-stage CLI breakdown table.
#[derive(Debug, Clone, PartialEq)]
pub struct TelemetrySummary {
    /// Per-stage histograms, sorted by stage name.
    pub stages: Vec<StageStats>,
    /// End-to-end (cat `"job"`) span histogram (µs).
    pub end_to_end: LogHistogram,
    /// Total spans recorded (all categories except marks).
    pub spans: usize,
    /// Sampler readings taken.
    pub samples: usize,
    /// `(series name, maximum observed value)` across all counter samples,
    /// sorted by name.
    pub counters: Vec<(String, f64)>,
}

impl TelemetrySummary {
    /// Digests a collector's events and counters.
    pub fn from_collector(collector: &Collector) -> TelemetrySummary {
        let events = collector.events();
        let counters = collector.counters();
        let mut stages: BTreeMap<String, LogHistogram> = BTreeMap::new();
        let mut end_to_end = LogHistogram::new();
        let mut spans = 0usize;
        for e in &events {
            match e.cat {
                "stage" => {
                    spans += 1;
                    stages.entry(e.name.clone()).or_default().record(e.dur_us);
                }
                "job" => {
                    spans += 1;
                    end_to_end.record(e.dur_us);
                }
                "batch" => spans += 1,
                _ => {}
            }
        }
        let mut maxima: BTreeMap<String, f64> = BTreeMap::new();
        for sample in &counters {
            for (name, value) in &sample.values {
                let slot = maxima.entry(name.clone()).or_insert(f64::NEG_INFINITY);
                *slot = slot.max(*value);
            }
        }
        TelemetrySummary {
            stages: stages
                .into_iter()
                .map(|(stage, hist)| StageStats { stage, hist })
                .collect(),
            end_to_end,
            spans,
            samples: counters.len(),
            counters: maxima.into_iter().collect(),
        }
    }

    /// The per-stage latency breakdown table printed by the CLI when
    /// telemetry is enabled.
    pub fn table(&self) -> crate::report::Table {
        use crate::report::{fnum, Table};
        let mut table = Table::new(&["stage", "count", "p50_us", "p90_us", "p99_us", "max_us"]);
        let mut push = |name: &str, hist: &LogHistogram| {
            table.push_row(vec![
                name.to_string(),
                hist.count().to_string(),
                fnum(hist.percentile(50.0), 1),
                fnum(hist.percentile(90.0), 1),
                fnum(hist.percentile(99.0), 1),
                fnum(hist.max(), 1),
            ]);
        };
        for s in &self.stages {
            push(&s.stage, &s.hist);
        }
        push("end_to_end", &self.end_to_end);
        table
    }

    /// Renders the `"telemetry"` stanza body (the braces and their
    /// contents; `indent` spaces prefix every line after the first). The
    /// percentile fields are ordered by construction — `check_telemetry`
    /// in `ci/check_bench.py` re-verifies.
    pub fn to_json_stanza(&self, indent: usize) -> String {
        let pad = " ".repeat(indent);
        let num = |v: f64| {
            assert!(v.is_finite(), "telemetry stanza with non-finite number");
            format!("{v}")
        };
        let hist_line = |label: &str, hist: &LogHistogram| {
            format!(
                "{{\"stage\": \"{}\", \"count\": {}, \"p50_us\": {}, \"p90_us\": {}, \
                 \"p99_us\": {}, \"max_us\": {}}}",
                label,
                hist.count(),
                num(hist.percentile(50.0)),
                num(hist.percentile(90.0)),
                num(hist.percentile(99.0)),
                num(hist.max()),
            )
        };
        let mut s = String::from("{\n");
        s.push_str(&format!("{pad}  \"spans\": {},\n", self.spans));
        s.push_str(&format!("{pad}  \"samples\": {},\n", self.samples));
        s.push_str(&format!("{pad}  \"stages\": [\n"));
        for (i, stage) in self.stages.iter().enumerate() {
            s.push_str(&format!(
                "{pad}    {}",
                hist_line(&stage.stage, &stage.hist)
            ));
            s.push_str(if i + 1 < self.stages.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        s.push_str(&format!("{pad}  ],\n"));
        s.push_str(&format!(
            "{pad}  \"end_to_end\": {},\n",
            hist_line("end_to_end", &self.end_to_end)
        ));
        s.push_str(&format!("{pad}  \"counters\": [\n"));
        for (i, (name, max)) in self.counters.iter().enumerate() {
            s.push_str(&format!(
                "{pad}    {{\"name\": \"{name}\", \"max\": {}}}",
                num(*max)
            ));
            s.push_str(if i + 1 < self.counters.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        s.push_str(&format!("{pad}  ]\n"));
        s.push_str(&format!("{pad}}}"));
        s
    }

    /// The p50 of a named stage, when that stage was recorded — the hook
    /// `ci/check_bench.py --history` folds into the trajectory table.
    pub fn stage_p50_us(&self, stage: &str) -> Option<f64> {
        self.stages
            .iter()
            .find(|s| s.stage == stage)
            .map(|s| s.hist.percentile(50.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_percentiles_are_within_one_bucket_of_exact() {
        let mut h = LogHistogram::new();
        let values: Vec<f64> = (1..=1000).map(|i| i as f64 * 0.37).collect();
        for &v in &values {
            h.record(v);
        }
        assert_eq!(h.count(), 1000);
        let mut sorted = values.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for p in [0.0, 10.0, 50.0, 90.0, 99.0, 99.9, 100.0] {
            let rank = ((p / 100.0) * 1000.0_f64).ceil().max(1.0) as usize;
            let exact = sorted[rank - 1];
            let approx = h.percentile(p);
            assert!(
                (approx - exact).abs() <= exact * LogHistogram::RELATIVE_ERROR + 1e-12,
                "p{p}: approx {approx} vs exact {exact}"
            );
        }
        assert_eq!(h.min(), 0.37);
        assert_eq!(h.max(), 370.0);
    }

    #[test]
    fn histogram_percentiles_are_monotone_in_p() {
        let mut h = LogHistogram::new();
        for i in 0..500 {
            h.record(((i * 7919) % 1000) as f64 + 0.5);
        }
        let mut prev = f64::NEG_INFINITY;
        for p in 0..=100 {
            let v = h.percentile(p as f64);
            assert!(v >= prev, "p{p}: {v} < {prev}");
            prev = v;
        }
    }

    #[test]
    fn histogram_handles_zero_negative_and_nonfinite() {
        let mut h = LogHistogram::new();
        h.record(0.0);
        h.record(-3.0);
        h.record(f64::NAN);
        h.record(f64::INFINITY);
        h.record(2.0);
        assert_eq!(h.count(), 3); // NaN and inf ignored
        assert_eq!(h.percentile(0.0), -3.0); // clamped to exact min
        assert_eq!(h.percentile(100.0), 2.0);
    }

    #[test]
    fn empty_histogram_is_total() {
        let h = LogHistogram::new();
        assert!(h.is_empty());
        assert_eq!(h.percentile(50.0), 0.0);
        assert_eq!(h.min(), 0.0);
        assert_eq!(h.max(), 0.0);
    }

    #[test]
    fn histogram_merge_equals_sequential() {
        let mut whole = LogHistogram::new();
        let mut left = LogHistogram::new();
        let mut right = LogHistogram::new();
        for i in 0..200 {
            let v = (i as f64 * 1.7).exp().min(1e12) % 997.0;
            whole.record(v);
            if i % 2 == 0 {
                left.record(v);
            } else {
                right.record(v);
            }
        }
        left.merge(&right);
        assert_eq!(left, whole);
    }

    #[test]
    fn histogram_json_round_trips() {
        let mut h = LogHistogram::new();
        for v in [0.0, 1e-9, 0.5, 1.0, 3.25, 1e6, 7.0] {
            h.record(v);
        }
        let parsed = LogHistogram::from_json(&h.to_json()).expect("round trip");
        assert_eq!(parsed, h);

        let empty = LogHistogram::new();
        let parsed = LogHistogram::from_json(&empty.to_json()).expect("empty round trip");
        assert_eq!(parsed, empty);

        // Inconsistent totals are rejected, not silently absorbed.
        let mut doc = h.to_json();
        if let Json::Obj(fields) = &mut doc {
            for (k, v) in fields.iter_mut() {
                if k == "count" {
                    *v = Json::UInt(99);
                }
            }
        }
        assert!(LogHistogram::from_json(&doc).is_err());
    }

    #[test]
    fn recorder_flushes_on_drop_and_events_sort_deterministically() {
        let collector = Collector::new();
        collector.label_process(1, "point-0");
        {
            let mut rec = collector.recorder(1, 2, "worker");
            rec.span_at("stage", "solve", Some(4), 20.0, 5.0);
            rec.span_at("stage", "solve", Some(3), 10.0, 5.0);
            assert!(collector.events().is_empty(), "buffered until drop");
        }
        let events = collector.events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].job, Some(3)); // sorted by ts
        assert_eq!(events[1].job, Some(4));
    }

    #[test]
    fn chrome_trace_is_valid_json_with_all_phases() {
        let collector = Collector::new();
        collector.label_process(1, "point \"zero\"");
        {
            let mut rec = collector.recorder(1, 1, "sequencer");
            rec.span_at("stage", "admit", Some(0), 1.0, 2.0);
            rec.mark_wall("produce", Some(0), Instant::now());
        }
        collector.push_counter(CounterSample {
            pid: 1,
            name: "queues",
            ts_us: 5.0,
            values: vec![("delivery".to_string(), 3.0)],
        });
        let text = collector.to_chrome_json();
        let doc = Json::parse(&text).expect("chrome trace parses");
        let events = doc
            .get("traceEvents")
            .and_then(Json::as_arr)
            .expect("traceEvents");
        let phases: Vec<&str> = events
            .iter()
            .filter_map(|e| e.get("ph").and_then(Json::as_str))
            .collect();
        assert!(phases.contains(&"M"));
        assert!(phases.contains(&"X"));
        assert!(phases.contains(&"i"));
        assert!(phases.contains(&"C"));
    }

    #[test]
    fn summary_digests_stages_and_counters() {
        let collector = Collector::new();
        {
            let mut rec = collector.recorder(1, 1, "t");
            rec.span_at("stage", "admit", Some(0), 0.0, 2.0);
            rec.span_at("stage", "solve", Some(0), 2.0, 8.0);
            rec.span_at("job", "frame", Some(0), 0.0, 10.0);
            rec.span_at("batch", "sa-pool", None, 2.0, 8.0);
        }
        collector.push_counter(CounterSample {
            pid: 1,
            name: "queues",
            ts_us: 1.0,
            values: vec![("delivery".to_string(), 2.0)],
        });
        collector.push_counter(CounterSample {
            pid: 1,
            name: "queues",
            ts_us: 2.0,
            values: vec![("delivery".to_string(), 5.0)],
        });
        let summary = TelemetrySummary::from_collector(&collector);
        assert_eq!(summary.spans, 4);
        assert_eq!(summary.samples, 2);
        assert_eq!(summary.stages.len(), 2);
        assert_eq!(summary.stage_p50_us("admit"), Some(2.0));
        assert_eq!(summary.stage_p50_us("missing"), None);
        assert_eq!(summary.end_to_end.count(), 1);
        assert_eq!(summary.counters, vec![("delivery".to_string(), 5.0)]);

        // The stanza parses and keeps its percentile ordering.
        let stanza = summary.to_json_stanza(2);
        let doc = Json::parse(&stanza).expect("stanza parses");
        for stage in doc.get("stages").and_then(Json::as_arr).expect("stages") {
            let p50 = stage.get("p50_us").and_then(Json::as_f64).unwrap();
            let p99 = stage.get("p99_us").and_then(Json::as_f64).unwrap();
            let max = stage.get("max_us").and_then(Json::as_f64).unwrap();
            assert!(p50 <= p99 && p99 <= max);
        }

        // The breakdown table has one row per stage plus end-to-end.
        assert_eq!(summary.table().len(), 3);
    }
}
