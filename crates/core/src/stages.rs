//! Classical initializer stages for the hybrid solver.
//!
//! The hybrid structure (paper Figure 1) is: **classical stage produces a
//! candidate → quantum stage refines it**. The paper's prototype uses Greedy
//! Search "by choosing the simplest classical module"; its §5 proposes
//! application-specific alternatives — linear solvers (zero-forcing) and
//! tree-based solvers (K-best, FCSD) — which are wrapped here as
//! [`DetectorInitializer`] so the framework can compose any of them.
//!
//! Each initializer reports an estimated classical latency so the pipeline
//! studies (Figure 2) can budget stages. The estimates are simple documented
//! operation-count models (cycles at a notional 1 GHz base-station DSP), not
//! wall-clock measurements — the same convention as the annealer's
//! programmed-microsecond accounting.

use hqw_math::Rng64;
use hqw_phy::detect::Detector;
use hqw_phy::instance::DetectionInstance;
use hqw_qubo::greedy::{greedy_search, GreedyConfig};

/// A candidate solution from a classical stage.
#[derive(Debug, Clone, PartialEq)]
pub struct InitialState {
    /// Natural-labeled (QUBO-variable) bits.
    pub bits: Vec<u8>,
    /// QUBO energy of the candidate.
    pub energy: f64,
    /// Estimated classical compute latency (µs).
    pub latency_us: f64,
}

/// A classical stage that produces reverse-anneal initial states.
pub trait ClassicalInitializer: Send + Sync {
    /// Stage name for reports.
    fn name(&self) -> &'static str;

    /// Computes a candidate for one detection instance.
    fn initialize(&self, instance: &DetectionInstance, rng: &mut Rng64) -> InitialState;
}

/// Notional DSP clock for latency models (operations per microsecond).
const OPS_PER_US: f64 = 1000.0;

/// The paper's Greedy Search stage (§4.1): "a good initial guess that
/// requires nearly negligible computation time".
#[derive(Debug, Clone, Copy, Default)]
pub struct GreedyInitializer {
    /// Greedy variant/order configuration.
    pub config: GreedyConfig,
}

impl ClassicalInitializer for GreedyInitializer {
    fn name(&self) -> &'static str {
        "GS"
    }

    fn initialize(&self, instance: &DetectionInstance, _rng: &mut Rng64) -> InitialState {
        let (bits, energy) = greedy_search(&instance.reduction.qubo, self.config);
        let n = instance.num_vars() as f64;
        InitialState {
            bits,
            energy,
            latency_us: n * n / OPS_PER_US, // O(N²) field updates
        }
    }
}

/// Uniform random initial state — the paper's Figure 6 (center) control,
/// which "works worse than FA".
#[derive(Debug, Clone, Copy, Default)]
pub struct RandomInitializer;

impl ClassicalInitializer for RandomInitializer {
    fn name(&self) -> &'static str {
        "random"
    }

    fn initialize(&self, instance: &DetectionInstance, rng: &mut Rng64) -> InitialState {
        let bits: Vec<u8> = (0..instance.num_vars())
            .map(|_| rng.next_bool() as u8)
            .collect();
        let energy = instance.reduction.qubo.energy(&bits);
        InitialState {
            bits,
            energy,
            latency_us: 0.0,
        }
    }
}

/// Ground-truth oracle — the paper's Figure 8 red-dashed reference
/// (`ΔE_IS% = 0`). Only valid on noiseless instances.
#[derive(Debug, Clone, Copy, Default)]
pub struct OracleInitializer;

impl ClassicalInitializer for OracleInitializer {
    fn name(&self) -> &'static str {
        "oracle"
    }

    fn initialize(&self, instance: &DetectionInstance, _rng: &mut Rng64) -> InitialState {
        InitialState {
            bits: instance.tx_natural_bits.clone(),
            energy: instance.ground_energy(),
            latency_us: 0.0,
        }
    }
}

/// A fixed, externally-supplied initial state (used by the Figure 7/8
/// harnesses, which harvest states of controlled ΔE_IS% from sample sets).
#[derive(Debug, Clone)]
pub struct FixedInitializer {
    /// The candidate bits to return.
    pub bits: Vec<u8>,
}

impl ClassicalInitializer for FixedInitializer {
    fn name(&self) -> &'static str {
        "fixed"
    }

    fn initialize(&self, instance: &DetectionInstance, _rng: &mut Rng64) -> InitialState {
        assert_eq!(
            self.bits.len(),
            instance.num_vars(),
            "FixedInitializer: state length mismatch"
        );
        InitialState {
            bits: self.bits.clone(),
            energy: instance.reduction.qubo.energy(&self.bits),
            latency_us: 0.0,
        }
    }
}

/// Tabu-search initializer — the classical component of D-Wave's commercial
/// hybrid offering cited in the paper's §2 ("a solver block design
/// consisting of multiple quantum annealing processors hybridized with Tabu
/// search"). Stronger seeds than GS at correspondingly higher latency.
#[derive(Debug, Clone, Copy, Default)]
pub struct TabuInitializer {
    /// Tabu-search parameters.
    pub params: hqw_qubo::tabu::TabuParams,
}

impl ClassicalInitializer for TabuInitializer {
    fn name(&self) -> &'static str {
        "tabu"
    }

    fn initialize(&self, instance: &DetectionInstance, _rng: &mut Rng64) -> InitialState {
        // Deterministic start from greedy search, then tabu refinement.
        let (start, _) = greedy_search(&instance.reduction.qubo, GreedyConfig::default());
        let (bits, energy) =
            hqw_qubo::tabu::tabu_search(&instance.reduction.qubo, &start, &self.params);
        let n = instance.num_vars() as f64;
        InitialState {
            bits,
            energy,
            // O(iters · N) move evaluations of N-term deltas each.
            latency_us: self.params.max_iters as f64 * n * n / OPS_PER_US,
        }
    }
}

/// Wraps any classical MIMO detector as an initializer — the
/// "application-specific solvers" of the paper's §5.
#[derive(Debug, Clone, Copy)]
pub struct DetectorInitializer<D: Detector> {
    detector: D,
    /// Latency model: operations per channel use, divided by [`OPS_PER_US`].
    ops_estimate: f64,
}

impl<D: Detector> DetectorInitializer<D> {
    /// Wraps `detector` with an operation-count latency estimate.
    pub fn new(detector: D, ops_estimate: f64) -> Self {
        DetectorInitializer {
            detector,
            ops_estimate,
        }
    }
}

/// Zero-forcing initializer with its `O(N³)` solve latency model.
pub fn zf_initializer(n_users: usize) -> DetectorInitializer<hqw_phy::detect::ZeroForcing> {
    let n = (2 * n_users) as f64; // real-stacked dimension
    DetectorInitializer::new(hqw_phy::detect::ZeroForcing, n * n * n)
}

/// K-best initializer; latency `O(K · levels · dim)`.
pub fn kbest_initializer(k: usize, n_users: usize) -> DetectorInitializer<hqw_phy::detect::KBest> {
    let dim = (2 * n_users) as f64;
    DetectorInitializer::new(hqw_phy::detect::KBest::new(k), k as f64 * 8.0 * dim * dim)
}

/// FCSD initializer; latency `O(levels^ρ · dim²)`.
pub fn fcsd_initializer(rho: usize, n_users: usize) -> DetectorInitializer<hqw_phy::detect::Fcsd> {
    let dim = (2 * n_users) as f64;
    let paths = 4f64.powi(rho as i32);
    DetectorInitializer::new(hqw_phy::detect::Fcsd::new(rho), paths * dim * dim)
}

impl<D: Detector> ClassicalInitializer for DetectorInitializer<D> {
    fn name(&self) -> &'static str {
        self.detector.name()
    }

    fn initialize(&self, instance: &DetectionInstance, _rng: &mut Rng64) -> InitialState {
        let result = self
            .detector
            .detect(&instance.system, &instance.h, &instance.y);
        let natural = instance.reduction.gray_to_natural(&result.gray_bits);
        let energy = instance.reduction.qubo.energy(&natural);
        InitialState {
            bits: natural,
            energy,
            latency_us: self.ops_estimate / OPS_PER_US,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hqw_phy::instance::InstanceConfig;
    use hqw_phy::modulation::Modulation;

    fn instance() -> DetectionInstance {
        let mut rng = Rng64::new(7);
        DetectionInstance::generate(&InstanceConfig::paper(4, Modulation::Qam16), &mut rng)
    }

    #[test]
    fn oracle_returns_the_ground_state() {
        let inst = instance();
        let init = OracleInitializer.initialize(&inst, &mut Rng64::new(1));
        assert_eq!(init.bits, inst.tx_natural_bits);
        assert!((init.energy - inst.ground_energy()).abs() < 1e-9);
    }

    #[test]
    fn greedy_energy_is_self_consistent_and_latency_positive() {
        let inst = instance();
        let init = GreedyInitializer::default().initialize(&inst, &mut Rng64::new(1));
        assert!((inst.reduction.qubo.energy(&init.bits) - init.energy).abs() < 1e-9);
        assert!(init.latency_us > 0.0);
    }

    #[test]
    fn tabu_initializer_is_at_least_as_good_as_greedy() {
        let inst = instance();
        let greedy = GreedyInitializer::default().initialize(&inst, &mut Rng64::new(1));
        let tabu = TabuInitializer::default().initialize(&inst, &mut Rng64::new(1));
        assert!(
            tabu.energy <= greedy.energy + 1e-9,
            "tabu starts from greedy and only improves"
        );
        assert!(
            tabu.latency_us > greedy.latency_us,
            "tabu must cost more than its greedy start"
        );
        assert!((inst.reduction.qubo.energy(&tabu.bits) - tabu.energy).abs() < 1e-9);
    }

    #[test]
    fn zf_initializer_solves_noiseless_instances_exactly() {
        let inst = instance();
        let init = zf_initializer(4).initialize(&inst, &mut Rng64::new(1));
        assert_eq!(
            init.bits, inst.tx_natural_bits,
            "noiseless ZF must be exact"
        );
        assert!((init.energy - inst.ground_energy()).abs() < 1e-6);
    }

    #[test]
    fn detector_initializers_report_names() {
        assert_eq!(zf_initializer(4).name(), "ZF");
        assert_eq!(kbest_initializer(4, 4).name(), "K-best");
        assert_eq!(fcsd_initializer(1, 4).name(), "FCSD");
    }

    #[test]
    fn random_initializer_uses_the_rng() {
        let inst = instance();
        let a = RandomInitializer.initialize(&inst, &mut Rng64::new(1));
        let b = RandomInitializer.initialize(&inst, &mut Rng64::new(2));
        assert_ne!(a.bits, b.bits);
        // Deterministic per seed.
        let c = RandomInitializer.initialize(&inst, &mut Rng64::new(1));
        assert_eq!(a.bits, c.bits);
    }

    #[test]
    fn fixed_initializer_round_trips() {
        let inst = instance();
        let bits = inst.tx_natural_bits.clone();
        let init = FixedInitializer { bits: bits.clone() }.initialize(&inst, &mut Rng64::new(1));
        assert_eq!(init.bits, bits);
    }

    #[test]
    #[should_panic(expected = "state length mismatch")]
    fn fixed_initializer_rejects_bad_length() {
        let inst = instance();
        FixedInitializer { bits: vec![0, 1] }.initialize(&inst, &mut Rng64::new(1));
    }
}
