//! Canned experiment runners — one per figure/claim in the paper.
//!
//! Each runner reproduces one evaluation artifact (see the per-experiment
//! index in `DESIGN.md`) and returns structured rows; the `hqw-bench`
//! binaries print/persist them and `EXPERIMENTS.md` records paper-vs-measured
//! comparisons. Runners take an explicit [`Scale`] so integration tests can
//! exercise the full logic cheaply while the bench binaries run
//! publication-scale sweeps.
//!
//! Scale note: the paper collects 200k–600k anneals per figure on real
//! hardware; the simulator defaults are smaller (hundreds of reads per
//! setting) because a simulated read costs milliseconds of CPU rather than
//! microseconds of QPU. The *shape* comparisons are unaffected; error bars
//! are wider.

use crate::harvest::{harvest_states, HarvestedState};
use crate::metrics::{delta_e_percent, success_probability, time_to_solution};
use crate::protocol::{paper_sp_grid, Protocol};
use crate::stages::{ClassicalInitializer, GreedyInitializer};
use crate::sweep::{best_point, sweep_protocol, SweepPoint};
use hqw_anneal::sampler::{EngineKind, QuantumSampler, SamplerConfig};
use hqw_anneal::{AnnealParams, DWaveProfile, IceModel};
use hqw_math::stats::percentile;
use hqw_math::Rng64;
use hqw_phy::instance::{DetectionInstance, InstanceConfig};
use hqw_phy::modulation::Modulation;
use hqw_qubo::constraints::{apply_pair_constraint, PairConstraint};
use hqw_qubo::exact::exhaustive_minimum;
use hqw_qubo::preprocess::preprocess;

/// Experiment scale knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scale {
    /// Instances per experimental point.
    pub instances: usize,
    /// Anneal reads per protocol setting.
    pub reads: usize,
    /// Read budget for initial-state harvesting.
    pub harvest_reads: usize,
    /// Keep every `thin`-th point of the paper's `s_p` grid (1 = full grid).
    pub grid_thin: usize,
}

impl Scale {
    /// Fast setting for tests (seconds).
    pub fn quick() -> Self {
        Scale {
            instances: 2,
            reads: 60,
            harvest_reads: 400,
            grid_thin: 4,
        }
    }

    /// Default bench-binary setting (minutes).
    pub fn standard() -> Self {
        Scale {
            instances: 10,
            reads: 400,
            harvest_reads: 4000,
            grid_thin: 1,
        }
    }

    /// Publication-scale overnight setting.
    pub fn full() -> Self {
        Scale {
            instances: 20,
            reads: 2000,
            harvest_reads: 20000,
            grid_thin: 1,
        }
    }

    /// The (possibly thinned) `s_p` grid.
    pub fn sp_grid(&self) -> Vec<f64> {
        paper_sp_grid()
            .into_iter()
            .step_by(self.grid_thin.max(1))
            .collect()
    }
}

/// The workspace's standard simulated QPU for experiments.
pub fn paper_sampler(reads: usize) -> QuantumSampler {
    QuantumSampler::new(
        DWaveProfile::calibrated(),
        SamplerConfig {
            num_reads: reads,
            engine: EngineKind::Pimc { trotter_slices: 16 },
            params: AnnealParams::default(),
            ..Default::default()
        },
    )
}

// ---------------------------------------------------------------------------
// Figure 3: QUBO-simplification preprocessing
// ---------------------------------------------------------------------------

/// One point of Figure 3.
#[derive(Debug, Clone)]
pub struct Fig3Row {
    /// Modulation.
    pub modulation: Modulation,
    /// QUBO variable count.
    pub n_vars: usize,
    /// Fraction of instances where preprocessing fixed ≥ 1 variable (left
    /// panel).
    pub simplified_ratio: f64,
    /// Mean number of fixed variables over the *simplified* instances
    /// (right panel; 0 when none simplified).
    pub avg_fixed: f64,
}

/// Runs the Figure 3 sweep: `instances_per_point` random MIMO QUBOs per
/// (modulation, size), sizes spanning ~4–64 variables.
pub fn run_fig3(instances_per_point: usize, seed: u64) -> Vec<Fig3Row> {
    let mut rng = Rng64::new(seed);
    let mut rows = Vec::new();
    for m in Modulation::ALL {
        let bps = m.bits_per_symbol();
        let mut sizes: Vec<usize> = (1..=(64 / bps)).map(|k| k * bps).collect();
        sizes.retain(|&v| v >= 4);
        // Cap the sweep at ~12 points per modulation.
        let step = (sizes.len() / 12).max(1);
        for &n_vars in sizes.iter().step_by(step) {
            let config = InstanceConfig::paper_with_vars(n_vars, m);
            let mut simplified = 0usize;
            let mut fixed_total = 0usize;
            for _ in 0..instances_per_point {
                let inst = DetectionInstance::generate(&config, &mut rng);
                let p = preprocess(&inst.reduction.qubo);
                if p.simplified() {
                    simplified += 1;
                    fixed_total += p.num_fixed();
                }
            }
            rows.push(Fig3Row {
                modulation: m,
                n_vars,
                simplified_ratio: simplified as f64 / instances_per_point as f64,
                avg_fixed: if simplified > 0 {
                    fixed_total as f64 / simplified as f64
                } else {
                    0.0
                },
            });
        }
    }
    rows
}

// ---------------------------------------------------------------------------
// Figure 6: ΔE% distributions for FA / RA-random / RA-GS
// ---------------------------------------------------------------------------

/// Percentile levels reported for Figure 6 distributions.
pub const FIG6_PERCENTILES: [f64; 9] = [1.0, 5.0, 10.0, 25.0, 50.0, 75.0, 90.0, 95.0, 99.0];

/// One distribution of Figure 6 (a modulation × protocol arm).
#[derive(Debug, Clone)]
pub struct Fig6Row {
    /// Modulation.
    pub modulation: Modulation,
    /// Protocol arm: "FA", "RA-random" or "RA-GS".
    pub arm: &'static str,
    /// `s_p` used.
    pub s_p: f64,
    /// `(percentile, ΔE%)` pairs at [`FIG6_PERCENTILES`].
    pub percentiles: Vec<(f64, f64)>,
    /// Fraction of reads that found the ground state.
    pub ground_fraction: f64,
    /// Mean ΔE% over all reads.
    pub mean_delta_e: f64,
}

/// Runs Figure 6: 36-variable instances for every modulation, three arms.
///
/// `s_p` per arm is chosen on the first instance by the best mean sample
/// energy over a coarse grid (the distribution analogue of the paper's
/// "median best parameter setting").
pub fn run_fig6(scale: Scale, seed: u64) -> Vec<Fig6Row> {
    let sampler = paper_sampler(scale.reads);
    let coarse: Vec<f64> = [0.37, 0.53, 0.69, 0.85].to_vec();
    let mut rows = Vec::new();

    for m in Modulation::ALL {
        let config = InstanceConfig::paper_with_vars(36, m);
        let mut rng = Rng64::new(seed ^ m.bits_per_symbol() as u64);
        let instances = DetectionInstance::generate_batch(&config, scale.instances, &mut rng);

        // Arm setup on the first instance.
        let first = &instances[0];
        let eg0 = first.ground_energy();
        let (gs_bits0, _) = hqw_qubo::greedy_search(&first.reduction.qubo, Default::default());
        let pick_sp = |protocol: &dyn Fn(f64) -> Protocol, init: Option<&[u8]>| -> f64 {
            let pts = sweep_protocol(
                &sampler,
                &first.reduction.qubo,
                eg0,
                &coarse,
                protocol,
                init,
                seed,
            );
            pts.iter()
                .min_by(|a, b| a.mean_energy.partial_cmp(&b.mean_energy).unwrap())
                .map(|p| p.param)
                .unwrap_or(0.53)
        };
        let sp_fa = pick_sp(&Protocol::paper_fa, None);
        let sp_ra = pick_sp(&Protocol::paper_ra, Some(&gs_bits0));

        // A fourth, classical-baseline arm: simulated annealing at a
        // Monte-Carlo budget matched to one anneal read (the reviewer's
        // inevitable "why not plain SA?" control; not in the paper's figure).
        let sa_params = hqw_qubo::sa::SaParams {
            sweeps: (sampler.config.params.sweeps_per_us as f64
                * Protocol::paper_fa(sp_fa).duration_us()) as usize,
            num_reads: scale.reads,
            ..Default::default()
        };

        let mut arm_dist: Vec<(&'static str, f64, Vec<f64>, u64, u64)> = vec![
            ("FA", sp_fa, Vec::new(), 0, 0),
            ("RA-random", sp_ra, Vec::new(), 0, 0),
            ("RA-GS", sp_ra, Vec::new(), 0, 0),
            ("SA-classical", f64::NAN, Vec::new(), 0, 0),
        ];

        for (idx, inst) in instances.iter().enumerate() {
            let eg = inst.ground_energy();
            let qubo = &inst.reduction.qubo;
            let (gs_bits, _) = hqw_qubo::greedy_search(qubo, Default::default());
            let mut inst_rng = Rng64::new(seed.wrapping_add(idx as u64 * 7919));
            let random_bits: Vec<u8> = (0..36).map(|_| inst_rng.next_bool() as u8).collect();

            for (arm, sp, dist, hits, total) in arm_dist.iter_mut() {
                let samples = if *arm == "SA-classical" {
                    let mut sa_rng = Rng64::new(inst_rng.next_u64());
                    hqw_qubo::sa::sample_qubo(qubo, &sa_params, &mut sa_rng)
                } else {
                    let protocol = match *arm {
                        "FA" => Protocol::paper_fa(*sp),
                        _ => Protocol::paper_ra(*sp),
                    };
                    let init: Option<&[u8]> = match *arm {
                        "RA-random" => Some(&random_bits),
                        "RA-GS" => Some(&gs_bits),
                        _ => None,
                    };
                    sampler
                        .sample_qubo(
                            qubo,
                            &protocol.schedule().expect("valid"),
                            init,
                            inst_rng.next_u64(),
                        )
                        .samples
                };
                for e in samples.energies_per_read() {
                    let de = delta_e_percent(e, eg);
                    dist.push(de);
                    *total += 1;
                    if de <= 1e-9 {
                        *hits += 1;
                    }
                }
            }
        }

        for (arm, sp, dist, hits, total) in arm_dist {
            let percentiles = FIG6_PERCENTILES
                .iter()
                .map(|&p| (p, percentile(&dist, p)))
                .collect();
            rows.push(Fig6Row {
                modulation: m,
                arm,
                s_p: sp,
                percentiles,
                ground_fraction: hits as f64 / total.max(1) as f64,
                mean_delta_e: dist.iter().sum::<f64>() / dist.len().max(1) as f64,
            });
        }
    }
    rows
}

// ---------------------------------------------------------------------------
// Figure 7: RA performance vs initial-state quality
// ---------------------------------------------------------------------------

/// One ΔE_IS% bin of Figure 7.
#[derive(Debug, Clone)]
pub struct Fig7Row {
    /// Bin center (ΔE_IS%).
    pub bin_center: f64,
    /// Number of harvested states evaluated in this bin.
    pub n_states: usize,
    /// Mean per-read success probability of RA from this bin's states.
    pub p_star: f64,
    /// Mean output cost (ΔE% of the expectation value) of RA samples.
    pub mean_cost_delta_e: f64,
}

/// Runs Figure 7 on one 8-user 16-QAM instance: success probability and
/// expected cost of RA as a function of ΔE_IS% (2% bins over 0–10%, plus
/// the exact-ground reference at bin center 0).
///
/// Returns `(s_p used, rows)`.
pub fn run_fig7(scale: Scale, seed: u64) -> (f64, Vec<Fig7Row>) {
    let mut rng = Rng64::new(seed);
    let inst = DetectionInstance::generate(&InstanceConfig::paper(8, Modulation::Qam16), &mut rng);
    let eg = inst.ground_energy();
    let qubo = &inst.reduction.qubo;
    let sampler = paper_sampler(scale.reads);

    // Harvest seed states by quality (the paper's 750k-sample methodology).
    let harvester = paper_sampler(scale.reads.max(200));
    let bins = harvest_states(
        &harvester,
        qubo,
        eg,
        2.0,
        10.0,
        3,
        scale.harvest_reads,
        seed ^ 0xA5A5,
    );

    // Pick s_p by the best p★ of RA from the best harvested seed (falling
    // back to the ground state when harvesting found nothing low).
    let probe: &[u8] = bins
        .iter()
        .flatten()
        .next()
        .map(|s| s.bits.as_slice())
        .unwrap_or(&inst.tx_natural_bits);
    let sp_points = sweep_protocol(
        &sampler,
        qubo,
        eg,
        &[0.53, 0.61, 0.69, 0.77],
        Protocol::paper_ra,
        Some(probe),
        seed ^ 0x5A5A,
    );
    let s_p = best_point(&sp_points).map(|p| p.param).unwrap_or(0.69);
    let schedule = Protocol::paper_ra(s_p).schedule().expect("valid");

    let mut rows = Vec::new();
    // Exact-ground reference (the paper's ΔE_IS% = 0 line).
    let ground_run = sampler.sample_qubo(qubo, &schedule, Some(&inst.tx_natural_bits), seed);
    rows.push(Fig7Row {
        bin_center: 0.0,
        n_states: 1,
        p_star: success_probability(&ground_run.samples, eg),
        mean_cost_delta_e: delta_e_percent(ground_run.samples.mean_energy(), eg),
    });

    for (b, states) in bins.iter().enumerate() {
        if states.is_empty() {
            continue;
        }
        let mut p_sum = 0.0;
        let mut cost_sum = 0.0;
        for (k, st) in states.iter().enumerate() {
            let run = sampler.sample_qubo(
                qubo,
                &schedule,
                Some(&st.bits),
                seed.wrapping_add(1000 + (b * 10 + k) as u64),
            );
            p_sum += success_probability(&run.samples, eg);
            cost_sum += delta_e_percent(run.samples.mean_energy(), eg);
        }
        rows.push(Fig7Row {
            bin_center: (b as f64 + 0.5) * 2.0,
            n_states: states.len(),
            p_star: p_sum / states.len() as f64,
            mean_cost_delta_e: cost_sum / states.len() as f64,
        });
    }
    (s_p, rows)
}

// ---------------------------------------------------------------------------
// Figure 8: p★ and TTS vs s_p for FA, FR (oracle c_p) and RA
// ---------------------------------------------------------------------------

/// One protocol line of Figure 8.
#[derive(Debug, Clone)]
pub struct Fig8Series {
    /// Line label ("FA", "RA ΔE_IS=0%", "RA ΔE_IS≈2.1%", "FR oracle", …).
    pub label: String,
    /// Sweep points over `s_p`.
    pub points: Vec<SweepPoint>,
}

/// Runs Figure 8 on one 8-user 16-QAM instance.
pub fn run_fig8(scale: Scale, seed: u64) -> Vec<Fig8Series> {
    let mut rng = Rng64::new(seed);
    let inst = DetectionInstance::generate(&InstanceConfig::paper(8, Modulation::Qam16), &mut rng);
    let eg = inst.ground_energy();
    let qubo = &inst.reduction.qubo;
    let sampler = paper_sampler(scale.reads);
    let grid = scale.sp_grid();
    let mut series = Vec::new();

    // FA line.
    series.push(Fig8Series {
        label: "FA".to_string(),
        points: sweep_protocol(&sampler, qubo, eg, &grid, Protocol::paper_fa, None, seed),
    });

    // RA from the exact ground state (red dashed line).
    series.push(Fig8Series {
        label: "RA ΔE_IS=0%".to_string(),
        points: sweep_protocol(
            &sampler,
            qubo,
            eg,
            &grid,
            Protocol::paper_ra,
            Some(&inst.tx_natural_bits),
            seed ^ 1,
        ),
    });

    // RA from harvested seeds of two quality levels (yellow lines).
    let harvester = paper_sampler(scale.reads.max(200));
    let bins = harvest_states(
        &harvester,
        qubo,
        eg,
        2.0,
        10.0,
        1,
        scale.harvest_reads,
        seed ^ 2,
    );
    let mut picks: Vec<&HarvestedState> = Vec::new();
    if let Some(s) = bins.first().and_then(|b| b.first()) {
        picks.push(s);
    }
    if let Some(s) = bins.get(2).and_then(|b| b.first()) {
        picks.push(s);
    }
    for st in picks {
        series.push(Fig8Series {
            label: format!("RA ΔE_IS≈{:.1}%", st.delta_e_is),
            points: sweep_protocol(
                &sampler,
                qubo,
                eg,
                &grid,
                Protocol::paper_ra,
                Some(&st.bits),
                seed ^ 3,
            ),
        });
    }

    // FR with oracle c_p: for each s_p, the best c_p from the same grid.
    let mut fr_points = Vec::new();
    for (i, &sp) in grid.iter().enumerate() {
        let cp_points = sweep_protocol(
            &sampler,
            qubo,
            eg,
            &grid,
            |c_p| Protocol::paper_fr(c_p, sp),
            None,
            seed.wrapping_add(100 + i as u64),
        );
        if let Some(best) = best_point(&cp_points) {
            fr_points.push(SweepPoint { param: sp, ..best });
        } else if let Some(any) = cp_points.first() {
            fr_points.push(SweepPoint { param: sp, ..*any });
        }
    }
    series.push(Fig8Series {
        label: "FR oracle c_p".to_string(),
        points: fr_points,
    });

    series
}

// ---------------------------------------------------------------------------
// Headline claim: RA+GS vs FA success probability / TTS, 2–10×
// ---------------------------------------------------------------------------

/// Per-instance headline comparison.
#[derive(Debug, Clone)]
pub struct HeadlineRow {
    /// Instance index.
    pub instance: usize,
    /// ΔE_IS% of the Greedy Search seed.
    pub gs_delta_e_is: f64,
    /// Best FA point over the grid (`None` when FA never succeeded).
    pub fa_best: Option<SweepPoint>,
    /// Best RA+GS point over the grid.
    pub ra_best: Option<SweepPoint>,
}

impl HeadlineRow {
    /// Success-probability ratio RA/FA (`None` unless both succeeded).
    pub fn p_ratio(&self) -> Option<f64> {
        match (&self.ra_best, &self.fa_best) {
            (Some(ra), Some(fa)) if fa.p_star > 0.0 => Some(ra.p_star / fa.p_star),
            _ => None,
        }
    }
}

/// Runs the headline comparison over 8-user 16-QAM instances.
pub fn run_headline(scale: Scale, seed: u64) -> Vec<HeadlineRow> {
    let mut rng = Rng64::new(seed);
    let sampler = paper_sampler(scale.reads);
    let grid = scale.sp_grid();
    let mut rows = Vec::new();
    for instance in 0..scale.instances {
        let inst =
            DetectionInstance::generate(&InstanceConfig::paper(8, Modulation::Qam16), &mut rng);
        let eg = inst.ground_energy();
        let qubo = &inst.reduction.qubo;
        let (gs_bits, gs_e) = hqw_qubo::greedy_search(qubo, Default::default());

        let fa = sweep_protocol(
            &sampler,
            qubo,
            eg,
            &grid,
            Protocol::paper_fa,
            None,
            seed.wrapping_add(instance as u64 * 31),
        );
        let ra = sweep_protocol(
            &sampler,
            qubo,
            eg,
            &grid,
            Protocol::paper_ra,
            Some(&gs_bits),
            seed.wrapping_add(instance as u64 * 31 + 7),
        );
        rows.push(HeadlineRow {
            instance,
            gs_delta_e_is: delta_e_percent(gs_e, eg),
            fa_best: best_point(&fa),
            ra_best: best_point(&ra),
        });
    }
    rows
}

// ---------------------------------------------------------------------------
// §3.1 / Figure 4: soft-information constraints under analog noise
// ---------------------------------------------------------------------------

/// One row of the soft-information study.
#[derive(Debug, Clone)]
pub struct SoftInfoRow {
    /// Constraint strength (absolute QUBO units).
    pub strength: f64,
    /// Whether ICE analog noise was enabled.
    pub ice: bool,
    /// FA success probability on the constrained problem, scored against
    /// the original ground state.
    pub p_star: f64,
    /// Whether the constrained problem still has the original global
    /// optimum (exhaustively verified).
    pub optimum_preserved: bool,
}

/// Runs the §3.1 constraint study on a 4-user 16-QAM instance: inject two
/// *correct* pair constraints (as in Figure 4's "pre-knowledge"), sweep the
/// strength, and compare noiseless vs ICE-noise annealing.
pub fn run_fig4_softinfo(scale: Scale, seed: u64) -> Vec<SoftInfoRow> {
    let mut rng = Rng64::new(seed);
    let inst = DetectionInstance::generate(&InstanceConfig::paper(4, Modulation::Qam16), &mut rng);
    let truth = &inst.tx_natural_bits;
    let base_strength = inst.reduction.qubo.max_abs_coeff();

    let mut rows = Vec::new();
    for &rel in &[0.0, 0.05, 0.2, 0.5, 1.0, 3.0] {
        let strength = rel * base_strength;
        let mut qubo = inst.reduction.qubo.clone();
        if strength > 0.0 {
            // Fig. 4 constraints on the first user's I and Q rail MSB pairs,
            // consistent with the transmitted symbol.
            for &(a, b) in &[(0usize, 1usize), (2usize, 3usize)] {
                apply_pair_constraint(
                    &mut qubo,
                    &PairConstraint {
                        a,
                        b,
                        target_a: truth[a],
                        target_b: truth[b],
                        strength,
                    },
                );
            }
        }
        let (best_bits, _) = exhaustive_minimum(&qubo);
        let optimum_preserved = best_bits == *truth;

        for ice in [false, true] {
            let mut cfg = SamplerConfig {
                num_reads: scale.reads,
                engine: EngineKind::Pimc { trotter_slices: 16 },
                ..Default::default()
            };
            if ice {
                cfg.ice = IceModel::default();
            }
            let sampler = QuantumSampler::new(DWaveProfile::calibrated(), cfg);
            let schedule = Protocol::paper_fa(0.45).schedule().expect("valid");
            let run = sampler.sample_qubo(&qubo, &schedule, None, seed ^ (rel.to_bits() >> 1));
            // Score against the ORIGINAL optimum: a read succeeds only when
            // it returns the true transmitted state.
            let hits: u64 = run
                .samples
                .iter()
                .filter(|s| s.bits == *truth)
                .map(|s| s.occurrences)
                .sum();
            rows.push(SoftInfoRow {
                strength,
                ice,
                p_star: hits as f64 / run.samples.total_reads() as f64,
                optimum_preserved,
            });
        }
    }
    rows
}

// ---------------------------------------------------------------------------
// §5 extension: application-specific initializers
// ---------------------------------------------------------------------------

/// One initializer's aggregate performance.
#[derive(Debug, Clone)]
pub struct InitializerRow {
    /// Initializer name.
    pub name: &'static str,
    /// Mean ΔE_IS% of its candidates.
    pub mean_delta_e_is: f64,
    /// Mean modeled classical latency (µs).
    pub mean_latency_us: f64,
    /// Mean per-read success probability of RA seeded by it.
    pub p_star: f64,
    /// Mean TTS (µs) of the hybrid at 99% confidence (∞-safe mean: infinite
    /// entries are counted as failures and reported as `f64::INFINITY` when
    /// all fail).
    pub mean_tts_us: f64,
}

/// Runs the §5 initializer comparison on noisy 5-user 16-QAM instances
/// (20 variables, exhaustively certifiable ground states).
pub fn run_ext_initializers(scale: Scale, seed: u64) -> Vec<InitializerRow> {
    let mut config = InstanceConfig::paper(5, Modulation::Qam16);
    config.noise_variance = hqw_phy::channel::snr_db_to_noise_variance(16.0, 5);
    let mut rng = Rng64::new(seed);
    let instances = DetectionInstance::generate_batch(&config, scale.instances, &mut rng);
    let sampler = paper_sampler(scale.reads);
    let s_p = 0.69;
    let schedule = Protocol::paper_ra(s_p).schedule().expect("valid");

    let initializers: Vec<Box<dyn ClassicalInitializer>> = vec![
        Box::new(GreedyInitializer::default()),
        Box::new(crate::stages::TabuInitializer::default()),
        Box::new(crate::stages::RandomInitializer),
        Box::new(crate::stages::zf_initializer(5)),
        Box::new(crate::stages::kbest_initializer(4, 5)),
        Box::new(crate::stages::fcsd_initializer(1, 5)),
    ];

    let mut rows = Vec::new();
    for init in &initializers {
        let mut de_sum = 0.0;
        let mut lat_sum = 0.0;
        let mut p_sum = 0.0;
        let mut tts_values = Vec::new();
        for (k, inst) in instances.iter().enumerate() {
            // Noisy instance: certify the true ground state exhaustively.
            let (_, eg) = exhaustive_minimum(&inst.reduction.qubo);
            let mut init_rng = Rng64::new(seed.wrapping_add(k as u64));
            let state = init.initialize(inst, &mut init_rng);
            de_sum += delta_e_percent(state.energy, eg);
            lat_sum += state.latency_us;
            let run = sampler.sample_qubo(
                &inst.reduction.qubo,
                &schedule,
                Some(&state.bits),
                seed.wrapping_add(500 + k as u64),
            );
            let p = success_probability(&run.samples, eg);
            p_sum += p;
            tts_values.push(time_to_solution(schedule.duration_us(), p, 99.0));
        }
        let n = instances.len() as f64;
        let finite: Vec<f64> = tts_values
            .iter()
            .copied()
            .filter(|t| t.is_finite())
            .collect();
        rows.push(InitializerRow {
            name: init.name(),
            mean_delta_e_is: de_sum / n,
            mean_latency_us: lat_sum / n,
            p_star: p_sum / n,
            mean_tts_us: if finite.is_empty() {
                f64::INFINITY
            } else {
                finite.iter().sum::<f64>() / finite.len() as f64
            },
        });
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig3_shows_the_simplification_cliff() {
        let rows = run_fig3(6, 11);
        assert!(!rows.is_empty());
        // Small problems simplify at least sometimes; large never do.
        let small: f64 = rows
            .iter()
            .filter(|r| r.n_vars <= 8)
            .map(|r| r.simplified_ratio)
            .sum();
        let large: f64 = rows
            .iter()
            .filter(|r| r.n_vars >= 48)
            .map(|r| r.simplified_ratio)
            .sum();
        assert!(small > 0.0, "small instances should simplify occasionally");
        assert_eq!(
            large, 0.0,
            "large instances must never simplify (the paper's cliff)"
        );
    }

    #[test]
    fn fig7_quick_runs_and_orders_reference_first() {
        let (s_p, rows) = run_fig7(Scale::quick(), 3);
        assert!((0.25..=0.99).contains(&s_p));
        assert!(!rows.is_empty());
        assert_eq!(rows[0].bin_center, 0.0);
        // The exact-ground reference must be at least as successful as any
        // harvested bin (sanity of the Figure-7 trend's anchor).
        let anchor = rows[0].p_star;
        for r in &rows[1..] {
            assert!(
                anchor + 1e-9 >= r.p_star * 0.5,
                "ground-seeded RA should not be wildly beaten by bin {}",
                r.bin_center
            );
        }
    }

    #[test]
    fn headline_quick_produces_rows() {
        let rows = run_headline(Scale::quick(), 5);
        assert_eq!(rows.len(), Scale::quick().instances);
        for r in &rows {
            assert!(r.gs_delta_e_is >= 0.0);
        }
    }

    #[test]
    fn softinfo_zero_strength_preserves_optimum() {
        let rows = run_fig4_softinfo(Scale::quick(), 7);
        let baseline: Vec<_> = rows.iter().filter(|r| r.strength == 0.0).collect();
        assert!(!baseline.is_empty());
        for r in baseline {
            assert!(r.optimum_preserved);
        }
        // Correct constraints never displace the noiseless optimum.
        assert!(rows.iter().all(|r| r.optimum_preserved));
    }
}
