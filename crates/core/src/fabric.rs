//! The quantum compute fabric: many cells sharing a pool of solver backends.
//!
//! The paper's deployment model (§1, §6) is not one base station with a
//! dedicated annealer — it is *wirelessly-networked systems offloading
//! NP-hard detection problems over the network to shared, centralized
//! quantum(-inspired) processors*. This module simulates that structure:
//! **C cells × U users** stream detection frames into a [`FabricScheduler`]
//! that performs admission control, coalesces same-shape QUBOs into batches,
//! and routes each batch to one of a heterogeneous pool of
//! [`SolverBackend`]s — an SA worker pool, PIMC and SVMC annealer
//! simulators, and a mock QPU behind a [`NetworkModel`] whose minor
//! embeddings come from an [`hqw_anneal::EmbeddingCache`] so repeated
//! frames never re-derive chains.
//!
//! Batch formation is the fabric's amortization lever: a batch pays the
//! per-call overhead (network round trip, QPU programming, embedding
//! derivation on a cache miss) **once**, then serves its jobs across the
//! backend's parallel capacity. Under load, queued same-shape jobs coalesce
//! automatically, so the batched mock QPU beats the unbatched one at equal
//! offered load — the headline fabric invariant CI pins.
//!
//! ## Determinism contract
//!
//! One fabric simulation is a sequential virtual-time event loop: service
//! times derive from [`DetectorMeta`] work counters through the stream
//! engine's [`CostModel`], never wall clocks. [`run_fabric_grid`] fans the
//! (backend-mix × cells × load) grid out with
//! [`hqw_math::parallel::parallel_map_indexed`]; each grid point's seed
//! derives from the grid seed and its **cell-count index only**, and each
//! radio cell's [`ChannelTrack`] seed derives from the point seed and the
//! cell index only ([`ChannelTrack::cells`]). Points differing in load or
//! backend mix therefore see identical frame sequences (paired comparison),
//! and `BENCH_fabric.json` is byte-identical at any thread count.

use crate::pipeline::item_seed;
use crate::report::PointRecord;
use crate::scenario::json_num;
use crate::sched::{corrected_us, ClassReport, PriorityClass, SchedOptions, ServicePredictor};
use crate::spec::json::Json;
use crate::spec::{
    check_keys, req, req_f64, req_str, req_u64, req_usize, ExperimentSpec, SpecError,
};
use crate::stream::CostModel;
use crate::telemetry::LogHistogram;
use hqw_anneal::engine::FreezeOut;
use hqw_anneal::{
    AnnealParams, AnnealSchedule, ChainStrength, Chimera, CliqueEmbedding, DWaveProfile,
    EmbeddingCache, EngineKind, QuantumSampler, SamplerConfig,
};
use hqw_math::parallel::parallel_map_indexed;
use hqw_math::stats::{percentile_sorted, sorted_ascending};
use hqw_math::Rng64;
use hqw_phy::channel::{ChannelTrack, TrackConfig};
use hqw_phy::detect::{Detector, DetectorMeta, Mmse};
use hqw_phy::instance::DetectionInstance;
use hqw_phy::metrics::bit_error_rate;
use hqw_qubo::pt::{parallel_tempering, PtParams};
use hqw_qubo::sa::{sample_qubo_batch_seeded, SaParams, SweepKernel};
use hqw_qubo::tabu::{tabu_from_random, TabuParams};
use std::collections::VecDeque;

/// One detection frame offered to the fabric.
#[derive(Debug)]
pub struct FabricJob {
    /// Originating radio cell.
    pub cell: usize,
    /// Frame index within the cell.
    pub frame: usize,
    /// Arrival time on the virtual clock (µs).
    pub arrival_us: f64,
    /// Per-job solver seed (stable under routing and batching).
    pub seed: u64,
    /// Wireless service tier — a pure seeded function of `(seed, cell,
    /// frame)`; always [`PriorityClass::Embb`] for the default class mix.
    pub class: PriorityClass,
    /// The detection problem.
    pub inst: DetectionInstance,
}

/// A backend's answer for one job of a batch.
#[derive(Debug, Clone)]
pub struct JobDecision {
    /// Detected Gray-labeled bits.
    pub gray_bits: Vec<u8>,
    /// Algorithmic work counters ([`CostModel`] converts them to service µs).
    pub meta: DetectorMeta,
}

/// A backend's answer for a whole batch.
#[derive(Debug)]
pub struct BatchOutcome {
    /// Per-job decisions, 1:1 with the submitted jobs.
    pub decisions: Vec<JobDecision>,
    /// Total charged service time for the batch call (µs), including any
    /// per-call overhead (network, programming, embedding derivation).
    pub service_us: f64,
}

/// A solver backend of the shared fabric pool.
///
/// Implementations own whatever state they amortize across calls (worker
/// pools, samplers, embedding caches); the scheduler owns the clock and the
/// queues. Service costs must derive from algorithmic counters via the
/// passed [`CostModel`] — never from wall clocks — so fabric simulations
/// stay byte-reproducible.
pub trait SolverBackend {
    /// Stable machine-readable name (used in fabric reports).
    fn name(&self) -> &'static str;

    /// Parallel job slots: a batch of `B` jobs runs in `ceil(B / capacity)`
    /// service rounds.
    fn capacity(&self) -> usize;

    /// Most jobs the scheduler may coalesce into one call.
    fn max_batch(&self) -> usize;

    /// Predicted service µs for one job of `n_logical` variables — what the
    /// scheduler's admission control budgets against.
    fn predict_job_us(&self, cost: &CostModel, n_logical: usize) -> f64;

    /// Predicted fixed per-call overhead µs (network round trip, QPU
    /// programming; 0 for local backends).
    fn predict_overhead_us(&self) -> f64 {
        0.0
    }

    /// Solves a batch of same-shape jobs in one call.
    fn solve_batch(&mut self, cost: &CostModel, jobs: &[&FabricJob]) -> BatchOutcome;

    /// Charges a batch **without solving it**: returns exactly the
    /// `service_us` that [`SolverBackend::solve_batch`] would charge for the
    /// same batch, evolving any amortization state (e.g. the mock QPU's
    /// embedding cache) identically. The realtime service's control plane
    /// runs the virtual clock through this, so routing decisions stay a pure
    /// function of the arrival sequence while the actual solves happen on
    /// worker threads. An instance must serve either the charging or the
    /// solving role, never both — interleaving them double-counts
    /// cache-dependent overheads.
    fn charge_batch_us(&mut self, cost: &CostModel, jobs: &[&FabricJob]) -> f64;

    /// `(hits, misses)` of the backend's embedding cache, when it has one.
    fn embedding_cache_stats(&self) -> Option<(u64, u64)> {
        None
    }
}

/// Serializes a batch across `capacity` parallel slots: `ceil(B/capacity)`
/// rounds of the per-job service time (all fabric batches are same-shape,
/// so per-job times are uniform).
fn rounds_us(batch: usize, capacity: usize, job_us: f64) -> f64 {
    batch.div_ceil(capacity) as f64 * job_us
}

fn natural_to_gray_decision(
    job: &FabricJob,
    natural_bits: &[u8],
    meta: DetectorMeta,
) -> JobDecision {
    JobDecision {
        gray_bits: job.inst.reduction.natural_to_gray(natural_bits),
        meta,
    }
}

/// The one constructor-side validation shim every backend shares: panics
/// with the validator's message (the assert-style contract backend
/// constructors keep; spec-driven paths use the `Result` validators).
fn expect_valid(result: Result<(), String>) {
    if let Err(e) = result {
        panic!("{e}");
    }
}

// ---------------------------------------------------------------------------
// SA worker pool
// ---------------------------------------------------------------------------

/// Configuration of the [`SaPoolBackend`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SaPoolConfig {
    /// Worker slots (parallel capacity).
    pub workers: usize,
    /// Most jobs coalesced per call.
    pub max_batch: usize,
    /// SA schedule per job (`num_reads` reads per job).
    pub sa: SaParams,
}

impl SaPoolConfig {
    /// Validates the pool configuration.
    ///
    /// # Errors
    /// Returns a message for the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.workers == 0 {
            return Err("SaPoolConfig: need >= 1 worker".to_string());
        }
        if self.max_batch == 0 {
            return Err("SaPoolConfig: need max_batch >= 1".to_string());
        }
        self.sa.validate()
    }
}

/// A pool of classical SA workers: the cheapest, always-available rung of
/// the fabric. Batches fan all `jobs × num_reads` reads through
/// [`hqw_qubo::sa::sample_qubo_batch_seeded`] in one dispatch, with each
/// job's reads seeded from the job alone — decisions never depend on batch
/// composition.
#[derive(Debug)]
pub struct SaPoolBackend {
    config: SaPoolConfig,
}

impl SaPoolBackend {
    /// Creates the pool.
    ///
    /// # Panics
    /// Panics on zero workers/batch or invalid SA parameters.
    pub fn new(config: SaPoolConfig) -> Self {
        expect_valid(config.validate());
        SaPoolBackend { config }
    }
}

impl SolverBackend for SaPoolBackend {
    fn name(&self) -> &'static str {
        "sa-pool"
    }

    fn capacity(&self) -> usize {
        self.config.workers
    }

    fn max_batch(&self) -> usize {
        self.config.max_batch
    }

    fn predict_job_us(&self, cost: &CostModel, _n_logical: usize) -> f64 {
        let meta = DetectorMeta {
            nodes_visited: 0,
            sweeps: (self.config.sa.sweeps * self.config.sa.num_reads) as u64,
        };
        cost.service_us(&meta)
    }

    fn solve_batch(&mut self, cost: &CostModel, jobs: &[&FabricJob]) -> BatchOutcome {
        let qubos: Vec<_> = jobs.iter().map(|j| &j.inst.reduction.qubo).collect();
        // One independent sampling stream per job, derived from the job's
        // own seed: a job's decision (and therefore every BER metric) is
        // invariant to how the scheduler happened to bucket it — the same
        // paired-comparison property the mock QPU pins with per-job seeds.
        let seeds: Vec<u64> = jobs.iter().map(|j| j.seed ^ 0x5A_B47C).collect();
        let sample_sets = sample_qubo_batch_seeded(&qubos, &self.config.sa, &seeds);
        let meta = DetectorMeta {
            nodes_visited: 0,
            sweeps: (self.config.sa.sweeps * self.config.sa.num_reads) as u64,
        };
        let decisions = jobs
            .iter()
            .zip(&sample_sets)
            .map(|(job, set)| {
                let best = set.best().expect("SA batch produced no samples");
                natural_to_gray_decision(job, &best.bits, meta)
            })
            .collect();
        BatchOutcome {
            decisions,
            service_us: self.charge_batch_us(cost, jobs),
        }
    }

    fn charge_batch_us(&mut self, cost: &CostModel, jobs: &[&FabricJob]) -> f64 {
        rounds_us(
            jobs.len(),
            self.config.workers,
            self.predict_job_us(cost, jobs[0].inst.num_vars()),
        )
    }
}

// ---------------------------------------------------------------------------
// Parallel-tempering / tabu classical baselines
// ---------------------------------------------------------------------------

/// Configuration of the [`PtBackend`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PtConfig {
    /// Worker slots (parallel capacity).
    pub workers: usize,
    /// Most jobs coalesced per call.
    pub max_batch: usize,
    /// Replica-exchange schedule per job.
    pub pt: PtParams,
}

impl PtConfig {
    /// Validates the pool configuration.
    ///
    /// # Errors
    /// Returns a message for the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.workers == 0 {
            return Err("PtConfig: need >= 1 worker".to_string());
        }
        if self.max_batch == 0 {
            return Err("PtConfig: need max_batch >= 1".to_string());
        }
        self.pt.validate()
    }
}

/// A pool of parallel-tempering workers: the strongest general-purpose
/// classical rung of the fabric, keeping the quantum(-inspired) backends
/// honest. Each job runs one replica-exchange search seeded from the job
/// alone, so decisions never depend on batch composition. Charged work is
/// `replicas × sweeps` Metropolis sweeps per job — exactly the work the
/// kernel performs, so the static cost model is perfectly calibrated for
/// this backend.
#[derive(Debug)]
pub struct PtBackend {
    config: PtConfig,
}

impl PtBackend {
    /// Creates the pool.
    ///
    /// # Panics
    /// Panics on zero workers/batch or invalid PT parameters.
    pub fn new(config: PtConfig) -> Self {
        expect_valid(config.validate());
        PtBackend { config }
    }

    fn sweeps_per_job(&self) -> u64 {
        (self.config.pt.replicas * self.config.pt.sweeps) as u64
    }
}

impl SolverBackend for PtBackend {
    fn name(&self) -> &'static str {
        "pt"
    }

    fn capacity(&self) -> usize {
        self.config.workers
    }

    fn max_batch(&self) -> usize {
        self.config.max_batch
    }

    fn predict_job_us(&self, cost: &CostModel, _n_logical: usize) -> f64 {
        let meta = DetectorMeta {
            nodes_visited: 0,
            sweeps: self.sweeps_per_job(),
        };
        cost.service_us(&meta)
    }

    fn solve_batch(&mut self, cost: &CostModel, jobs: &[&FabricJob]) -> BatchOutcome {
        let meta = DetectorMeta {
            nodes_visited: 0,
            sweeps: self.sweeps_per_job(),
        };
        let decisions = jobs
            .iter()
            .map(|job| {
                let (bits, _energy) = parallel_tempering(
                    &job.inst.reduction.qubo,
                    &self.config.pt,
                    job.seed ^ 0x97_7E3A,
                );
                natural_to_gray_decision(job, &bits, meta)
            })
            .collect();
        BatchOutcome {
            decisions,
            service_us: self.charge_batch_us(cost, jobs),
        }
    }

    fn charge_batch_us(&mut self, cost: &CostModel, jobs: &[&FabricJob]) -> f64 {
        rounds_us(
            jobs.len(),
            self.config.workers,
            self.predict_job_us(cost, jobs[0].inst.num_vars()),
        )
    }
}

/// Configuration of the [`TabuBackend`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TabuConfig {
    /// Worker slots (parallel capacity).
    pub workers: usize,
    /// Most jobs coalesced per call.
    pub max_batch: usize,
    /// Tabu-search schedule per job.
    pub tabu: TabuParams,
}

impl TabuConfig {
    /// Validates the pool configuration.
    ///
    /// # Errors
    /// Returns a message for the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.workers == 0 {
            return Err("TabuConfig: need >= 1 worker".to_string());
        }
        if self.max_batch == 0 {
            return Err("TabuConfig: need max_batch >= 1".to_string());
        }
        if self.tabu.max_iters == 0 {
            return Err("TabuConfig: tabu max_iters must be > 0".to_string());
        }
        if self.tabu.stall_limit == 0 {
            return Err("TabuConfig: tabu stall_limit must be > 0".to_string());
        }
        Ok(())
    }
}

/// A pool of tabu-search workers ([`hqw_qubo::tabu`]): the memory-based
/// classical baseline D-Wave's own hybrid offering pairs with annealing.
/// Each job runs one search from a seeded random start. Charged work is
/// the **full** `max_iters` move budget per job (a sweep-equivalent per
/// move): the search may stop early on stall, but admission control must
/// budget the worst case, and a fixed charge keeps the virtual clock a
/// pure function of the job stream rather than of search dynamics.
#[derive(Debug)]
pub struct TabuBackend {
    config: TabuConfig,
}

impl TabuBackend {
    /// Creates the pool.
    ///
    /// # Panics
    /// Panics on zero workers/batch or a zero tabu budget.
    pub fn new(config: TabuConfig) -> Self {
        expect_valid(config.validate());
        TabuBackend { config }
    }
}

impl SolverBackend for TabuBackend {
    fn name(&self) -> &'static str {
        "tabu"
    }

    fn capacity(&self) -> usize {
        self.config.workers
    }

    fn max_batch(&self) -> usize {
        self.config.max_batch
    }

    fn predict_job_us(&self, cost: &CostModel, _n_logical: usize) -> f64 {
        let meta = DetectorMeta {
            nodes_visited: 0,
            sweeps: self.config.tabu.max_iters as u64,
        };
        cost.service_us(&meta)
    }

    fn solve_batch(&mut self, cost: &CostModel, jobs: &[&FabricJob]) -> BatchOutcome {
        let meta = DetectorMeta {
            nodes_visited: 0,
            sweeps: self.config.tabu.max_iters as u64,
        };
        let decisions = jobs
            .iter()
            .map(|job| {
                let mut rng = Rng64::new(job.seed ^ 0x7AB_005);
                let (bits, _energy) =
                    tabu_from_random(&job.inst.reduction.qubo, &self.config.tabu, &mut rng);
                natural_to_gray_decision(job, &bits, meta)
            })
            .collect();
        BatchOutcome {
            decisions,
            service_us: self.charge_batch_us(cost, jobs),
        }
    }

    fn charge_batch_us(&mut self, cost: &CostModel, jobs: &[&FabricJob]) -> f64 {
        rounds_us(
            jobs.len(),
            self.config.workers,
            self.predict_job_us(cost, jobs[0].inst.num_vars()),
        )
    }
}

// ---------------------------------------------------------------------------
// PIMC / SVMC annealer simulators
// ---------------------------------------------------------------------------

/// Shared configuration of the [`PimcBackend`] and [`SvmcBackend`] annealer
/// simulators.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnnealerConfig {
    /// Reads per job.
    pub num_reads: usize,
    /// Forward-anneal duration per read (programmed µs).
    pub anneal_us: f64,
    /// Monte-Carlo sweeps simulated per programmed microsecond.
    pub sweeps_per_us: usize,
    /// Parallel job slots.
    pub capacity: usize,
    /// Most jobs coalesced per call.
    pub max_batch: usize,
    /// Monte-Carlo sweep kernel (bit-identical `Exact` or vectorized `Fast`).
    pub kernel: SweepKernel,
}

/// Total MC sweeps one annealer job costs:
/// `reads × anneal_us × sweeps_per_us`. Shared by the PIMC/SVMC backends
/// and the mock QPU so predicted and charged service can never drift apart.
fn mc_sweeps_per_job(num_reads: usize, anneal_us: f64, sweeps_per_us: usize) -> u64 {
    (num_reads as f64 * anneal_us * sweeps_per_us as f64).round() as u64
}

/// The one sampler construction every annealer-simulator backend shares.
fn annealer_sampler(
    engine: EngineKind,
    num_reads: usize,
    sweeps_per_us: usize,
    kernel: SweepKernel,
) -> QuantumSampler {
    QuantumSampler::new(
        DWaveProfile::calibrated(),
        SamplerConfig {
            num_reads,
            engine,
            params: AnnealParams {
                sweeps_per_us,
                beta_override: None,
                freeze_out: Some(FreezeOut::default()),
                kernel,
            },
            threads: 1, // the fabric grid is the parallel level
            ..SamplerConfig::default()
        },
    )
}

impl AnnealerConfig {
    /// Validates the annealer-simulator configuration.
    ///
    /// # Errors
    /// Returns a message for the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.num_reads == 0 {
            return Err("AnnealerConfig: need >= 1 read".to_string());
        }
        if !(self.anneal_us > 0.0 && self.anneal_us.is_finite()) {
            return Err("AnnealerConfig: anneal_us must be > 0".to_string());
        }
        if self.sweeps_per_us == 0 {
            return Err("AnnealerConfig: sweeps_per_us > 0".to_string());
        }
        if self.capacity == 0 {
            return Err("AnnealerConfig: capacity must be > 0".to_string());
        }
        if self.max_batch == 0 {
            return Err("AnnealerConfig: max_batch must be > 0".to_string());
        }
        Ok(())
    }

    fn sweeps_per_job(&self) -> u64 {
        mc_sweeps_per_job(self.num_reads, self.anneal_us, self.sweeps_per_us)
    }

    fn sampler(&self, engine: EngineKind) -> QuantumSampler {
        annealer_sampler(engine, self.num_reads, self.sweeps_per_us, self.kernel)
    }
}

/// Runs one annealer job (forward schedule, per-job seed) and returns the
/// decision. Shared by the PIMC, SVMC and mock-QPU backends.
fn annealer_decide(
    sampler: &QuantumSampler,
    schedule: &AnnealSchedule,
    sweeps_per_job: u64,
    job: &FabricJob,
) -> JobDecision {
    let result = sampler.sample_qubo(&job.inst.reduction.qubo, schedule, None, job.seed);
    let best = result.samples.best().expect("annealer produced no samples");
    natural_to_gray_decision(
        job,
        &best.bits,
        DetectorMeta {
            nodes_visited: 0,
            sweeps: sweeps_per_job,
        },
    )
}

macro_rules! annealer_backend {
    ($(#[$doc:meta])* $name:ident, $tag:literal, $engine:expr) => {
        $(#[$doc])*
        #[derive(Debug)]
        pub struct $name {
            config: AnnealerConfig,
            sampler: QuantumSampler,
            schedule: AnnealSchedule,
        }

        impl $name {
            /// Creates the backend.
            ///
            /// # Panics
            /// Panics on invalid configuration.
            pub fn new(config: AnnealerConfig) -> Self {
                expect_valid(config.validate());
                $name {
                    config,
                    sampler: config.sampler($engine),
                    schedule: AnnealSchedule::forward(config.anneal_us)
                        .expect("anneal_us validated > 0"),
                }
            }
        }

        impl SolverBackend for $name {
            fn name(&self) -> &'static str {
                $tag
            }

            fn capacity(&self) -> usize {
                self.config.capacity
            }

            fn max_batch(&self) -> usize {
                self.config.max_batch
            }

            fn predict_job_us(&self, cost: &CostModel, _n_logical: usize) -> f64 {
                cost.service_us(&DetectorMeta {
                    nodes_visited: 0,
                    sweeps: self.config.sweeps_per_job(),
                })
            }

            fn solve_batch(&mut self, cost: &CostModel, jobs: &[&FabricJob]) -> BatchOutcome {
                let sweeps = self.config.sweeps_per_job();
                let decisions = jobs
                    .iter()
                    .map(|job| annealer_decide(&self.sampler, &self.schedule, sweeps, job))
                    .collect();
                BatchOutcome {
                    decisions,
                    service_us: self.charge_batch_us(cost, jobs),
                }
            }

            fn charge_batch_us(&mut self, cost: &CostModel, jobs: &[&FabricJob]) -> f64 {
                rounds_us(
                    jobs.len(),
                    self.config.capacity,
                    self.predict_job_us(cost, jobs[0].inst.num_vars()),
                )
            }
        }
    };
}

annealer_backend!(
    /// Path-integral quantum Monte Carlo simulator backend (16 Trotter
    /// slices by default of [`EngineKind`]; here 8 — quick but quantum).
    PimcBackend,
    "pimc",
    EngineKind::Pimc { trotter_slices: 8 }
);

annealer_backend!(
    /// Spin-vector (semi-classical) Monte Carlo simulator backend.
    SvmcBackend,
    "svmc",
    EngineKind::Svmc
);

// ---------------------------------------------------------------------------
// Mock QPU behind a network
// ---------------------------------------------------------------------------

/// Deterministic network model between the cells and a centralized QPU:
/// a base round-trip time plus per-job jitter drawn from the job's seed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetworkModel {
    /// Base round-trip time (µs).
    pub rtt_base_us: f64,
    /// Jitter amplitude (µs): each job draws `U[0, jitter_us)` on top of
    /// the base RTT, deterministically from its seed.
    pub jitter_us: f64,
}

impl NetworkModel {
    /// A co-located backend: no network cost at all.
    pub fn local() -> Self {
        NetworkModel {
            rtt_base_us: 0.0,
            jitter_us: 0.0,
        }
    }

    /// This job's round-trip time: base + seeded jitter.
    pub fn rtt_us(&self, job_seed: u64) -> f64 {
        if self.jitter_us == 0.0 {
            return self.rtt_base_us;
        }
        self.rtt_base_us + self.jitter_us * Rng64::new(job_seed ^ 0x4E77_0A4B).next_f64()
    }

    /// The round trip a whole batch rides on: the slowest member's draw
    /// (every job's answer returns with the batch).
    pub fn batch_rtt_us(&self, jobs: &[&FabricJob]) -> f64 {
        jobs.iter().map(|j| self.rtt_us(j.seed)).fold(0.0, f64::max)
    }
}

/// Configuration of the [`MockQpuBackend`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MockQpuConfig {
    /// Reads per job.
    pub num_reads: usize,
    /// Forward-anneal duration per read (programmed µs).
    pub anneal_us: f64,
    /// Monte-Carlo sweeps simulated per programmed microsecond (on the
    /// embedded physical problem).
    pub sweeps_per_us: usize,
    /// Trotter slices of the PIMC engine behind the QPU front end.
    pub trotter_slices: usize,
    /// Most jobs coalesced per call (1 = unbatched submission).
    pub max_batch: usize,
    /// Network between the cells and the QPU.
    pub network: NetworkModel,
    /// Per-call problem programming overhead (µs), paid once per batch.
    pub programming_us: f64,
    /// Embedding derivation cost per physical qubit of the chain layout
    /// (µs), paid only on an embedding-cache miss.
    pub embed_derive_us_per_qubit: f64,
    /// Chain strength relative to the logical problem's largest coefficient.
    pub chain_strength: f64,
}

impl MockQpuConfig {
    /// Validates the mock-QPU configuration.
    ///
    /// # Errors
    /// Returns a message for the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.num_reads == 0 {
            return Err("MockQpuConfig: need >= 1 read".to_string());
        }
        if !(self.anneal_us > 0.0 && self.anneal_us.is_finite()) {
            return Err("MockQpuConfig: anneal_us > 0".to_string());
        }
        if self.sweeps_per_us == 0 {
            return Err("MockQpuConfig: sweeps_per_us must be > 0".to_string());
        }
        if self.trotter_slices < 2 {
            return Err("MockQpuConfig: need >= 2 Trotter slices".to_string());
        }
        if self.max_batch == 0 {
            return Err("MockQpuConfig: max_batch >= 1".to_string());
        }
        if !(self.network.rtt_base_us >= 0.0 && self.network.jitter_us >= 0.0) {
            return Err("MockQpuConfig: negative network cost".to_string());
        }
        if !(self.programming_us >= 0.0 && self.embed_derive_us_per_qubit >= 0.0) {
            return Err("MockQpuConfig: negative overhead".to_string());
        }
        if !(self.chain_strength > 0.0 && self.chain_strength.is_finite()) {
            return Err("MockQpuConfig: chain_strength must be > 0".to_string());
        }
        Ok(())
    }
}

/// The centralized quantum processor: a [`QuantumSampler`] front end driving
/// PIMC through a cached Chimera clique minor-embedding, reached over a
/// [`NetworkModel`].
///
/// The per-call overhead — network round trip, programming, and chain
/// derivation on an embedding-cache miss — is what batch formation
/// amortizes: at equal offered load a batched QPU serves the same jobs at
/// lower mean latency than an unbatched one (CI-pinned invariant).
#[derive(Debug)]
pub struct MockQpuBackend {
    config: MockQpuConfig,
    sampler: QuantumSampler,
    schedule: AnnealSchedule,
    cache: EmbeddingCache,
}

impl MockQpuBackend {
    /// Creates the backend with an empty embedding cache.
    ///
    /// # Panics
    /// Panics on invalid configuration.
    pub fn new(config: MockQpuConfig) -> Self {
        expect_valid(config.validate());
        let sampler = annealer_sampler(
            EngineKind::Pimc {
                trotter_slices: config.trotter_slices,
            },
            config.num_reads,
            config.sweeps_per_us,
            // The mock QPU models a remote physical device: it has no
            // simulator-kernel knob, and the bit-identical kernel keeps its
            // committed fabric baselines stable.
            SweepKernel::Exact,
        );
        MockQpuBackend {
            config,
            sampler,
            schedule: AnnealSchedule::forward(config.anneal_us).expect("anneal_us validated > 0"),
            cache: EmbeddingCache::new(),
        }
    }

    /// Smallest Chimera hosting an `n_logical` clique with the cross
    /// construction (`K_{4m}` on `C_m`).
    fn chimera_for(n_logical: usize) -> Chimera {
        Chimera::new(n_logical.div_ceil(4).max(1))
    }

    fn sweeps_per_job(&self) -> u64 {
        mc_sweeps_per_job(
            self.config.num_reads,
            self.config.anneal_us,
            self.config.sweeps_per_us,
        )
    }

    /// The one cache access per batch call, shared by `solve_batch` and
    /// `charge_batch_us` so the cache (and the derivation charge it gates)
    /// evolves identically on the solving and the charging path.
    fn lookup_embedding(&mut self, n_logical: usize) -> (std::rc::Rc<CliqueEmbedding>, f64) {
        let misses_before = self.cache.misses();
        let embedding = self.cache.get(Self::chimera_for(n_logical), n_logical);
        // Chain derivation is charged only when the cache actually derived.
        let derive_us = if self.cache.misses() > misses_before {
            embedding.qubits_used() as f64 * self.config.embed_derive_us_per_qubit
        } else {
            0.0
        };
        (embedding, derive_us)
    }

    /// The charged service of one batch call: per-call overhead (network
    /// round trip, programming, derivation) plus sequential device rounds.
    fn batch_service_us(&self, cost: &CostModel, jobs: &[&FabricJob], derive_us: f64) -> f64 {
        let n = jobs[0].inst.num_vars();
        let overhead =
            self.config.network.batch_rtt_us(jobs) + self.config.programming_us + derive_us;
        overhead + rounds_us(jobs.len(), 1, self.predict_job_us(cost, n))
    }
}

impl SolverBackend for MockQpuBackend {
    fn name(&self) -> &'static str {
        "mock-qpu"
    }

    fn capacity(&self) -> usize {
        1 // one annealer: reads are sequential on the device
    }

    fn max_batch(&self) -> usize {
        self.config.max_batch
    }

    fn predict_job_us(&self, cost: &CostModel, _n_logical: usize) -> f64 {
        cost.service_us(&DetectorMeta {
            nodes_visited: 0,
            sweeps: self.sweeps_per_job(),
        })
    }

    fn predict_overhead_us(&self) -> f64 {
        self.config.network.rtt_base_us + self.config.programming_us
    }

    fn solve_batch(&mut self, cost: &CostModel, jobs: &[&FabricJob]) -> BatchOutcome {
        let n = jobs[0].inst.num_vars();
        let (embedding, derive_us) = self.lookup_embedding(n);

        let sweeps = self.sweeps_per_job();
        let strength = ChainStrength::RelativeToMax(self.config.chain_strength);
        let decisions: Vec<JobDecision> = jobs
            .iter()
            .map(|job| {
                let (result, _chain_breaks) = self.sampler.sample_qubo_embedded(
                    &job.inst.reduction.qubo,
                    &embedding,
                    strength,
                    &self.schedule,
                    None,
                    job.seed,
                );
                let best = result.samples.best().expect("QPU produced no samples");
                natural_to_gray_decision(
                    job,
                    &best.bits,
                    DetectorMeta {
                        nodes_visited: 0,
                        sweeps,
                    },
                )
            })
            .collect();

        BatchOutcome {
            decisions,
            service_us: self.batch_service_us(cost, jobs, derive_us),
        }
    }

    fn charge_batch_us(&mut self, cost: &CostModel, jobs: &[&FabricJob]) -> f64 {
        let (_embedding, derive_us) = self.lookup_embedding(jobs[0].inst.num_vars());
        self.batch_service_us(cost, jobs, derive_us)
    }

    fn embedding_cache_stats(&self) -> Option<(u64, u64)> {
        Some((self.cache.hits(), self.cache.misses()))
    }
}

// ---------------------------------------------------------------------------
// Backend specs and mixes
// ---------------------------------------------------------------------------

/// A buildable description of one backend — what the grid fans out, so each
/// grid point constructs its own (stateful) backends and stays deterministic
/// at any thread count.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BackendSpec {
    /// Classical SA worker pool.
    SaPool(SaPoolConfig),
    /// Classical parallel-tempering worker pool.
    Pt(PtConfig),
    /// Classical tabu-search worker pool.
    Tabu(TabuConfig),
    /// PIMC annealer simulator.
    Pimc(AnnealerConfig),
    /// SVMC annealer simulator.
    Svmc(AnnealerConfig),
    /// Centralized mock QPU behind a network.
    MockQpu(MockQpuConfig),
}

impl BackendSpec {
    /// Builds the backend.
    ///
    /// # Panics
    /// Panics on invalid configuration.
    pub fn build(&self) -> Box<dyn SolverBackend> {
        match *self {
            BackendSpec::SaPool(c) => Box::new(SaPoolBackend::new(c)),
            BackendSpec::Pt(c) => Box::new(PtBackend::new(c)),
            BackendSpec::Tabu(c) => Box::new(TabuBackend::new(c)),
            BackendSpec::Pimc(c) => Box::new(PimcBackend::new(c)),
            BackendSpec::Svmc(c) => Box::new(SvmcBackend::new(c)),
            BackendSpec::MockQpu(c) => Box::new(MockQpuBackend::new(c)),
        }
    }

    /// Validates the wrapped backend configuration without building it.
    ///
    /// # Errors
    /// Returns a message for the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        match self {
            BackendSpec::SaPool(c) => c.validate(),
            BackendSpec::Pt(c) => c.validate(),
            BackendSpec::Tabu(c) => c.validate(),
            BackendSpec::Pimc(c) | BackendSpec::Svmc(c) => c.validate(),
            BackendSpec::MockQpu(c) => c.validate(),
        }
    }
}

/// A named pool composition — one value of the fabric grid's backend-mix
/// axis.
#[derive(Debug, Clone, PartialEq)]
pub struct BackendMix {
    /// Stable machine-readable name (used in fabric reports).
    pub name: String,
    /// The pool.
    pub backends: Vec<BackendSpec>,
}

// ---------------------------------------------------------------------------
// Arrival processes (the load generator)
// ---------------------------------------------------------------------------

/// The per-cell frame arrival process — the fabric's load generator.
///
/// Every variant has mean inter-arrival `arrival_period_us` (offered load is
/// comparable across processes) and staggers cell start times by
/// `period / n_cells` exactly like the original periodic process. Arrival
/// times are a pure function of `(seed, cell, frame)`: virtual and realtime
/// runs of the same config see byte-identical arrival sequences, which is
/// what makes the realtime service's sim-replay gate possible.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalProcess {
    /// Evenly spaced arrivals (the original fabric process).
    Periodic,
    /// `burst` frames arrive back-to-back (same timestamp), then a gap of
    /// `burst` periods: bursty traffic at unchanged mean rate.
    Bursty {
        /// Frames per burst (>= 1).
        burst: usize,
    },
    /// Sinusoidally modulated inter-arrival gaps — a compressed diurnal
    /// load cycle: `gap_f = period * (1 + amplitude * sin(2π f / cycle))`.
    Diurnal {
        /// Peak-to-mean modulation depth, in `[0, 1)`.
        amplitude: f64,
        /// Frames per modulation cycle (>= 2).
        cycle_frames: usize,
    },
    /// Pareto inter-arrival gaps with tail index `alpha` (> 1 so the mean
    /// exists), scaled to mean `period`: heavy-tailed traffic whose rare
    /// long gaps separate deep queue-buildup episodes.
    HeavyTailed {
        /// Pareto tail index (> 1; smaller = heavier tail).
        alpha: f64,
    },
}

impl ArrivalProcess {
    /// Stable machine-readable name (the spec `process` tag).
    pub fn name(&self) -> &'static str {
        match self {
            ArrivalProcess::Periodic => "periodic",
            ArrivalProcess::Bursty { .. } => "bursty",
            ArrivalProcess::Diurnal { .. } => "diurnal",
            ArrivalProcess::HeavyTailed { .. } => "heavy-tailed",
        }
    }

    /// Validates the process parameters.
    ///
    /// # Errors
    /// Returns a message for the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        match *self {
            ArrivalProcess::Periodic => Ok(()),
            ArrivalProcess::Bursty { burst } => {
                if burst == 0 {
                    return Err("ArrivalProcess: burst must be >= 1".to_string());
                }
                Ok(())
            }
            ArrivalProcess::Diurnal {
                amplitude,
                cycle_frames,
            } => {
                if !(0.0..1.0).contains(&amplitude) {
                    return Err("ArrivalProcess: diurnal amplitude must be in [0, 1)".to_string());
                }
                if cycle_frames < 2 {
                    return Err("ArrivalProcess: diurnal cycle needs >= 2 frames".to_string());
                }
                Ok(())
            }
            ArrivalProcess::HeavyTailed { alpha } => {
                if !(alpha > 1.0 && alpha.is_finite()) {
                    return Err(
                        "ArrivalProcess: heavy-tailed alpha must be > 1 (finite mean)".to_string(),
                    );
                }
                Ok(())
            }
        }
    }

    /// Arrival times (µs) of `frames` frames for cell `cell` of `n_cells`
    /// sharing mean period `period_us`, deterministic in `(seed, cell)`.
    /// `Periodic` reproduces the original fabric arithmetic bit for bit.
    fn cell_arrivals(
        &self,
        frames: usize,
        cell: usize,
        n_cells: usize,
        period_us: f64,
        seed: u64,
    ) -> Vec<f64> {
        let phase = cell as f64 * (period_us / n_cells as f64);
        match *self {
            ArrivalProcess::Periodic => (0..frames).map(|f| f as f64 * period_us + phase).collect(),
            ArrivalProcess::Bursty { burst } => (0..frames)
                .map(|f| ((f / burst) * burst) as f64 * period_us + phase)
                .collect(),
            ArrivalProcess::Diurnal {
                amplitude,
                cycle_frames,
            } => {
                let mut t = phase;
                let mut out = Vec::with_capacity(frames);
                for f in 0..frames {
                    out.push(t);
                    let angle = std::f64::consts::TAU * f as f64 / cycle_frames as f64;
                    t += period_us * (1.0 + amplitude * angle.sin());
                }
                out
            }
            ArrivalProcess::HeavyTailed { alpha } => {
                let mut rng = Rng64::new(item_seed(seed ^ 0xA441_5EED, cell));
                // Pareto(x_min, alpha) has mean x_min * alpha / (alpha - 1);
                // solve for mean = period.
                let x_min = period_us * (alpha - 1.0) / alpha;
                let mut t = phase;
                let mut out = Vec::with_capacity(frames);
                for _ in 0..frames {
                    out.push(t);
                    let u = 1.0 - rng.next_f64(); // (0, 1]: keeps the gap finite
                    t += x_min * u.powf(-1.0 / alpha);
                }
                out
            }
        }
    }
}

/// Execution mode of a fabric grid: the deterministic virtual-time
/// simulation, or the wall-clock realtime service whose routing decisions
/// the sim replays and checks.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FabricMode {
    /// Virtual-clock discrete-event simulation (the oracle).
    Virtual,
    /// Wall-clock multi-threaded service (`hqw-core::fabric_rt`).
    Realtime(RealtimeConfig),
}

/// Thread topology of the realtime fabric service. Worker counts come from
/// the spec — the backend pool's own capacities size the solver pools — so
/// the CLI `--threads` override is rejected for realtime specs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RealtimeConfig {
    /// Concurrent frame-producer threads (cells are sharded across them).
    pub producers: usize,
    /// Sharded MPMC delivery queues between producers and the sequencer.
    pub queue_shards: usize,
}

impl RealtimeConfig {
    /// Validates the thread topology.
    ///
    /// # Errors
    /// Returns a message for the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.producers == 0 {
            return Err("RealtimeConfig: need >= 1 producer".to_string());
        }
        if self.queue_shards == 0 {
            return Err("RealtimeConfig: need >= 1 queue shard".to_string());
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// The scheduler
// ---------------------------------------------------------------------------

/// Configuration of one fabric simulation (one grid point).
#[derive(Debug, Clone, PartialEq)]
pub struct FabricConfig {
    /// Channel process shared by every cell (per-cell seeds differ).
    pub track: TrackConfig,
    /// Number of radio cells sharing the fabric.
    pub n_cells: usize,
    /// Frames streamed per cell.
    pub frames_per_cell: usize,
    /// Per-cell frame inter-arrival period (µs); cells are phase-staggered
    /// by `period / n_cells` so offered load scales with the cell count.
    pub arrival_period_us: f64,
    /// Arrival process shaping the per-cell inter-arrival gaps around
    /// `arrival_period_us` (the mean is preserved across processes).
    pub arrival: ArrivalProcess,
    /// Per-frame end-to-end latency budget (µs).
    pub deadline_us: f64,
    /// Work-counter → service-time model.
    pub cost: CostModel,
    /// The shared backend pool.
    pub backends: Vec<BackendSpec>,
    /// Adaptive-scheduling knobs (predictor policy, assumed cost model,
    /// priority-class mix). The default reproduces the historical static
    /// scheduler byte-for-byte.
    pub sched: SchedOptions,
    /// Simulation seed; cell tracks and job seeds derive from it.
    pub seed: u64,
}

impl FabricConfig {
    /// Validates the simulation configuration (including its track and
    /// every backend in the pool).
    ///
    /// # Errors
    /// Returns the first violated constraint.
    pub fn validate(&self) -> Result<(), SpecError> {
        let ctx = "FabricConfig";
        if self.n_cells == 0 {
            return Err(SpecError::new(ctx, "need at least one cell"));
        }
        if self.frames_per_cell == 0 {
            return Err(SpecError::new(ctx, "need at least one frame per cell"));
        }
        if !(self.arrival_period_us > 0.0 && self.arrival_period_us.is_finite()) {
            return Err(SpecError::new(ctx, "arrival period must be > 0"));
        }
        self.arrival
            .validate()
            .map_err(|msg| SpecError::new(ctx, msg))?;
        if !(self.deadline_us >= 0.0 && self.deadline_us.is_finite()) {
            return Err(SpecError::new(
                ctx,
                "deadline must be >= 0 (0 = everything falls back)",
            ));
        }
        if self.backends.is_empty() {
            return Err(SpecError::new(ctx, "empty backend pool"));
        }
        self.track
            .validate()
            .map_err(|msg| SpecError::new(ctx, msg))?;
        crate::stream::validate_cost(&self.cost).map_err(|msg| SpecError::new(ctx, msg))?;
        self.sched
            .validate()
            .map_err(|msg| SpecError::new(ctx, msg))?;
        for backend in &self.backends {
            backend.validate().map_err(|msg| SpecError::new(ctx, msg))?;
        }
        Ok(())
    }

    /// Shim for callers that still want the original panicking behaviour.
    /// Deprecated in spirit: new code should propagate
    /// [`FabricConfig::validate`] errors instead.
    ///
    /// # Panics
    /// Panics with the [`FabricConfig::validate`] message on any invalid
    /// field.
    pub fn validate_or_panic(&self) {
        if let Err(e) = self.validate() {
            panic!("{e}");
        }
    }
}

/// Per-backend slice of a [`FabricReport`].
#[derive(Debug, Clone)]
pub struct BackendReport {
    /// Backend name.
    pub name: String,
    /// Jobs served.
    pub jobs: usize,
    /// Batch calls made.
    pub batches: u64,
    /// Busy time over the simulation makespan (provably ≤ 1).
    pub utilization: f64,
    /// Mean jobs per batch call (0 when no batches ran).
    pub mean_batch: f64,
    /// Mean charged service time per served job (µs; busy time over jobs,
    /// 0 when idle). The amortization metric: batching spreads the
    /// per-call overhead (network, programming, derivation) across the
    /// batch, so a batched backend's per-job cost undercuts an unbatched
    /// one's regardless of what admission control did upstream.
    pub mean_service_us: f64,
    /// `batch_histogram[k]` = batches that carried `k + 1` jobs.
    pub batch_histogram: Vec<u64>,
    /// Embedding-cache hits (0 for backends without a cache).
    pub embed_cache_hits: u64,
    /// Embedding-cache misses (0 for backends without a cache).
    pub embed_cache_misses: u64,
}

/// Aggregate report of one fabric simulation.
#[derive(Debug, Clone)]
pub struct FabricReport {
    /// Backend-mix name.
    pub mix: String,
    /// Radio cells sharing the fabric.
    pub n_cells: usize,
    /// Per-cell arrival period (µs).
    pub arrival_period_us: f64,
    /// Total jobs across all cells.
    pub jobs: usize,
    /// Mean wireless bit error rate across jobs.
    pub ber: f64,
    /// Fraction of jobs whose end-to-end latency exceeded the deadline.
    pub deadline_miss_rate: f64,
    /// Fraction of jobs the admission control downgraded to local MMSE.
    pub fallback_rate: f64,
    /// Fraction of jobs that were **fabric-served and** missed the
    /// deadline. Disjoint from `fallback_rate` by construction, so
    /// `served_miss_rate + fallback_rate ≤ 1` is the degraded-service rate
    /// (jobs the fabric did not serve within budget) the CI gate checks for
    /// monotonicity in load.
    pub served_miss_rate: f64,
    /// Median end-to-end latency (µs).
    pub p50_latency_us: f64,
    /// 99th-percentile end-to-end latency (µs).
    pub p99_latency_us: f64,
    /// Mean end-to-end latency across all jobs (µs).
    pub mean_latency_us: f64,
    /// Mean end-to-end latency of **fabric-served** jobs only (µs; 0 when
    /// everything fell back). The apples-to-apples batching metric: the
    /// all-jobs mean rewards heavy fallback, because rejected jobs finish
    /// in one fast classical service.
    pub mean_served_latency_us: f64,
    /// Per-backend statistics, in pool order.
    pub backends: Vec<BackendReport>,
    /// Queued jobs evicted by class-aware preemptive admission (0 unless
    /// priority classes are enabled and an urgent arrival displaced work).
    pub preemptions: u64,
    /// Mean absolute service-prediction error of the learned scheduler
    /// (µs; 0.0 under the static policy, which never predicts adaptively).
    pub prediction_mae_us: f64,
    /// Per-priority-class latency/miss statistics, in `Urllc, Embb, Bulk`
    /// order, omitting empty classes. Empty when the class mix is the
    /// default (every job eMBB), which keeps legacy reports byte-stable.
    pub classes: Vec<ClassReport>,
}

/// Bookkeeping entry of one finished job.
#[derive(Debug, Clone, Copy)]
struct JobFinish {
    latency_us: f64,
    ber: f64,
    /// Whether the job was downgraded to the local classical fallback.
    fallback: bool,
}

/// Runtime state of one backend inside the scheduler.
struct BackendState {
    backend: Box<dyn SolverBackend>,
    queue: VecDeque<usize>,
    /// Jobs of the in-flight batch with their decisions (empty when idle).
    /// Decisions are `None` in charge-only mode, where the actual solves
    /// happen on the realtime service's worker threads.
    in_flight: Vec<(usize, Option<JobDecision>)>,
    free_at: f64,
    busy_us: f64,
    batches: u64,
    batch_histogram: Vec<u64>,
    jobs_done: usize,
}

impl BackendState {
    /// Predicted completion of a job of `n_logical` variables joining this
    /// backend's queue at `now`, with `evict` queued jobs hypothetically
    /// removed and the learned Q16.16 `correction` applied to both the
    /// per-job and per-call quotes (a [`Q16_ONE`] correction is a bitwise
    /// no-op).
    ///
    /// The backlog plus this job forms `batches_ahead` batch calls — each
    /// paying the per-call overhead — and each batch serves in
    /// capacity-wide rounds. Rounds are counted **per batch** (full
    /// batches of `max_batch` jobs plus a tail batch), not as one
    /// `ceil(jobs/capacity)` over the whole backlog: with `max_batch` not
    /// a multiple of `capacity` the per-backlog shortcut under-counts
    /// (e.g. capacity 4, max_batch 2, 4 jobs = two 2-job batches = 2
    /// rounds, not 1) and admission quotes would undercut what
    /// `solve_batch` charges. When `capacity` divides `max_batch` the two
    /// counts are the same integer, so historical quotes are preserved
    /// bit-for-bit.
    fn predicted_completion(
        &self,
        now: f64,
        cost: &CostModel,
        n_logical: usize,
        correction: i64,
        evict: usize,
    ) -> f64 {
        let job_us = corrected_us(self.backend.predict_job_us(cost, n_logical), correction);
        let overhead_us = corrected_us(self.backend.predict_overhead_us(), correction);
        debug_assert!(evict <= self.queue.len());
        let jobs_ahead = self.queue.len() + 1 - evict;
        let max_batch = self.backend.max_batch();
        let capacity = self.backend.capacity();
        let full = jobs_ahead / max_batch;
        let tail = jobs_ahead % max_batch;
        let batches_ahead = (full + usize::from(tail > 0)) as f64;
        let rounds = full * max_batch.div_ceil(capacity) + tail.div_ceil(capacity);
        let ready = if self.in_flight.is_empty() {
            now
        } else {
            self.free_at.max(now)
        };
        ready + batches_ahead * overhead_us + rounds as f64 * job_us
    }

    /// Starts the next batch from the queue at `start` (queue must be
    /// non-empty): pops the longest same-shape prefix up to `max_batch`.
    /// With `solve` the batch is solved inline (the virtual-time sim); in
    /// charge-only mode the backend is charged the identical `service_us`
    /// but returns no decisions, and the formed batch's job ids are the
    /// caller's to dispatch. Returns the batch in queue order plus the
    /// charged service µs (the predictor's learning signal).
    fn start_batch(
        &mut self,
        start: f64,
        cost: &CostModel,
        jobs: &[FabricJob],
        solve: bool,
    ) -> (Vec<usize>, f64) {
        debug_assert!(self.in_flight.is_empty());
        let head_vars = jobs[*self.queue.front().expect("start_batch: empty queue")].num_vars();
        let mut batch_ids = Vec::new();
        while batch_ids.len() < self.backend.max_batch() {
            match self.queue.front() {
                Some(&id) if jobs[id].num_vars() == head_vars => {
                    batch_ids.push(id);
                    self.queue.pop_front();
                }
                _ => break,
            }
        }
        let batch_jobs: Vec<&FabricJob> = batch_ids.iter().map(|&id| &jobs[id]).collect();
        let (service_us, decisions) = if solve {
            let outcome = self.backend.solve_batch(cost, &batch_jobs);
            assert_eq!(
                outcome.decisions.len(),
                batch_jobs.len(),
                "backend {} returned a mismatched batch",
                self.backend.name()
            );
            (
                outcome.service_us,
                outcome.decisions.into_iter().map(Some).collect(),
            )
        } else {
            (
                self.backend.charge_batch_us(cost, &batch_jobs),
                vec![None; batch_jobs.len()],
            )
        };
        self.free_at = start + service_us;
        self.busy_us += service_us;
        self.batches += 1;
        if self.batch_histogram.len() < batch_ids.len() {
            self.batch_histogram.resize(batch_ids.len(), 0);
        }
        self.batch_histogram[batch_ids.len() - 1] += 1;
        self.in_flight = batch_ids.iter().copied().zip(decisions).collect();
        (batch_ids, service_us)
    }

    /// The static admission quote for a batch of `batch_len` jobs of
    /// `n_logical` variables under `cost` — the prediction the learned
    /// correctors are trained against.
    fn static_batch_quote_us(&self, cost: &CostModel, batch_len: usize, n_logical: usize) -> f64 {
        self.backend.predict_overhead_us()
            + rounds_us(
                batch_len,
                self.backend.capacity(),
                self.backend.predict_job_us(cost, n_logical),
            )
    }
}

impl FabricJob {
    fn num_vars(&self) -> usize {
        self.inst.num_vars()
    }
}

/// Generates every job of the simulation, sorted by arrival time (ties
/// break by cell, then frame — a total, deterministic order). Shared with
/// the realtime service (`crate::fabric_rt`), whose producers stream the
/// same jobs so the sim can replay its routing decisions.
pub(crate) fn generate_jobs(config: &FabricConfig) -> Vec<FabricJob> {
    let tracks = ChannelTrack::cells(config.track, config.n_cells, config.seed ^ 0xCE11_5EED);
    let mut jobs = Vec::with_capacity(config.n_cells * config.frames_per_cell);
    for (cell, mut track) in tracks.into_iter().enumerate() {
        let arrivals = config.arrival.cell_arrivals(
            config.frames_per_cell,
            cell,
            config.n_cells,
            config.arrival_period_us,
            config.seed,
        );
        for (frame, &arrival_us) in arrivals.iter().enumerate() {
            let inst = track.next().expect("ChannelTrack is infinite");
            jobs.push(FabricJob {
                cell,
                frame,
                arrival_us,
                seed: item_seed(item_seed(config.seed ^ 0xFAB_0B5, cell), frame),
                class: config.sched.classes.assign(config.seed, cell, frame),
                inst,
            });
        }
    }
    jobs.sort_by(|a, b| {
        a.arrival_us
            .partial_cmp(&b.arrival_us)
            .expect("arrival times are finite")
            .then(a.cell.cmp(&b.cell))
            .then(a.frame.cmp(&b.frame))
    });
    jobs
}

/// The fabric's control plane: admission control, batch formation and
/// backend routing over a virtual clock.
///
/// At each arrival the scheduler routes the job to the backend minimizing
/// predicted completion — or, when no backend's prediction fits the
/// deadline, falls back to the cell's local classical detector exactly as
/// the stream engine's deadline-aware [`crate::stream::DispatchPolicy`]
/// does (local compute is uncontended: fallback latency is the classical
/// service time alone). Idle backends start serving immediately; jobs
/// arriving at a busy backend queue up and coalesce into its next
/// same-shape batch when the backend frees.
pub struct FabricScheduler {
    cost: CostModel,
    /// The cost model admission quotes are computed from: the true `cost`
    /// unless the sched options carry a (deliberately miscalibrated)
    /// assumed model. Charging always uses the true `cost`.
    route_cost: CostModel,
    deadline_us: f64,
    options: SchedOptions,
    /// The learned service corrector (a no-op for the static policy).
    predictor: Box<dyn ServicePredictor>,
    backends: Vec<BackendState>,
    fallbacks: usize,
    /// Queued lower-class jobs evicted by preempting admissions.
    preemptions: u64,
    /// Whether batches are solved inline (virtual sim) or only charged
    /// (realtime control plane; solves happen on worker threads).
    solve: bool,
    /// Per-job routing decision, indexed by job id: `Some(backend)` or
    /// `None` for the classical fallback. This is the replay trace.
    /// Preemption **rewrites** a victim's entry from `Some(b)` to `None` —
    /// deterministically, inside the same admission step on both the
    /// virtual and realtime paths.
    trace: Vec<Option<usize>>,
    /// Batches formed in charge-only mode, in formation order, for the
    /// realtime service to dispatch to its worker pools.
    formed: Vec<FormedBatch>,
    /// Jobs evicted in charge-only mode since the last
    /// [`FabricScheduler::take_evicted`] — the realtime service routes
    /// them to its fallback worker.
    evicted: Vec<usize>,
    /// `(virtual µs, |observed − corrected prediction| µs)` per batch —
    /// the prediction-error telemetry series. Empty for the static policy.
    pred_events: Vec<(f64, f64)>,
    /// `(virtual µs, cumulative preemptions)` — the preemption telemetry
    /// series. Empty when nothing is ever preempted.
    preempt_events: Vec<(f64, u64)>,
}

/// A batch formed by the charge-only scheduler, ready for dispatch to a
/// realtime worker pool.
#[derive(Debug, Clone)]
pub(crate) struct FormedBatch {
    /// Index of the backend pool the batch is routed to.
    pub backend: usize,
    /// Job ids of the batch, in queue order.
    pub jobs: Vec<usize>,
}

/// The routing decisions of one fabric run, indexed by job id:
/// `Some(backend_index)` for fabric-served jobs, `None` for jobs the
/// admission control downgraded to the classical fallback. The realtime
/// service records this and the virtual-time sim replays it; CI fails on
/// any divergence.
pub type RouteTrace = Vec<Option<usize>>;

impl std::fmt::Debug for FabricScheduler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FabricScheduler")
            .field("deadline_us", &self.deadline_us)
            .field("policy", &self.options.policy.name())
            .field("backends", &self.backends.len())
            .field("fallbacks", &self.fallbacks)
            .field("preemptions", &self.preemptions)
            .field("solve", &self.solve)
            .finish()
    }
}

impl FabricScheduler {
    /// Builds the scheduler and its backend pool.
    ///
    /// # Panics
    /// Panics on an empty pool, a negative deadline, or invalid backend
    /// parameters.
    pub fn new(specs: &[BackendSpec], cost: CostModel, deadline_us: f64) -> Self {
        Self::with_mode(specs, cost, deadline_us, SchedOptions::default(), true)
    }

    /// [`FabricScheduler::new`] with explicit adaptive-scheduling options
    /// (predictor policy, assumed routing cost model, class handling).
    /// Default options reproduce [`FabricScheduler::new`] byte-for-byte.
    ///
    /// # Panics
    /// As [`FabricScheduler::new`], plus invalid sched options.
    pub fn with_options(
        specs: &[BackendSpec],
        cost: CostModel,
        deadline_us: f64,
        options: SchedOptions,
    ) -> Self {
        Self::with_mode(specs, cost, deadline_us, options, true)
    }

    /// Builds a **charge-only** scheduler: admission and batch formation run
    /// exactly as in the virtual sim, but backends are charged via
    /// [`SolverBackend::charge_batch_us`] instead of solving, and formed
    /// batches accumulate for the caller to dispatch (the realtime
    /// service's control plane).
    pub(crate) fn new_charge_only(
        specs: &[BackendSpec],
        cost: CostModel,
        deadline_us: f64,
        options: SchedOptions,
    ) -> Self {
        Self::with_mode(specs, cost, deadline_us, options, false)
    }

    fn with_mode(
        specs: &[BackendSpec],
        cost: CostModel,
        deadline_us: f64,
        options: SchedOptions,
        solve: bool,
    ) -> Self {
        assert!(!specs.is_empty(), "FabricScheduler: empty backend pool");
        assert!(
            deadline_us >= 0.0,
            "FabricScheduler: deadline must be >= 0 (0 = everything falls back)"
        );
        expect_valid(options.validate());
        FabricScheduler {
            cost,
            route_cost: options.assumed_cost.unwrap_or(cost),
            deadline_us,
            predictor: options.policy.predictor(),
            options,
            backends: specs
                .iter()
                .map(|spec| BackendState {
                    backend: spec.build(),
                    queue: VecDeque::new(),
                    in_flight: Vec::new(),
                    free_at: 0.0,
                    busy_us: 0.0,
                    batches: 0,
                    batch_histogram: Vec::new(),
                    jobs_done: 0,
                })
                .collect(),
            fallbacks: 0,
            preemptions: 0,
            solve,
            trace: Vec::new(),
            formed: Vec::new(),
            evicted: Vec::new(),
            pred_events: Vec::new(),
            preempt_events: Vec::new(),
        }
    }

    /// The recorded routing decisions so far, indexed by admission order.
    pub(crate) fn trace(&self) -> &[Option<usize>] {
        &self.trace
    }

    /// Drains the batches formed since the last call (charge-only mode).
    pub(crate) fn take_formed(&mut self) -> Vec<FormedBatch> {
        std::mem::take(&mut self.formed)
    }

    /// Drains the job ids evicted by preempting admissions since the last
    /// call (charge-only mode): the realtime service routes them to its
    /// classical fallback worker.
    pub(crate) fn take_evicted(&mut self) -> Vec<usize> {
        std::mem::take(&mut self.evicted)
    }

    /// Queued lower-class jobs evicted by preempting admissions so far.
    pub(crate) fn preemptions(&self) -> u64 {
        self.preemptions
    }

    /// Mean absolute service-prediction error (µs) of the learned
    /// predictor; 0.0 under the static policy.
    pub(crate) fn prediction_mae_us(&self) -> f64 {
        self.predictor.mae_us()
    }

    /// Starts the next batch on backend `b_idx` at `start` (its queue must
    /// be non-empty and nothing in flight), feeds the completion back to
    /// the service predictor, and in charge-only mode records the formed
    /// batch for dispatch.
    fn start_and_learn(&mut self, b_idx: usize, start: f64, jobs: &[FabricJob]) {
        let head_vars = jobs[*self.backends[b_idx]
            .queue
            .front()
            .expect("start_and_learn: empty queue")]
        .num_vars();
        let correction = self.predictor.correction_q16(b_idx, head_vars);
        let (batch, service_us) =
            self.backends[b_idx].start_batch(start, &self.cost, jobs, self.solve);
        let quote =
            self.backends[b_idx].static_batch_quote_us(&self.route_cost, batch.len(), head_vars);
        self.predictor.observe(b_idx, head_vars, quote, service_us);
        if self.options.policy != crate::sched::SchedPolicy::Static {
            let err = (service_us - corrected_us(quote, correction)).abs();
            self.pred_events.push((start, err));
        }
        if !self.solve {
            self.formed.push(FormedBatch {
                backend: b_idx,
                jobs: batch,
            });
        }
    }

    /// Inserts `job_id` into backend `b_idx`'s queue in class-rank order
    /// (stable: equal ranks keep FIFO order, so the single-class default
    /// degenerates to the historical `push_back`).
    fn enqueue_ranked(&mut self, b_idx: usize, job_id: usize, jobs: &[FabricJob]) {
        let rank = jobs[job_id].class.rank();
        let state = &mut self.backends[b_idx];
        let pos = state
            .queue
            .iter()
            .position(|&id| jobs[id].class.rank() < rank)
            .unwrap_or(state.queue.len());
        state.queue.insert(pos, job_id);
    }

    /// The earliest in-flight batch completion, as `(time, backend index)`
    /// (ties break to the lowest index).
    fn next_completion(&self) -> Option<(f64, usize)> {
        self.backends
            .iter()
            .enumerate()
            .filter(|(_, b)| !b.in_flight.is_empty())
            .map(|(i, b)| (b.free_at, i))
            .min_by(|a, b| {
                a.0.partial_cmp(&b.0)
                    .expect("finite times")
                    .then(a.1.cmp(&b.1))
            })
    }

    /// Completes backend `b_idx`'s in-flight batch at `t_c`, recording each
    /// job's outcome into `finished`, then starts the next batch from its
    /// queue when one is waiting.
    fn complete(
        &mut self,
        b_idx: usize,
        t_c: f64,
        jobs: &[FabricJob],
        finished: &mut [Option<JobFinish>],
    ) {
        let state = &mut self.backends[b_idx];
        for (job_id, decision) in std::mem::take(&mut state.in_flight) {
            if let Some(decision) = decision {
                let job = &jobs[job_id];
                finished[job_id] = Some(JobFinish {
                    latency_us: t_c - job.arrival_us,
                    ber: bit_error_rate(&job.inst.tx_gray_bits, &decision.gray_bits),
                    fallback: false,
                });
            }
            state.jobs_done += 1;
        }
        if !self.backends[b_idx].queue.is_empty() {
            self.start_and_learn(b_idx, t_c, jobs);
        }
    }

    /// Names of the pooled backends, in routing-index order (the realtime
    /// service labels its telemetry lanes with these).
    pub(crate) fn backend_names(&self) -> Vec<&'static str> {
        self.backends.iter().map(|b| b.backend.name()).collect()
    }

    /// Charge-mode driver: advances the virtual clock to `t`, completing
    /// every in-flight batch due at or before it (completions fire before
    /// the arrival sharing their timestamp, exactly as in [`run_fabric`]).
    pub(crate) fn advance_to(&mut self, t: f64, jobs: &[FabricJob]) {
        while let Some((t_c, b_idx)) = self.next_completion() {
            if t_c > t {
                break;
            }
            self.complete(b_idx, t_c, jobs, &mut []);
        }
    }

    /// Charge-mode admission of job `job_id` at `t_a`. Call
    /// [`Self::advance_to`] first so capacity freed by earlier completions
    /// is visible to the decision.
    pub(crate) fn admit_charged(&mut self, job_id: usize, t_a: f64, jobs: &[FabricJob]) {
        debug_assert!(!self.solve, "admit_charged on a solving scheduler");
        self.admit(job_id, t_a, jobs, None, &mut []);
    }

    /// Charge-mode drain after the last admission: completes every
    /// remaining in-flight batch so residual queued jobs form batches.
    pub(crate) fn drain(&mut self, jobs: &[FabricJob]) {
        while let Some((t_c, b_idx)) = self.next_completion() {
            self.complete(b_idx, t_c, jobs, &mut []);
        }
    }

    /// Admits job `job_id` arriving at `t_a`: routes it to the backend with
    /// the lowest predicted completion when that fits the job's
    /// class-effective deadline, or runs the local classical fallback
    /// immediately (recording its result into `finished`; charge-only mode
    /// skips the fallback solve, so `classical` is `None` there).
    ///
    /// A higher-class job whose best quote misses its deadline may
    /// **preempt**: evict the fewest queued lower-class jobs (never
    /// in-flight ones) that make some backend's quote fit. Victims are
    /// taken from the back of the rank-ordered queue — lowest class,
    /// newest first — and are downgraded to the classical fallback with
    /// their queueing delay charged honestly (`t_a − arrival` plus the
    /// classical service). When even maximal eviction cannot meet the
    /// deadline, nothing is evicted and the job itself falls back.
    fn admit(
        &mut self,
        job_id: usize,
        t_a: f64,
        jobs: &[FabricJob],
        classical: Option<&dyn Detector>,
        finished: &mut [Option<JobFinish>],
    ) {
        let job = &jobs[job_id];
        let n = job.num_vars();
        let eff_deadline_us = self.deadline_us * job.class.deadline_factor();
        let best = self
            .backends
            .iter()
            .enumerate()
            .map(|(i, b)| {
                (
                    b.predicted_completion(
                        t_a,
                        &self.route_cost,
                        n,
                        self.predictor.correction_q16(i, n),
                        0,
                    ),
                    i,
                )
            })
            .min_by(|a, b| {
                a.0.partial_cmp(&b.0)
                    .expect("finite predictions")
                    .then(a.1.cmp(&b.1))
            })
            .expect("backend pool is non-empty");
        if best.0 - t_a <= eff_deadline_us {
            self.trace.push(Some(best.1));
            self.enqueue_ranked(best.1, job_id, jobs);
            if self.backends[best.1].in_flight.is_empty() {
                self.start_and_learn(best.1, t_a, jobs);
            }
            return;
        }
        if job.class.rank() > 0 {
            if let Some((k, b_idx)) = self.preemption_plan(t_a, n, job.class, eff_deadline_us, jobs)
            {
                self.evict(b_idx, k, t_a, jobs, classical, finished);
                self.trace.push(Some(b_idx));
                self.enqueue_ranked(b_idx, job_id, jobs);
                if self.backends[b_idx].in_flight.is_empty() {
                    self.start_and_learn(b_idx, t_a, jobs);
                }
                return;
            }
        }
        // Admission control rejects: local classical fallback,
        // uncontended at the cell.
        self.trace.push(None);
        self.fallbacks += 1;
        if self.solve {
            let classical = classical.expect("solving scheduler needs a classical fallback");
            let result = classical.detect(&job.inst.system, &job.inst.h, &job.inst.y);
            finished[job_id] = Some(JobFinish {
                latency_us: self.cost.service_us(&result.meta),
                ber: bit_error_rate(&job.inst.tx_gray_bits, &result.gray_bits),
                fallback: true,
            });
        }
    }

    /// The cheapest eviction that makes some backend's quote fit
    /// `eff_deadline_us`: `(victims, backend)` minimizing victims, then
    /// quote, then backend index. `None` when no eviction plan meets the
    /// deadline.
    fn preemption_plan(
        &self,
        t_a: f64,
        n: usize,
        class: PriorityClass,
        eff_deadline_us: f64,
        jobs: &[FabricJob],
    ) -> Option<(usize, usize)> {
        let mut choice: Option<(usize, f64, usize)> = None;
        for (i, b) in self.backends.iter().enumerate() {
            let correction = self.predictor.correction_q16(i, n);
            let evictable = b
                .queue
                .iter()
                .filter(|&&id| jobs[id].class.rank() < class.rank())
                .count();
            for k in 1..=evictable {
                let quote = b.predicted_completion(t_a, &self.route_cost, n, correction, k);
                if quote - t_a <= eff_deadline_us {
                    let better = match choice {
                        None => true,
                        Some((ck, cq, _)) => k < ck || (k == ck && quote < cq),
                    };
                    if better {
                        choice = Some((k, quote, i));
                    }
                    break; // minimal k for this backend found
                }
            }
        }
        choice.map(|(k, _, i)| (k, i))
    }

    /// Evicts the `k` lowest-priority queued jobs of backend `b_idx` (from
    /// the back of its rank-ordered queue), rewriting their trace entries
    /// to the fallback and charging the classical downgrade honestly.
    fn evict(
        &mut self,
        b_idx: usize,
        k: usize,
        t_a: f64,
        jobs: &[FabricJob],
        classical: Option<&dyn Detector>,
        finished: &mut [Option<JobFinish>],
    ) {
        for _ in 0..k {
            let victim = self.backends[b_idx]
                .queue
                .pop_back()
                .expect("preemption_plan counted evictable jobs");
            self.trace[victim] = None;
            self.fallbacks += 1;
            self.preemptions += 1;
            if self.solve {
                let classical = classical.expect("solving scheduler needs a classical fallback");
                let v = &jobs[victim];
                let result = classical.detect(&v.inst.system, &v.inst.h, &v.inst.y);
                finished[victim] = Some(JobFinish {
                    // The victim waited in queue from arrival to the
                    // eviction instant, then ran the classical fallback.
                    latency_us: (t_a - v.arrival_us) + self.cost.service_us(&result.meta),
                    ber: bit_error_rate(&v.inst.tx_gray_bits, &result.gray_bits),
                    fallback: true,
                });
            } else {
                self.evicted.push(victim);
            }
        }
        self.preempt_events.push((t_a, self.preemptions));
    }
}

/// Runs one fabric simulation: a deterministic virtual-time event loop over
/// job arrivals and batch completions, driven by a [`FabricScheduler`].
///
/// # Panics
/// Panics on zero cells/frames, a non-positive arrival period, a negative
/// deadline, an empty backend pool, or invalid backend parameters (see
/// [`FabricConfig::validate`] for the non-panicking check).
pub fn run_fabric(config: &FabricConfig) -> FabricReport {
    run_fabric_traced(config).0
}

/// [`run_fabric`] plus the recorded [`RouteTrace`] — the oracle side of the
/// realtime service's replay contract: the trace a realtime run records
/// must equal the trace this simulation produces for the same config.
///
/// # Panics
/// As [`run_fabric`].
pub fn run_fabric_traced(config: &FabricConfig) -> (FabricReport, RouteTrace) {
    run_fabric_observed(config, None, 0)
}

/// [`run_fabric_traced`] with optional telemetry: when a collector is
/// given, the run emits virtual-time spans — one `"job"` span per frame on
/// its routed backend's lane (or the fallback lane), stamped with the
/// simulation's own µs clock under trace process `pid`.
///
/// Telemetry is emitted from the finished per-job outcomes *after* the
/// event loop, so the simulation itself is untouched: the report and trace
/// are byte-identical with and without a collector.
///
/// # Panics
/// As [`run_fabric`].
pub fn run_fabric_observed(
    config: &FabricConfig,
    telemetry: Option<&crate::telemetry::Collector>,
    pid: u32,
) -> (FabricReport, RouteTrace) {
    config.validate_or_panic();

    let jobs = generate_jobs(config);
    let classical = Mmse::new(config.track.noise_variance);
    let mut scheduler = FabricScheduler::with_options(
        &config.backends,
        config.cost,
        config.deadline_us,
        config.sched,
    );

    // Per-job outcomes; filled as jobs finish.
    let mut finished: Vec<Option<JobFinish>> = vec![None; jobs.len()];
    let mut next_arrival = 0usize;

    loop {
        let arrival_t = jobs.get(next_arrival).map(|j| j.arrival_us);
        match (scheduler.next_completion(), arrival_t) {
            (None, None) => break,
            // Completions fire first on ties so freed capacity is visible
            // to the arrival that shares its timestamp.
            (Some((t_c, b_idx)), arrival) if arrival.is_none_or(|t_a| t_c <= t_a) => {
                scheduler.complete(b_idx, t_c, &jobs, &mut finished);
            }
            (_, Some(t_a)) => {
                scheduler.admit(next_arrival, t_a, &jobs, Some(&classical), &mut finished);
                next_arrival += 1;
            }
            (Some(_), None) => unreachable!("guarded arm covers completions with no arrivals"),
        }
    }

    let trace = std::mem::take(&mut scheduler.trace);
    let preemptions = scheduler.preemptions();
    let prediction_mae_us = scheduler.prediction_mae_us();
    let pred_events = std::mem::take(&mut scheduler.pred_events);
    let preempt_events = std::mem::take(&mut scheduler.preempt_events);
    let backends = scheduler.backends;
    let fallbacks = scheduler.fallbacks;
    let per_job: Vec<JobFinish> = finished
        .into_iter()
        .map(|f| f.expect("every job finishes"))
        .collect();
    if let Some(collector) = telemetry {
        emit_virtual_spans(collector, pid, config, &jobs, &per_job, &trace, &backends);
        emit_sched_counters(collector, pid, &pred_events, &preempt_events);
    }
    let n = per_job.len() as f64;
    let makespan_us = jobs
        .iter()
        .zip(&per_job)
        .map(|(job, f)| job.arrival_us + f.latency_us)
        .fold(0.0, f64::max);
    // Sort once, then sum over the *sorted* order below — the committed
    // BENCH_fabric.json bytes depend on that float-summation order.
    let latencies = sorted_ascending(&per_job.iter().map(|f| f.latency_us).collect::<Vec<f64>>());
    let misses = latencies
        .iter()
        .filter(|&&l| l > config.deadline_us)
        .count();
    let served: Vec<f64> = per_job
        .iter()
        .filter(|f| !f.fallback)
        .map(|f| f.latency_us)
        .collect();
    let served_misses = served.iter().filter(|&&l| l > config.deadline_us).count();

    let mut classes = Vec::new();
    if !config.sched.classes.is_default() {
        for class in PriorityClass::ALL {
            let mut lat: Vec<f64> = jobs
                .iter()
                .zip(&per_job)
                .filter(|(job, _)| job.class == class)
                .map(|(_, f)| f.latency_us)
                .collect();
            if lat.is_empty() {
                continue;
            }
            lat.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
            let cutoff = config.deadline_us * class.deadline_factor();
            let mut hist = LogHistogram::new();
            for &l in &lat {
                hist.record(l);
            }
            classes.push(ClassReport {
                class,
                jobs: lat.len(),
                misses: lat.iter().filter(|&&l| l > cutoff).count(),
                mean_latency_us: lat.iter().sum::<f64>() / lat.len() as f64,
                p50_latency_us: hist.percentile(50.0),
                p99_latency_us: hist.percentile(99.0),
                hist,
            });
        }
    }

    let report = FabricReport {
        mix: String::new(), // filled by the grid runner
        n_cells: config.n_cells,
        arrival_period_us: config.arrival_period_us,
        jobs: jobs.len(),
        ber: per_job.iter().map(|f| f.ber).sum::<f64>() / n,
        deadline_miss_rate: misses as f64 / n,
        fallback_rate: fallbacks as f64 / n,
        served_miss_rate: served_misses as f64 / n,
        p50_latency_us: percentile_sorted(&latencies, 50.0),
        p99_latency_us: percentile_sorted(&latencies, 99.0),
        mean_latency_us: latencies.iter().sum::<f64>() / n,
        mean_served_latency_us: if served.is_empty() {
            0.0
        } else {
            served.iter().sum::<f64>() / served.len() as f64
        },
        backends: backends
            .iter()
            .map(|b| {
                let (hits, misses) = b.backend.embedding_cache_stats().unwrap_or((0, 0));
                BackendReport {
                    name: b.backend.name().to_string(),
                    jobs: b.jobs_done,
                    batches: b.batches,
                    utilization: if makespan_us > 0.0 {
                        b.busy_us / makespan_us
                    } else {
                        0.0
                    },
                    mean_batch: if b.batches > 0 {
                        b.jobs_done as f64 / b.batches as f64
                    } else {
                        0.0
                    },
                    mean_service_us: if b.jobs_done > 0 {
                        b.busy_us / b.jobs_done as f64
                    } else {
                        0.0
                    },
                    batch_histogram: b.batch_histogram.clone(),
                    embed_cache_hits: hits,
                    embed_cache_misses: misses,
                }
            })
            .collect(),
        preemptions,
        prediction_mae_us,
        classes,
    };
    (report, trace)
}

/// Emits the adaptive-scheduler counter series: one `"prediction_error"`
/// sample (absolute µs error of the static quote vs. the charged service)
/// per observed batch, and one cumulative `"preemptions"` sample per
/// eviction event. Both series are empty under the static policy /
/// default class mix, so telemetry output for legacy runs is unchanged.
fn emit_sched_counters(
    collector: &crate::telemetry::Collector,
    pid: u32,
    pred_events: &[(f64, f64)],
    preempt_events: &[(f64, u64)],
) {
    for &(ts_us, err_us) in pred_events {
        collector.push_counter(crate::telemetry::CounterSample {
            pid,
            name: "prediction_error",
            ts_us,
            values: vec![("abs_err_us".to_string(), err_us)],
        });
    }
    for &(ts_us, total) in preempt_events {
        collector.push_counter(crate::telemetry::CounterSample {
            pid,
            name: "preemptions",
            ts_us,
            values: vec![("total".to_string(), total as f64)],
        });
    }
}

/// Emits the virtual-time span set for one finished fabric run: a lane per
/// backend (tid `2+b`) plus the classical-fallback lane (tid 1), with one
/// `"job"` span per frame at its virtual arrival/latency coordinates.
fn emit_virtual_spans(
    collector: &crate::telemetry::Collector,
    pid: u32,
    config: &FabricConfig,
    jobs: &[FabricJob],
    per_job: &[JobFinish],
    trace: &RouteTrace,
    backends: &[BackendState],
) {
    collector.label_process(
        pid,
        &format!(
            "fabric cells={} period={}us",
            config.n_cells, config.arrival_period_us
        ),
    );
    let mut fallback_rec = collector.recorder(pid, 1, "fallback-mmse");
    let mut lanes: Vec<_> = backends
        .iter()
        .enumerate()
        .map(|(b, state)| collector.recorder(pid, 2 + b as u32, state.backend.name()))
        .collect();
    for (j, finish) in per_job.iter().enumerate() {
        let name = format!("cell{}", jobs[j].cell);
        let rec = match trace[j] {
            Some(b) => &mut lanes[b],
            None => &mut fallback_rec,
        };
        rec.span_at(
            "job",
            &name,
            Some(j as u64),
            jobs[j].arrival_us,
            finish.latency_us,
        );
    }
}

// ---------------------------------------------------------------------------
// The grid
// ---------------------------------------------------------------------------

/// Configuration of a full (backend-mix × cells × load) fabric sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct FabricGridConfig {
    /// Channel process shared by every cell.
    pub track: TrackConfig,
    /// Frames per cell.
    pub frames_per_cell: usize,
    /// Cell counts to sweep (the new scenario axis).
    pub cell_counts: Vec<usize>,
    /// Per-cell arrival periods to sweep (µs), **descending** so "later in
    /// the list" means "higher offered load".
    pub arrival_periods_us: Vec<f64>,
    /// Backend mixes to sweep.
    pub mixes: Vec<BackendMix>,
    /// Arrival process shaping per-cell inter-arrival gaps (default
    /// periodic, the original fabric load).
    pub arrival: ArrivalProcess,
    /// Execution mode: the virtual-time sim or the wall-clock realtime
    /// service (`hqw-core::fabric_rt`). The routing decisions must agree.
    pub mode: FabricMode,
    /// Latency budget shared by every point (µs).
    pub deadline_us: f64,
    /// Work-counter → service-time model.
    pub cost: CostModel,
    /// Adaptive-scheduling options shared by every point (default: static
    /// routing, all-eMBB class mix — the legacy behaviour).
    pub sched: SchedOptions,
    /// Grid seed. Point seeds derive from it and the **cell-count index**
    /// only, so points differing in load or mix see identical frames.
    pub seed: u64,
    /// Worker threads for the point fan-out (0 = all available cores).
    /// Results are bit-identical for any value.
    pub threads: usize,
}

impl FabricGridConfig {
    /// Starts a builder with default deadline (700 µs) and cost model; the
    /// load axis and mix axis must be set before `build()`.
    pub fn builder(track: TrackConfig) -> FabricGridConfigBuilder {
        FabricGridConfigBuilder {
            config: FabricGridConfig {
                track,
                frames_per_cell: 64,
                cell_counts: vec![1],
                arrival_periods_us: Vec::new(),
                mixes: Vec::new(),
                arrival: ArrivalProcess::Periodic,
                mode: FabricMode::Virtual,
                deadline_us: 700.0,
                cost: CostModel::default(),
                sched: SchedOptions::default(),
                seed: 0,
                threads: 0,
            },
        }
    }

    /// Validates the grid configuration (axes plus every per-point
    /// parameter).
    ///
    /// # Errors
    /// Returns the first violated constraint.
    pub fn validate(&self) -> Result<(), SpecError> {
        let ctx = "FabricGridConfig";
        if self.mixes.is_empty() {
            return Err(SpecError::new(ctx, "empty mix axis"));
        }
        if self.cell_counts.is_empty() {
            return Err(SpecError::new(ctx, "empty cells axis"));
        }
        if self.arrival_periods_us.is_empty() {
            return Err(SpecError::new(ctx, "empty load axis"));
        }
        if let Some(bad) = self
            .arrival_periods_us
            .iter()
            .find(|p| !(p.is_finite() && **p > 0.0))
        {
            return Err(SpecError::new(ctx, format!("arrival period {bad} not > 0")));
        }
        if self.cell_counts.contains(&0) {
            return Err(SpecError::new(ctx, "cell counts must be >= 1"));
        }
        if let FabricMode::Realtime(rt) = &self.mode {
            rt.validate().map_err(|msg| SpecError::new(ctx, msg))?;
        }
        for mix in &self.mixes {
            // Every point of this mix shares the remaining parameters;
            // validate once per mix through a representative point.
            FabricConfig {
                track: self.track,
                n_cells: self.cell_counts[0],
                frames_per_cell: self.frames_per_cell,
                arrival_period_us: self.arrival_periods_us[0],
                arrival: self.arrival,
                deadline_us: self.deadline_us,
                cost: self.cost,
                backends: mix.backends.clone(),
                sched: self.sched,
                seed: self.seed,
            }
            .validate()?;
        }
        Ok(())
    }

    /// Shim for callers that still want the original panicking behaviour.
    /// Deprecated in spirit: new code should propagate
    /// [`FabricGridConfig::validate`] errors instead.
    ///
    /// # Panics
    /// Panics with the [`FabricGridConfig::validate`] message on any
    /// invalid field.
    pub fn validate_or_panic(&self) {
        if let Err(e) = self.validate() {
            panic!("{e}");
        }
    }
}

/// Builder for [`FabricGridConfig`] — the validated construction path the
/// spec layer and examples use (`build()` runs
/// [`FabricGridConfig::validate`]).
#[derive(Debug, Clone)]
pub struct FabricGridConfigBuilder {
    config: FabricGridConfig,
}

impl FabricGridConfigBuilder {
    /// Sets the frames streamed per cell (default 64).
    pub fn frames_per_cell(mut self, frames: usize) -> Self {
        self.config.frames_per_cell = frames;
        self
    }

    /// Sets the cell-count axis (default `[1]`).
    pub fn cell_counts(mut self, cell_counts: Vec<usize>) -> Self {
        self.config.cell_counts = cell_counts;
        self
    }

    /// Sets the load axis: per-cell arrival periods in µs, **descending**
    /// so "later in the list" means "higher offered load". Required.
    pub fn arrival_periods_us(mut self, periods: Vec<f64>) -> Self {
        self.config.arrival_periods_us = periods;
        self
    }

    /// Sets the backend-mix axis. Required.
    pub fn mixes(mut self, mixes: Vec<BackendMix>) -> Self {
        self.config.mixes = mixes;
        self
    }

    /// Sets the arrival process (default [`ArrivalProcess::Periodic`]).
    pub fn arrival(mut self, arrival: ArrivalProcess) -> Self {
        self.config.arrival = arrival;
        self
    }

    /// Sets the execution mode (default [`FabricMode::Virtual`]).
    pub fn mode(mut self, mode: FabricMode) -> Self {
        self.config.mode = mode;
        self
    }

    /// Sets the per-frame latency budget in µs (default 700).
    pub fn deadline_us(mut self, deadline_us: f64) -> Self {
        self.config.deadline_us = deadline_us;
        self
    }

    /// Sets the work-counter → service-time model (default
    /// [`CostModel::default`]).
    pub fn cost(mut self, cost: CostModel) -> Self {
        self.config.cost = cost;
        self
    }

    /// Sets the adaptive-scheduling options (default static routing with
    /// the all-eMBB class mix — the legacy behaviour).
    pub fn sched(mut self, sched: SchedOptions) -> Self {
        self.config.sched = sched;
        self
    }

    /// Sets the grid seed (default 0).
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Sets the worker-thread count (default 0 = all cores; results are
    /// bit-identical for any value).
    pub fn threads(mut self, threads: usize) -> Self {
        self.config.threads = threads;
        self
    }

    /// Validates and returns the configuration.
    ///
    /// # Errors
    /// Returns the first [`FabricGridConfig::validate`] violation.
    pub fn build(self) -> Result<FabricGridConfig, SpecError> {
        self.config.validate()?;
        Ok(self.config)
    }
}

/// A full fabric-sweep report: the config echo plus one report per grid
/// point, in (mix, cells, load) order.
#[derive(Debug, Clone)]
pub struct FabricGridReport {
    /// Number of transmitting users per cell.
    pub n_users: usize,
    /// Number of receive antennas per cell.
    pub n_rx: usize,
    /// Modulation name.
    pub modulation: String,
    /// AWGN per-antenna variance.
    pub noise_variance: f64,
    /// Frames per cell.
    pub frames_per_cell: usize,
    /// Latency budget (µs).
    pub deadline_us: f64,
    /// Grid seed.
    pub seed: u64,
    /// Per-point reports: mix-major, then cell count, then load.
    pub points: Vec<FabricReport>,
}

/// Expands the grid into its `(mix name, point config)` list, in
/// (mix, cells, load) order. Shared with the realtime service so both
/// modes run byte-identical point configurations.
pub(crate) fn grid_points(config: &FabricGridConfig) -> Vec<(String, FabricConfig)> {
    let mut points = Vec::new();
    for mix in &config.mixes {
        for (cells_idx, &n_cells) in config.cell_counts.iter().enumerate() {
            for &arrival_period_us in &config.arrival_periods_us {
                points.push((
                    mix.name.clone(),
                    FabricConfig {
                        track: config.track,
                        n_cells,
                        frames_per_cell: config.frames_per_cell,
                        arrival_period_us,
                        arrival: config.arrival,
                        deadline_us: config.deadline_us,
                        cost: config.cost,
                        backends: mix.backends.clone(),
                        sched: config.sched,
                        // Cell-count-indexed only: same frames across loads
                        // and mixes.
                        seed: item_seed(config.seed, cells_idx),
                    },
                ));
            }
        }
    }
    points
}

/// Runs the full (mix × cells × load) grid, fanning points out across
/// `config.threads` workers. See the module docs for the determinism
/// contract. Always runs the virtual-time sim regardless of `config.mode`
/// — this is what makes it the replay oracle for realtime configs.
///
/// # Panics
/// Panics on an empty mix/cells/load axis or invalid point parameters (see
/// [`FabricGridConfig::validate`] for the non-panicking check).
pub fn run_fabric_grid(config: &FabricGridConfig) -> FabricGridReport {
    run_fabric_grid_observed(config, None)
}

/// [`run_fabric_grid`] with optional telemetry: point `i` of the flat
/// mix-major grid emits its virtual-time spans under trace process `i + 1`.
/// The report is byte-identical with and without a collector.
///
/// # Panics
/// As [`run_fabric_grid`].
pub fn run_fabric_grid_observed(
    config: &FabricGridConfig,
    telemetry: Option<&crate::telemetry::Collector>,
) -> FabricGridReport {
    config.validate_or_panic();
    let total = config.mixes.len() * config.cell_counts.len() * config.arrival_periods_us.len();
    let ids: Vec<usize> = (0..total).collect();
    FabricGridReport {
        n_users: config.track.n_users,
        n_rx: config.track.n_rx,
        modulation: config.track.modulation.name().to_string(),
        noise_variance: config.track.noise_variance,
        frames_per_cell: config.frames_per_cell,
        deadline_us: config.deadline_us,
        seed: config.seed,
        points: run_fabric_points_observed(config, &ids, telemetry),
    }
}

/// Runs an arbitrary subset of the (mix × cells × load) grid — the sharded
/// form of [`run_fabric_grid`]. Always runs the virtual-time sim.
///
/// `ids` are flat indices into the mix-major grid (strictly increasing).
/// Point seeds depend only on the grid seed and the point's cell-count
/// index, so a point's report is byte-identical whether it runs alone or as
/// part of the full grid; `run_fabric_grid` itself is the all-ids case.
///
/// # Panics
/// Panics on an invalid configuration or on ids that are out of range or
/// not strictly increasing.
pub fn run_fabric_points(config: &FabricGridConfig, ids: &[usize]) -> Vec<FabricReport> {
    run_fabric_points_observed(config, ids, None)
}

/// [`run_fabric_points`] with optional telemetry: flat grid id `i` emits
/// its virtual-time spans under trace process `i + 1` (stable whether the
/// point runs alone or as part of the full grid).
///
/// # Panics
/// As [`run_fabric_points`].
pub fn run_fabric_points_observed(
    config: &FabricGridConfig,
    ids: &[usize],
    telemetry: Option<&crate::telemetry::Collector>,
) -> Vec<FabricReport> {
    config.validate_or_panic();
    let all = grid_points(config);
    for w in ids.windows(2) {
        assert!(
            w[0] < w[1],
            "run_fabric_points: ids must be strictly increasing"
        );
    }
    if let Some(&last) = ids.last() {
        assert!(
            last < all.len(),
            "run_fabric_points: id {last} out of range (grid has {} points)",
            all.len()
        );
    }
    let subset: Vec<(usize, String, FabricConfig)> = ids
        .iter()
        .map(|&id| (id, all[id].0.clone(), all[id].1.clone()))
        .collect();
    parallel_map_indexed(&subset, config.threads, |_, (id, mix_name, point)| {
        let (mut report, _) = run_fabric_observed(point, telemetry, 1 + *id as u32);
        report.mix = mix_name.clone();
        report
    })
}

// ---------------------------------------------------------------------------
// JSON report
// ---------------------------------------------------------------------------

impl BackendReport {
    /// Parses a [`BackendReport::to_json_object`] document back. Exact:
    /// the float codec round-trips shortest-`Display` renderings
    /// losslessly.
    fn from_json(o: &Json, ctx: &str) -> Result<BackendReport, SpecError> {
        check_keys(
            o,
            &[
                "name",
                "jobs",
                "batches",
                "utilization",
                "mean_batch",
                "mean_service_us",
                "batch_histogram",
                "embed_cache_hits",
                "embed_cache_misses",
            ],
            ctx,
        )?;
        let batch_histogram = req(o, "batch_histogram", ctx)?
            .as_arr()
            .ok_or_else(|| {
                SpecError::new(
                    ctx.to_string(),
                    "field \"batch_histogram\" must be an array",
                )
            })?
            .iter()
            .map(|v| {
                v.as_u64().ok_or_else(|| {
                    SpecError::new(
                        ctx.to_string(),
                        "field \"batch_histogram\" must contain only unsigned integers",
                    )
                })
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(BackendReport {
            name: req_str(o, "name", ctx)?.to_string(),
            jobs: req_usize(o, "jobs", ctx)?,
            batches: req_u64(o, "batches", ctx)?,
            utilization: req_f64(o, "utilization", ctx)?,
            mean_batch: req_f64(o, "mean_batch", ctx)?,
            mean_service_us: req_f64(o, "mean_service_us", ctx)?,
            batch_histogram,
            embed_cache_hits: req_u64(o, "embed_cache_hits", ctx)?,
            embed_cache_misses: req_u64(o, "embed_cache_misses", ctx)?,
        })
    }

    fn to_json_object(&self) -> String {
        let histogram = self
            .batch_histogram
            .iter()
            .map(|c| c.to_string())
            .collect::<Vec<_>>()
            .join(", ");
        format!(
            "{{\"name\": \"{}\", \"jobs\": {}, \"batches\": {}, \
             \"utilization\": {}, \"mean_batch\": {}, \
             \"mean_service_us\": {}, \"batch_histogram\": [{}], \
             \"embed_cache_hits\": {}, \"embed_cache_misses\": {}}}",
            self.name,
            self.jobs,
            self.batches,
            json_num(self.utilization),
            json_num(self.mean_batch),
            json_num(self.mean_service_us),
            histogram,
            self.embed_cache_hits,
            self.embed_cache_misses,
        )
    }
}

impl FabricReport {
    /// Parses a [`FabricReport::to_json_object`] document back. Exact: the
    /// float codec round-trips shortest-`Display` renderings losslessly.
    pub(crate) fn from_json(o: &Json, ctx: &str) -> Result<FabricReport, SpecError> {
        check_keys(
            o,
            &[
                "mix",
                "n_cells",
                "arrival_period_us",
                "jobs",
                "ber",
                "deadline_miss_rate",
                "fallback_rate",
                "served_miss_rate",
                "p50_latency_us",
                "p99_latency_us",
                "mean_latency_us",
                "mean_served_latency_us",
                "backends",
                "preemptions",
                "prediction_mae_us",
                "classes",
            ],
            ctx,
        )?;
        let backends = req(o, "backends", ctx)?
            .as_arr()
            .ok_or_else(|| SpecError::new(ctx.to_string(), "field \"backends\" must be an array"))?
            .iter()
            .enumerate()
            .map(|(i, b)| BackendReport::from_json(b, &format!("{ctx}.backends[{i}]")))
            .collect::<Result<Vec<_>, _>>()?;
        // Scheduling fields are serialized only when non-default, so legacy
        // documents (and static-policy points) parse without them.
        let preemptions = match o.get("preemptions") {
            Some(v) => v
                .as_u64()
                .ok_or_else(|| SpecError::new(ctx.to_string(), "\"preemptions\" must be a u64"))?,
            None => 0,
        };
        let prediction_mae_us = match o.get("prediction_mae_us") {
            Some(v) => v.as_f64().ok_or_else(|| {
                SpecError::new(ctx.to_string(), "\"prediction_mae_us\" must be a number")
            })?,
            None => 0.0,
        };
        let classes = match o.get("classes") {
            Some(v) => v
                .as_arr()
                .ok_or_else(|| {
                    SpecError::new(ctx.to_string(), "field \"classes\" must be an array")
                })?
                .iter()
                .map(ClassReport::from_json)
                .collect::<Result<Vec<_>, _>>()?,
            None => Vec::new(),
        };
        Ok(FabricReport {
            mix: req_str(o, "mix", ctx)?.to_string(),
            n_cells: req_usize(o, "n_cells", ctx)?,
            arrival_period_us: req_f64(o, "arrival_period_us", ctx)?,
            jobs: req_usize(o, "jobs", ctx)?,
            ber: req_f64(o, "ber", ctx)?,
            deadline_miss_rate: req_f64(o, "deadline_miss_rate", ctx)?,
            fallback_rate: req_f64(o, "fallback_rate", ctx)?,
            served_miss_rate: req_f64(o, "served_miss_rate", ctx)?,
            p50_latency_us: req_f64(o, "p50_latency_us", ctx)?,
            p99_latency_us: req_f64(o, "p99_latency_us", ctx)?,
            mean_latency_us: req_f64(o, "mean_latency_us", ctx)?,
            mean_served_latency_us: req_f64(o, "mean_served_latency_us", ctx)?,
            backends,
            preemptions,
            prediction_mae_us,
            classes,
        })
    }

    /// Renders one grid point as a JSON object — one entry of the report's
    /// `points` array and the `point` field of a shard/checkpoint record.
    pub fn to_json_object(&self) -> String {
        let backends = self
            .backends
            .iter()
            .map(|b| b.to_json_object())
            .collect::<Vec<_>>()
            .join(", ");
        // The scheduling fields trail the legacy layout and render only
        // when non-default, keeping committed static-policy documents
        // byte-identical.
        let mut sched = String::new();
        if self.preemptions > 0 {
            sched.push_str(&format!(", \"preemptions\": {}", self.preemptions));
        }
        if self.prediction_mae_us != 0.0 {
            sched.push_str(&format!(
                ", \"prediction_mae_us\": {}",
                json_num(self.prediction_mae_us)
            ));
        }
        if !self.classes.is_empty() {
            let classes = self
                .classes
                .iter()
                .map(|c| c.to_json().to_string_compact())
                .collect::<Vec<_>>()
                .join(", ");
            sched.push_str(&format!(", \"classes\": [{classes}]"));
        }
        format!(
            "{{\"mix\": \"{}\", \"n_cells\": {}, \"arrival_period_us\": {}, \
             \"jobs\": {}, \"ber\": {}, \"deadline_miss_rate\": {}, \
             \"fallback_rate\": {}, \"served_miss_rate\": {}, \
             \"p50_latency_us\": {}, \
             \"p99_latency_us\": {}, \"mean_latency_us\": {}, \
             \"mean_served_latency_us\": {}, \"backends\": [{}]{}}}",
            self.mix,
            self.n_cells,
            json_num(self.arrival_period_us),
            self.jobs,
            json_num(self.ber),
            json_num(self.deadline_miss_rate),
            json_num(self.fallback_rate),
            json_num(self.served_miss_rate),
            json_num(self.p50_latency_us),
            json_num(self.p99_latency_us),
            json_num(self.mean_latency_us),
            json_num(self.mean_served_latency_us),
            backends,
            sched,
        )
    }
}

impl FabricGridReport {
    /// Renders the report as the `BENCH_fabric.json` document (schema in
    /// `crates/bench/README.md`). Pure function of the report contents:
    /// byte-identical across runs and thread counts.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n  \"bench\": \"fabric\",\n  \"scenario\": {\n");
        s.push_str(&format!("    \"n_users\": {},\n", self.n_users));
        s.push_str(&format!("    \"n_rx\": {},\n", self.n_rx));
        s.push_str(&format!("    \"modulation\": \"{}\",\n", self.modulation));
        s.push_str(&format!(
            "    \"noise_variance\": {},\n",
            json_num(self.noise_variance)
        ));
        s.push_str(&format!(
            "    \"frames_per_cell\": {},\n",
            self.frames_per_cell
        ));
        s.push_str(&format!(
            "    \"deadline_us\": {},\n",
            json_num(self.deadline_us)
        ));
        s.push_str(&format!("    \"seed\": {}\n  }},\n", self.seed));
        s.push_str("  \"points\": [\n");
        for (i, point) in self.points.iter().enumerate() {
            s.push_str("    ");
            s.push_str(&point.to_json_object());
            s.push_str(if i + 1 < self.points.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        s.push_str("  ]\n}\n");
        s
    }
}

impl crate::report::Report for FabricGridReport {
    fn name(&self) -> &'static str {
        "fabric"
    }

    fn schema_version(&self) -> u32 {
        1
    }

    fn to_json(&self) -> String {
        // Delegates to the inherent renderer (the committed-bytes contract
        // lives there).
        FabricGridReport::to_json(self)
    }

    fn table(&self) -> crate::report::Table {
        use crate::report::{fnum, Table};
        let mut table = Table::new(&[
            "mix",
            "cells",
            "period_us",
            "ber",
            "miss_rate",
            "fallback",
            "p50_us",
            "p99_us",
            "served_us",
            "util_max",
            "mean_batch",
        ]);
        for p in &self.points {
            let util_max = p.backends.iter().map(|b| b.utilization).fold(0.0, f64::max);
            let mean_batch = p.backends.iter().map(|b| b.mean_batch).fold(0.0, f64::max);
            table.push_row(vec![
                p.mix.clone(),
                p.n_cells.to_string(),
                fnum(p.arrival_period_us, 0),
                fnum(p.ber, 5),
                fnum(p.deadline_miss_rate, 4),
                fnum(p.fallback_rate, 4),
                fnum(p.p50_latency_us, 1),
                fnum(p.p99_latency_us, 1),
                fnum(p.mean_served_latency_us, 1),
                fnum(util_max, 3),
                fnum(mean_batch, 2),
            ]);
        }
        table
    }
}

impl crate::report::MergeableReport for FabricGridReport {
    fn points(&self) -> Vec<PointRecord> {
        self.points
            .iter()
            .enumerate()
            .map(|(id, point)| PointRecord {
                id,
                payload: point.to_json_object(),
            })
            .collect()
    }

    fn from_points(spec: &ExperimentSpec, mut points: Vec<PointRecord>) -> Result<Self, SpecError> {
        let ctx = "FabricGridReport";
        let ExperimentSpec::Fabric(config) = spec else {
            return Err(SpecError::new(
                ctx,
                format!("expected a fabric spec, got '{}'", spec.family()),
            ));
        };
        if config.mode != FabricMode::Virtual {
            return Err(SpecError::new(
                ctx,
                "realtime fabric runs produce traces, not mergeable grid reports",
            ));
        }
        let loads = config.arrival_periods_us.len();
        let cells_n = config.cell_counts.len();
        let total = config.mixes.len() * cells_n * loads;
        crate::report::sort_and_check_point_ids(&mut points, total, ctx)?;
        let reports = points
            .iter()
            .map(|record| {
                let p_ctx = &format!("fabric point {}", record.id);
                let doc = Json::parse(&record.payload)
                    .map_err(|e| SpecError::new(p_ctx.clone(), e.to_string()))?;
                let point = FabricReport::from_json(&doc, p_ctx)?;
                // The payload's own grid coordinates must agree with its id.
                let mix = &config.mixes[record.id / (cells_n * loads)].name;
                let n_cells = config.cell_counts[(record.id / loads) % cells_n];
                let period = config.arrival_periods_us[record.id % loads];
                if point.mix != *mix
                    || point.n_cells != n_cells
                    || point.arrival_period_us.to_bits() != period.to_bits()
                {
                    return Err(SpecError::new(
                        p_ctx.clone(),
                        format!(
                            "grid coordinates ({}, {} cells, period {}) do not match the \
                             spec grid point ({}, {} cells, period {})",
                            point.mix, point.n_cells, point.arrival_period_us, mix, n_cells, period
                        ),
                    ));
                }
                Ok(point)
            })
            .collect::<Result<Vec<_>, SpecError>>()?;
        Ok(FabricGridReport {
            n_users: config.track.n_users,
            n_rx: config.track.n_rx,
            modulation: config.track.modulation.name().to_string(),
            noise_variance: config.track.noise_variance,
            frames_per_cell: config.frames_per_cell,
            deadline_us: config.deadline_us,
            seed: config.seed,
            points: reports,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched::{ClassMix, SchedPolicy};
    use crate::stream::{run_stream, DispatchPolicy, StreamConfig};
    use hqw_phy::channel::snr_db_to_noise_variance;
    use hqw_phy::modulation::Modulation;

    /// A named field mutation for the validate() rejection-path tests.
    type Mutation<T> = (&'static str, Box<dyn Fn(&mut T)>);

    fn track() -> TrackConfig {
        TrackConfig {
            n_users: 2,
            n_rx: 2,
            modulation: Modulation::Qpsk,
            rho: 0.9,
            noise_variance: snr_db_to_noise_variance(14.0, 2),
        }
    }

    fn quick_sa_pool() -> BackendSpec {
        BackendSpec::SaPool(SaPoolConfig {
            workers: 2,
            max_batch: 4,
            sa: SaParams {
                sweeps: 32,
                num_reads: 2,
                threads: 1,
                ..SaParams::default()
            },
        })
    }

    fn quick_annealer() -> AnnealerConfig {
        AnnealerConfig {
            num_reads: 2,
            anneal_us: 2.0,
            sweeps_per_us: 4,
            capacity: 1,
            max_batch: 4,
            kernel: SweepKernel::Exact,
        }
    }

    fn quick_qpu(max_batch: usize) -> BackendSpec {
        BackendSpec::MockQpu(MockQpuConfig {
            num_reads: 2,
            anneal_us: 2.0,
            sweeps_per_us: 4,
            trotter_slices: 4,
            max_batch,
            network: NetworkModel {
                rtt_base_us: 30.0,
                jitter_us: 10.0,
            },
            programming_us: 120.0,
            embed_derive_us_per_qubit: 2.0,
            chain_strength: 2.0,
        })
    }

    fn hetero_pool() -> Vec<BackendSpec> {
        vec![
            quick_sa_pool(),
            BackendSpec::Pimc(quick_annealer()),
            BackendSpec::Svmc(quick_annealer()),
            quick_qpu(4),
        ]
    }

    fn fabric(
        n_cells: usize,
        period: f64,
        deadline: f64,
        backends: Vec<BackendSpec>,
    ) -> FabricConfig {
        FabricConfig {
            track: track(),
            n_cells,
            frames_per_cell: 16,
            arrival_period_us: period,
            arrival: ArrivalProcess::Periodic,
            deadline_us: deadline,
            cost: CostModel::default(),
            backends,
            sched: SchedOptions::default(),
            seed: 42,
        }
    }

    #[test]
    fn fabric_is_deterministic_per_seed() {
        let config = fabric(2, 150.0, 600.0, hetero_pool());
        let a = run_fabric(&config);
        let b = run_fabric(&config);
        assert_eq!(a.to_json_object(), b.to_json_object());
    }

    #[test]
    fn every_job_is_served_and_metrics_are_sane() {
        let config = fabric(3, 120.0, 500.0, hetero_pool());
        let report = run_fabric(&config);
        assert_eq!(report.jobs, 3 * 16);
        let backend_jobs: usize = report.backends.iter().map(|b| b.jobs).sum();
        let fallback_jobs = (report.fallback_rate * report.jobs as f64).round() as usize;
        assert_eq!(backend_jobs + fallback_jobs, report.jobs);
        assert!((0.0..=1.0).contains(&report.ber));
        assert!((0.0..=1.0).contains(&report.deadline_miss_rate));
        assert!((0.0..=1.0).contains(&report.fallback_rate));
        assert!(report.p99_latency_us >= report.p50_latency_us);
        assert!(report.p50_latency_us > 0.0);
        for b in &report.backends {
            assert!(
                (0.0..=1.0).contains(&b.utilization),
                "{}: utilization {}",
                b.name,
                b.utilization
            );
            let hist_jobs: u64 = b
                .batch_histogram
                .iter()
                .enumerate()
                .map(|(i, &c)| (i as u64 + 1) * c)
                .sum();
            assert_eq!(hist_jobs as usize, b.jobs, "{}: histogram mismatch", b.name);
        }
    }

    #[test]
    fn batches_form_under_load_and_amortize_qpu_overhead() {
        // One QPU, load well beyond its single-job service rate: queued jobs
        // must coalesce, and the batched fabric must beat the unbatched one
        // on mean latency over the *same* frames.
        let batched = run_fabric(&fabric(4, 100.0, 1e9, vec![quick_qpu(8)]));
        let unbatched = run_fabric(&fabric(4, 100.0, 1e9, vec![quick_qpu(1)]));
        assert_eq!(batched.jobs, unbatched.jobs);
        assert_eq!(batched.fallback_rate, 0.0);
        assert_eq!(unbatched.fallback_rate, 0.0);
        let qpu = &batched.backends[0];
        assert!(qpu.mean_batch > 1.0, "no batching: {}", qpu.mean_batch);
        assert_eq!(unbatched.backends[0].mean_batch, 1.0);
        assert!(
            batched.mean_latency_us < unbatched.mean_latency_us,
            "batched {} vs unbatched {}",
            batched.mean_latency_us,
            unbatched.mean_latency_us
        );
        // No fallbacks here, so the served mean is the all-jobs mean.
        assert_eq!(
            batched.mean_latency_us.to_bits(),
            batched.mean_served_latency_us.to_bits()
        );
        // The amortization metric: charged service per job strictly drops
        // when overhead is shared across a batch.
        assert!(
            qpu.mean_service_us < unbatched.backends[0].mean_service_us,
            "batched {} us/job vs unbatched {} us/job",
            qpu.mean_service_us,
            unbatched.backends[0].mean_service_us
        );
    }

    #[test]
    fn decisions_are_stable_under_batching_and_load() {
        // Per-job solver seeds make decisions independent of batch
        // composition: BER is identical across batching modes and loads,
        // for the mock QPU and the SA pool alike — the paired-comparison
        // property the grid's load axis relies on.
        let a = run_fabric(&fabric(2, 100.0, 1e9, vec![quick_qpu(8)]));
        let b = run_fabric(&fabric(2, 100.0, 1e9, vec![quick_qpu(1)]));
        let c = run_fabric(&fabric(2, 400.0, 1e9, vec![quick_qpu(8)]));
        assert_eq!(a.ber.to_bits(), b.ber.to_bits());
        assert_eq!(a.ber.to_bits(), c.ber.to_bits());

        let sa_pool = |max_batch: usize| {
            BackendSpec::SaPool(SaPoolConfig {
                workers: 1,
                max_batch,
                sa: SaParams {
                    sweeps: 24,
                    num_reads: 2,
                    threads: 1,
                    ..SaParams::default()
                },
            })
        };
        let d = run_fabric(&fabric(2, 100.0, 1e9, vec![sa_pool(6)]));
        let e = run_fabric(&fabric(2, 100.0, 1e9, vec![sa_pool(1)]));
        let f = run_fabric(&fabric(2, 400.0, 1e9, vec![sa_pool(6)]));
        assert!(d.backends[0].mean_batch > 1.0, "SA pool never batched");
        assert_eq!(d.ber.to_bits(), e.ber.to_bits());
        assert_eq!(d.ber.to_bits(), f.ber.to_bits());
    }

    #[test]
    fn embedding_cache_derives_once_per_shape() {
        let report = run_fabric(&fabric(2, 80.0, 1e9, vec![quick_qpu(4)]));
        let qpu = &report.backends[0];
        assert!(
            qpu.batches > 1,
            "need several batches to exercise the cache"
        );
        assert_eq!(qpu.embed_cache_misses, 1, "one shape, one derivation");
        assert_eq!(
            qpu.embed_cache_hits + qpu.embed_cache_misses,
            qpu.batches,
            "one cache lookup per batch call"
        );
    }

    #[test]
    fn zero_deadline_downgrades_everything_to_classical() {
        let report = run_fabric(&fabric(2, 100.0, 0.0, hetero_pool()));
        assert_eq!(report.fallback_rate, 1.0);
        assert_eq!(report.deadline_miss_rate, 1.0, "classical still misses 0");
        assert_eq!(report.served_miss_rate, 0.0, "no fabric-served jobs");
        for b in &report.backends {
            assert_eq!(b.jobs, 0);
            assert_eq!(b.utilization, 0.0);
        }
        // The classical fallback still detects: moderate BER at 14 dB.
        assert!(report.ber < 0.2, "fallback BER {}", report.ber);
    }

    #[test]
    fn single_sa_backend_degenerates_to_the_stream_engine_queue() {
        // One cell, one unbatched single-worker SA backend, one read per
        // job: the fabric is exactly the stream engine's single-server FIFO
        // (start = max(arrival, prev_finish)) with the same nominal service
        // times, so the latency metrics must agree bit for bit.
        let sa = SaParams {
            sweeps: 48,
            num_reads: 1,
            threads: 1,
            ..SaParams::default()
        };
        let seed = 42u64;
        let period = 80.0; // below the ~82 µs nominal service: queueing grows
        let deadline = 1e9;
        let fabric_report = run_fabric(&FabricConfig {
            track: track(),
            n_cells: 1,
            frames_per_cell: 32,
            arrival_period_us: period,
            arrival: ArrivalProcess::Periodic,
            deadline_us: deadline,
            cost: CostModel::default(),
            backends: vec![BackendSpec::SaPool(SaPoolConfig {
                workers: 1,
                max_batch: 1,
                sa,
            })],
            sched: SchedOptions::default(),
            seed,
        });
        // The fabric's cell-0 track seed, per ChannelTrack::cells.
        let cell0_seed = Rng64::new(seed ^ 0xCE11_5EED).next_u64();
        let stream_report = run_stream(
            &StreamConfig {
                track: track(),
                frames: 32,
                arrival_period_us: period,
                deadline_us: deadline,
                policy: DispatchPolicy::AlwaysHybrid,
                cost: CostModel::default(),
                sa,
                seed: cell0_seed,
            },
            &Mmse::new(track().noise_variance),
        );
        assert_eq!(fabric_report.fallback_rate, 0.0);
        assert_eq!(
            fabric_report.p50_latency_us.to_bits(),
            stream_report.p50_latency_us.to_bits()
        );
        assert_eq!(
            fabric_report.p99_latency_us.to_bits(),
            stream_report.p99_latency_us.to_bits()
        );
        assert_eq!(
            fabric_report.deadline_miss_rate,
            stream_report.deadline_miss_rate
        );
    }

    fn quick_grid(threads: usize) -> FabricGridConfig {
        FabricGridConfig {
            track: track(),
            frames_per_cell: 10,
            cell_counts: vec![1, 2],
            arrival_periods_us: vec![300.0, 120.0],
            mixes: vec![
                BackendMix {
                    name: "sa-pool".into(),
                    backends: vec![quick_sa_pool()],
                },
                BackendMix {
                    name: "hetero".into(),
                    backends: hetero_pool(),
                },
            ],
            arrival: ArrivalProcess::Periodic,
            mode: FabricMode::Virtual,
            deadline_us: 600.0,
            cost: CostModel::default(),
            sched: SchedOptions::default(),
            seed: 7,
            threads,
        }
    }

    #[test]
    fn grid_report_is_bit_identical_for_any_thread_count() {
        let serial = run_fabric_grid(&quick_grid(1)).to_json();
        for threads in [2, 0] {
            let parallel = run_fabric_grid(&quick_grid(threads)).to_json();
            assert_eq!(serial, parallel, "threads={threads}");
        }
    }

    #[test]
    fn grid_covers_every_point_in_mix_major_order() {
        let report = run_fabric_grid(&quick_grid(0));
        assert_eq!(report.points.len(), 2 * 2 * 2);
        assert_eq!(report.points[0].mix, "sa-pool");
        assert_eq!(report.points[4].mix, "hetero");
        let json = report.to_json();
        assert!(json.starts_with("{\n  \"bench\": \"fabric\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert_eq!(json.matches("\"mix\"").count(), report.points.len());
    }

    #[test]
    #[should_panic(expected = "empty backend pool")]
    fn empty_pool_rejected() {
        run_fabric(&fabric(1, 100.0, 100.0, Vec::new()));
    }

    #[test]
    #[should_panic(expected = "at least one frame")]
    fn zero_frames_rejected() {
        let mut config = fabric(1, 100.0, 100.0, hetero_pool());
        config.frames_per_cell = 0;
        run_fabric(&config);
    }

    #[test]
    fn point_validate_rejects_each_bad_field_with_a_message() {
        let cases: [Mutation<FabricConfig>; 7] = [
            ("need at least one cell", Box::new(|c| c.n_cells = 0)),
            (
                "need at least one frame per cell",
                Box::new(|c| c.frames_per_cell = 0),
            ),
            (
                "arrival period must be > 0",
                Box::new(|c| c.arrival_period_us = -5.0),
            ),
            ("deadline must be >= 0", Box::new(|c| c.deadline_us = -1.0)),
            ("empty backend pool", Box::new(|c| c.backends.clear())),
            (
                "track needs at least one user",
                Box::new(|c| c.track.n_users = 0),
            ),
            (
                "SaPoolConfig: need >= 1 worker",
                Box::new(|c| {
                    c.backends = vec![BackendSpec::SaPool(SaPoolConfig {
                        workers: 0,
                        max_batch: 1,
                        sa: SaParams::default(),
                    })]
                }),
            ),
        ];
        for (needle, mutate) in cases {
            let mut config = fabric(1, 100.0, 100.0, hetero_pool());
            mutate(&mut config);
            let err = config.validate().expect_err(needle);
            assert!(err.to_string().contains(needle), "{err} missing {needle}");
            assert_eq!(err.context(), "FabricConfig");
        }
        assert_eq!(fabric(1, 100.0, 100.0, hetero_pool()).validate(), Ok(()));
    }

    #[test]
    fn backend_spec_validate_covers_every_variant() {
        assert_eq!(quick_sa_pool().validate(), Ok(()));
        assert_eq!(BackendSpec::Pimc(quick_annealer()).validate(), Ok(()));
        assert_eq!(BackendSpec::Svmc(quick_annealer()).validate(), Ok(()));
        assert_eq!(quick_qpu(4).validate(), Ok(()));

        let mut annealer = quick_annealer();
        annealer.capacity = 0;
        let err = BackendSpec::Pimc(annealer).validate().unwrap_err();
        assert!(err.contains("capacity must be > 0"), "{err}");

        let BackendSpec::MockQpu(mut qpu) = quick_qpu(4) else {
            unreachable!()
        };
        qpu.programming_us = -1.0;
        let err = qpu.validate().unwrap_err();
        assert!(err.contains("negative overhead"), "{err}");
        qpu.programming_us = 120.0;
        qpu.trotter_slices = 1;
        let err = qpu.validate().unwrap_err();
        assert!(err.contains("Trotter"), "{err}");
    }

    #[test]
    fn grid_validate_rejects_each_empty_axis_with_a_message() {
        let cases: [Mutation<FabricGridConfig>; 4] = [
            ("empty mix axis", Box::new(|c| c.mixes.clear())),
            ("empty cells axis", Box::new(|c| c.cell_counts.clear())),
            (
                "empty load axis",
                Box::new(|c| c.arrival_periods_us.clear()),
            ),
            (
                "cell counts must be >= 1",
                Box::new(|c| c.cell_counts = vec![0]),
            ),
        ];
        for (needle, mutate) in cases {
            let mut config = quick_grid(1);
            mutate(&mut config);
            let err = config.validate().expect_err(needle);
            assert!(err.to_string().contains(needle), "{err} missing {needle}");
            assert_eq!(err.context(), "FabricGridConfig");
        }
        assert_eq!(quick_grid(1).validate(), Ok(()));
    }

    #[test]
    fn grid_builder_constructs_validated_configs() {
        let config = FabricGridConfig::builder(track())
            .frames_per_cell(10)
            .cell_counts(vec![1, 2])
            .arrival_periods_us(vec![300.0, 120.0])
            .mixes(vec![BackendMix {
                name: "sa-pool".into(),
                backends: vec![quick_sa_pool()],
            }])
            .deadline_us(600.0)
            .cost(CostModel::default())
            .seed(7)
            .threads(1)
            .build()
            .expect("valid builder chain");
        assert_eq!(config.frames_per_cell, 10);
        assert_eq!(config.mixes.len(), 1);
        assert_eq!(config.seed, 7);

        let err = FabricGridConfig::builder(track())
            .arrival_periods_us(vec![300.0])
            .build()
            .expect_err("missing mixes must be rejected");
        assert!(err.to_string().contains("empty mix axis"));
    }

    fn annealer_spec(capacity: usize, max_batch: usize) -> BackendSpec {
        BackendSpec::Pimc(AnnealerConfig {
            num_reads: 2,
            anneal_us: 2.0,
            sweeps_per_us: 4,
            capacity,
            max_batch,
            kernel: SweepKernel::Exact,
        })
    }

    /// The admission-quote regression: for every (capacity, max_batch)
    /// shape — including ones where the batch splits into multiple service
    /// rounds and the backlog splits into multiple batches — the completion
    /// time `predicted_completion` quoted at admission must never undercut
    /// what the backend is actually charged. For jitter-free backends the
    /// two agree to float rounding; an inversion here is the bug where
    /// rounds were counted per-backlog instead of per-batch.
    #[test]
    fn predicted_completion_never_undercuts_charged_service() {
        for &(capacity, max_batch) in &[(1, 4), (2, 3), (3, 4), (2, 5), (4, 4), (1, 1)] {
            for backlog in 1..=9usize {
                let mut config = fabric(1, 50.0, 1e9, vec![annealer_spec(capacity, max_batch)]);
                config.frames_per_cell = backlog;
                let jobs = generate_jobs(&config);
                let n = jobs[0].num_vars();
                let mut sched =
                    FabricScheduler::new(&config.backends, config.cost, config.deadline_us);
                let mut finished: Vec<Option<JobFinish>> = vec![None; jobs.len()];
                let mut predicted = 0.0f64;
                for id in 0..jobs.len() {
                    let correction = sched.predictor.correction_q16(0, n);
                    predicted = sched.backends[0].predicted_completion(
                        0.0,
                        &sched.route_cost,
                        n,
                        correction,
                        0,
                    );
                    sched.admit(id, 0.0, &jobs, None, &mut finished);
                }
                let mut charged = 0.0f64;
                while let Some((t_c, b_idx)) = sched.next_completion() {
                    sched.complete(b_idx, t_c, &jobs, &mut finished);
                    charged = t_c;
                }
                assert_eq!(sched.fallbacks, 0, "huge deadline must admit everything");
                assert!(finished.iter().all(Option::is_some));
                let slack = 1e-9 * predicted.max(1.0);
                assert!(
                    charged <= predicted + slack,
                    "capacity {capacity} max_batch {max_batch} backlog {backlog}: \
                     charged {charged} us exceeds the admission quote {predicted} us"
                );
                assert!(
                    (charged - predicted).abs() <= 1e-6 * predicted.max(1.0),
                    "capacity {capacity} max_batch {max_batch} backlog {backlog}: \
                     quote {predicted} us drifted from charged {charged} us"
                );
            }
        }
    }

    fn class_p99(report: &FabricReport, class: PriorityClass) -> f64 {
        report
            .classes
            .iter()
            .find(|c| c.class == class)
            .unwrap_or_else(|| panic!("missing class report for {}", class.name()))
            .p99_latency_us
    }

    /// An overloaded single-worker pool with a three-class mix: URLLC
    /// admissions must preempt queued Bulk/eMBB jobs (counted and charged
    /// honestly — victims become fallbacks), per-class accounting must
    /// cover every job, and the rank-ordered queue must leave URLLC with
    /// the best tail latency.
    #[test]
    fn priority_classes_preempt_and_order_tail_latencies() {
        let pool = BackendSpec::SaPool(SaPoolConfig {
            workers: 1,
            max_batch: 2,
            sa: SaParams {
                sweeps: 32,
                num_reads: 2,
                threads: 1,
                ..SaParams::default()
            },
        });
        let mut config = fabric(2, 60.0, 250.0, vec![pool]);
        config.sched.classes = ClassMix {
            urllc: 1,
            embb: 1,
            bulk: 1,
        };
        let report = run_fabric(&config);
        assert!(
            report.preemptions > 0,
            "overload with a class mix must preempt"
        );
        assert_eq!(report.classes.len(), 3, "one report per class");
        let class_jobs: usize = report.classes.iter().map(|c| c.jobs).sum();
        assert_eq!(class_jobs, report.jobs, "class accounting covers all jobs");
        for c in &report.classes {
            assert!(c.misses <= c.jobs);
            assert!(c.jobs > 0, "mix 1/1/1 must populate {}", c.class.name());
        }
        let urllc = class_p99(&report, PriorityClass::Urllc);
        let bulk = class_p99(&report, PriorityClass::Bulk);
        assert!(
            urllc <= bulk,
            "URLLC p99 {urllc} us must not trail Bulk p99 {bulk} us"
        );

        // The single-class default never preempts: nothing outranks anything.
        let default_report = run_fabric(&fabric(2, 60.0, 250.0, vec![quick_sa_pool()]));
        assert_eq!(default_report.preemptions, 0);
    }

    /// The tentpole claim at the unit level: when admission quotes come
    /// from a cost model that underestimates true service 10x, the EWMA
    /// scheduler (which learns the correction online) must beat the static
    /// scheduler on deadline misses, while a calibrated model leaves the
    /// adaptive run byte-identical to the static one.
    #[test]
    fn adaptive_scheduler_beats_static_under_miscalibration() {
        let assumed = CostModel {
            us_per_sweep: 0.15,
            ..CostModel::default()
        };
        let mut config = fabric(2, 40.0, 300.0, vec![quick_sa_pool()]);
        config.sched.assumed_cost = Some(assumed);
        let static_report = run_fabric(&config);
        config.sched.policy = SchedPolicy::Ewma { shift: 1 };
        let adaptive_report = run_fabric(&config);

        assert_eq!(static_report.prediction_mae_us, 0.0);
        assert!(
            adaptive_report.prediction_mae_us > 0.0,
            "the learning predictor must report its error"
        );
        assert!(
            adaptive_report.deadline_miss_rate < static_report.deadline_miss_rate,
            "adaptive miss rate {} must beat static {} under a 10x cost misprediction",
            adaptive_report.deadline_miss_rate,
            static_report.deadline_miss_rate
        );

        // Calibrated quotes: the identity correction is bitwise, so the
        // adaptive run reproduces the static scheduler exactly.
        let mut calibrated = fabric(2, 110.0, 600.0, vec![quick_sa_pool()]);
        let baseline = run_fabric(&calibrated);
        calibrated.sched.policy = SchedPolicy::Ewma { shift: 1 };
        let adaptive_calibrated = run_fabric(&calibrated);
        assert_eq!(
            baseline.to_json_object(),
            adaptive_calibrated.to_json_object()
        );
    }
}
