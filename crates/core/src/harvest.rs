//! Initial-state harvesting for the ΔE_IS% studies (Figures 7 and 8).
//!
//! The paper: "We obtain sample states of various ΔE_IS% using over 750,000
//! samples" — i.e. the candidate initial states fed to RA are not synthetic
//! bit-flips but *states the annealer itself produces*, binned by their
//! quality. This matters physically: annealer samples live in the low-energy
//! basins of the problem, which is exactly the population a classical
//! pre-stage would hand to the quantum refiner.

use crate::metrics::delta_e_percent;
use hqw_anneal::sampler::QuantumSampler;
use hqw_anneal::schedule::AnnealSchedule;
use hqw_qubo::Qubo;

/// One harvested initial state.
#[derive(Debug, Clone)]
pub struct HarvestedState {
    /// Natural-labeled bits.
    pub bits: Vec<u8>,
    /// QUBO energy.
    pub energy: f64,
    /// Quality gap ΔE_IS% against the ground energy.
    pub delta_e_is: f64,
}

/// Harvests distinct excited states from forward-anneal sample sets, keeping
/// up to `per_bin` states per `bin_width`-percent ΔE_IS bin over
/// `[0, max_delta_e)`. Exact ground states are excluded (they belong to the
/// paper's separate `ΔE_IS% = 0` reference line).
///
/// Runs batches of forward anneals until either every bin is full or
/// `max_reads` reads have been spent.
///
/// # Panics
/// Panics on a non-positive bin width or zero `per_bin`/`max_reads`.
#[allow(clippy::too_many_arguments)] // a flat signature reads better than a one-use config struct
pub fn harvest_states(
    sampler: &QuantumSampler,
    qubo: &Qubo,
    ground_energy: f64,
    bin_width: f64,
    max_delta_e: f64,
    per_bin: usize,
    max_reads: usize,
    seed: u64,
) -> Vec<Vec<HarvestedState>> {
    assert!(bin_width > 0.0, "harvest_states: bin width must be > 0");
    assert!(per_bin > 0 && max_reads > 0, "harvest_states: zero budget");
    let nbins = (max_delta_e / bin_width).ceil() as usize;
    let mut bins: Vec<Vec<HarvestedState>> = vec![Vec::new(); nbins];

    // A mid-anneal pause improves sample diversity; any forward schedule
    // works since we only want representative excited states.
    let schedule =
        AnnealSchedule::forward_with_pause(0.45, 1.0, 1.45).expect("static schedule is valid");

    let mut reads_spent = 0usize;
    let mut batch_seed = seed;
    while reads_spent < max_reads {
        let result = sampler.sample_qubo(qubo, &schedule, None, batch_seed);
        batch_seed = batch_seed.wrapping_add(0x9E37_79B9);
        reads_spent += result.samples.total_reads() as usize;
        for sample in result.samples.iter() {
            let de = delta_e_percent(sample.energy, ground_energy);
            if de <= 1e-9 || de >= max_delta_e {
                continue;
            }
            let bin = ((de / bin_width) as usize).min(nbins - 1);
            let slot = &mut bins[bin];
            if slot.len() < per_bin && !slot.iter().any(|s| s.bits == sample.bits) {
                slot.push(HarvestedState {
                    bits: sample.bits.clone(),
                    energy: sample.energy,
                    delta_e_is: de,
                });
            }
        }
        if bins.iter().all(|b| b.len() >= per_bin) {
            break;
        }
    }
    bins
}

#[cfg(test)]
mod tests {
    use super::*;
    use hqw_anneal::sampler::{EngineKind, SamplerConfig};
    use hqw_anneal::DWaveProfile;
    use hqw_math::Rng64;
    use hqw_phy::instance::{DetectionInstance, InstanceConfig};
    use hqw_phy::modulation::Modulation;

    #[test]
    fn harvested_states_land_in_their_bins() {
        let mut rng = Rng64::new(2024);
        let inst =
            DetectionInstance::generate(&InstanceConfig::paper(4, Modulation::Qam16), &mut rng);
        let sampler = QuantumSampler::new(
            DWaveProfile::calibrated(),
            SamplerConfig {
                num_reads: 200,
                engine: EngineKind::Pimc { trotter_slices: 8 },
                ..Default::default()
            },
        );
        let eg = inst.ground_energy();
        let bins = harvest_states(&sampler, &inst.reduction.qubo, eg, 2.0, 10.0, 3, 600, 7);
        assert_eq!(bins.len(), 5);
        let mut total = 0;
        for (b, states) in bins.iter().enumerate() {
            for st in states {
                total += 1;
                assert!(st.delta_e_is > 0.0);
                assert!(
                    st.delta_e_is >= b as f64 * 2.0 && st.delta_e_is < (b + 1) as f64 * 2.0,
                    "state at {} in bin {b}",
                    st.delta_e_is
                );
                assert!((inst.reduction.qubo.energy(&st.bits) - st.energy).abs() < 1e-9);
                assert!(
                    st.bits != inst.tx_natural_bits,
                    "ground state must be excluded"
                );
            }
        }
        assert!(total >= 3, "harvest found too few states ({total})");
    }

    #[test]
    #[should_panic(expected = "bin width must be > 0")]
    fn zero_bin_width_rejected() {
        let mut rng = Rng64::new(1);
        let inst =
            DetectionInstance::generate(&InstanceConfig::paper(2, Modulation::Qpsk), &mut rng);
        let sampler = QuantumSampler::with_defaults();
        harvest_states(
            &sampler,
            &inst.reduction.qubo,
            inst.ground_energy(),
            0.0,
            10.0,
            1,
            10,
            1,
        );
    }
}
