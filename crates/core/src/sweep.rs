//! Parameter sweeps — the paper's Challenge 2 ("Optimal parameters").
//!
//! §4.2 sweeps `s_p` (and `c_p` for FR) over 0.25–0.99 in steps of 0.04 and
//! reports the **median best** setting across instances; FR is scored at its
//! *oracle* `c_p` (the best found by exhaustive search, §4.3). These
//! routines implement that methodology for any protocol family.

use crate::metrics::{success_probability, time_to_solution};
use crate::protocol::{paper_sp_grid, Protocol};
use hqw_anneal::sampler::QuantumSampler;
use hqw_qubo::Qubo;

/// One point of a parameter sweep.
#[derive(Debug, Clone, Copy)]
pub struct SweepPoint {
    /// Swept parameter value (`s_p` or `c_p`).
    pub param: f64,
    /// Per-read ground-state probability at this setting.
    pub p_star: f64,
    /// Programmed duration of one read (µs).
    pub duration_us: f64,
    /// TTS at 99% confidence (µs; infinite when `p_star = 0`).
    pub tts_us: f64,
    /// Mean sample energy.
    pub mean_energy: f64,
}

/// Sweeps a protocol family over a parameter grid.
///
/// `make_protocol` maps a grid value to a protocol; grid values that produce
/// invalid protocols (e.g. FR with `c_p ≤ s_p`) are skipped. The same
/// `initial` state (if any) is used at every point.
pub fn sweep_protocol(
    sampler: &QuantumSampler,
    qubo: &Qubo,
    ground_energy: f64,
    grid: &[f64],
    make_protocol: impl Fn(f64) -> Protocol,
    initial: Option<&[u8]>,
    seed: u64,
) -> Vec<SweepPoint> {
    let mut points = Vec::with_capacity(grid.len());
    for (idx, &param) in grid.iter().enumerate() {
        let protocol = make_protocol(param);
        let Ok(schedule) = protocol.schedule() else {
            continue;
        };
        let init = if protocol.requires_initial_state() {
            initial
        } else {
            None
        };
        let result = sampler.sample_qubo(qubo, &schedule, init, seed.wrapping_add(idx as u64));
        let p_star = success_probability(&result.samples, ground_energy);
        points.push(SweepPoint {
            param,
            p_star,
            duration_us: schedule.duration_us(),
            tts_us: time_to_solution(schedule.duration_us(), p_star, 99.0),
            mean_energy: result.samples.mean_energy(),
        });
    }
    points
}

/// [`sweep_protocol`] with the grid points fanned out across `threads`
/// worker threads (0 = all available cores).
///
/// Each grid point already draws an independent seed
/// (`seed + index`), so the points are embarrassingly parallel and the
/// output is **bit-identical** to the serial sweep, in the same order.
/// Each point's reads additionally parallelize inside the sampler; when
/// sweeping broad grids prefer `sampler.config.threads = 1` and thread the
/// grid here instead — one level of fan-out, no oversubscription.
#[allow(clippy::too_many_arguments)] // mirrors `sweep_protocol` + the threads knob
pub fn sweep_protocol_parallel(
    sampler: &QuantumSampler,
    qubo: &Qubo,
    ground_energy: f64,
    grid: &[f64],
    make_protocol: impl Fn(f64) -> Protocol + Sync,
    initial: Option<&[u8]>,
    seed: u64,
    threads: usize,
) -> Vec<SweepPoint> {
    let points = hqw_math::parallel::parallel_map_indexed(
        grid,
        threads,
        |idx, &param| -> Option<SweepPoint> {
            let protocol = make_protocol(param);
            let schedule = protocol.schedule().ok()?;
            let init = if protocol.requires_initial_state() {
                initial
            } else {
                None
            };
            let result = sampler.sample_qubo(qubo, &schedule, init, seed.wrapping_add(idx as u64));
            let p_star = success_probability(&result.samples, ground_energy);
            Some(SweepPoint {
                param,
                p_star,
                duration_us: schedule.duration_us(),
                tts_us: time_to_solution(schedule.duration_us(), p_star, 99.0),
                mean_energy: result.samples.mean_energy(),
            })
        },
    );
    // Invalid protocols are dropped, exactly as the serial sweep does.
    points.into_iter().flatten().collect()
}

/// Sweeps RA over the paper's `s_p` grid from a fixed initial state.
pub fn sweep_ra_sp(
    sampler: &QuantumSampler,
    qubo: &Qubo,
    ground_energy: f64,
    initial: &[u8],
    seed: u64,
) -> Vec<SweepPoint> {
    sweep_protocol(
        sampler,
        qubo,
        ground_energy,
        &paper_sp_grid(),
        Protocol::paper_ra,
        Some(initial),
        seed,
    )
}

/// Sweeps FA over the paper's `s_p` (pause-location) grid.
pub fn sweep_fa_sp(
    sampler: &QuantumSampler,
    qubo: &Qubo,
    ground_energy: f64,
    seed: u64,
) -> Vec<SweepPoint> {
    sweep_protocol(
        sampler,
        qubo,
        ground_energy,
        &paper_sp_grid(),
        Protocol::paper_fa,
        None,
        seed,
    )
}

/// FR at fixed `s_p`, sweeping `c_p` over the grid and returning the **best
/// found** point — the paper's "oracle scheme" for FR.
pub fn fr_oracle_cp(
    sampler: &QuantumSampler,
    qubo: &Qubo,
    ground_energy: f64,
    s_p: f64,
    seed: u64,
) -> Option<SweepPoint> {
    let points = sweep_protocol(
        sampler,
        qubo,
        ground_energy,
        &paper_sp_grid(),
        |c_p| Protocol::paper_fr(c_p, s_p),
        None,
        seed,
    );
    best_point(&points)
}

/// The best sweep point: highest `p★`, ties broken by lower TTS.
pub fn best_point(points: &[SweepPoint]) -> Option<SweepPoint> {
    points
        .iter()
        .copied()
        .max_by(|a, b| {
            a.p_star
                .partial_cmp(&b.p_star)
                .expect("p_star is never NaN")
                .then(b.tts_us.partial_cmp(&a.tts_us).expect("tts ordering"))
        })
        .filter(|p| p.p_star > 0.0)
}

/// Median of the per-instance best parameters (the paper's "median best
/// parameter setting" across instances). Returns `None` when no instance
/// produced a successful point.
pub fn median_best_param(per_instance_points: &[Vec<SweepPoint>]) -> Option<f64> {
    let mut best: Vec<f64> = per_instance_points
        .iter()
        .filter_map(|pts| best_point(pts).map(|p| p.param))
        .collect();
    if best.is_empty() {
        return None;
    }
    best.sort_by(|a, b| a.partial_cmp(b).expect("params are never NaN"));
    Some(best[best.len() / 2])
}

#[cfg(test)]
mod tests {
    use super::*;
    use hqw_anneal::sampler::{EngineKind, SamplerConfig};
    use hqw_anneal::DWaveProfile;
    use hqw_math::Rng64;
    use hqw_phy::instance::{DetectionInstance, InstanceConfig};
    use hqw_phy::modulation::Modulation;

    fn quick_sampler(reads: usize) -> QuantumSampler {
        QuantumSampler::new(
            DWaveProfile::calibrated(),
            SamplerConfig {
                num_reads: reads,
                engine: EngineKind::Pimc { trotter_slices: 8 },
                ..Default::default()
            },
        )
    }

    #[test]
    fn ra_sweep_covers_grid_and_is_consistent() {
        let mut rng = Rng64::new(5);
        let inst =
            DetectionInstance::generate(&InstanceConfig::paper(3, Modulation::Qpsk), &mut rng);
        let sampler = quick_sampler(20);
        let points = sweep_ra_sp(
            &sampler,
            &inst.reduction.qubo,
            inst.ground_energy(),
            &inst.tx_natural_bits,
            3,
        );
        assert_eq!(points.len(), paper_sp_grid().len());
        for p in &points {
            assert!((0.0..=1.0).contains(&p.p_star));
            assert!(p.duration_us > 0.0);
            if p.p_star > 0.0 {
                assert!(p.tts_us >= p.duration_us);
            } else {
                assert!(p.tts_us.is_infinite());
            }
        }
        // Ground-seeded RA at high s_p must succeed somewhere.
        assert!(points.iter().any(|p| p.p_star > 0.5));
    }

    #[test]
    fn parallel_sweep_is_bit_identical_to_serial() {
        let mut rng = Rng64::new(9);
        let inst =
            DetectionInstance::generate(&InstanceConfig::paper(2, Modulation::Qpsk), &mut rng);
        let sampler = quick_sampler(12);
        let serial = sweep_protocol(
            &sampler,
            &inst.reduction.qubo,
            inst.ground_energy(),
            &paper_sp_grid(),
            Protocol::paper_ra,
            Some(&inst.tx_natural_bits),
            41,
        );
        for threads in [2, 5, 0] {
            let parallel = sweep_protocol_parallel(
                &sampler,
                &inst.reduction.qubo,
                inst.ground_energy(),
                &paper_sp_grid(),
                Protocol::paper_ra,
                Some(&inst.tx_natural_bits),
                41,
                threads,
            );
            assert_eq!(serial.len(), parallel.len());
            for (a, b) in serial.iter().zip(&parallel) {
                assert_eq!(a.param.to_bits(), b.param.to_bits());
                assert_eq!(a.p_star.to_bits(), b.p_star.to_bits());
                assert_eq!(a.mean_energy.to_bits(), b.mean_energy.to_bits());
                assert_eq!(a.tts_us.to_bits(), b.tts_us.to_bits());
            }
        }
    }

    #[test]
    fn fr_oracle_skips_invalid_cp_values() {
        let mut rng = Rng64::new(6);
        let inst =
            DetectionInstance::generate(&InstanceConfig::paper(2, Modulation::Qpsk), &mut rng);
        let sampler = quick_sampler(10);
        // s_p = 0.9: only c_p ∈ (0.9, 1) are valid — most of the grid drops.
        let points = sweep_protocol(
            &sampler,
            &inst.reduction.qubo,
            inst.ground_energy(),
            &paper_sp_grid(),
            |c_p| Protocol::paper_fr(c_p, 0.9),
            None,
            1,
        );
        assert!(points.len() <= 3);
    }

    #[test]
    fn best_point_prefers_high_p_star_then_low_tts() {
        let points = vec![
            SweepPoint {
                param: 0.3,
                p_star: 0.1,
                duration_us: 2.0,
                tts_us: 80.0,
                mean_energy: -1.0,
            },
            SweepPoint {
                param: 0.5,
                p_star: 0.4,
                duration_us: 2.0,
                tts_us: 20.0,
                mean_energy: -1.2,
            },
            SweepPoint {
                param: 0.7,
                p_star: 0.4,
                duration_us: 1.0,
                tts_us: 10.0,
                mean_energy: -1.2,
            },
        ];
        let best = best_point(&points).unwrap();
        assert_eq!(best.param, 0.7);
    }

    #[test]
    fn best_point_of_all_failures_is_none() {
        let points = vec![SweepPoint {
            param: 0.3,
            p_star: 0.0,
            duration_us: 2.0,
            tts_us: f64::INFINITY,
            mean_energy: -1.0,
        }];
        assert!(best_point(&points).is_none());
    }

    #[test]
    fn median_best_param_across_instances() {
        let make = |param, p_star| SweepPoint {
            param,
            p_star,
            duration_us: 1.0,
            tts_us: 10.0,
            mean_energy: 0.0,
        };
        let per_instance = vec![
            vec![make(0.4, 0.5)],
            vec![make(0.6, 0.5)],
            vec![make(0.5, 0.5)],
            vec![make(0.9, 0.0)], // failed instance: ignored
        ];
        assert_eq!(median_best_param(&per_instance), Some(0.5));
        assert_eq!(median_best_param(&[vec![make(0.9, 0.0)]]), None);
    }
}
