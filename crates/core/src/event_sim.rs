//! Discrete-event latency simulation of the pipelined computation structure
//! (the paper's Figure 2 and Challenge 3).
//!
//! "Data bits from successive channel uses are processed in stages of the
//! computational pipeline" — channel uses arrive periodically, flow through
//! classical and quantum stages in order, and each stage serves one item at
//! a time. The paper highlights that pipelined systems need "balancing,
//! buffering, and costs" analysis; this simulator computes exactly those:
//! per-use end-to-end latency, stage utilization, inter-stage queue depths,
//! sustained throughput, and deadline violations against a link-layer
//! turnaround budget.
//!
//! The model is the classic pipeline recurrence
//! `start_k(i) = max(finish_{k−1}(i), finish_k(i−1))` with deterministic
//! per-item service times, which is exact for FIFO single-server stages.

/// One stage of the pipeline: a name plus per-item service times (µs).
#[derive(Debug, Clone)]
pub struct Stage {
    /// Stage name ("classical", "quantum", …).
    pub name: String,
    /// Service time per item, in arrival order (µs). Must match the item
    /// count given to [`simulate_pipeline`].
    pub service_us: Vec<f64>,
}

/// Pipeline simulation output.
#[derive(Debug, Clone)]
pub struct PipelineReport {
    /// End-to-end latency of each item (µs from arrival to final finish).
    pub latency_us: Vec<f64>,
    /// Sustained throughput: items per millisecond of simulated time.
    pub throughput_per_ms: f64,
    /// Per-stage utilization in `[0, 1]` (busy time over makespan).
    pub utilization: Vec<f64>,
    /// Maximum queue depth observed in front of each stage.
    pub max_queue_depth: Vec<usize>,
    /// Number of items whose latency exceeded the deadline.
    pub deadline_violations: usize,
    /// Total simulated time from first arrival to last completion (µs).
    pub makespan_us: f64,
}

/// Simulates `n` channel uses arriving every `arrival_period_us` through the
/// given stages, against a per-use `deadline_us` (the link-layer turnaround
/// budget).
///
/// # Panics
/// Panics when there are no stages, stage service vectors disagree in
/// length, or the arrival period / deadline are non-positive.
pub fn simulate_pipeline(
    arrival_period_us: f64,
    stages: &[Stage],
    deadline_us: f64,
) -> PipelineReport {
    assert!(
        !stages.is_empty(),
        "simulate_pipeline: need at least one stage"
    );
    assert!(
        arrival_period_us > 0.0,
        "simulate_pipeline: arrival period must be > 0"
    );
    assert!(deadline_us > 0.0, "simulate_pipeline: deadline must be > 0");
    let n = stages[0].service_us.len();
    assert!(n > 0, "simulate_pipeline: need at least one item");
    for s in stages {
        assert_eq!(
            s.service_us.len(),
            n,
            "simulate_pipeline: stage '{}' length mismatch",
            s.name
        );
    }

    let k = stages.len();
    // finish[j][i]: completion time of item i at stage j.
    let mut finish = vec![vec![0.0f64; n]; k];
    let mut ready = vec![0.0f64; n]; // when item i is available to stage j
    let mut busy = vec![0.0f64; k];
    for (i, r) in ready.iter_mut().enumerate() {
        *r = i as f64 * arrival_period_us; // arrival times
    }

    for j in 0..k {
        let mut stage_free = 0.0f64;
        for i in 0..n {
            let start = ready[i].max(stage_free);
            let fin = start + stages[j].service_us[i];
            finish[j][i] = fin;
            busy[j] += stages[j].service_us[i];
            stage_free = fin;
        }
        // Items become available to the next stage when this one finishes.
        ready.copy_from_slice(&finish[j]);
    }

    let arrivals: Vec<f64> = (0..n).map(|i| i as f64 * arrival_period_us).collect();
    let latency_us: Vec<f64> = (0..n).map(|i| finish[k - 1][i] - arrivals[i]).collect();
    let makespan_us = finish[k - 1][n - 1] - arrivals[0];
    let deadline_violations = latency_us.iter().filter(|&&l| l > deadline_us).count();

    // Queue depth in front of stage j at the time item i starts there:
    // items already finished at stage j−1 (or arrived, for j = 0) but not
    // yet started at stage j.
    let mut max_queue_depth = vec![0usize; k];
    for j in 0..k {
        for i in 0..n {
            let start_i = finish[j][i] - stages[j].service_us[i];
            let upstream_done = |m: usize| -> f64 {
                if j == 0 {
                    arrivals[m]
                } else {
                    finish[j - 1][m]
                }
            };
            // Number of items m ≥ i that were ready strictly before item i
            // started service (item i itself waits in the queue too).
            let depth = (i..n)
                .take_while(|&m| upstream_done(m) < start_i - 1e-12)
                .count();
            max_queue_depth[j] = max_queue_depth[j].max(depth);
        }
    }

    let utilization = busy.iter().map(|b| (b / makespan_us).min(1.0)).collect();

    PipelineReport {
        latency_us,
        throughput_per_ms: n as f64 / makespan_us * 1000.0,
        utilization,
        max_queue_depth,
        deadline_violations,
        makespan_us,
    }
}

/// Convenience: constant-service stage.
pub fn uniform_stage(name: &str, service_us: f64, n: usize) -> Stage {
    Stage {
        name: name.to_string(),
        service_us: vec![service_us; n],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_stage_no_contention() {
        // Arrivals every 10 µs, service 5 µs: every item's latency is 5 µs.
        let report = simulate_pipeline(10.0, &[uniform_stage("s", 5.0, 4)], 100.0);
        for &l in &report.latency_us {
            assert!((l - 5.0).abs() < 1e-12);
        }
        assert_eq!(report.deadline_violations, 0);
        assert_eq!(report.max_queue_depth, vec![0]);
    }

    #[test]
    fn bottleneck_stage_builds_queue_and_latency() {
        // Arrivals every 1 µs, service 10 µs: latency grows linearly.
        let report = simulate_pipeline(1.0, &[uniform_stage("slow", 10.0, 5)], 20.0);
        assert!(report.latency_us[4] > report.latency_us[0]);
        // Item 4 waits for 4 services: latency = 4·10 − 4·1 + 10 = 46.
        assert!((report.latency_us[4] - 46.0).abs() < 1e-9);
        assert!(report.deadline_violations >= 2);
        assert!(report.max_queue_depth[0] >= 2);
    }

    #[test]
    fn pipeline_overlaps_stages() {
        // Two balanced stages of 5 µs, arrivals every 5 µs: steady state
        // latency = 10 µs (no queueing), throughput = 1 per 5 µs.
        let n = 10;
        let stages = [uniform_stage("a", 5.0, n), uniform_stage("b", 5.0, n)];
        let report = simulate_pipeline(5.0, &stages, 100.0);
        for &l in &report.latency_us {
            assert!((l - 10.0).abs() < 1e-9, "latency {l}");
        }
        // Makespan = 9·5 (last arrival) + 10 − 0 = 55; throughput ≈ 0.18/µs.
        assert!((report.makespan_us - 55.0).abs() < 1e-9);
    }

    #[test]
    fn utilization_reflects_balance() {
        let n = 50;
        let stages = [
            uniform_stage("fast", 1.0, n),
            uniform_stage("slow", 10.0, n),
        ];
        let report = simulate_pipeline(1.0, &stages, 1e9);
        assert!(report.utilization[1] > 0.9, "slow stage should saturate");
        assert!(report.utilization[0] < 0.2, "fast stage should idle");
    }

    #[test]
    fn sequential_vs_pipelined_throughput() {
        // The Figure-2 argument: with stages overlapped, throughput is set by
        // the slowest stage, not the sum. Compare against a single merged
        // stage of the summed latency.
        let n = 20;
        let pipelined = simulate_pipeline(
            6.0,
            &[uniform_stage("c", 5.0, n), uniform_stage("q", 6.0, n)],
            1e9,
        );
        let merged = simulate_pipeline(6.0, &[uniform_stage("cq", 11.0, n)], 1e9);
        assert!(pipelined.throughput_per_ms > merged.throughput_per_ms);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn ragged_stages_rejected() {
        let stages = [uniform_stage("a", 1.0, 3), uniform_stage("b", 1.0, 4)];
        simulate_pipeline(1.0, &stages, 1.0);
    }
}
