//! Property tests for the realtime fabric service: under a single producer
//! with serialized delivery (one queue shard), the service's admission
//! decisions must be identical to the virtual-time scheduler's on the same
//! arrival sequence — for every arrival process, backend pool, load level
//! and seed. The recorded trace must also survive the trace-document
//! round trip and replay with zero divergence.

use hqw_core::fabric::{
    ArrivalProcess, BackendMix, BackendSpec, FabricGridConfig, FabricMode, RealtimeConfig,
    SaPoolConfig,
};
use hqw_core::fabric_rt::{replay_trace_doc, trace_doc};
use hqw_core::run_fabric_rt_grid;
use hqw_core::sched::{ClassMix, SchedOptions, SchedPolicy};
use hqw_core::stream::CostModel;
use hqw_math::Rng64;
use hqw_phy::channel::{snr_db_to_noise_variance, TrackConfig};
use hqw_phy::modulation::Modulation;
use hqw_qubo::sa::SaParams;
use proptest::prelude::*;

fn arbitrary_arrival(rng: &mut Rng64) -> ArrivalProcess {
    match rng.next_index(4) {
        0 => ArrivalProcess::Periodic,
        1 => ArrivalProcess::Bursty {
            burst: 1 + rng.next_index(5),
        },
        2 => ArrivalProcess::Diurnal {
            amplitude: rng.next_range(0.0, 0.95),
            cycle_frames: 2 + rng.next_index(12),
        },
        _ => ArrivalProcess::HeavyTailed {
            alpha: rng.next_range(1.15, 3.0),
        },
    }
}

/// Half the runs keep the historical static scheduler, half enable the
/// full adaptive plane (learned predictor + priority classes + the
/// deliberately miscalibrated planner model) — the realtime admission
/// equivalence and replay contract must hold under both.
fn arbitrary_sched(rng: &mut Rng64) -> SchedOptions {
    if rng.next_bool() {
        return SchedOptions::default();
    }
    SchedOptions {
        policy: if rng.next_bool() {
            SchedPolicy::Ewma {
                shift: rng.next_index(5) as u32,
            }
        } else {
            SchedPolicy::Ucb {
                explore_milli: rng.next_index(1001) as u32,
            }
        },
        assumed_cost: if rng.next_bool() {
            Some(CostModel {
                us_per_sweep: rng.next_range(0.1, 4.0),
                ..CostModel::default()
            })
        } else {
            None
        },
        classes: ClassMix {
            urllc: 1,
            embb: 1 + rng.next_index(3) as u32,
            bulk: rng.next_index(3) as u32,
        },
    }
}

fn arbitrary_grid(seed: u64) -> FabricGridConfig {
    let mut rng = Rng64::new(seed);
    let arrival = arbitrary_arrival(&mut rng);
    FabricGridConfig {
        track: TrackConfig {
            n_users: 2,
            n_rx: 2,
            modulation: Modulation::Qpsk,
            rho: 0.9,
            noise_variance: snr_db_to_noise_variance(rng.next_range(8.0, 18.0), 2),
        },
        frames_per_cell: 4 + rng.next_index(6),
        cell_counts: vec![1 + rng.next_index(3)],
        arrival_periods_us: vec![rng.next_range(60.0, 400.0)],
        mixes: vec![BackendMix {
            name: "pool".into(),
            backends: vec![BackendSpec::SaPool(SaPoolConfig {
                workers: 1 + rng.next_index(3),
                max_batch: 1 + rng.next_index(4),
                sa: SaParams {
                    sweeps: 16,
                    num_reads: 1,
                    threads: 1,
                    ..SaParams::default()
                },
            })],
        }],
        arrival,
        // Single worker, serialized delivery: one producer, one shard.
        mode: FabricMode::Realtime(RealtimeConfig {
            producers: 1,
            queue_shards: 1,
        }),
        sched: arbitrary_sched(&mut rng),
        deadline_us: rng.next_range(150.0, 800.0),
        cost: CostModel::default(),
        seed: rng.next_u64(),
        threads: 0,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The headline property: serialized realtime admission == the
    /// virtual-time scheduler, decision for decision, and the recorded
    /// trace replays through the sim with zero divergence.
    #[test]
    fn serialized_realtime_admission_matches_virtual_scheduler(seed in any::<u64>()) {
        let config = arbitrary_grid(seed);
        prop_assume!(config.validate().is_ok());
        let report = run_fabric_rt_grid(&config);
        for point in &report.points {
            prop_assert_eq!(
                point.replay_divergences, 0,
                "mix {} cells {} diverged from the virtual scheduler",
                &point.mix, point.n_cells
            );
        }
        let doc = trace_doc(&config, &report);
        let replay = replay_trace_doc(&doc)
            .unwrap_or_else(|e| panic!("trace doc failed to replay: {e}"));
        prop_assert_eq!(replay.total_divergences(), 0);
    }
}
