//! Property-based tests for the hybrid-solver framework.

use hqw_core::event_sim::{simulate_pipeline, Stage};
use hqw_core::metrics::{delta_e_percent, time_to_solution};
use hqw_core::protocol::Protocol;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn tts_is_monotone_decreasing_in_p_star(
        duration in 0.1f64..100.0,
        p1 in 0.001f64..0.999,
        p2 in 0.001f64..0.999,
        confidence in 1.0f64..99.9,
    ) {
        let (lo, hi) = if p1 <= p2 { (p1, p2) } else { (p2, p1) };
        let tts_lo = time_to_solution(duration, lo, confidence);
        let tts_hi = time_to_solution(duration, hi, confidence);
        prop_assert!(tts_hi <= tts_lo + 1e-9);
        // TTS is at least one read and scales linearly with duration.
        prop_assert!(tts_hi >= duration - 1e-9);
        let tts_2x = time_to_solution(2.0 * duration, hi, confidence);
        prop_assert!((tts_2x - 2.0 * tts_hi).abs() < 1e-6 * (1.0 + tts_2x.abs()));
    }

    #[test]
    fn delta_e_is_zero_iff_at_ground(e_g in -1e4f64..-1e-3, gap in 0.0f64..1e3) {
        let de = delta_e_percent(e_g + gap, e_g);
        prop_assert!(de >= -1e-9);
        if gap == 0.0 {
            prop_assert!(de.abs() < 1e-9);
        } else {
            prop_assert!((de - 100.0 * gap / e_g.abs()).abs() < 1e-6);
        }
    }

    #[test]
    fn protocol_schedules_honor_duration_identities(
        s_p in 0.01f64..0.99, t_p in 0.0f64..3.0
    ) {
        let ra = Protocol::Reverse { s_p, t_p };
        let sched = ra.schedule().unwrap();
        prop_assert!((sched.duration_us() - (2.0 * (1.0 - s_p) + t_p)).abs() < 1e-9);
        prop_assert!(ra.requires_initial_state());
        prop_assert_eq!(sched.requires_initial_state(), ra.requires_initial_state());

        let fa = Protocol::paper_fa(s_p);
        let fs = fa.schedule().unwrap();
        prop_assert!((fs.duration_us() - (1.0 + s_p + 1.0)).abs() < 1e-9);
        prop_assert!(!fs.requires_initial_state());
    }

    #[test]
    fn pipeline_latencies_are_bounded_by_physics(
        arrival in 0.5f64..20.0,
        svc_a in 0.1f64..15.0,
        svc_b in 0.1f64..15.0,
        n in 1usize..24,
    ) {
        let stages = [
            Stage { name: "a".into(), service_us: vec![svc_a; n] },
            Stage { name: "b".into(), service_us: vec![svc_b; n] },
        ];
        let report = simulate_pipeline(arrival, &stages, 1e12);
        // Lower bound: an item can never finish faster than its total service.
        for &l in &report.latency_us {
            prop_assert!(l >= svc_a + svc_b - 1e-9);
        }
        // Latency is non-decreasing when arrivals outpace the bottleneck and
        // constant when they don't; either way the first item is minimal.
        let first = report.latency_us[0];
        prop_assert!((first - (svc_a + svc_b)).abs() < 1e-9);
        // Throughput bound from two exact makespan lower bounds: the last
        // item arrives at (n−1)·arrival and still needs full service, and
        // the bottleneck stage serves all n items sequentially.
        let bottleneck = svc_a.max(svc_b);
        let makespan_lb = ((n - 1) as f64 * arrival + svc_a + svc_b)
            .max(n as f64 * bottleneck);
        let max_rate = n as f64 / makespan_lb * 1000.0;
        prop_assert!(report.throughput_per_ms <= max_rate + 1e-6,
            "throughput {} exceeds bound {}", report.throughput_per_ms, max_rate);
        // Utilization is a fraction.
        for &u in &report.utilization {
            prop_assert!((0.0..=1.0).contains(&u));
        }
    }

    #[test]
    fn sp_grid_protocols_always_compile(thin in 1usize..6) {
        let grid: Vec<f64> = hqw_core::protocol::paper_sp_grid()
            .into_iter()
            .step_by(thin)
            .collect();
        for &sp in &grid {
            prop_assert!(Protocol::paper_ra(sp).schedule().is_ok());
            prop_assert!(Protocol::paper_fa(sp).schedule().is_ok());
        }
    }
}
