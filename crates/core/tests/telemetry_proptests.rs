//! Property tests for the telemetry plane's [`LogHistogram`]: merge must
//! be exactly associative and commutative (worker shards merge in
//! whatever order threads finish), percentile queries must stay within
//! one sub-bucket's relative error of the exact nearest-rank percentile,
//! and the JSON codec must round-trip record-for-record.

use hqw_core::spec::json::Json;
use hqw_core::telemetry::LogHistogram;
use hqw_math::Rng64;
use proptest::prelude::*;

/// A random histogram: a few hundred observations spanning many octaves,
/// with occasional zeros (the dedicated zero bucket) and an occasional
/// non-finite value (ignored by contract).
fn arbitrary_histogram(rng: &mut Rng64) -> (LogHistogram, Vec<f64>) {
    let n = rng.next_index(300);
    let mut hist = LogHistogram::new();
    let mut values = Vec::with_capacity(n);
    for _ in 0..n {
        let v = match rng.next_index(10) {
            0 => 0.0,
            1 => rng.next_range(1e-9, 1e-6),
            2 => rng.next_range(1e6, 1e12),
            _ => rng.next_range(1e-3, 1e3),
        };
        hist.record(v);
        values.push(v);
    }
    if rng.next_bool() {
        hist.record(f64::NAN);
        hist.record(f64::INFINITY);
    }
    (hist, values)
}

/// The exact nearest-rank percentile of a value set (the definition the
/// histogram approximates): the value at rank `ceil(p/100 · n)`.
fn exact_percentile(values: &[f64], p: f64) -> f64 {
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let rank = ((p / 100.0) * sorted.len() as f64).ceil().max(1.0) as usize;
    sorted[rank.min(sorted.len()) - 1]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Merge is exactly associative and commutative: shards can be folded
    /// in any order and the result (buckets, counts, min/max — full
    /// structural equality) is identical.
    #[test]
    fn merge_is_associative_and_commutative(seed in any::<u64>()) {
        let mut rng = Rng64::new(seed);
        let (a, _) = arbitrary_histogram(&mut rng);
        let (b, _) = arbitrary_histogram(&mut rng);
        let (c, _) = arbitrary_histogram(&mut rng);

        // (a ⊕ b) ⊕ c
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        // a ⊕ (b ⊕ c)
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        prop_assert_eq!(&left, &right);

        // a ⊕ b == b ⊕ a
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        prop_assert_eq!(&ab, &ba);

        // Merging an empty histogram is the identity.
        let mut with_empty = a.clone();
        with_empty.merge(&LogHistogram::new());
        prop_assert_eq!(&with_empty, &a);
    }

    /// Every percentile query lands within one sub-bucket's relative
    /// error of the exact nearest-rank percentile of the recorded values
    /// (the bound [`LogHistogram::RELATIVE_ERROR`] documents), and
    /// queried percentiles are monotonically non-decreasing in `p`.
    #[test]
    fn percentiles_are_within_one_bucket_of_exact(seed in any::<u64>()) {
        let mut rng = Rng64::new(seed);
        let n = 1 + rng.next_index(400);
        let mut hist = LogHistogram::new();
        let mut values = Vec::with_capacity(n);
        for _ in 0..n {
            // Non-negative spread over ~9 octaves plus exact zeros.
            let v = if rng.next_index(8) == 0 {
                0.0
            } else {
                rng.next_range(0.5, 300.0)
            };
            hist.record(v);
            values.push(v);
        }

        let queries = [0.0, 1.0, 10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 99.9, 100.0];
        let mut previous = f64::NEG_INFINITY;
        for &p in &queries {
            let approx = hist.percentile(p);
            let exact = exact_percentile(&values, p);
            let tolerance = LogHistogram::RELATIVE_ERROR * exact + 1e-12;
            prop_assert!(
                (approx - exact).abs() <= tolerance,
                "p{p}: approx {approx} vs exact {exact} (n={n})"
            );
            prop_assert!(approx >= previous, "p{p}: percentiles must be ordered");
            previous = approx;
        }
        prop_assert_eq!(hist.percentile(0.0), hist.min());
        prop_assert_eq!(hist.percentile(100.0), hist.max());
    }

    /// record → to_json → serialize → parse → from_json reproduces the
    /// histogram exactly: same buckets, counts, min/max, and therefore
    /// identical percentile answers.
    #[test]
    fn json_codec_round_trips(seed in any::<u64>()) {
        let mut rng = Rng64::new(seed);
        let (hist, _) = arbitrary_histogram(&mut rng);

        let text = hist.to_json().to_string_pretty();
        let doc = Json::parse(&text).expect("histogram JSON must parse");
        let back = LogHistogram::from_json(&doc).expect("histogram JSON must decode");
        prop_assert_eq!(&back, &hist);
        for p in [0.0, 50.0, 99.0, 100.0] {
            prop_assert_eq!(back.percentile(p), hist.percentile(p));
        }

        // The merged round-trip also matches merging the originals: the
        // codec preserves exactly the state merge operates on.
        let (other, _) = arbitrary_histogram(&mut rng);
        let mut direct = hist.clone();
        direct.merge(&other);
        let other_doc = Json::parse(&other.to_json().to_string_pretty()).unwrap();
        let mut via_codec = back;
        via_codec.merge(&LogHistogram::from_json(&other_doc).unwrap());
        prop_assert_eq!(&via_codec, &direct);
    }
}
