//! Property tests for the adaptive scheduling plane: the learned service
//! predictors are pure integer-state machines — deterministic under
//! replay, clamped to the documented correction range, per-key isolated
//! (EWMA) — and a full static-vs-adaptive comparison grid is bit-identical
//! for any worker thread count.

use hqw_core::fabric::{BackendMix, BackendSpec, SaPoolConfig};
use hqw_core::sched::{
    corrected_us, ClassMix, EwmaPredictor, SchedPolicy, ServicePredictor, UcbPredictor, Q16_ONE,
};
use hqw_core::stream::CostModel;
use hqw_core::{run_sched_grid, SchedGridConfig};
use hqw_math::Rng64;
use hqw_phy::channel::{snr_db_to_noise_variance, TrackConfig};
use hqw_phy::modulation::Modulation;
use hqw_qubo::sa::SaParams;
use proptest::prelude::*;

/// One predictor feedback event: `(backend, shape, quoted µs, observed µs)`.
fn arbitrary_trace(rng: &mut Rng64, len: usize) -> Vec<(usize, usize, f64, f64)> {
    (0..len)
        .map(|_| {
            (
                rng.next_index(3),
                8 + 8 * rng.next_index(3),
                rng.next_range(0.5, 5_000.0),
                rng.next_range(0.5, 5_000.0),
            )
        })
        .collect()
}

fn arbitrary_sched_grid(seed: u64) -> SchedGridConfig {
    let mut rng = Rng64::new(seed);
    SchedGridConfig {
        track: TrackConfig {
            n_users: 2,
            n_rx: 2,
            modulation: Modulation::Qpsk,
            rho: 0.9,
            noise_variance: snr_db_to_noise_variance(rng.next_range(8.0, 18.0), 2),
        },
        frames_per_cell: 4 + rng.next_index(5),
        cell_counts: vec![1 + rng.next_index(2)],
        arrival_periods_us: vec![rng.next_range(80.0, 350.0)],
        mix: BackendMix {
            name: "pool".into(),
            backends: vec![BackendSpec::SaPool(SaPoolConfig {
                workers: 1 + rng.next_index(2),
                max_batch: 1 + rng.next_index(3),
                sa: SaParams {
                    sweeps: 16,
                    num_reads: 1,
                    threads: 1,
                    ..SaParams::default()
                },
            })],
        },
        policy: if rng.next_bool() {
            SchedPolicy::Ewma {
                shift: rng.next_index(5) as u32,
            }
        } else {
            SchedPolicy::Ucb {
                explore_milli: rng.next_index(1001) as u32,
            }
        },
        classes: ClassMix {
            urllc: 1,
            embb: 1 + rng.next_index(2) as u32,
            bulk: rng.next_index(2) as u32,
        },
        assumed_cost: CostModel {
            us_per_sweep: rng.next_range(0.1, 3.0),
            ..CostModel::default()
        },
        deadline_us: rng.next_range(200.0, 900.0),
        cost: CostModel::default(),
        seed: rng.next_u64(),
        threads: 0,
    }
}

proptest! {
    /// The identity correction is a bitwise no-op on any float — the
    /// invariant that keeps calibrated adaptive runs byte-identical to the
    /// static scheduler.
    #[test]
    fn identity_correction_is_bitwise(bits in any::<u64>()) {
        let us = f64::from_bits(bits);
        prop_assert_eq!(corrected_us(us, Q16_ONE).to_bits(), bits);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Both learning predictors replay deterministically (twin instances
    /// fed the same trace agree bit-for-bit at every step) and never leave
    /// the documented correction clamp range.
    #[test]
    fn predictor_state_is_replayable_and_clamped(seed in any::<u64>()) {
        let mut rng = Rng64::new(seed);
        let shift = rng.next_index(6) as u32;
        let explore = rng.next_index(2001) as u32;
        let trace = arbitrary_trace(&mut rng, 64);
        let mut pairs: Vec<(Box<dyn ServicePredictor>, Box<dyn ServicePredictor>)> = vec![
            (
                Box::new(EwmaPredictor::new(shift)),
                Box::new(EwmaPredictor::new(shift)),
            ),
            (
                Box::new(UcbPredictor::new(explore)),
                Box::new(UcbPredictor::new(explore)),
            ),
        ];
        for (a, b) in &mut pairs {
            for &(backend, n, quoted, observed) in &trace {
                a.observe(backend, n, quoted, observed);
                b.observe(backend, n, quoted, observed);
                let ca = a.correction_q16(backend, n);
                prop_assert_eq!(ca, b.correction_q16(backend, n));
                prop_assert!((Q16_ONE / 64..=Q16_ONE * 64).contains(&ca));
                prop_assert_eq!(a.mae_us().to_bits(), b.mae_us().to_bits());
            }
            prop_assert_eq!(a.observations(), trace.len() as u64);
        }
    }

    /// EWMA state is per-(backend, shape): feedback for other keys never
    /// perturbs a key's correction, so per-key estimates are independent of
    /// how the scheduler interleaves backends.
    #[test]
    fn ewma_keys_are_isolated(seed in any::<u64>()) {
        let mut rng = Rng64::new(seed);
        let shift = rng.next_index(6) as u32;
        let trace = arbitrary_trace(&mut rng, 64);
        let mut interleaved = EwmaPredictor::new(shift);
        let mut solo = EwmaPredictor::new(shift);
        for &(backend, n, quoted, observed) in &trace {
            interleaved.observe(backend, n, quoted, observed);
            if (backend, n) == (0, 8) {
                solo.observe(backend, n, quoted, observed);
            }
            prop_assert_eq!(interleaved.correction_q16(0, 8), solo.correction_q16(0, 8));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The static-vs-adaptive comparison grid is bit-identical for any
    /// worker thread count: per-point scheduler state (predictor included)
    /// never leaks across grid points.
    #[test]
    fn sched_grid_is_thread_count_invariant(seed in any::<u64>()) {
        let mut config = arbitrary_sched_grid(seed);
        prop_assume!(config.validate().is_ok());
        config.threads = 1;
        let serial = run_sched_grid(&config).to_json();
        config.threads = 0;
        let parallel = run_sched_grid(&config).to_json();
        prop_assert_eq!(serial, parallel);
    }
}
