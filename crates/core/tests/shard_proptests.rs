//! Property tests for the distributed experiment plane: shard partitions
//! must tile the grid exactly, merging any shard partition must reproduce
//! the single-run report byte-for-byte, and a checkpoint journal truncated
//! at any point boundary must resume to the identical report.

use hqw_core::report::{MergeableReport, PointRecord};
use hqw_core::scenario::{run_ber_points, run_ber_sweep, ScenarioDetector, SnrSweepConfig};
use hqw_core::shard::{grid_len, merge_shards, shard_ids, Checkpoint, GridReport, ShardReport};
use hqw_core::spec::ExperimentSpec;
use hqw_core::stream::{
    run_stream_grid, run_stream_points, CostModel, DispatchPolicy, StreamGridConfig,
};
use hqw_math::Rng64;
use hqw_phy::channel::{ChannelModel, TrackConfig};
use hqw_phy::detect::{KBest, Mmse, ZeroForcing};
use hqw_phy::modulation::Modulation;
use hqw_qubo::sa::SaParams;
use proptest::prelude::*;

/// A small random BER spec: enough grid/roster variety to exercise the
/// record codec, small enough that a proptest case stays in milliseconds.
fn arbitrary_ber_spec(rng: &mut Rng64) -> ExperimentSpec {
    let n_users = 1 + rng.next_index(3);
    ExperimentSpec::Ber(SnrSweepConfig {
        n_users,
        n_rx: n_users + rng.next_index(2),
        modulation: if rng.next_bool() {
            Modulation::Bpsk
        } else {
            Modulation::Qpsk
        },
        channel: ChannelModel::UnitGainRandomPhase,
        snr_db: (0..1 + rng.next_index(4))
            .map(|_| rng.next_range(-5.0, 30.0))
            .collect(),
        realizations: 1 + rng.next_index(3),
        seed: rng.next_u64(),
        threads: rng.next_index(3),
    })
}

/// A cheap classical-only roster (two arms, so the per-column record still
/// carries a real detector roster to validate).
fn mini_roster() -> Vec<ScenarioDetector> {
    vec![
        ScenarioDetector::fixed(false, ZeroForcing),
        ScenarioDetector::fixed(false, KBest::new(4)),
    ]
}

/// A small random stream spec (few frames, trimmed SA) for cross-family
/// byte-identity coverage.
fn arbitrary_stream_spec(rng: &mut Rng64) -> ExperimentSpec {
    let n_users = 1 + rng.next_index(2);
    let n_policies = 1 + rng.next_index(DispatchPolicy::ALL.len());
    ExperimentSpec::Stream(StreamGridConfig {
        track: TrackConfig {
            n_users,
            n_rx: n_users,
            modulation: Modulation::Qpsk,
            rho: 0.0,
            noise_variance: rng.next_range(0.05, 0.5),
        },
        frames: 2 + rng.next_index(6),
        arrival_periods_us: (0..1 + rng.next_index(2))
            .map(|_| rng.next_range(80.0, 500.0))
            .collect(),
        rhos: (0..1 + rng.next_index(2)).map(|_| rng.next_f64()).collect(),
        policies: DispatchPolicy::ALL[..n_policies].to_vec(),
        deadline_us: rng.next_range(100.0, 600.0),
        cost: CostModel::default(),
        sa: SaParams {
            sweeps: 8,
            num_reads: 1,
            threads: 1,
            ..SaParams::default()
        },
        seed: rng.next_u64(),
        threads: rng.next_index(3),
    })
}

/// Computes every point record of a spec's grid (the reference the shard
/// and checkpoint reassembly paths are compared against).
fn all_records(spec: &ExperimentSpec, ids: &[usize]) -> Vec<PointRecord> {
    match spec {
        ExperimentSpec::Ber(config) => run_ber_points(config, &mini_roster(), ids)
            .iter()
            .map(|column| column.to_record())
            .collect(),
        ExperimentSpec::Stream(config) => {
            let classical = Mmse::new(config.track.noise_variance);
            run_stream_points(config, &classical, ids)
                .iter()
                .zip(ids)
                .map(|(cell, &id)| PointRecord {
                    id,
                    payload: cell.to_json_object(),
                })
                .collect()
        }
        _ => unreachable!("only ber/stream specs are generated here"),
    }
}

/// The single-process report bytes for a spec.
fn full_run_json(spec: &ExperimentSpec) -> String {
    match spec {
        ExperimentSpec::Ber(config) => run_ber_sweep(config, &mini_roster()).to_json(),
        ExperimentSpec::Stream(config) => {
            let classical = Mmse::new(config.track.noise_variance);
            run_stream_grid(config, &classical).to_json()
        }
        _ => unreachable!("only ber/stream specs are generated here"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Shard id sets tile the grid exactly: pairwise disjoint, union
    /// complete, each strictly increasing — for any k/N with N in 1..=8.
    #[test]
    fn shard_ids_partition_any_grid(seed in any::<u64>()) {
        let mut rng = Rng64::new(seed);
        let total = rng.next_index(60);
        let count = 1 + rng.next_index(8);
        let mut owner = vec![None; total];
        for index in 1..=count {
            let ids = shard_ids(total, index, count);
            prop_assert!(ids.windows(2).all(|w| w[0] < w[1]), "ids must be sorted");
            for id in ids {
                prop_assert!(id < total);
                prop_assert!(owner[id].is_none(), "id {id} assigned to two shards");
                owner[id] = Some(index);
            }
        }
        prop_assert!(owner.iter().all(Option::is_some), "grid not covered");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The headline merge contract: for a random spec and a random N-way
    /// partition, merging the shard reports (shuffled, through the JSON
    /// codec) is byte-identical to the single-process run.
    #[test]
    fn merge_of_any_partition_is_byte_identical(seed in any::<u64>()) {
        let mut rng = Rng64::new(seed);
        let spec = if rng.next_bool() {
            arbitrary_ber_spec(&mut rng)
        } else {
            arbitrary_stream_spec(&mut rng)
        };
        prop_assume!(spec.validate().is_ok());
        prop_assume!(grid_len(&spec).is_ok()); // skip empty grids
        let total = grid_len(&spec).unwrap();
        let count = 1 + rng.next_index(4);

        let mut shards: Vec<(String, ShardReport)> = (1..=count)
            .map(|index| {
                let ids = shard_ids(total, index, count);
                let records = all_records(&spec, &ids);
                let shard = ShardReport::new(&spec, index, count, records).expect("valid shard");
                // Round-trip through the document codec, as `hqw merge` does.
                let reparsed = ShardReport::parse(&shard.to_json()).expect("round trip");
                (format!("shard{index}.json"), reparsed)
            })
            .collect();
        // Merge order must not matter: rotate by a random amount.
        shards.rotate_left(rng.next_index(count.max(1)));

        let merged = merge_shards(&shards).expect("complete partition merges");
        prop_assert_eq!(merged.as_report().to_json(), full_run_json(&spec));
    }

    /// The checkpoint contract: a journal truncated at any point boundary
    /// (with an optional torn trailing line) parses, reports exactly the
    /// missing ids, and — after running just those — reassembles the
    /// byte-identical report.
    #[test]
    fn truncated_checkpoint_resumes_to_identical_bytes(seed in any::<u64>()) {
        let mut rng = Rng64::new(seed);
        let spec = arbitrary_ber_spec(&mut rng);
        prop_assume!(spec.validate().is_ok());
        prop_assume!(grid_len(&spec).is_ok());
        let total = grid_len(&spec).unwrap();
        let all_ids: Vec<usize> = (0..total).collect();
        let records = all_records(&spec, &all_ids);

        // Journal the first `kept` points, then maybe tear the next line
        // mid-write (what SIGKILL leaves behind).
        let kept = rng.next_index(total + 1);
        let mut journal = Checkpoint::header_line(&spec).expect("shardable spec");
        journal.push('\n');
        for record in &records[..kept] {
            journal.push_str(&Checkpoint::point_line(record));
            journal.push('\n');
        }
        if rng.next_bool() && kept < total {
            let line = Checkpoint::point_line(&records[kept]);
            journal.push_str(&line[..1 + rng.next_index(line.len().saturating_sub(1))]);
        }

        let ck = Checkpoint::parse(&journal).expect("truncated journal parses");
        prop_assert_eq!(ck.points.len(), kept);
        let remaining = ck.remaining_ids();
        prop_assert_eq!(remaining.len(), total - kept);

        // Resume: run only the missing points, combine, reassemble.
        let mut points = ck.points.clone();
        points.extend(all_records(&spec, &remaining));
        points.sort_by_key(|p| p.id);
        let grid = GridReport::from_points(&spec, points).expect("complete set reassembles");
        prop_assert_eq!(grid.as_report().to_json(), full_run_json(&spec));

        // The repaired journal, completed with the remaining lines, is a
        // clean complete checkpoint that assembles to the same bytes.
        let mut repaired = ck.render();
        for record in all_records(&spec, &remaining) {
            repaired.push_str(&Checkpoint::point_line(&record));
            repaired.push('\n');
        }
        let complete = Checkpoint::parse(&repaired).expect("repaired journal parses");
        prop_assert!(complete.is_complete());
        let assembled = complete.assemble().expect("complete journal assembles");
        prop_assert_eq!(assembled.as_report().to_json(), full_run_json(&spec));
    }

    /// `MergeableReport` round trip straight on the report surface:
    /// `from_points(spec, report.points())` reproduces the bytes.
    #[test]
    fn points_round_trip_on_the_report_surface(seed in any::<u64>()) {
        let mut rng = Rng64::new(seed);
        let spec = arbitrary_ber_spec(&mut rng);
        prop_assume!(spec.validate().is_ok());
        prop_assume!(grid_len(&spec).is_ok());
        let ExperimentSpec::Ber(config) = &spec else { unreachable!() };
        let report = run_ber_sweep(config, &mini_roster());
        let rebuilt = hqw_core::BerReport::from_points(&spec, report.points())
            .expect("own points reassemble");
        prop_assert_eq!(rebuilt.to_json(), report.to_json());
    }
}
